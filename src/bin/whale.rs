//! The `whale` command-line driver: run the paper's analyses on a program
//! written in the textual IR language.
//!
//! ```console
//! whale analyze app.whale --cs --print vPC
//! whale analyze app.whale --escape
//! whale number app.whale
//! whale facts app.whale
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use whale::prelude::*;

const USAGE: &str = "\
usage: whale <command> <program-file> [options]

commands:
  analyze   run a points-to analysis
  number    print the Algorithm 4 context numbering summary
  facts     print extracted fact counts

analyze options:
  --ci          context-insensitive, CHA call graph (default)
  --otf         context-insensitive, call graph discovered on the fly
  --untyped     disable the Algorithm 2 type filter
  --cs          cloning-based context-sensitive points-to (Algorithms 4+5)
  --types       context-sensitive type analysis (Algorithm 6)
  --escape      thread-escape analysis (Algorithm 7)
  --races       static data-race detection on top of thread-escape
  --taint SPEC  spec-driven information-flow audit with witness paths
  --factor      apply flow-sensitive local factoring before extraction
  --print REL   print the tuples of a result relation (repeatable)
  --jobs N      solve with N worker threads (per-worker BDD managers)
  --stats       print BDD node-table, op-cache and per-stratum statistics

taint specs are line-oriented:
  source method NAME / source field NAME
  sink method NAME ARGPOS
  sanitizer method NAME
";

/// Prints the manager's node-table and per-cache counters — the
/// observability face of the adaptive op-cache policy.
fn print_bdd_stats(s: &whale::bdd::BddStats) {
    println!(
        "bdd: {} live nodes (peak {}, {:.1} MiB), {} allocated, {} GCs, {} reorders",
        s.live_nodes,
        s.peak_live_nodes,
        s.peak_bytes() as f64 / (1024.0 * 1024.0),
        s.allocated_nodes,
        s.gc_runs,
        s.reorder_runs
    );
    println!(
        "op caches: {:.1} MiB",
        s.cache_bytes as f64 / (1024.0 * 1024.0)
    );
    for (name, c) in [
        ("apply", &s.apply_cache),
        ("ite", &s.ite_cache),
        ("appex", &s.appex_cache),
        ("replace", &s.replace_cache),
        ("client", &s.client_cache),
    ] {
        println!(
            "  {name:<8} hits={:<10} misses={:<10} evictions={:<10} hit rate {:.1}%",
            c.hits,
            c.misses,
            c.evictions,
            c.hit_rate() * 100.0
        );
    }
}

/// Prints the solve's stratum-level timing: total work, the critical
/// path through the stratum DAG (the parallel speedup ceiling), the
/// slowest strata, and inter-manager node traffic for parallel solves.
fn print_solve_stats(s: &whale::datalog::SolveStats) {
    let total: std::time::Duration = s.stratum_times.iter().sum();
    println!(
        "strata: {} solved in {total:?} total, critical path {:?}",
        s.stratum_times.len(),
        s.critical_path_time
    );
    let mut by_time: Vec<(usize, std::time::Duration)> =
        s.stratum_times.iter().copied().enumerate().collect();
    by_time.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (ix, t) in by_time.iter().take(5) {
        if t.is_zero() {
            break;
        }
        println!("  stratum {ix:<4} {t:?}");
    }
    if s.transferred_nodes > 0 {
        println!(
            "  {} BDD nodes shipped between managers",
            s.transferred_nodes
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("whale: {e}");
            ExitCode::FAILURE
        }
    }
}

#[derive(PartialEq)]
enum Mode {
    Ci,
    Otf,
    Cs,
    Types,
    Escape,
    Races,
    Taint,
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_default();
    if command == "--help" || command == "-h" || command.is_empty() {
        print!("{USAGE}");
        return Ok(());
    }
    let path: PathBuf = args.next().ok_or("missing program file")?.into();
    let mut mode = Mode::Ci;
    let mut typed = true;
    let mut factor = false;
    let mut prints: Vec<String> = Vec::new();
    let mut taint_spec: Option<PathBuf> = None;
    let mut show_stats = false;
    let mut jobs = 1usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1)
            }
            "--factor" => factor = true,
            "--ci" => mode = Mode::Ci,
            "--otf" => mode = Mode::Otf,
            "--cs" => mode = Mode::Cs,
            "--types" => mode = Mode::Types,
            "--escape" => mode = Mode::Escape,
            "--races" => mode = Mode::Races,
            "--taint" => {
                mode = Mode::Taint;
                taint_spec = Some(args.next().ok_or("--taint needs a spec file")?.into());
            }
            "--untyped" => typed = false,
            "--stats" => show_stats = true,
            "--print" => {
                // Value consumed on the next loop turn; handled below.
            }
            other if !other.starts_with("--") => prints.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }

    let src = std::fs::read_to_string(&path)?;
    let mut program = parse_program(&src)?;
    if factor {
        program = whale::ir::ssa::factor_locals(&program);
    }
    let facts = Facts::extract(&program);
    println!(
        "{}: {} classes, {} methods, {} statements, {} vars, {} allocation sites",
        path.display(),
        program.classes.len(),
        program.methods.len(),
        program.statement_count(),
        facts.sizes.v,
        facts.sizes.h
    );

    match command.as_str() {
        "facts" => {
            println!(
                "vP0={} store={} load={} assign={}",
                facts.vp0.len(),
                facts.store.len(),
                facts.load.len(),
                facts.assign.len()
            );
            println!(
                "actual={} formal={} IE0={} mI={} cha={}",
                facts.actual.len(),
                facts.formal.len(),
                facts.ie0.len(),
                facts.mi.len(),
                facts.cha.len()
            );
            println!(
                "entries={} thread allocation sites={}",
                facts.entries.len(),
                facts.thread_allocs.len()
            );
            Ok(())
        }
        "number" => {
            let cg = CallGraph::from_cha(&facts)?;
            let numbering = number_contexts(&cg);
            println!(
                "call graph: {} edges over {} methods",
                cg.edges.len(),
                cg.methods
            );
            println!(
                "contexts: max {} per method{}",
                numbering.total_paths(),
                if numbering.clamped {
                    " (clamped at 2^62, overflow merged)"
                } else {
                    ""
                }
            );
            let mut rows: Vec<(u128, usize)> = numbering
                .counts
                .iter()
                .enumerate()
                .map(|(m, &c)| (c, m))
                .collect();
            rows.sort_unstable_by(|a, b| b.cmp(a));
            println!("most-cloned methods:");
            for (count, m) in rows.into_iter().take(8) {
                println!("  {count:>12}  {}", facts.method_names[m]);
            }
            Ok(())
        }
        "analyze" => {
            let t0 = std::time::Instant::now();
            // Layer the worker count on each analysis's own defaults;
            // `None` keeps the analysis's sequential path untouched.
            let opts = |order: &str| {
                (jobs > 1).then(|| EngineOptions {
                    jobs,
                    ..default_options(order)
                })
            };
            let engine = match mode {
                Mode::Ci | Mode::Otf => {
                    let cg_mode = if mode == Mode::Otf {
                        CallGraphMode::OnTheFly
                    } else {
                        CallGraphMode::Cha
                    };
                    let a = context_insensitive(&facts, typed, cg_mode, opts(CI_ORDER))?;
                    println!(
                        "vP: {} tuples, hP: {} tuples ({:?}, {} fixpoint rounds)",
                        a.count("vP")?,
                        a.count("hP")?,
                        t0.elapsed(),
                        a.stats.rounds
                    );
                    a.engine
                }
                Mode::Cs | Mode::Types => {
                    let cg = CallGraph::from_cha(&facts)?;
                    let numbering = number_contexts(&cg);
                    println!(
                        "contexts: up to {} per method{}",
                        numbering.total_paths(),
                        if numbering.clamped { " (clamped)" } else { "" }
                    );
                    if mode == Mode::Cs {
                        let a = context_sensitive(&facts, &cg, &numbering, opts(CS_ORDER))?;
                        println!("vPC: {:.4e} tuples ({:?})", a.count("vPC")?, t0.elapsed());
                        a.engine
                    } else {
                        let a = cs_type_analysis(&facts, &cg, &numbering, opts(CS_ORDER))?;
                        println!("vTC: {:.4e} tuples ({:?})", a.count("vTC")?, t0.elapsed());
                        a.engine
                    }
                }
                Mode::Escape => {
                    let cg = CallGraph::from_cha(&facts)?;
                    let esc = thread_escape(&facts, &cg, opts(CS_ORDER))?;
                    let (cap, escd) = esc.object_counts()?;
                    let (unneeded, needed) = esc.sync_counts()?;
                    println!(
                        "captured={cap} escaped={escd} syncs: {unneeded} removable, {needed} needed ({:?})",
                        t0.elapsed()
                    );
                    esc.engine
                }
                Mode::Races => {
                    let cg = CallGraph::from_cha(&facts)?;
                    let races = detect_races(&facts, &cg, opts(RACE_ORDER))?;
                    println!(
                        "{} racy pair(s) ({} raw tuples, {:?})",
                        races.report.pairs.len(),
                        races.report.raw_tuples,
                        t0.elapsed()
                    );
                    for p in &races.report.pairs {
                        println!(
                            "  {} {}.{}: {} (ctx {}) vs {} (ctx {})",
                            if p.write_write {
                                "write/write"
                            } else {
                                "write/read "
                            },
                            p.object,
                            p.field,
                            p.access1.1,
                            p.access1.0,
                            p.access2.1,
                            p.access2.0
                        );
                    }
                    races.escape.engine
                }
                Mode::Taint => {
                    let spec_path = taint_spec.expect("mode implies the flag");
                    let spec_src = std::fs::read_to_string(&spec_path)?;
                    let spec = TaintSpec::parse(&spec_src)?;
                    let cg = CallGraph::from_cha(&facts)?;
                    let numbering = number_contexts(&cg);
                    let result = taint_analysis(&facts, &cg, &numbering, &spec, opts(CS_ORDER))?;
                    println!(
                        "{} tainted flow(s) reach a sink ({:?}, {} fixpoint rounds)",
                        result.findings.len(),
                        t0.elapsed(),
                        result.analysis.stats.rounds
                    );
                    for f in &result.findings {
                        println!(
                            "  {} in {} (invoke {}, ctx {}):",
                            f.sink_method, f.in_method, f.invoke, f.context
                        );
                        for s in &f.witness {
                            let kind = match s.kind {
                                FlowKind::Source => "source",
                                FlowKind::Assign => "assign",
                                FlowKind::Call => "call  ",
                                FlowKind::Return => "return",
                                FlowKind::Heap => "heap  ",
                            };
                            println!("    {kind}  {} (ctx {})", s.var_name, s.context);
                        }
                    }
                    result.analysis.engine
                }
            };
            if show_stats {
                print_solve_stats(&engine.stats());
                print_bdd_stats(&engine.manager().stats());
            }
            for rel in &prints {
                println!("\n{rel}:");
                let sig: Vec<String> = engine
                    .program()
                    .relations()
                    .iter()
                    .find(|r| &r.name == rel)
                    .map(|r| r.attrs.iter().map(|(_, d)| d.clone()).collect())
                    .ok_or_else(|| format!("unknown relation `{rel}`"))?;
                for t in engine.relation_tuples(rel)? {
                    let row: Vec<String> = t
                        .iter()
                        .zip(&sig)
                        .map(|(&v, dom)| {
                            engine
                                .name_of(dom, v)
                                .map(str::to_string)
                                .unwrap_or_else(|| v.to_string())
                        })
                        .collect();
                    println!("  ({})", row.join(", "));
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    }
}
