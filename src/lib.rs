//! **whale** — a full reproduction of Whaley & Lam, *Cloning-Based
//! Context-Sensitive Pointer Alias Analysis Using Binary Decision
//! Diagrams* (PLDI 2004).
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`bdd`] — the OBDD kernel with the finite-domain layer (the
//!   BuDDy/JavaBDD substitute), including the paper's O(bits) range and
//!   adder primitives.
//! - [`datalog`] — the Datalog-to-BDD deductive database (the `bddbddb`
//!   reproduction): parser, stratification, physical-domain assignment,
//!   semi-naive BDD solver.
//! - [`ir`] — the Java-like IR, class-hierarchy analysis, textual
//!   frontend, synthetic benchmark generator and fact extraction (the
//!   Joeq substitute).
//! - [`core`] — the paper's contribution: the Algorithm 4 context
//!   numbering, Algorithms 1–3 and 5–7, and the Section 5 queries.
//!
//! # Quick start
//!
//! ```
//! use whale::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(r#"
//! class A extends Object {
//!   entry static method main() {
//!     var a: A;
//!     a = new A;
//!     A::consume(a);
//!   }
//!   static method consume(p: A) { }
//! }
//! "#)?;
//! let facts = Facts::extract(&program);
//! let cg = CallGraph::from_cha(&facts)?;
//! let numbering = number_contexts(&cg);
//! let cs = context_sensitive(&facts, &cg, &numbering, None)?;
//! assert!(cs.count("vPC")? >= 2.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `whale-bench` crate for the harness regenerating every table and
//! figure of the paper.

pub use whale_bdd as bdd;
pub use whale_core as core;
pub use whale_datalog as datalog;
pub use whale_ir as ir;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use whale_core::{
        context_insensitive, context_sensitive, cs_type_analysis, default_options, detect_races,
        number_contexts, queries, taint_analysis, thread_escape, Analysis, CallGraph,
        CallGraphMode, ContextNumbering, FlowKind, RaceReport, TaintAnalysis, TaintFinding,
        CI_ORDER, CS_ORDER, RACE_ORDER,
    };
    pub use whale_datalog::{Engine, EngineOptions, Program};
    pub use whale_ir::{parse_program, Facts, ProgramBuilder, TaintSpec};
}
