//! Rule evaluation against one BDD manager.
//!
//! [`RuleEval`] is the per-manager half of the solver, split out of the
//! monolithic `Engine` so the parallel scheduler can run rule applications
//! on worker threads: each worker owns a private [`BddManager`] and its own
//! `RuleEval`, while the `Engine` keeps one for the sequential path. The
//! struct holds exactly the state a rule application touches — the manager,
//! the scratch-instance map for rename cycles, the fuse/memoize flags, and
//! the interned memo-tag table — and none of the global solve state
//! (relation values, strata bookkeeping, statistics), which stays with
//! whoever orchestrates the fixpoint.
//!
//! All sources are passed in explicitly: positive atoms through `srcs`
//! (parallel to the plan's join order machinery) and negative atoms through
//! `neg_srcs` (parallel to `plan.negative`). A worker feeds these from its
//! mirrored relation snapshots; the sequential engine from its live
//! relation table. Results are pure functions of the sources, which is what
//! makes the parallel solve deterministic.

use crate::ast::ConstraintOp;
use crate::plan::{AtomPlan, ConstraintPlan, Operand, RulePlan};
use crate::relation::move_attrs;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use whale_bdd::{Bdd, BddManager, DomainId};

/// Canonical content key of one relation-level operation, interned to a
/// stable `u32` tag for the kernel's client cache. Operand BDD roots are
/// *not* part of this key — they go into the cache key directly — so the
/// tag captures exactly the transformation applied to them. All vectors
/// are sorted before interning: the same semantic operation reaches the
/// same tag no matter what order the planner emitted it in.
#[derive(Clone, PartialEq, Eq, Hash)]
enum MemoOp {
    /// [`RuleEval::eval_atom`]: constant/equality filters, projection, then
    /// attribute renames.
    Atom {
        consts: Vec<(DomainId, u64)>,
        eqs: Vec<(DomainId, DomainId)>,
        project: Vec<DomainId>,
        renames: Vec<(DomainId, DomainId)>,
    },
    /// One join step of [`RuleEval::eval_rule`]:
    /// `∃ quant. (rename(joined) ∧ atom)` (renames empty when no rename
    /// was held back for fusing).
    Join {
        renames: Vec<(DomainId, DomainId)>,
        quant: Vec<DomainId>,
    },
}

/// Evaluates rule plans against one BDD manager. See the module docs.
pub(crate) struct RuleEval {
    mgr: BddManager,
    /// Scratch instance for every physical instance's logical domain.
    scratch_map: HashMap<DomainId, DomainId>,
    fuse_renames: bool,
    rel_cache: bool,
    /// Interned tags of relation-level memo operations (see [`MemoOp`]).
    /// Content-keyed and evaluator-lived, so a tag means the same operation
    /// across rounds *and* across solves — a stale client-cache entry from
    /// an earlier solve can therefore only ever resolve to the correct
    /// result.
    memo_tags: RefCell<HashMap<MemoOp, u32>>,
}

impl RuleEval {
    pub(crate) fn new(
        mgr: BddManager,
        scratch_map: HashMap<DomainId, DomainId>,
        fuse_renames: bool,
        rel_cache: bool,
    ) -> Self {
        RuleEval {
            mgr,
            scratch_map,
            fuse_renames,
            rel_cache,
            memo_tags: RefCell::new(HashMap::new()),
        }
    }

    pub(crate) fn scratch_map(&self) -> &HashMap<DomainId, DomainId> {
        &self.scratch_map
    }

    /// Interns `op` to its stable client-cache tag.
    fn memo_tag(&self, op: MemoOp) -> u32 {
        let mut tags = self.memo_tags.borrow_mut();
        let next = tags.len() as u32;
        *tags.entry(op).or_insert(next)
    }

    /// Applies an atom's constant/equality filters and projections but *not*
    /// its renames — the join loop tries to fold those into the following
    /// `relprod` as one fused kernel call.
    fn eval_atom_prerename(&self, ap: &AtomPlan, src: &Bdd) -> Bdd {
        let mut b = src.clone();
        if b.is_zero() {
            return b;
        }
        for &(d, c) in &ap.consts {
            b = b.and(&self.mgr.domain_const(d, c));
        }
        for &(p, q) in &ap.eqs {
            b = b.and(&self.mgr.domain_eq(p, q));
        }
        if !ap.project.is_empty() {
            b = b.exist_domains(&ap.project);
        }
        b
    }

    fn eval_atom(&self, ap: &AtomPlan, src: &Bdd) -> Bdd {
        // A plan with no filters, projection or renames is the identity;
        // memoizing a clone would only pollute the client cache.
        let identity = ap.consts.is_empty()
            && ap.eqs.is_empty()
            && ap.project.is_empty()
            && ap.renames.is_empty();
        let tag = if self.rel_cache && !identity && !src.is_zero() {
            let mut consts = ap.consts.clone();
            consts.sort_unstable();
            let mut eqs = ap.eqs.clone();
            eqs.sort_unstable();
            let mut project = ap.project.clone();
            project.sort_unstable();
            let mut renames = ap.renames.clone();
            renames.sort_unstable();
            let tag = self.memo_tag(MemoOp::Atom {
                consts,
                eqs,
                project,
                renames,
            });
            if let Some(r) = self.mgr.memo_get(src, None, tag) {
                return r;
            }
            Some(tag)
        } else {
            None
        };
        let mut b = self.eval_atom_prerename(ap, src);
        if !b.is_zero() && !ap.renames.is_empty() {
            b = move_attrs(&b, &ap.renames, &ap.occupied, &self.scratch_map);
        }
        if let Some(tag) = tag {
            self.mgr.memo_put(src, None, tag, &b);
        }
        b
    }

    /// One join step: `∃ quant. (rename(joined) ∧ atom)`, with `renames`
    /// those of a held-back first atom (empty when none was held back).
    /// The whole step is memoized in the kernel's client cache when
    /// `rel_cache` is on: semi-naive variants re-derive identical steps
    /// whenever the operands did not change that round.
    fn join_step(
        &self,
        joined: &Bdd,
        atom_bdd: &Bdd,
        pending: Option<&AtomPlan>,
        quant: &[DomainId],
    ) -> Bdd {
        let tag = if self.rel_cache {
            let mut renames = pending.map(|a| a.renames.clone()).unwrap_or_default();
            renames.sort_unstable();
            let mut quant_key = quant.to_vec();
            quant_key.sort_unstable();
            let tag = self.memo_tag(MemoOp::Join {
                renames,
                quant: quant_key,
            });
            if let Some(r) = self.mgr.memo_get(joined, Some(atom_bdd), tag) {
                return r;
            }
            Some(tag)
        } else {
            None
        };
        let res = match pending {
            Some(a0) => {
                // The kernel renames the held-back operand on the fly when
                // the level map is monotone; otherwise fall back to the
                // two-pass rename-then-join (`move_attrs` also handles
                // rename cycles through the scratch instance).
                match joined.fused_replace_relprod_domains(atom_bdd, &a0.renames, quant) {
                    Some(j) => j,
                    None => {
                        let renamed =
                            move_attrs(joined, &a0.renames, &a0.occupied, &self.scratch_map);
                        renamed.relprod_domains(atom_bdd, quant)
                    }
                }
            }
            None => joined.relprod_domains(atom_bdd, quant),
        };
        if let Some(tag) = tag {
            self.mgr.memo_put(joined, Some(atom_bdd), tag, &res);
        }
        res
    }

    fn constraint_guard(&self, joined: &Bdd, c: &ConstraintPlan) -> Bdd {
        // Orders reduce to `<`: a <= b  <=>  !(b < a), applied with `diff`
        // so encodings above the domain size never enter the result.
        let lt = |p, q| self.mgr.domain_lt(p, q);
        let dom_size = |p: DomainId| self.mgr.domain_size(p);
        // Ranges for var-vs-const comparisons; an empty range is `zero`.
        let below = |p, v: u64| {
            if v == 0 {
                self.mgr.zero()
            } else {
                self.mgr.domain_range(p, 0, v - 1)
            }
        };
        let at_most = |p, v: u64| self.mgr.domain_range(p, 0, v);
        let above = |p, v: u64| self.mgr.domain_range(p, v + 1, dom_size(p) - 1);
        let at_least = |p, v: u64| self.mgr.domain_range(p, v, dom_size(p) - 1);
        match (c.left, c.right) {
            (Operand::Phys(p), Operand::Phys(q)) => match c.op {
                ConstraintOp::Eq => joined.and(&self.mgr.domain_eq(p, q)),
                ConstraintOp::Ne => joined.diff(&self.mgr.domain_eq(p, q)),
                ConstraintOp::Lt => joined.and(&lt(p, q)),
                ConstraintOp::Gt => joined.and(&lt(q, p)),
                ConstraintOp::Le => joined.diff(&lt(q, p)),
                ConstraintOp::Ge => joined.diff(&lt(p, q)),
            },
            (Operand::Phys(p), Operand::Value(v)) => match c.op {
                ConstraintOp::Eq => joined.and(&self.mgr.domain_const(p, v)),
                ConstraintOp::Ne => joined.diff(&self.mgr.domain_const(p, v)),
                ConstraintOp::Lt => joined.and(&below(p, v)),
                ConstraintOp::Le => joined.and(&at_most(p, v)),
                ConstraintOp::Gt => joined.and(&above(p, v)),
                ConstraintOp::Ge => joined.and(&at_least(p, v)),
            },
            (Operand::Value(v), Operand::Phys(p)) => match c.op {
                ConstraintOp::Eq => joined.and(&self.mgr.domain_const(p, v)),
                ConstraintOp::Ne => joined.diff(&self.mgr.domain_const(p, v)),
                // v < p  <=>  p > v, and so on mirrored.
                ConstraintOp::Lt => joined.and(&above(p, v)),
                ConstraintOp::Le => joined.and(&at_least(p, v)),
                ConstraintOp::Gt => joined.and(&below(p, v)),
                ConstraintOp::Ge => joined.and(&at_most(p, v)),
            },
            (Operand::Value(a), Operand::Value(b)) => {
                let holds = match c.op {
                    ConstraintOp::Eq => a == b,
                    ConstraintOp::Ne => a != b,
                    ConstraintOp::Lt => a < b,
                    ConstraintOp::Le => a <= b,
                    ConstraintOp::Gt => a > b,
                    ConstraintOp::Ge => a >= b,
                };
                if holds {
                    joined.clone()
                } else {
                    self.mgr.zero()
                }
            }
        }
    }

    /// Applies one rule plan. `srcs` holds every positive atom's source BDD
    /// (plan order), `neg_srcs` every negative atom's (parallel to
    /// `plan.negative`), `order` the join order over positive-atom indices.
    pub(crate) fn eval_rule(
        &self,
        plan: &RulePlan,
        srcs: &[Bdd],
        neg_srcs: &[Bdd],
        order: &[usize],
    ) -> Bdd {
        let n = plan.positive.len();
        let mut joined;
        let mut bound: HashSet<&str> = HashSet::new();
        // The first atom's renames are held back and fused into its first
        // join when possible. In semi-naive rounds the first atom is the
        // delta — fresh every round, so unlike the stable later atoms its
        // rename can never be amortized by the replace cache, and folding
        // it into the join saves a full traversal per round.
        let mut pending: Option<&AtomPlan> = None;
        if n == 0 {
            joined = self.mgr.one();
        } else {
            let a0 = &plan.positive[order[0]];
            if self.fuse_renames && n > 1 && !a0.renames.is_empty() {
                joined = self.eval_atom_prerename(a0, &srcs[order[0]]);
                pending = Some(a0);
            } else {
                joined = self.eval_atom(a0, &srcs[order[0]]);
            }
            bound.extend(a0.vars.iter().map(String::as_str));
        }
        for k in 1..n {
            if joined.is_zero() {
                return joined;
            }
            let ai = order[k];
            let ap = &plan.positive[ai];
            // Quantify every variable that dies at this join — including
            // the join variables themselves when no later atom, no guard
            // and the head do not need them: keeping a join variable alive
            // one step longer inflates the intermediate (the classic
            // relprod win).
            let mut later: HashSet<&str> = HashSet::new();
            for &j in &order[k + 1..] {
                later.extend(plan.positive[j].vars.iter().map(String::as_str));
            }
            let needed = |v: &str| {
                plan.head_vars.contains(v) || plan.guard_vars.contains(v) || later.contains(v)
            };
            let mut quant: Vec<DomainId> = bound
                .iter()
                .copied()
                .chain(ap.vars.iter().map(String::as_str))
                .filter(|v| !needed(v))
                .collect::<HashSet<&str>>()
                .into_iter()
                .map(|v| plan.var_phys[v])
                .collect();
            // Canonical order: the set comes out of a HashSet, and the
            // client-cache key must not depend on iteration order.
            quant.sort_unstable();
            let atom_bdd = self.eval_atom(ap, &srcs[ai]);
            joined = self.join_step(&joined, &atom_bdd, pending.take(), &quant);
            bound.extend(plan.positive[ai].vars.iter().map(String::as_str));
            bound.retain(|v| needed(v));
        }
        if joined.is_zero() {
            return joined;
        }
        for c in &plan.constraints {
            joined = self.constraint_guard(&joined, c);
        }
        for (i, neg) in plan.negative.iter().enumerate() {
            let nb = self.eval_atom(neg, &neg_srcs[i]);
            joined = joined.diff(&nb);
        }
        // Project remaining non-head variables.
        let extra: Vec<DomainId> = bound
            .iter()
            .filter(|v| !plan.head_vars.contains(**v))
            .map(|v| plan.var_phys[*v])
            .collect();
        if !extra.is_empty() {
            joined = joined.exist_domains(&extra);
        }
        for &(p, q) in &plan.head.eqs {
            joined = joined.and(&self.mgr.domain_eq(p, q));
        }
        for &(d, c) in &plan.head.consts {
            joined = joined.and(&self.mgr.domain_const(d, c));
        }
        joined
    }

    /// Greedy join order: start at `start` (the delta atom in semi-naive
    /// variants), then repeatedly take the remaining atom sharing the most
    /// variables with what is already joined (ties: fewer new variables,
    /// then plan order). Avoids cross-product intermediates like joining a
    /// filter relation before any of its variables are bound.
    pub(crate) fn join_order(plan: &RulePlan, start: usize) -> Vec<usize> {
        let n = plan.positive.len();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let mut bound: HashSet<&str> = HashSet::new();
        order.push(start);
        used[start] = true;
        bound.extend(plan.positive[start].vars.iter().map(String::as_str));
        while order.len() < n {
            let mut best: Option<(usize, usize, usize)> = None; // (shared, new, ix)
            for (i, in_use) in used.iter().enumerate() {
                if *in_use {
                    continue;
                }
                let shared = plan.positive[i]
                    .vars
                    .iter()
                    .filter(|v| bound.contains(v.as_str()))
                    .count();
                let new = plan.positive[i].vars.len() - shared;
                let better = match best {
                    None => true,
                    Some((bs, bn, _)) => shared > bs || (shared == bs && new < bn),
                };
                if better {
                    best = Some((shared, new, i));
                }
            }
            let (_, _, ix) = best.expect("atom remaining");
            used[ix] = true;
            bound.extend(plan.positive[ix].vars.iter().map(String::as_str));
            order.push(ix);
        }
        order
    }
}
