//! The BDD-backed Datalog solver.
//!
//! Mirrors the structure of the paper's `bddbddb` (Section 2.4): relations
//! live in BDDs over physical domains, each rule is applied as a sequence of
//! relational `join`/`project`/`rename` operations (BDD `relprod`, `exist`,
//! `replace`), rules are grouped by the predicate dependency graph and
//! solved stratum by stratum, and recursive components run a semi-naive
//! (*incrementalized*) fixpoint.

use crate::ast::{ConstraintOp, RelationKind};
use crate::graph::scc_topo_order;
use crate::plan::{AtomPlan, ConstraintPlan, Operand, PlanContext, RulePlan};
use crate::program::Program;
use crate::relation::{move_attrs, RelationState};
use crate::DatalogError;
use std::collections::{HashMap, HashSet};
use whale_bdd::{Bdd, BddManager, BddManagerOptions, CacheStats, DomainId, DomainSpec, OrderSpec};

/// Tuning knobs for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Use semi-naive (incrementalized) evaluation for recursive components.
    /// Disable only for the ablation benchmark; naive evaluation computes
    /// the same fixpoint more slowly.
    pub seminaive: bool,
    /// Variable-ordering string over *logical* domain names (e.g.
    /// `"N_F_I_M_VxH"`), or physical instances (`"V1_V0"`). `None` lays the
    /// domains out in declaration order, instances interleaved.
    pub order: Option<String>,
    /// Fold each atom's attribute renames into the subsequent join as one
    /// fused `replace_relprod` kernel call when the rename is monotone
    /// (falling back to rename-then-join otherwise). Disable only for the
    /// ablation benchmark; the result is bit-identical either way.
    pub fuse_renames: bool,
    /// Run dynamic variable reordering (sifting) between fixpoint rounds
    /// once the node table outgrows an adaptive threshold. The fixpoint is
    /// unchanged — only BDD sizes move; reorder effort is reported in
    /// [`SolveStats::reorder_runs`], [`SolveStats::reorder_time`] and
    /// [`SolveStats::reorder_delta_nodes`].
    pub reorder: bool,
    /// Memoize whole relation-level operations (atom filters/renames and
    /// rename-join-project steps) in the kernel's GC-safe client cache,
    /// keyed by operand BDD roots plus an interned operation tag.
    /// Semi-naive rounds re-derive many joins whose operand relations did
    /// not change that round; this skips them outright. Hit counters are
    /// reported in [`SolveStats::rel_cache`]. Disable only for the
    /// ablation benchmark; results are bit-identical either way.
    pub rel_cache: bool,
    /// Pressure-adaptive sizing of the kernel's operation caches (see
    /// [`whale_bdd::BddManagerOptions`]). Disable only for the ablation
    /// benchmark; the legacy policy ties cache sizes to node-table growth
    /// and thrashes on this workload.
    pub adaptive_caches: bool,
}

/// Reordering never fires below this live-node count: tiny tables gain
/// nothing and the pass would only churn the operation caches.
const REORDER_MIN_NODES: usize = 2048;

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            seminaive: true,
            order: None,
            fuse_renames: true,
            reorder: false,
            rel_cache: true,
            adaptive_caches: true,
        }
    }
}

/// Statistics from a [`Engine::solve`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Number of strata (condensation components) evaluated.
    pub strata: usize,
    /// Total fixpoint rounds across all recursive components.
    pub rounds: usize,
    /// Total rule (variant) applications.
    pub rule_applications: usize,
    /// Peak live BDD nodes observed.
    pub peak_live_nodes: usize,
    /// Dynamic reordering passes run during this solve (see
    /// [`EngineOptions::reorder`]).
    pub reorder_runs: usize,
    /// Wall-clock time spent in those reordering passes.
    pub reorder_time: std::time::Duration,
    /// Net live nodes eliminated by those passes (positive means the
    /// table shrank).
    pub reorder_delta_nodes: i64,
    /// Binary-apply cache activity during this solve (deltas, not
    /// lifetime totals — a second solve starts from zero again).
    pub apply_cache: CacheStats,
    /// If-then-else cache activity during this solve.
    pub ite_cache: CacheStats,
    /// Exist/relprod/fused-kernel cache activity during this solve — the
    /// hot path of Algorithm 5's joins.
    pub appex_cache: CacheStats,
    /// Replace cache activity during this solve.
    pub replace_cache: CacheStats,
    /// Relation-level operation cache activity during this solve (see
    /// [`EngineOptions::rel_cache`]); every hit skipped an entire
    /// atom-eval or rename-join-project step.
    pub rel_cache: CacheStats,
}

/// Counter deltas `now - base`, pairing two snapshots of one cache.
fn cache_delta(now: CacheStats, base: CacheStats) -> CacheStats {
    CacheStats {
        hits: now.hits - base.hits,
        misses: now.misses - base.misses,
        evictions: now.evictions - base.evictions,
    }
}

/// A Datalog program loaded into a BDD manager and ready to solve.
///
/// See the crate-level example for end-to-end use.
pub struct Engine {
    program: Program,
    options: EngineOptions,
    mgr: BddManager,
    /// Physical instances per logical domain (scratch excluded).
    phys: Vec<Vec<DomainId>>,
    /// Scratch instance for every physical instance's logical domain.
    scratch_map: HashMap<DomainId, DomainId>,
    rel: Vec<RelationState>,
    name_maps: HashMap<usize, HashMap<String, u64>>,
    name_lists: HashMap<usize, Vec<String>>,
    /// Construction-time ordering groups as the user's tokens (logical or
    /// physical names) and as expanded physical names, index-parallel.
    /// [`Engine::current_order`] renders the sifted group permutation.
    order_tokens: Vec<Vec<String>>,
    order_phys: Vec<Vec<String>>,
    stats: SolveStats,
    /// Per-rule cumulative (time, applications), rebuilt by each solve.
    rule_profile: std::cell::RefCell<Vec<(std::time::Duration, usize)>>,
    /// Interned tags of relation-level memo operations (see [`MemoOp`]).
    /// Content-keyed and engine-lived, so a tag means the same operation
    /// across rounds *and* across solves — a stale client-cache entry from
    /// an earlier solve can therefore only ever resolve to the correct
    /// result.
    memo_tags: std::cell::RefCell<HashMap<MemoOp, u32>>,
}

/// Canonical content key of one relation-level operation, interned to a
/// stable `u32` tag for the kernel's client cache. Operand BDD roots are
/// *not* part of this key — they go into the cache key directly — so the
/// tag captures exactly the transformation applied to them. All vectors
/// are sorted before interning: the same semantic operation reaches the
/// same tag no matter what order the planner emitted it in.
#[derive(Clone, PartialEq, Eq, Hash)]
enum MemoOp {
    /// [`Engine::eval_atom`]: constant/equality filters, projection, then
    /// attribute renames.
    Atom {
        consts: Vec<(DomainId, u64)>,
        eqs: Vec<(DomainId, DomainId)>,
        project: Vec<DomainId>,
        renames: Vec<(DomainId, DomainId)>,
    },
    /// One join step of [`Engine::eval_rule_inner`]:
    /// `∃ quant. (rename(joined) ∧ atom)` (renames empty when no rename
    /// was held back for fusing).
    Join {
        renames: Vec<(DomainId, DomainId)>,
        quant: Vec<DomainId>,
    },
}

impl Engine {
    /// Builds an engine with default options.
    ///
    /// # Errors
    ///
    /// Propagates BDD-layer errors (e.g. a malformed ordering).
    pub fn new(program: Program) -> Result<Self, DatalogError> {
        Self::with_options(program, EngineOptions::default())
    }

    /// Builds an engine with explicit options.
    ///
    /// # Errors
    ///
    /// [`DatalogError::Bdd`] if the ordering string references unknown
    /// domains or omits declared ones.
    pub fn with_options(program: Program, options: EngineOptions) -> Result<Self, DatalogError> {
        // Physical domain specs: N instances plus one scratch per logical
        // domain, all of the logical domain's size.
        let mut specs = Vec::new();
        for (d, decl) in program.domains.iter().enumerate() {
            for i in 0..program.instances[d] {
                specs.push(DomainSpec::new(format!("{}{}", decl.name, i), decl.size));
            }
            specs.push(DomainSpec::new(format!("{}__s", decl.name), decl.size));
        }
        let order_tokens: Vec<Vec<String>> = match options.order.as_deref() {
            None => program
                .domains
                .iter()
                .map(|d| vec![d.name.clone()])
                .collect(),
            Some(o) => OrderSpec::parse(o)?.groups().to_vec(),
        };
        let groups = expand_order(&program, options.order.as_deref())?;
        let order_phys = groups.clone();
        let order = OrderSpec::from_groups(groups);
        // Analyses routinely reach hundreds of thousands of live nodes;
        // starting large avoids early grow-and-collect cycles that clear
        // the operation caches mid-fixpoint.
        let bdd_opts = BddManagerOptions {
            initial_capacity: 1 << 20,
            adaptive_caches: options.adaptive_caches,
            ..BddManagerOptions::default()
        };
        let mgr = BddManager::with_domains_and_options(&specs, &order, &bdd_opts)?;

        let mut phys = Vec::with_capacity(program.domains.len());
        let mut scratch_map = HashMap::new();
        for (d, decl) in program.domains.iter().enumerate() {
            let scratch = mgr
                .domain(&format!("{}__s", decl.name))
                .expect("scratch domain declared");
            let mut instances = Vec::new();
            for i in 0..program.instances[d] {
                let id = mgr
                    .domain(&format!("{}{}", decl.name, i))
                    .expect("instance declared");
                instances.push(id);
                scratch_map.insert(id, scratch);
            }
            phys.push(instances);
        }

        // Attribute physicals: occurrence index among same-domain attrs.
        let mut rel = Vec::with_capacity(program.relations.len());
        for decl in &program.relations {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            let mut attr_phys = Vec::with_capacity(decl.attrs.len());
            for (_, dom_name) in &decl.attrs {
                let dom = program.domain_ix[dom_name];
                let ix = counts.entry(dom).or_insert(0);
                attr_phys.push(phys[dom][*ix]);
                *ix += 1;
            }
            rel.push(RelationState {
                attr_phys,
                bdd: mgr.zero(),
            });
        }

        Ok(Engine {
            program,
            options,
            mgr,
            phys,
            scratch_map,
            rel,
            name_maps: HashMap::new(),
            name_lists: HashMap::new(),
            order_tokens,
            order_phys,
            stats: SolveStats::default(),
            rule_profile: std::cell::RefCell::new(Vec::new()),
            memo_tags: std::cell::RefCell::new(HashMap::new()),
        })
    }

    /// Interns `op` to its stable client-cache tag.
    fn memo_tag(&self, op: MemoOp) -> u32 {
        let mut tags = self.memo_tags.borrow_mut();
        let next = tags.len() as u32;
        *tags.entry(op).or_insert(next)
    }

    /// The underlying BDD manager (for building relation BDDs directly).
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// The program being solved.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Statistics from the last [`Engine::solve`].
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The variable ordering as it stands now, rendered in the same
    /// group syntax [`EngineOptions::order`] accepts (tokens of a group
    /// joined by `x`, groups by `_`). With reordering off this is the
    /// construction-time ordering; after sifting passes it reflects the
    /// group permutation they settled on, so it can seed a subsequent
    /// empirical ordering search.
    pub fn current_order(&self) -> String {
        let mut keyed: Vec<(u32, String)> = self
            .order_tokens
            .iter()
            .zip(&self.order_phys)
            .map(|(tokens, phys)| {
                let top = phys
                    .iter()
                    .filter_map(|name| self.mgr.domain(name))
                    .flat_map(|d| self.mgr.domain_levels(d))
                    .map(|v| self.mgr.level_of_var(v))
                    .min()
                    .unwrap_or(u32::MAX);
                (top, tokens.join("x"))
            })
            .collect();
        keyed.sort();
        let groups: Vec<String> = keyed.into_iter().map(|(_, g)| g).collect();
        groups.join("_")
    }

    fn rel_ix(&self, name: &str) -> Result<usize, DatalogError> {
        self.program
            .relation_ix
            .get(name)
            .copied()
            .ok_or_else(|| DatalogError::UnknownRelation(name.to_string()))
    }

    /// The physical domain of each attribute of `name`, in attribute order.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_signature(&self, name: &str) -> Result<Vec<DomainId>, DatalogError> {
        Ok(self.rel[self.rel_ix(name)?].attr_phys.clone())
    }

    /// Registers a name map for a domain so quoted constants (and
    /// [`Engine::name_of`]) resolve.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownDomain`].
    pub fn set_name_map<S: AsRef<str>>(
        &mut self,
        domain: &str,
        names: &[S],
    ) -> Result<(), DatalogError> {
        let d = *self
            .program
            .domain_ix
            .get(domain)
            .ok_or_else(|| DatalogError::UnknownDomain(domain.to_string()))?;
        let map = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_ref().to_string(), i as u64))
            .collect();
        self.name_maps.insert(d, map);
        self.name_lists
            .insert(d, names.iter().map(|n| n.as_ref().to_string()).collect());
        Ok(())
    }

    /// The name of `value` in `domain`'s name map, if registered.
    pub fn name_of(&self, domain: &str, value: u64) -> Option<&str> {
        let d = *self.program.domain_ix.get(domain)?;
        self.name_lists
            .get(&d)?
            .get(value as usize)
            .map(String::as_str)
    }

    fn minterm(&self, rel_ix: usize, tuple: &[u64]) -> Result<Bdd, DatalogError> {
        let decl = &self.program.relations[rel_ix];
        if tuple.len() != decl.attrs.len() {
            return Err(DatalogError::BadFact(format!(
                "relation `{}` expects {} values, got {}",
                decl.name,
                decl.attrs.len(),
                tuple.len()
            )));
        }
        let mut b = self.mgr.one();
        for (i, &v) in tuple.iter().enumerate() {
            let dom = self.program.domain_ix[&decl.attrs[i].1];
            if v >= self.program.domains[dom].size {
                return Err(DatalogError::ConstantOutOfRange {
                    domain: decl.attrs[i].1.clone(),
                    value: v,
                });
            }
            b = b.and(&self.mgr.domain_const(self.rel[rel_ix].attr_phys[i], v));
        }
        Ok(b)
    }

    /// Adds one tuple to an `input` relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::BadFact`] for non-input relations or arity mismatch;
    /// [`DatalogError::ConstantOutOfRange`] for out-of-domain values.
    pub fn add_fact(&mut self, name: &str, tuple: &[u64]) -> Result<(), DatalogError> {
        let ix = self.rel_ix(name)?;
        if self.program.relations[ix].kind != RelationKind::Input {
            return Err(DatalogError::BadFact(format!(
                "relation `{name}` is not an input relation"
            )));
        }
        let m = self.minterm(ix, tuple)?;
        self.rel[ix].bdd = self.rel[ix].bdd.or(&m);
        Ok(())
    }

    /// Adds many tuples to an `input` relation.
    ///
    /// # Example
    ///
    /// ```
    /// # use whale_datalog::{Engine, Program};
    /// # fn main() -> Result<(), whale_datalog::DatalogError> {
    /// # let program = Program::parse(
    /// #     "DOMAINS\nV 8\nRELATIONS\ninput e (s : V, d : V)\noutput t (s : V, d : V)\nRULES\nt(x,y) :- e(x,y).")?;
    /// let mut engine = Engine::new(program)?;
    /// engine.add_facts("e", [[0u64, 1], [1, 2], [2, 3]])?;
    /// engine.solve()?;
    /// assert_eq!(engine.relation_count("t")? as u64, 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Engine::add_fact`]; tuples before the failing one remain added.
    pub fn add_facts<I, T>(&mut self, name: &str, tuples: I) -> Result<(), DatalogError>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u64]>,
    {
        // Balanced OR reduction keeps intermediate BDDs small when loading
        // large fact sets.
        let ix = self.rel_ix(name)?;
        if self.program.relations[ix].kind != RelationKind::Input {
            return Err(DatalogError::BadFact(format!(
                "relation `{name}` is not an input relation"
            )));
        }
        let mut layer: Vec<Bdd> = Vec::new();
        for t in tuples {
            layer.push(self.minterm(ix, t.as_ref())?);
        }
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        c[0].or(&c[1])
                    } else {
                        c[0].clone()
                    }
                })
                .collect();
        }
        if let Some(b) = layer.pop() {
            self.rel[ix].bdd = self.rel[ix].bdd.or(&b);
        }
        Ok(())
    }

    /// Replaces a relation's contents with a directly constructed BDD.
    ///
    /// The BDD must be built with this engine's [`Engine::manager`] over the
    /// physical domains of [`Engine::relation_signature`]. Used to inject
    /// relations computed outside Datalog, such as the context-sensitive
    /// invocation edges `IEC` produced by the paper's Algorithm 4.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn set_relation_bdd(&mut self, name: &str, bdd: Bdd) -> Result<(), DatalogError> {
        let ix = self.rel_ix(name)?;
        self.rel[ix].bdd = bdd;
        Ok(())
    }

    /// The current BDD of a relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_bdd(&self, name: &str) -> Result<Bdd, DatalogError> {
        Ok(self.rel[self.rel_ix(name)?].bdd.clone())
    }

    /// Number of tuples currently in a relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_count(&self, name: &str) -> Result<f64, DatalogError> {
        let ix = self.rel_ix(name)?;
        Ok(self.rel[ix].bdd.satcount_domains(&self.rel[ix].attr_phys))
    }

    /// Exact tuple count (u128, saturating) — immune to the
    /// floating-point rounding of [`Engine::relation_count`] at the huge
    /// counts context-sensitive analyses produce.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_count_exact(&self, name: &str) -> Result<u128, DatalogError> {
        let ix = self.rel_ix(name)?;
        Ok(self.rel[ix]
            .bdd
            .satcount_domains_exact(&self.rel[ix].attr_phys))
    }

    /// All tuples of a relation, decoded (attribute order).
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_tuples(&self, name: &str) -> Result<Vec<Vec<u64>>, DatalogError> {
        let ix = self.rel_ix(name)?;
        let doms = self.rel[ix].attr_phys.clone();
        Ok(self.rel[ix].bdd.tuples(&doms))
    }

    /// Tuples of a relation matching a partial binding, decoded.
    ///
    /// `fixed` pins attribute positions (0-based, attribute order) to
    /// constants; every tuple whose pinned attributes match is returned in
    /// full. With an empty `fixed` this is [`Engine::relation_tuples`].
    /// The selection happens symbolically — the constants are conjoined
    /// onto the relation BDD before decoding — so the cost tracks the size
    /// of the *answer*, not of the whole relation. Witness reconstruction
    /// (whale-core's taint engine) uses this to walk per-step flow
    /// relations backwards one endpoint at a time.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`]; [`DatalogError::BadFact`] for an
    /// attribute index at or past the relation's arity;
    /// [`DatalogError::ConstantOutOfRange`] for a value outside the pinned
    /// attribute's domain.
    pub fn relation_select(
        &self,
        name: &str,
        fixed: &[(usize, u64)],
    ) -> Result<Vec<Vec<u64>>, DatalogError> {
        let ix = self.rel_ix(name)?;
        let decl = &self.program.relations[ix];
        let mut b = self.rel[ix].bdd.clone();
        for &(attr, v) in fixed {
            if attr >= decl.attrs.len() {
                return Err(DatalogError::BadFact(format!(
                    "relation `{}` has arity {}, no attribute {}",
                    decl.name,
                    decl.attrs.len(),
                    attr
                )));
            }
            let dom = self.program.domain_ix[&decl.attrs[attr].1];
            if v >= self.program.domains[dom].size {
                return Err(DatalogError::ConstantOutOfRange {
                    domain: decl.attrs[attr].1.clone(),
                    value: v,
                });
            }
            b = b.and(&self.mgr.domain_const(self.rel[ix].attr_phys[attr], v));
        }
        Ok(b.tuples(&self.rel[ix].attr_phys))
    }

    /// Whether a relation currently contains `tuple`.
    ///
    /// # Errors
    ///
    /// As [`Engine::add_fact`] minus the input-kind restriction.
    pub fn relation_contains(&self, name: &str, tuple: &[u64]) -> Result<bool, DatalogError> {
        let ix = self.rel_ix(name)?;
        let m = self.minterm(ix, tuple)?;
        Ok(!self.rel[ix].bdd.and(&m).is_zero())
    }

    // ------------------------------------------------------------------
    // Solving
    // ------------------------------------------------------------------

    /// Runs the program to its (stratified) fixpoint.
    ///
    /// Solving is idempotent: a second call recomputes the same fixpoint.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratified`] for negation through recursion;
    /// [`DatalogError::UnresolvedName`] for unresolvable quoted constants.
    pub fn solve(&mut self) -> Result<SolveStats, DatalogError> {
        // Peak-node reporting is per solve, not per engine lifetime: a
        // second solve must not inherit the first one's high-water mark,
        // nor count garbage left behind by earlier solves or by BDDs the
        // caller built and dropped (dead nodes linger until a sweep).
        self.mgr.gc();
        self.mgr.reset_peak();
        // Per-solve cache reporting: deltas against this snapshot.
        let cache_base = self.mgr.stats();
        let plans: Vec<RulePlan> = {
            let ctx = PlanContext {
                program: &self.program,
                phys: &self.phys,
                rel_attr_phys: &self
                    .rel
                    .iter()
                    .map(|r| r.attr_phys.clone())
                    .collect::<Vec<_>>(),
                name_maps: &self.name_maps,
            };
            (0..self.program.rules.len())
                .map(|i| ctx.build(i))
                .collect::<Result<_, _>>()?
        };

        // Predicate dependency graph.
        let nrel = self.program.relations.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nrel];
        for plan in &plans {
            for atom in plan.positive.iter().chain(&plan.negative) {
                adj[atom.rel].push(plan.head.rel);
            }
        }
        let (comp_of, comps) = scc_topo_order(&adj);

        // Stratification check. Plans are built per rule index, so plan i
        // describes rules[i] and its source text/line can name the
        // offending negation.
        for (i, plan) in plans.iter().enumerate() {
            for neg in &plan.negative {
                if comp_of[neg.rel] == comp_of[plan.head.rel] {
                    let rule = &self.program.rules[i];
                    return Err(DatalogError::NotStratified {
                        relation: self.program.relations[neg.rel].name.clone(),
                        rule: rule.to_string(),
                        line: rule.line,
                    });
                }
            }
        }

        let mut stats = SolveStats {
            strata: comps.len(),
            ..Default::default()
        };
        let mut reorder_at = REORDER_MIN_NODES;
        *self.rule_profile.borrow_mut() =
            vec![(std::time::Duration::ZERO, 0usize); self.program.rules.len()];
        for (c, comp) in comps.iter().enumerate() {
            let comp_plans: Vec<&RulePlan> =
                plans.iter().filter(|p| comp_of[p.head.rel] == c).collect();
            if comp_plans.is_empty() {
                continue;
            }
            let is_recursive = |p: &RulePlan| p.positive.iter().any(|a| comp_of[a.rel] == c);
            // Non-recursive rules first, once.
            for plan in comp_plans.iter().filter(|p| !is_recursive(p)) {
                let srcs: Vec<Bdd> = plan
                    .positive
                    .iter()
                    .map(|a| self.rel[a.rel].bdd.clone())
                    .collect();
                let order = if plan.positive.is_empty() {
                    Vec::new()
                } else {
                    Self::join_order(plan, 0)
                };
                let contrib = self.eval_rule(plan, &srcs, &order);
                stats.rule_applications += 1;
                let head = plan.head.rel;
                self.rel[head].bdd = self.rel[head].bdd.or(&contrib);
            }
            let rec_plans: Vec<&RulePlan> = comp_plans
                .iter()
                .filter(|p| is_recursive(p))
                .copied()
                .collect();
            if !rec_plans.is_empty() {
                if self.options.seminaive {
                    self.seminaive_fixpoint(
                        c,
                        &comp_of,
                        comp,
                        &rec_plans,
                        &mut stats,
                        &mut reorder_at,
                    );
                } else {
                    self.naive_fixpoint(c, &comp_of, comp, &rec_plans, &mut stats, &mut reorder_at);
                }
            }
        }
        let bdd_stats = self.mgr.stats();
        stats.peak_live_nodes = bdd_stats.peak_live_nodes;
        stats.apply_cache = cache_delta(bdd_stats.apply_cache, cache_base.apply_cache);
        stats.ite_cache = cache_delta(bdd_stats.ite_cache, cache_base.ite_cache);
        stats.appex_cache = cache_delta(bdd_stats.appex_cache, cache_base.appex_cache);
        stats.replace_cache = cache_delta(bdd_stats.replace_cache, cache_base.replace_cache);
        stats.rel_cache = cache_delta(bdd_stats.client_cache, cache_base.client_cache);
        if std::env::var_os("WHALE_RULE_TIMING").is_some() {
            let prof = self.rule_profile.borrow();
            let mut rows: Vec<(usize, std::time::Duration, usize)> = prof
                .iter()
                .enumerate()
                .map(|(i, &(d, n))| (i, d, n))
                .collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1));
            eprintln!("-- rule timing (cumulative) --");
            for (i, d, n) in rows.iter().take(12) {
                eprintln!("  {d:>10.2?} x{n:<5} {}", self.program.rules[*i]);
            }
        }
        self.stats = stats;
        Ok(stats)
    }

    /// Runs one sifting pass if reordering is enabled and the table has
    /// outgrown the adaptive threshold. Called between fixpoint rounds,
    /// where no kernel operation is in flight (live handles — relation and
    /// delta BDDs — stay valid; the pass rewrites nodes in place). After a
    /// pass the threshold doubles over the sifted size so a table that has
    /// settled stops paying for reordering.
    fn maybe_reorder(&self, stats: &mut SolveStats, reorder_at: &mut usize) {
        if !self.options.reorder || self.mgr.stats().live_nodes < *reorder_at {
            return;
        }
        let t0 = std::time::Instant::now();
        let rs = self.mgr.reorder_sift();
        stats.reorder_runs += 1;
        stats.reorder_time += t0.elapsed();
        stats.reorder_delta_nodes += rs.delta_nodes();
        *reorder_at = (rs.nodes_after * 2).max(REORDER_MIN_NODES);
    }

    fn seminaive_fixpoint(
        &mut self,
        c: usize,
        comp_of: &[usize],
        comp: &[usize],
        rec_plans: &[&RulePlan],
        stats: &mut SolveStats,
        reorder_at: &mut usize,
    ) {
        let mut delta: HashMap<usize, Bdd> =
            comp.iter().map(|&r| (r, self.rel[r].bdd.clone())).collect();
        loop {
            stats.rounds += 1;
            let mut acc: HashMap<usize, Bdd> = comp.iter().map(|&r| (r, self.mgr.zero())).collect();
            for plan in rec_plans {
                for occ in 0..plan.positive.len() {
                    let rel_r = plan.positive[occ].rel;
                    if comp_of[rel_r] != c {
                        continue;
                    }
                    if delta[&rel_r].is_zero() {
                        continue;
                    }
                    let srcs: Vec<Bdd> = plan
                        .positive
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == occ {
                                delta[&rel_r].clone()
                            } else {
                                self.rel[a.rel].bdd.clone()
                            }
                        })
                        .collect();
                    // The delta joins first; the rest follow greedily.
                    let order = Self::join_order(plan, occ);
                    let contrib = self.eval_rule(plan, &srcs, &order);
                    stats.rule_applications += 1;
                    let head = plan.head.rel;
                    if let Some(a) = acc.get_mut(&head) {
                        *a = a.or(&contrib);
                    }
                }
            }
            let mut changed = false;
            for &r in comp {
                let fresh = acc[&r].diff(&self.rel[r].bdd);
                if !fresh.is_zero() {
                    self.rel[r].bdd = self.rel[r].bdd.or(&fresh);
                    changed = true;
                }
                delta.insert(r, fresh);
            }
            if !changed {
                return;
            }
            self.maybe_reorder(stats, reorder_at);
        }
    }

    fn naive_fixpoint(
        &mut self,
        _c: usize,
        _comp_of: &[usize],
        comp: &[usize],
        rec_plans: &[&RulePlan],
        stats: &mut SolveStats,
        reorder_at: &mut usize,
    ) {
        loop {
            stats.rounds += 1;
            let mut changed = false;
            let mut acc: HashMap<usize, Bdd> = comp.iter().map(|&r| (r, self.mgr.zero())).collect();
            for plan in rec_plans {
                let srcs: Vec<Bdd> = plan
                    .positive
                    .iter()
                    .map(|a| self.rel[a.rel].bdd.clone())
                    .collect();
                let order = if plan.positive.is_empty() {
                    Vec::new()
                } else {
                    Self::join_order(plan, 0)
                };
                let contrib = self.eval_rule(plan, &srcs, &order);
                stats.rule_applications += 1;
                let head = plan.head.rel;
                if let Some(a) = acc.get_mut(&head) {
                    *a = a.or(&contrib);
                }
            }
            for &r in comp {
                let fresh = acc[&r].diff(&self.rel[r].bdd);
                if !fresh.is_zero() {
                    self.rel[r].bdd = self.rel[r].bdd.or(&fresh);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
            self.maybe_reorder(stats, reorder_at);
        }
    }

    /// Greedy join order: start at `start` (the delta atom in semi-naive
    /// variants), then repeatedly take the remaining atom sharing the most
    /// variables with what is already joined (ties: fewer new variables,
    /// then plan order). Avoids cross-product intermediates like joining a
    /// filter relation before any of its variables are bound.
    fn join_order(plan: &RulePlan, start: usize) -> Vec<usize> {
        let n = plan.positive.len();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let mut bound: HashSet<&str> = HashSet::new();
        order.push(start);
        used[start] = true;
        bound.extend(plan.positive[start].vars.iter().map(String::as_str));
        while order.len() < n {
            let mut best: Option<(usize, usize, usize)> = None; // (shared, new, ix)
            for (i, in_use) in used.iter().enumerate() {
                if *in_use {
                    continue;
                }
                let shared = plan.positive[i]
                    .vars
                    .iter()
                    .filter(|v| bound.contains(v.as_str()))
                    .count();
                let new = plan.positive[i].vars.len() - shared;
                let better = match best {
                    None => true,
                    Some((bs, bn, _)) => shared > bs || (shared == bs && new < bn),
                };
                if better {
                    best = Some((shared, new, i));
                }
            }
            let (_, _, ix) = best.expect("atom remaining");
            used[ix] = true;
            bound.extend(plan.positive[ix].vars.iter().map(String::as_str));
            order.push(ix);
        }
        order
    }

    /// Applies an atom's constant/equality filters and projections but *not*
    /// its renames — the join loop tries to fold those into the following
    /// `relprod` as one fused kernel call.
    fn eval_atom_prerename(&self, ap: &AtomPlan, src: &Bdd) -> Bdd {
        let mut b = src.clone();
        if b.is_zero() {
            return b;
        }
        for &(d, c) in &ap.consts {
            b = b.and(&self.mgr.domain_const(d, c));
        }
        for &(p, q) in &ap.eqs {
            b = b.and(&self.mgr.domain_eq(p, q));
        }
        if !ap.project.is_empty() {
            b = b.exist_domains(&ap.project);
        }
        b
    }

    fn eval_atom(&self, ap: &AtomPlan, src: &Bdd) -> Bdd {
        // A plan with no filters, projection or renames is the identity;
        // memoizing a clone would only pollute the client cache.
        let identity = ap.consts.is_empty()
            && ap.eqs.is_empty()
            && ap.project.is_empty()
            && ap.renames.is_empty();
        let tag = if self.options.rel_cache && !identity && !src.is_zero() {
            let mut consts = ap.consts.clone();
            consts.sort_unstable();
            let mut eqs = ap.eqs.clone();
            eqs.sort_unstable();
            let mut project = ap.project.clone();
            project.sort_unstable();
            let mut renames = ap.renames.clone();
            renames.sort_unstable();
            let tag = self.memo_tag(MemoOp::Atom {
                consts,
                eqs,
                project,
                renames,
            });
            if let Some(r) = self.mgr.memo_get(src, None, tag) {
                return r;
            }
            Some(tag)
        } else {
            None
        };
        let mut b = self.eval_atom_prerename(ap, src);
        if !b.is_zero() && !ap.renames.is_empty() {
            b = move_attrs(&b, &ap.renames, &ap.occupied, &self.scratch_map);
        }
        if let Some(tag) = tag {
            self.mgr.memo_put(src, None, tag, &b);
        }
        b
    }

    /// One join step: `∃ quant. (rename(joined) ∧ atom)`, with `renames`
    /// those of a held-back first atom (empty when none was held back).
    /// The whole step is memoized in the kernel's client cache when
    /// [`EngineOptions::rel_cache`] is on: semi-naive variants re-derive
    /// identical steps whenever the operands did not change that round.
    fn join_step(
        &self,
        joined: &Bdd,
        atom_bdd: &Bdd,
        pending: Option<&AtomPlan>,
        quant: &[DomainId],
    ) -> Bdd {
        let tag = if self.options.rel_cache {
            let mut renames = pending.map(|a| a.renames.clone()).unwrap_or_default();
            renames.sort_unstable();
            let mut quant_key = quant.to_vec();
            quant_key.sort_unstable();
            let tag = self.memo_tag(MemoOp::Join {
                renames,
                quant: quant_key,
            });
            if let Some(r) = self.mgr.memo_get(joined, Some(atom_bdd), tag) {
                return r;
            }
            Some(tag)
        } else {
            None
        };
        let res = match pending {
            Some(a0) => {
                // The kernel renames the held-back operand on the fly when
                // the level map is monotone; otherwise fall back to the
                // two-pass rename-then-join (`move_attrs` also handles
                // rename cycles through the scratch instance).
                match joined.fused_replace_relprod_domains(atom_bdd, &a0.renames, quant) {
                    Some(j) => j,
                    None => {
                        let renamed =
                            move_attrs(joined, &a0.renames, &a0.occupied, &self.scratch_map);
                        renamed.relprod_domains(atom_bdd, quant)
                    }
                }
            }
            None => joined.relprod_domains(atom_bdd, quant),
        };
        if let Some(tag) = tag {
            self.mgr.memo_put(joined, Some(atom_bdd), tag, &res);
        }
        res
    }

    fn constraint_guard(&self, joined: &Bdd, c: &ConstraintPlan) -> Bdd {
        // Orders reduce to `<`: a <= b  <=>  !(b < a), applied with `diff`
        // so encodings above the domain size never enter the result.
        let lt = |p, q| self.mgr.domain_lt(p, q);
        let dom_size = |p: whale_bdd::DomainId| self.mgr.domain_size(p);
        // Ranges for var-vs-const comparisons; an empty range is `zero`.
        let below = |p, v: u64| {
            if v == 0 {
                self.mgr.zero()
            } else {
                self.mgr.domain_range(p, 0, v - 1)
            }
        };
        let at_most = |p, v: u64| self.mgr.domain_range(p, 0, v);
        let above = |p, v: u64| self.mgr.domain_range(p, v + 1, dom_size(p) - 1);
        let at_least = |p, v: u64| self.mgr.domain_range(p, v, dom_size(p) - 1);
        match (c.left, c.right) {
            (Operand::Phys(p), Operand::Phys(q)) => match c.op {
                ConstraintOp::Eq => joined.and(&self.mgr.domain_eq(p, q)),
                ConstraintOp::Ne => joined.diff(&self.mgr.domain_eq(p, q)),
                ConstraintOp::Lt => joined.and(&lt(p, q)),
                ConstraintOp::Gt => joined.and(&lt(q, p)),
                ConstraintOp::Le => joined.diff(&lt(q, p)),
                ConstraintOp::Ge => joined.diff(&lt(p, q)),
            },
            (Operand::Phys(p), Operand::Value(v)) => match c.op {
                ConstraintOp::Eq => joined.and(&self.mgr.domain_const(p, v)),
                ConstraintOp::Ne => joined.diff(&self.mgr.domain_const(p, v)),
                ConstraintOp::Lt => joined.and(&below(p, v)),
                ConstraintOp::Le => joined.and(&at_most(p, v)),
                ConstraintOp::Gt => joined.and(&above(p, v)),
                ConstraintOp::Ge => joined.and(&at_least(p, v)),
            },
            (Operand::Value(v), Operand::Phys(p)) => match c.op {
                ConstraintOp::Eq => joined.and(&self.mgr.domain_const(p, v)),
                ConstraintOp::Ne => joined.diff(&self.mgr.domain_const(p, v)),
                // v < p  <=>  p > v, and so on mirrored.
                ConstraintOp::Lt => joined.and(&above(p, v)),
                ConstraintOp::Le => joined.and(&at_least(p, v)),
                ConstraintOp::Gt => joined.and(&below(p, v)),
                ConstraintOp::Ge => joined.and(&at_most(p, v)),
            },
            (Operand::Value(a), Operand::Value(b)) => {
                let holds = match c.op {
                    ConstraintOp::Eq => a == b,
                    ConstraintOp::Ne => a != b,
                    ConstraintOp::Lt => a < b,
                    ConstraintOp::Le => a <= b,
                    ConstraintOp::Gt => a > b,
                    ConstraintOp::Ge => a >= b,
                };
                if holds {
                    joined.clone()
                } else {
                    self.mgr.zero()
                }
            }
        }
    }

    fn eval_rule(&self, plan: &RulePlan, srcs: &[Bdd], order: &[usize]) -> Bdd {
        let t0 = std::time::Instant::now();
        let result = self.eval_rule_inner(plan, srcs, order);
        {
            let mut prof = self.rule_profile.borrow_mut();
            if let Some(slot) = prof.get_mut(plan.rule_ix) {
                slot.0 += t0.elapsed();
                slot.1 += 1;
            }
        }
        result
    }

    fn eval_rule_inner(&self, plan: &RulePlan, srcs: &[Bdd], order: &[usize]) -> Bdd {
        let n = plan.positive.len();
        let mut joined;
        let mut bound: HashSet<&str> = HashSet::new();
        // The first atom's renames are held back and fused into its first
        // join when possible. In semi-naive rounds the first atom is the
        // delta — fresh every round, so unlike the stable later atoms its
        // rename can never be amortized by the replace cache, and folding
        // it into the join saves a full traversal per round.
        let mut pending: Option<&AtomPlan> = None;
        if n == 0 {
            joined = self.mgr.one();
        } else {
            let a0 = &plan.positive[order[0]];
            if self.options.fuse_renames && n > 1 && !a0.renames.is_empty() {
                joined = self.eval_atom_prerename(a0, &srcs[order[0]]);
                pending = Some(a0);
            } else {
                joined = self.eval_atom(a0, &srcs[order[0]]);
            }
            bound.extend(a0.vars.iter().map(String::as_str));
        }
        for k in 1..n {
            if joined.is_zero() {
                return joined;
            }
            let ai = order[k];
            let ap = &plan.positive[ai];
            // Quantify every variable that dies at this join — including
            // the join variables themselves when no later atom, no guard
            // and the head do not need them: keeping a join variable alive
            // one step longer inflates the intermediate (the classic
            // relprod win).
            let mut later: HashSet<&str> = HashSet::new();
            for &j in &order[k + 1..] {
                later.extend(plan.positive[j].vars.iter().map(String::as_str));
            }
            let needed = |v: &str| {
                plan.head_vars.contains(v) || plan.guard_vars.contains(v) || later.contains(v)
            };
            let mut quant: Vec<DomainId> = bound
                .iter()
                .copied()
                .chain(ap.vars.iter().map(String::as_str))
                .filter(|v| !needed(v))
                .collect::<HashSet<&str>>()
                .into_iter()
                .map(|v| plan.var_phys[v])
                .collect();
            // Canonical order: the set comes out of a HashSet, and the
            // client-cache key must not depend on iteration order.
            quant.sort_unstable();
            let atom_bdd = self.eval_atom(ap, &srcs[ai]);
            joined = self.join_step(&joined, &atom_bdd, pending.take(), &quant);
            bound.extend(plan.positive[ai].vars.iter().map(String::as_str));
            bound.retain(|v| needed(v));
        }
        if joined.is_zero() {
            return joined;
        }
        for c in &plan.constraints {
            joined = self.constraint_guard(&joined, c);
        }
        for neg in &plan.negative {
            let nb = self.eval_atom(neg, &self.rel[neg.rel].bdd);
            joined = joined.diff(&nb);
        }
        // Project remaining non-head variables.
        let extra: Vec<DomainId> = bound
            .iter()
            .filter(|v| !plan.head_vars.contains(**v))
            .map(|v| plan.var_phys[*v])
            .collect();
        if !extra.is_empty() {
            joined = joined.exist_domains(&extra);
        }
        for &(p, q) in &plan.head.eqs {
            joined = joined.and(&self.mgr.domain_eq(p, q));
        }
        for &(d, c) in &plan.head.consts {
            joined = joined.and(&self.mgr.domain_const(d, c));
        }
        joined
    }
}

/// Expands a logical-domain ordering string into groups of physical names.
fn expand_order(program: &Program, order: Option<&str>) -> Result<Vec<Vec<String>>, DatalogError> {
    let expand_logical = |d: usize| -> Vec<String> {
        let name = &program.domains[d].name;
        let mut v: Vec<String> = (0..program.instances[d])
            .map(|i| format!("{name}{i}"))
            .collect();
        v.push(format!("{name}__s"));
        v
    };
    let Some(order) = order else {
        return Ok((0..program.domains.len()).map(expand_logical).collect());
    };
    let spec = OrderSpec::parse(order)?;
    let mut groups = Vec::new();
    for group in spec.groups() {
        let mut members = Vec::new();
        for token in group {
            if let Some(&d) = program.domain_ix.get(token) {
                members.extend(expand_logical(d));
            } else {
                // Physical instance: logical name + index.
                let split = token
                    .char_indices()
                    .rev()
                    .take_while(|(_, c)| c.is_ascii_digit())
                    .map(|(i, _)| i)
                    .last();
                // The digit suffix is user input (`-o` / `.bddvarorder`):
                // a value that overflows usize is just an unknown domain,
                // not a panic.
                let (base, ix) = match split {
                    Some(i) if i > 0 => match token[i..].parse::<usize>() {
                        Ok(ix) => (&token[..i], ix),
                        Err(_) => return Err(DatalogError::UnknownDomain(token.clone())),
                    },
                    _ => return Err(DatalogError::UnknownDomain(token.clone())),
                };
                let &d = program
                    .domain_ix
                    .get(base)
                    .ok_or_else(|| DatalogError::UnknownDomain(token.clone()))?;
                if ix >= program.instances[d] {
                    return Err(DatalogError::UnknownDomain(token.clone()));
                }
                members.push(token.clone());
                if ix == 0 {
                    // The scratch instance rides with instance 0.
                    members.push(format!("{base}__s"));
                }
            }
        }
        groups.push(members);
    }
    Ok(groups)
}
