//! The BDD-backed Datalog solver.
//!
//! Mirrors the structure of the paper's `bddbddb` (Section 2.4): relations
//! live in BDDs over physical domains, each rule is applied as a sequence of
//! relational `join`/`project`/`rename` operations (BDD `relprod`, `exist`,
//! `replace`), rules are grouped by the predicate dependency graph and
//! solved stratum by stratum, and recursive components run a semi-naive
//! (*incrementalized*) fixpoint.

use crate::ast::RelationKind;
use crate::eval::RuleEval;
use crate::graph::scc_topo_order;
use crate::plan::{PlanContext, RulePlan};
use crate::program::Program;
use crate::relation::RelationState;
use crate::schedule;
use crate::DatalogError;
use std::collections::HashMap;
use std::time::Duration;
use whale_bdd::{Bdd, BddManager, BddManagerOptions, CacheStats, DomainId, DomainSpec, OrderSpec};

/// Tuning knobs for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Use semi-naive (incrementalized) evaluation for recursive components.
    /// Disable only for the ablation benchmark; naive evaluation computes
    /// the same fixpoint more slowly.
    pub seminaive: bool,
    /// Variable-ordering string over *logical* domain names (e.g.
    /// `"N_F_I_M_VxH"`), or physical instances (`"V1_V0"`). `None` lays the
    /// domains out in declaration order, instances interleaved.
    pub order: Option<String>,
    /// Fold each atom's attribute renames into the subsequent join as one
    /// fused `replace_relprod` kernel call when the rename is monotone
    /// (falling back to rename-then-join otherwise). Disable only for the
    /// ablation benchmark; the result is bit-identical either way.
    pub fuse_renames: bool,
    /// Run dynamic variable reordering (sifting) between fixpoint rounds
    /// once the node table outgrows an adaptive threshold. The fixpoint is
    /// unchanged — only BDD sizes move; reorder effort is reported in
    /// [`SolveStats::reorder_runs`], [`SolveStats::reorder_time`] and
    /// [`SolveStats::reorder_delta_nodes`].
    pub reorder: bool,
    /// Memoize whole relation-level operations (atom filters/renames and
    /// rename-join-project steps) in the kernel's GC-safe client cache,
    /// keyed by operand BDD roots plus an interned operation tag.
    /// Semi-naive rounds re-derive many joins whose operand relations did
    /// not change that round; this skips them outright. Hit counters are
    /// reported in [`SolveStats::rel_cache`]. Disable only for the
    /// ablation benchmark; results are bit-identical either way.
    pub rel_cache: bool,
    /// Pressure-adaptive sizing of the kernel's operation caches (see
    /// [`whale_bdd::BddManagerOptions`]). Disable only for the ablation
    /// benchmark; the legacy policy ties cache sizes to node-table growth
    /// and thrashes on this workload.
    pub adaptive_caches: bool,
    /// Worker threads for the parallel solver. `1` (the default) runs the
    /// sequential path unchanged; `N > 1` walks the SCC condensation with
    /// a pool of `N` workers, each owning a private BDD manager — ready
    /// strata run concurrently and a recursive stratum's per-round rule
    /// variants fan out across the pool. Results are identical for every
    /// value (contributions are OR-combined, which commutes, and BDDs are
    /// canonical); speedup is bounded by the condensation's critical path,
    /// observable via [`SolveStats::critical_path_time`].
    pub jobs: usize,
}

/// Reordering never fires below this live-node count: tiny tables gain
/// nothing and the pass would only churn the operation caches.
pub(crate) const REORDER_MIN_NODES: usize = 2048;

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            seminaive: true,
            order: None,
            fuse_renames: true,
            reorder: false,
            rel_cache: true,
            adaptive_caches: true,
            jobs: 1,
        }
    }
}

/// Statistics from a [`Engine::solve`] run.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Number of strata (condensation components) evaluated.
    pub strata: usize,
    /// Total fixpoint rounds across all recursive components.
    pub rounds: usize,
    /// Total rule (variant) applications.
    pub rule_applications: usize,
    /// Peak live BDD nodes observed.
    pub peak_live_nodes: usize,
    /// Dynamic reordering passes run during this solve (see
    /// [`EngineOptions::reorder`]).
    pub reorder_runs: usize,
    /// Wall-clock time spent in those reordering passes.
    pub reorder_time: std::time::Duration,
    /// Net live nodes eliminated by those passes (positive means the
    /// table shrank).
    pub reorder_delta_nodes: i64,
    /// Binary-apply cache activity during this solve (deltas, not
    /// lifetime totals — a second solve starts from zero again).
    pub apply_cache: CacheStats,
    /// If-then-else cache activity during this solve.
    pub ite_cache: CacheStats,
    /// Exist/relprod/fused-kernel cache activity during this solve — the
    /// hot path of Algorithm 5's joins.
    pub appex_cache: CacheStats,
    /// Replace cache activity during this solve.
    pub replace_cache: CacheStats,
    /// Relation-level operation cache activity during this solve (see
    /// [`EngineOptions::rel_cache`]); every hit skipped an entire
    /// atom-eval or rename-join-project step.
    pub rel_cache: CacheStats,
    /// Wall-clock time spent solving each stratum, indexed like the
    /// condensation's topological order ([`SolveStats::strata`] entries;
    /// strata with no rules record ~zero). Under the parallel solver a
    /// stratum's clock runs from dispatch to rendezvous, so concurrent
    /// strata overlap and the sum can exceed the solve's wall time.
    pub stratum_times: Vec<Duration>,
    /// Length of the weighted critical path through the stratum dependency
    /// DAG — the Amdahl floor no worker count can beat. The gap between
    /// this and the stratum-time sum is the available DAG-level
    /// parallelism.
    pub critical_path_time: Duration,
    /// Total BDD nodes shipped between managers (worker deliveries plus
    /// results shipped back). Zero when `jobs` ≤ 1.
    pub transferred_nodes: u64,
}

/// Counter deltas `now - base`, pairing two snapshots of one cache.
pub(crate) fn cache_delta(now: CacheStats, base: CacheStats) -> CacheStats {
    CacheStats {
        hits: now.hits - base.hits,
        misses: now.misses - base.misses,
        evictions: now.evictions - base.evictions,
    }
}

/// Counter sum, for folding worker-manager cache activity into the solve's
/// totals.
pub(crate) fn cache_add(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        evictions: a.evictions + b.evictions,
    }
}

/// A Datalog program loaded into a BDD manager and ready to solve.
///
/// See the crate-level example for end-to-end use.
pub struct Engine {
    pub(crate) program: Program,
    pub(crate) options: EngineOptions,
    pub(crate) mgr: BddManager,
    /// Physical instances per logical domain (scratch excluded).
    phys: Vec<Vec<DomainId>>,
    pub(crate) rel: Vec<RelationState>,
    name_maps: HashMap<usize, HashMap<String, u64>>,
    name_lists: HashMap<usize, Vec<String>>,
    /// Construction-time ordering groups as the user's tokens (logical or
    /// physical names) and as expanded physical names, index-parallel.
    /// [`Engine::current_order`] renders the sifted group permutation.
    order_tokens: Vec<Vec<String>>,
    order_phys: Vec<Vec<String>>,
    /// Construction inputs retained so the parallel scheduler can build
    /// worker managers with the identical domain layout (same specs, same
    /// order ⇒ same variable numbering ⇒ snapshots transfer one-to-one).
    pub(crate) specs: Vec<DomainSpec>,
    pub(crate) order_spec: OrderSpec,
    pub(crate) bdd_opts: BddManagerOptions,
    stats: SolveStats,
    /// Rule evaluation against the engine's own manager (the sequential
    /// path; workers build their own — see [`crate::schedule`]).
    pub(crate) eval: RuleEval,
    /// Per-rule cumulative (time, applications), rebuilt by each solve.
    pub(crate) rule_profile: std::cell::RefCell<Vec<(std::time::Duration, usize)>>,
}

impl Engine {
    /// Builds an engine with default options.
    ///
    /// # Errors
    ///
    /// Propagates BDD-layer errors (e.g. a malformed ordering).
    pub fn new(program: Program) -> Result<Self, DatalogError> {
        Self::with_options(program, EngineOptions::default())
    }

    /// Builds an engine with explicit options.
    ///
    /// # Errors
    ///
    /// [`DatalogError::Bdd`] if the ordering string references unknown
    /// domains or omits declared ones.
    pub fn with_options(program: Program, options: EngineOptions) -> Result<Self, DatalogError> {
        // Physical domain specs: N instances plus one scratch per logical
        // domain, all of the logical domain's size.
        let mut specs = Vec::new();
        for (d, decl) in program.domains.iter().enumerate() {
            for i in 0..program.instances[d] {
                specs.push(DomainSpec::new(format!("{}{}", decl.name, i), decl.size));
            }
            specs.push(DomainSpec::new(format!("{}__s", decl.name), decl.size));
        }
        let order_tokens: Vec<Vec<String>> = match options.order.as_deref() {
            None => program
                .domains
                .iter()
                .map(|d| vec![d.name.clone()])
                .collect(),
            Some(o) => OrderSpec::parse(o)?.groups().to_vec(),
        };
        let groups = expand_order(&program, options.order.as_deref())?;
        let order_phys = groups.clone();
        let order = OrderSpec::from_groups(groups);
        // Analyses routinely reach hundreds of thousands of live nodes;
        // starting large avoids early grow-and-collect cycles that clear
        // the operation caches mid-fixpoint.
        let bdd_opts = BddManagerOptions {
            initial_capacity: 1 << 20,
            adaptive_caches: options.adaptive_caches,
            ..BddManagerOptions::default()
        };
        let mgr = BddManager::with_domains_and_options(&specs, &order, &bdd_opts)?;

        let mut phys = Vec::with_capacity(program.domains.len());
        let mut scratch_map = HashMap::new();
        for (d, decl) in program.domains.iter().enumerate() {
            let scratch = mgr
                .domain(&format!("{}__s", decl.name))
                .expect("scratch domain declared");
            let mut instances = Vec::new();
            for i in 0..program.instances[d] {
                let id = mgr
                    .domain(&format!("{}{}", decl.name, i))
                    .expect("instance declared");
                instances.push(id);
                scratch_map.insert(id, scratch);
            }
            phys.push(instances);
        }

        // Attribute physicals: occurrence index among same-domain attrs.
        let mut rel = Vec::with_capacity(program.relations.len());
        for decl in &program.relations {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            let mut attr_phys = Vec::with_capacity(decl.attrs.len());
            for (_, dom_name) in &decl.attrs {
                let dom = program.domain_ix[dom_name];
                let ix = counts.entry(dom).or_insert(0);
                attr_phys.push(phys[dom][*ix]);
                *ix += 1;
            }
            rel.push(RelationState {
                attr_phys,
                bdd: mgr.zero(),
            });
        }

        let eval = RuleEval::new(
            mgr.clone(),
            scratch_map,
            options.fuse_renames,
            options.rel_cache,
        );
        Ok(Engine {
            program,
            options,
            mgr,
            phys,
            rel,
            name_maps: HashMap::new(),
            name_lists: HashMap::new(),
            order_tokens,
            order_phys,
            specs,
            order_spec: order,
            bdd_opts,
            stats: SolveStats::default(),
            eval,
            rule_profile: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// The underlying BDD manager (for building relation BDDs directly).
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// The program being solved.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Statistics from the last [`Engine::solve`].
    pub fn stats(&self) -> SolveStats {
        self.stats.clone()
    }

    /// The variable ordering as it stands now, rendered in the same
    /// group syntax [`EngineOptions::order`] accepts (tokens of a group
    /// joined by `x`, groups by `_`). With reordering off this is the
    /// construction-time ordering; after sifting passes it reflects the
    /// group permutation they settled on, so it can seed a subsequent
    /// empirical ordering search.
    pub fn current_order(&self) -> String {
        let mut keyed: Vec<(u32, String)> = self
            .order_tokens
            .iter()
            .zip(&self.order_phys)
            .map(|(tokens, phys)| {
                let top = phys
                    .iter()
                    .filter_map(|name| self.mgr.domain(name))
                    .flat_map(|d| self.mgr.domain_levels(d))
                    .map(|v| self.mgr.level_of_var(v))
                    .min()
                    .unwrap_or(u32::MAX);
                (top, tokens.join("x"))
            })
            .collect();
        keyed.sort();
        let groups: Vec<String> = keyed.into_iter().map(|(_, g)| g).collect();
        groups.join("_")
    }

    fn rel_ix(&self, name: &str) -> Result<usize, DatalogError> {
        self.program
            .relation_ix
            .get(name)
            .copied()
            .ok_or_else(|| DatalogError::UnknownRelation(name.to_string()))
    }

    /// The physical domain of each attribute of `name`, in attribute order.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_signature(&self, name: &str) -> Result<Vec<DomainId>, DatalogError> {
        Ok(self.rel[self.rel_ix(name)?].attr_phys.clone())
    }

    /// Registers a name map for a domain so quoted constants (and
    /// [`Engine::name_of`]) resolve.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownDomain`].
    pub fn set_name_map<S: AsRef<str>>(
        &mut self,
        domain: &str,
        names: &[S],
    ) -> Result<(), DatalogError> {
        let d = *self
            .program
            .domain_ix
            .get(domain)
            .ok_or_else(|| DatalogError::UnknownDomain(domain.to_string()))?;
        let map = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_ref().to_string(), i as u64))
            .collect();
        self.name_maps.insert(d, map);
        self.name_lists
            .insert(d, names.iter().map(|n| n.as_ref().to_string()).collect());
        Ok(())
    }

    /// The name of `value` in `domain`'s name map, if registered.
    pub fn name_of(&self, domain: &str, value: u64) -> Option<&str> {
        let d = *self.program.domain_ix.get(domain)?;
        self.name_lists
            .get(&d)?
            .get(value as usize)
            .map(String::as_str)
    }

    fn minterm(&self, rel_ix: usize, tuple: &[u64]) -> Result<Bdd, DatalogError> {
        let decl = &self.program.relations[rel_ix];
        if tuple.len() != decl.attrs.len() {
            return Err(DatalogError::BadFact(format!(
                "relation `{}` expects {} values, got {}",
                decl.name,
                decl.attrs.len(),
                tuple.len()
            )));
        }
        let mut b = self.mgr.one();
        for (i, &v) in tuple.iter().enumerate() {
            let dom = self.program.domain_ix[&decl.attrs[i].1];
            if v >= self.program.domains[dom].size {
                return Err(DatalogError::ConstantOutOfRange {
                    domain: decl.attrs[i].1.clone(),
                    value: v,
                });
            }
            b = b.and(&self.mgr.domain_const(self.rel[rel_ix].attr_phys[i], v));
        }
        Ok(b)
    }

    /// Adds one tuple to an `input` relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::BadFact`] for non-input relations or arity mismatch;
    /// [`DatalogError::ConstantOutOfRange`] for out-of-domain values.
    pub fn add_fact(&mut self, name: &str, tuple: &[u64]) -> Result<(), DatalogError> {
        let ix = self.rel_ix(name)?;
        if self.program.relations[ix].kind != RelationKind::Input {
            return Err(DatalogError::BadFact(format!(
                "relation `{name}` is not an input relation"
            )));
        }
        let m = self.minterm(ix, tuple)?;
        self.rel[ix].bdd = self.rel[ix].bdd.or(&m);
        Ok(())
    }

    /// Adds many tuples to an `input` relation.
    ///
    /// # Example
    ///
    /// ```
    /// # use whale_datalog::{Engine, Program};
    /// # fn main() -> Result<(), whale_datalog::DatalogError> {
    /// # let program = Program::parse(
    /// #     "DOMAINS\nV 8\nRELATIONS\ninput e (s : V, d : V)\noutput t (s : V, d : V)\nRULES\nt(x,y) :- e(x,y).")?;
    /// let mut engine = Engine::new(program)?;
    /// engine.add_facts("e", [[0u64, 1], [1, 2], [2, 3]])?;
    /// engine.solve()?;
    /// assert_eq!(engine.relation_count("t")? as u64, 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Engine::add_fact`]; tuples before the failing one remain added.
    pub fn add_facts<I, T>(&mut self, name: &str, tuples: I) -> Result<(), DatalogError>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u64]>,
    {
        // Balanced OR reduction keeps intermediate BDDs small when loading
        // large fact sets.
        let ix = self.rel_ix(name)?;
        if self.program.relations[ix].kind != RelationKind::Input {
            return Err(DatalogError::BadFact(format!(
                "relation `{name}` is not an input relation"
            )));
        }
        let mut layer: Vec<Bdd> = Vec::new();
        for t in tuples {
            layer.push(self.minterm(ix, t.as_ref())?);
        }
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        c[0].or(&c[1])
                    } else {
                        c[0].clone()
                    }
                })
                .collect();
        }
        if let Some(b) = layer.pop() {
            self.rel[ix].bdd = self.rel[ix].bdd.or(&b);
        }
        Ok(())
    }

    /// Replaces a relation's contents with a directly constructed BDD.
    ///
    /// The BDD must be built with this engine's [`Engine::manager`] over the
    /// physical domains of [`Engine::relation_signature`]. Used to inject
    /// relations computed outside Datalog, such as the context-sensitive
    /// invocation edges `IEC` produced by the paper's Algorithm 4.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn set_relation_bdd(&mut self, name: &str, bdd: Bdd) -> Result<(), DatalogError> {
        let ix = self.rel_ix(name)?;
        self.rel[ix].bdd = bdd;
        Ok(())
    }

    /// The current BDD of a relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_bdd(&self, name: &str) -> Result<Bdd, DatalogError> {
        Ok(self.rel[self.rel_ix(name)?].bdd.clone())
    }

    /// Number of tuples currently in a relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_count(&self, name: &str) -> Result<f64, DatalogError> {
        let ix = self.rel_ix(name)?;
        Ok(self.rel[ix].bdd.satcount_domains(&self.rel[ix].attr_phys))
    }

    /// Exact tuple count (u128, saturating) — immune to the
    /// floating-point rounding of [`Engine::relation_count`] at the huge
    /// counts context-sensitive analyses produce.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_count_exact(&self, name: &str) -> Result<u128, DatalogError> {
        let ix = self.rel_ix(name)?;
        Ok(self.rel[ix]
            .bdd
            .satcount_domains_exact(&self.rel[ix].attr_phys))
    }

    /// All tuples of a relation, decoded (attribute order).
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn relation_tuples(&self, name: &str) -> Result<Vec<Vec<u64>>, DatalogError> {
        let ix = self.rel_ix(name)?;
        let doms = self.rel[ix].attr_phys.clone();
        Ok(self.rel[ix].bdd.tuples(&doms))
    }

    /// Tuples of a relation matching a partial binding, decoded.
    ///
    /// `fixed` pins attribute positions (0-based, attribute order) to
    /// constants; every tuple whose pinned attributes match is returned in
    /// full. With an empty `fixed` this is [`Engine::relation_tuples`].
    /// The selection happens symbolically — the constants are conjoined
    /// onto the relation BDD before decoding — so the cost tracks the size
    /// of the *answer*, not of the whole relation. Witness reconstruction
    /// (whale-core's taint engine) uses this to walk per-step flow
    /// relations backwards one endpoint at a time.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`]; [`DatalogError::BadFact`] for an
    /// attribute index at or past the relation's arity;
    /// [`DatalogError::ConstantOutOfRange`] for a value outside the pinned
    /// attribute's domain.
    pub fn relation_select(
        &self,
        name: &str,
        fixed: &[(usize, u64)],
    ) -> Result<Vec<Vec<u64>>, DatalogError> {
        let ix = self.rel_ix(name)?;
        let decl = &self.program.relations[ix];
        let mut b = self.rel[ix].bdd.clone();
        for &(attr, v) in fixed {
            if attr >= decl.attrs.len() {
                return Err(DatalogError::BadFact(format!(
                    "relation `{}` has arity {}, no attribute {}",
                    decl.name,
                    decl.attrs.len(),
                    attr
                )));
            }
            let dom = self.program.domain_ix[&decl.attrs[attr].1];
            if v >= self.program.domains[dom].size {
                return Err(DatalogError::ConstantOutOfRange {
                    domain: decl.attrs[attr].1.clone(),
                    value: v,
                });
            }
            b = b.and(&self.mgr.domain_const(self.rel[ix].attr_phys[attr], v));
        }
        Ok(b.tuples(&self.rel[ix].attr_phys))
    }

    /// Whether a relation currently contains `tuple`.
    ///
    /// # Errors
    ///
    /// As [`Engine::add_fact`] minus the input-kind restriction.
    pub fn relation_contains(&self, name: &str, tuple: &[u64]) -> Result<bool, DatalogError> {
        let ix = self.rel_ix(name)?;
        let m = self.minterm(ix, tuple)?;
        Ok(!self.rel[ix].bdd.and(&m).is_zero())
    }

    // ------------------------------------------------------------------
    // Solving
    // ------------------------------------------------------------------

    /// Runs the program to its (stratified) fixpoint.
    ///
    /// Solving is idempotent: a second call recomputes the same fixpoint.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratified`] for negation through recursion;
    /// [`DatalogError::UnresolvedName`] for unresolvable quoted constants.
    pub fn solve(&mut self) -> Result<SolveStats, DatalogError> {
        // Peak-node reporting is per solve, not per engine lifetime: a
        // second solve must not inherit the first one's high-water mark,
        // nor count garbage left behind by earlier solves or by BDDs the
        // caller built and dropped (dead nodes linger until a sweep).
        self.mgr.gc();
        self.mgr.reset_peak();
        // Per-solve cache reporting: deltas against this snapshot.
        let cache_base = self.mgr.stats();
        let plans: Vec<RulePlan> = {
            let ctx = PlanContext {
                program: &self.program,
                phys: &self.phys,
                rel_attr_phys: &self
                    .rel
                    .iter()
                    .map(|r| r.attr_phys.clone())
                    .collect::<Vec<_>>(),
                name_maps: &self.name_maps,
            };
            (0..self.program.rules.len())
                .map(|i| ctx.build(i))
                .collect::<Result<_, _>>()?
        };

        // Predicate dependency graph.
        let nrel = self.program.relations.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nrel];
        for plan in &plans {
            for atom in plan.positive.iter().chain(&plan.negative) {
                adj[atom.rel].push(plan.head.rel);
            }
        }
        let (comp_of, comps) = scc_topo_order(&adj);

        // Stratification check. Plans are built per rule index, so plan i
        // describes rules[i] and its source text/line can name the
        // offending negation.
        for (i, plan) in plans.iter().enumerate() {
            for neg in &plan.negative {
                if comp_of[neg.rel] == comp_of[plan.head.rel] {
                    let rule = &self.program.rules[i];
                    return Err(DatalogError::NotStratified {
                        relation: self.program.relations[neg.rel].name.clone(),
                        rule: rule.to_string(),
                        line: rule.line,
                    });
                }
            }
        }

        let mut stats = SolveStats {
            strata: comps.len(),
            ..Default::default()
        };
        *self.rule_profile.borrow_mut() =
            vec![(std::time::Duration::ZERO, 0usize); self.program.rules.len()];
        if self.options.jobs > 1 {
            schedule::solve_parallel(self, &plans, &comp_of, &comps, &mut stats)?;
        } else {
            self.solve_sequential(&plans, &comp_of, &comps, &mut stats);
        }
        stats.critical_path_time = schedule::critical_path(
            &stats.stratum_times,
            &schedule::comp_preds(&plans, &comp_of, comps.len()),
        );
        let bdd_stats = self.mgr.stats();
        stats.peak_live_nodes = stats.peak_live_nodes.max(bdd_stats.peak_live_nodes);
        // The main manager's deltas; worker-manager activity (parallel path)
        // is already accumulated in `stats` by the scheduler.
        stats.apply_cache = cache_add(
            stats.apply_cache,
            cache_delta(bdd_stats.apply_cache, cache_base.apply_cache),
        );
        stats.ite_cache = cache_add(
            stats.ite_cache,
            cache_delta(bdd_stats.ite_cache, cache_base.ite_cache),
        );
        stats.appex_cache = cache_add(
            stats.appex_cache,
            cache_delta(bdd_stats.appex_cache, cache_base.appex_cache),
        );
        stats.replace_cache = cache_add(
            stats.replace_cache,
            cache_delta(bdd_stats.replace_cache, cache_base.replace_cache),
        );
        stats.rel_cache = cache_add(
            stats.rel_cache,
            cache_delta(bdd_stats.client_cache, cache_base.client_cache),
        );
        if std::env::var_os("WHALE_RULE_TIMING").is_some() {
            let prof = self.rule_profile.borrow();
            let mut rows: Vec<(usize, std::time::Duration, usize)> = prof
                .iter()
                .enumerate()
                .map(|(i, &(d, n))| (i, d, n))
                .collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1));
            eprintln!("-- rule timing (cumulative) --");
            for (i, d, n) in rows.iter().take(12) {
                eprintln!("  {d:>10.2?} x{n:<5} {}", self.program.rules[*i]);
            }
        }
        self.stats = stats.clone();
        Ok(stats)
    }

    /// The sequential solve loop — exactly the pre-parallel engine, plus
    /// per-stratum wall-clock capture (strata with no rules record their
    /// ~zero bookkeeping time so `stratum_times` stays index-parallel with
    /// the condensation).
    fn solve_sequential(
        &mut self,
        plans: &[RulePlan],
        comp_of: &[usize],
        comps: &[Vec<usize>],
        stats: &mut SolveStats,
    ) {
        let mut reorder_at = REORDER_MIN_NODES;
        for (c, comp) in comps.iter().enumerate() {
            let t0 = std::time::Instant::now();
            let comp_plans: Vec<&RulePlan> =
                plans.iter().filter(|p| comp_of[p.head.rel] == c).collect();
            if comp_plans.is_empty() {
                stats.stratum_times.push(t0.elapsed());
                continue;
            }
            let is_recursive = |p: &RulePlan| p.positive.iter().any(|a| comp_of[a.rel] == c);
            // Non-recursive rules first, once.
            for plan in comp_plans.iter().filter(|p| !is_recursive(p)) {
                let srcs: Vec<Bdd> = plan
                    .positive
                    .iter()
                    .map(|a| self.rel[a.rel].bdd.clone())
                    .collect();
                let order = if plan.positive.is_empty() {
                    Vec::new()
                } else {
                    RuleEval::join_order(plan, 0)
                };
                let contrib = self.eval_rule(plan, &srcs, &order);
                stats.rule_applications += 1;
                let head = plan.head.rel;
                self.rel[head].bdd = self.rel[head].bdd.or(&contrib);
            }
            let rec_plans: Vec<&RulePlan> = comp_plans
                .iter()
                .filter(|p| is_recursive(p))
                .copied()
                .collect();
            if !rec_plans.is_empty() {
                if self.options.seminaive {
                    self.seminaive_fixpoint(c, comp_of, comp, &rec_plans, stats, &mut reorder_at);
                } else {
                    self.naive_fixpoint(c, comp_of, comp, &rec_plans, stats, &mut reorder_at);
                }
            }
            stats.stratum_times.push(t0.elapsed());
        }
    }

    /// Runs one sifting pass if reordering is enabled and the table has
    /// outgrown the adaptive threshold. Called between fixpoint rounds,
    /// where no kernel operation is in flight (live handles — relation and
    /// delta BDDs — stay valid; the pass rewrites nodes in place). After a
    /// pass the threshold doubles over the sifted size so a table that has
    /// settled stops paying for reordering.
    pub(crate) fn maybe_reorder(&self, stats: &mut SolveStats, reorder_at: &mut usize) {
        if !self.options.reorder || self.mgr.stats().live_nodes < *reorder_at {
            return;
        }
        let t0 = std::time::Instant::now();
        let rs = self.mgr.reorder_sift();
        stats.reorder_runs += 1;
        stats.reorder_time += t0.elapsed();
        stats.reorder_delta_nodes += rs.delta_nodes();
        *reorder_at = (rs.nodes_after * 2).max(REORDER_MIN_NODES);
    }

    fn seminaive_fixpoint(
        &mut self,
        c: usize,
        comp_of: &[usize],
        comp: &[usize],
        rec_plans: &[&RulePlan],
        stats: &mut SolveStats,
        reorder_at: &mut usize,
    ) {
        let mut delta: HashMap<usize, Bdd> =
            comp.iter().map(|&r| (r, self.rel[r].bdd.clone())).collect();
        loop {
            stats.rounds += 1;
            let mut acc: HashMap<usize, Bdd> = comp.iter().map(|&r| (r, self.mgr.zero())).collect();
            for plan in rec_plans {
                for occ in 0..plan.positive.len() {
                    let rel_r = plan.positive[occ].rel;
                    if comp_of[rel_r] != c {
                        continue;
                    }
                    if delta[&rel_r].is_zero() {
                        continue;
                    }
                    let srcs: Vec<Bdd> = plan
                        .positive
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == occ {
                                delta[&rel_r].clone()
                            } else {
                                self.rel[a.rel].bdd.clone()
                            }
                        })
                        .collect();
                    // The delta joins first; the rest follow greedily.
                    let order = RuleEval::join_order(plan, occ);
                    let contrib = self.eval_rule(plan, &srcs, &order);
                    stats.rule_applications += 1;
                    let head = plan.head.rel;
                    if let Some(a) = acc.get_mut(&head) {
                        *a = a.or(&contrib);
                    }
                }
            }
            let mut changed = false;
            for &r in comp {
                let fresh = acc[&r].diff(&self.rel[r].bdd);
                if !fresh.is_zero() {
                    self.rel[r].bdd = self.rel[r].bdd.or(&fresh);
                    changed = true;
                }
                delta.insert(r, fresh);
            }
            if !changed {
                return;
            }
            self.maybe_reorder(stats, reorder_at);
        }
    }

    fn naive_fixpoint(
        &mut self,
        _c: usize,
        _comp_of: &[usize],
        comp: &[usize],
        rec_plans: &[&RulePlan],
        stats: &mut SolveStats,
        reorder_at: &mut usize,
    ) {
        loop {
            stats.rounds += 1;
            let mut changed = false;
            let mut acc: HashMap<usize, Bdd> = comp.iter().map(|&r| (r, self.mgr.zero())).collect();
            for plan in rec_plans {
                let srcs: Vec<Bdd> = plan
                    .positive
                    .iter()
                    .map(|a| self.rel[a.rel].bdd.clone())
                    .collect();
                let order = if plan.positive.is_empty() {
                    Vec::new()
                } else {
                    RuleEval::join_order(plan, 0)
                };
                let contrib = self.eval_rule(plan, &srcs, &order);
                stats.rule_applications += 1;
                let head = plan.head.rel;
                if let Some(a) = acc.get_mut(&head) {
                    *a = a.or(&contrib);
                }
            }
            for &r in comp {
                let fresh = acc[&r].diff(&self.rel[r].bdd);
                if !fresh.is_zero() {
                    self.rel[r].bdd = self.rel[r].bdd.or(&fresh);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
            self.maybe_reorder(stats, reorder_at);
        }
    }

    /// Applies one rule plan against the engine's own relation table
    /// (negative-atom sources come from `self.rel`) with per-rule
    /// profiling. Workers bypass this wrapper and call
    /// [`RuleEval::eval_rule`] with mirrored sources directly.
    pub(crate) fn eval_rule(&self, plan: &RulePlan, srcs: &[Bdd], order: &[usize]) -> Bdd {
        let neg_srcs: Vec<Bdd> = plan
            .negative
            .iter()
            .map(|a| self.rel[a.rel].bdd.clone())
            .collect();
        let t0 = std::time::Instant::now();
        let result = self.eval.eval_rule(plan, srcs, &neg_srcs, order);
        {
            let mut prof = self.rule_profile.borrow_mut();
            if let Some(slot) = prof.get_mut(plan.rule_ix) {
                slot.0 += t0.elapsed();
                slot.1 += 1;
            }
        }
        result
    }
}

/// Expands a logical-domain ordering string into groups of physical names.
fn expand_order(program: &Program, order: Option<&str>) -> Result<Vec<Vec<String>>, DatalogError> {
    let expand_logical = |d: usize| -> Vec<String> {
        let name = &program.domains[d].name;
        let mut v: Vec<String> = (0..program.instances[d])
            .map(|i| format!("{name}{i}"))
            .collect();
        v.push(format!("{name}__s"));
        v
    };
    let Some(order) = order else {
        return Ok((0..program.domains.len()).map(expand_logical).collect());
    };
    let spec = OrderSpec::parse(order)?;
    let mut groups = Vec::new();
    for group in spec.groups() {
        let mut members = Vec::new();
        for token in group {
            if let Some(&d) = program.domain_ix.get(token) {
                members.extend(expand_logical(d));
            } else {
                // Physical instance: logical name + index.
                let split = token
                    .char_indices()
                    .rev()
                    .take_while(|(_, c)| c.is_ascii_digit())
                    .map(|(i, _)| i)
                    .last();
                // The digit suffix is user input (`-o` / `.bddvarorder`):
                // a value that overflows usize is just an unknown domain,
                // not a panic.
                let (base, ix) = match split {
                    Some(i) if i > 0 => match token[i..].parse::<usize>() {
                        Ok(ix) => (&token[..i], ix),
                        Err(_) => return Err(DatalogError::UnknownDomain(token.clone())),
                    },
                    _ => return Err(DatalogError::UnknownDomain(token.clone())),
                };
                let &d = program
                    .domain_ix
                    .get(base)
                    .ok_or_else(|| DatalogError::UnknownDomain(token.clone()))?;
                if ix >= program.instances[d] {
                    return Err(DatalogError::UnknownDomain(token.clone()));
                }
                members.push(token.clone());
                if ix == 0 {
                    // The scratch instance rides with instance 0.
                    members.push(format!("{base}__s"));
                }
            }
        }
        groups.push(members);
    }
    Ok(groups)
}
