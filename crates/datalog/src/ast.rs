//! Abstract syntax of the Datalog dialect used by the paper.

use std::fmt;

/// A domain declaration: `V 262144 variable.map`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDecl {
    /// Domain name (e.g. `V`, `H`).
    pub name: String,
    /// Number of elements.
    pub size: u64,
    /// Optional element-name map file (informational; name maps are
    /// registered programmatically on the engine).
    pub map_file: Option<String>,
}

/// Whether a relation is externally supplied, produced, or internal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationKind {
    /// Loaded from facts before solving.
    Input,
    /// Computed and read back after solving.
    Output,
    /// Computed but not an advertised output.
    Intermediate,
}

/// A relation declaration: `input vP0 (variable : V, heap : H)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDecl {
    /// Relation name.
    pub name: String,
    /// Input/output/intermediate.
    pub kind: RelationKind,
    /// Attribute `(name, domain)` pairs, in order.
    pub attrs: Vec<(String, String)>,
}

/// A term in an atom argument position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A rule variable.
    Var(String),
    /// The don't-care `_`.
    Wildcard,
    /// A numeric constant.
    Const(u64),
    /// A quoted constant, resolved against the domain's name map.
    Str(String),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Wildcard => write!(f, "_"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

/// A predicate application: `vP(v1, h)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms, one per attribute.
    pub args: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operator in a constraint literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A body literal: a (possibly negated) atom, or a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// `A(x, y)` or `!A(x, y)`.
    Atom {
        /// The predicate application.
        atom: Atom,
        /// True for `!A(...)` (an *inverted* predicate in the paper's
        /// terms).
        negated: bool,
    },
    /// `x != y`, `x = y`, `x != "c"`, ...
    Constraint {
        /// Left operand.
        left: Term,
        /// The operator.
        op: ConstraintOp,
        /// Right operand.
        right: Term,
    },
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom { atom, negated } => {
                if *negated {
                    write!(f, "!")?;
                }
                write!(f, "{atom}")
            }
            Literal::Constraint { left, op, right } => {
                let op = match op {
                    ConstraintOp::Eq => "=",
                    ConstraintOp::Ne => "!=",
                    ConstraintOp::Lt => "<",
                    ConstraintOp::Le => "<=",
                    ConstraintOp::Gt => ">",
                    ConstraintOp::Ge => ">=",
                };
                write!(f, "{left} {op} {right}")
            }
        }
    }
}

/// A Datalog rule `head :- body.` (or a fact rule with an empty body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Literal>,
    /// 1-based source line of the rule head (0 for rules built
    /// programmatically).
    pub line: usize,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}
