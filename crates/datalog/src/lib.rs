//! A Datalog-to-BDD deductive database: a reproduction of `bddbddb`
//! (Whaley, Unkel & Lam), the engine behind the PLDI 2004 paper
//! *Cloning-Based Context-Sensitive Pointer Alias Analysis Using Binary
//! Decision Diagrams*.
//!
//! Programs are written in the paper's Datalog dialect — a `DOMAINS`
//! section, a `RELATIONS` section and a `RULES` section — and solved over
//! BDD-represented relations:
//!
//! ```
//! use whale_datalog::{Engine, Program};
//!
//! # fn main() -> Result<(), whale_datalog::DatalogError> {
//! let program = Program::parse(r#"
//! DOMAINS
//! V 16
//!
//! RELATIONS
//! input edge (src : V, dst : V)
//! output path (src : V, dst : V)
//!
//! RULES
//! path(x,y) :- edge(x,y).
//! path(x,z) :- path(x,y), edge(y,z).
//! "#)?;
//! let mut engine = Engine::new(program)?;
//! engine.add_fact("edge", &[0, 1])?;
//! engine.add_fact("edge", &[1, 2])?;
//! engine.add_fact("edge", &[2, 3])?;
//! engine.solve()?;
//! assert_eq!(engine.relation_count("path")? as u64, 6);
//! # Ok(())
//! # }
//! ```
//!
//! The solver implements the optimizations Section 2.4 of the paper
//! describes: attribute (physical-domain) assignment that minimizes
//! renames, rule-application ordering from the rule dependency graph,
//! and *incrementalization* (semi-naive fixpoint evaluation). The naive
//! mode is kept for ablation benchmarks.

mod ast;
mod engine;
mod error;
mod eval;
pub mod graph;
mod lexer;
mod parser;
mod plan;
mod program;
mod relation;
mod schedule;

pub use ast::{Atom, ConstraintOp, DomainDecl, Literal, RelationDecl, RelationKind, Rule, Term};
pub use engine::{Engine, EngineOptions, SolveStats};
pub use error::DatalogError;
pub use program::Program;
