//! Rule compilation: from validated AST rules to evaluation plans over
//! physical BDD domains.
//!
//! This performs the paper's "attributes naming" optimization (Section
//! 2.4.1): rule variables are pinned to physical domains so that the head
//! needs no final rename, and body renames are minimized.

use crate::ast::*;
use crate::program::Program;
use crate::DatalogError;
use std::collections::{HashMap, HashSet};
use whale_bdd::DomainId;

/// One side of a compiled constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    /// A rule variable pinned to this physical domain.
    Phys(DomainId),
    /// A constant value.
    Value(u64),
}

/// A compiled constraint literal.
#[derive(Debug, Clone)]
pub(crate) struct ConstraintPlan {
    pub left: Operand,
    pub op: ConstraintOp,
    pub right: Operand,
}

/// A compiled (positive or negative) body atom.
#[derive(Debug, Clone)]
pub(crate) struct AtomPlan {
    /// Relation index in the program.
    pub rel: usize,
    /// Constant selections: conjoin `attr == value`.
    pub consts: Vec<(DomainId, u64)>,
    /// Same-variable duplicate attributes: conjoin equality.
    pub eqs: Vec<(DomainId, DomainId)>,
    /// Attributes to project away (wildcards, constants, duplicates).
    pub project: Vec<DomainId>,
    /// Renames from attribute physical domains to variable targets.
    pub renames: Vec<(DomainId, DomainId)>,
    /// Physical domains occupied after projection (for the rename engine).
    pub occupied: Vec<DomainId>,
    /// Distinct variables bound (positive) or constrained (negative).
    pub vars: Vec<String>,
}

/// Compiled head: the body result already sits on the head physicals.
#[derive(Debug, Clone)]
pub(crate) struct HeadPlan {
    pub rel: usize,
    /// Duplicate head variables: conjoin equality to fan the value out.
    pub eqs: Vec<(DomainId, DomainId)>,
    /// Constant head attributes.
    pub consts: Vec<(DomainId, u64)>,
}

/// A fully compiled rule.
#[derive(Debug, Clone)]
pub(crate) struct RulePlan {
    /// Index of the source rule (profiling, diagnostics).
    pub rule_ix: usize,
    pub head: HeadPlan,
    pub positive: Vec<AtomPlan>,
    pub negative: Vec<AtomPlan>,
    pub constraints: Vec<ConstraintPlan>,
    /// Physical target of each rule variable.
    pub var_phys: HashMap<String, DomainId>,
    /// Variables needed by the head.
    pub head_vars: HashSet<String>,
    /// Variables appearing in negated atoms or constraints.
    pub guard_vars: HashSet<String>,
}

/// Everything plan construction needs from the engine.
pub(crate) struct PlanContext<'a> {
    pub program: &'a Program,
    /// Physical instances per logical domain (excluding scratch).
    pub phys: &'a [Vec<DomainId>],
    /// Physical domain of each attribute, per relation.
    pub rel_attr_phys: &'a [Vec<DomainId>],
    /// Name maps for resolving quoted constants, per logical domain.
    pub name_maps: &'a HashMap<usize, HashMap<String, u64>>,
}

impl<'a> PlanContext<'a> {
    fn resolve_const(&self, term: &Term, dom: usize) -> Result<Option<u64>, DatalogError> {
        match term {
            Term::Const(c) => Ok(Some(*c)),
            Term::Str(s) => {
                let map = self
                    .name_maps
                    .get(&dom)
                    .ok_or_else(|| DatalogError::UnresolvedName {
                        domain: self.program.domains[dom].name.clone(),
                        name: s.clone(),
                    })?;
                let v = map.get(s).ok_or_else(|| DatalogError::UnresolvedName {
                    domain: self.program.domains[dom].name.clone(),
                    name: s.clone(),
                })?;
                Ok(Some(*v))
            }
            _ => Ok(None),
        }
    }

    pub(crate) fn build(&self, rule_ix: usize) -> Result<RulePlan, DatalogError> {
        let rule = &self.program.rules[rule_ix];
        let var_dom = &self.program.rule_var_domains[rule_ix];

        // --- variable-to-physical assignment -----------------------------
        // Head variables take the physical domain of their first head
        // attribute; remaining variables take the first free instance.
        let mut var_phys: HashMap<String, DomainId> = HashMap::new();
        let mut taken: HashMap<usize, HashSet<DomainId>> = HashMap::new();
        let head_rel_ix = self.program.relation_ix[&rule.head.relation];
        for (a, term) in rule.head.args.iter().enumerate() {
            if let Term::Var(v) = term {
                if var_phys.contains_key(v) {
                    continue;
                }
                let dom = var_dom[v];
                let cand = self.rel_attr_phys[head_rel_ix][a];
                let slots = taken.entry(dom).or_default();
                debug_assert!(!slots.contains(&cand), "head attrs are injective");
                slots.insert(cand);
                var_phys.insert(v.clone(), cand);
            }
        }
        // Deterministic order for the rest: positives, then negatives.
        let mut rest: Vec<&str> = Vec::new();
        for lit in &rule.body {
            if let Literal::Atom { atom, .. } = lit {
                for t in &atom.args {
                    if let Term::Var(v) = t {
                        if !var_phys.contains_key(v.as_str()) && !rest.contains(&v.as_str()) {
                            rest.push(v);
                        }
                    }
                }
            }
        }
        for v in rest {
            let dom = var_dom[v];
            let slots = taken.entry(dom).or_default();
            let free = self.phys[dom]
                .iter()
                .find(|p| !slots.contains(p))
                .copied()
                .expect("instance analysis guarantees a free physical domain");
            slots.insert(free);
            var_phys.insert(v.to_string(), free);
        }

        // --- body atoms ----------------------------------------------------
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        let mut constraints = Vec::new();
        let mut guard_vars: HashSet<String> = HashSet::new();
        for lit in &rule.body {
            match lit {
                Literal::Atom { atom, negated } => {
                    let plan = self.build_atom(atom, var_dom, &var_phys)?;
                    if *negated {
                        guard_vars.extend(plan.vars.iter().cloned());
                        negative.push(plan);
                    } else {
                        positive.push(plan);
                    }
                }
                Literal::Constraint { left, op, right } => {
                    let dom_of = |t: &Term| match t {
                        Term::Var(v) => Some(var_dom[v]),
                        _ => None,
                    };
                    let dom = dom_of(left).or_else(|| dom_of(right));
                    if dom.is_none() {
                        // Constant-only constraints are untypable.
                        return Err(DatalogError::ConstraintDomainMismatch {
                            rule: rule.to_string(),
                        });
                    }
                    let mut make = |t: &Term| -> Result<Operand, DatalogError> {
                        match t {
                            Term::Var(v) => {
                                guard_vars.insert(v.clone());
                                Ok(Operand::Phys(var_phys[v]))
                            }
                            other => {
                                let dom = dom.expect("validated: constraint has a typed side");
                                Ok(Operand::Value(
                                    self.resolve_const(other, dom)?
                                        .expect("constraint side is var or const"),
                                ))
                            }
                        }
                    };
                    constraints.push(ConstraintPlan {
                        left: make(left)?,
                        op: *op,
                        right: make(right)?,
                    });
                }
            }
        }

        // --- head ----------------------------------------------------------
        let mut head_eqs = Vec::new();
        let mut head_consts = Vec::new();
        let mut head_vars = HashSet::new();
        let mut seen: HashSet<&str> = HashSet::new();
        for (a, term) in rule.head.args.iter().enumerate() {
            let attr_phys = self.rel_attr_phys[head_rel_ix][a];
            match term {
                Term::Var(v) => {
                    head_vars.insert(v.clone());
                    if seen.insert(v) {
                        debug_assert_eq!(var_phys[v], attr_phys);
                    } else {
                        head_eqs.push((var_phys[v], attr_phys));
                    }
                }
                Term::Wildcard => {
                    return Err(DatalogError::UnsafeHeadVar {
                        var: "_".into(),
                        rule: rule.to_string(),
                    })
                }
                t => {
                    let dom =
                        self.program.domain_ix[&self.program.relations[head_rel_ix].attrs[a].1];
                    let c = self.resolve_const(t, dom)?.expect("const term");
                    head_consts.push((attr_phys, c));
                }
            }
        }

        Ok(RulePlan {
            rule_ix,
            head: HeadPlan {
                rel: head_rel_ix,
                eqs: head_eqs,
                consts: head_consts,
            },
            positive,
            negative,
            constraints,
            var_phys,
            head_vars,
            guard_vars,
        })
    }

    fn build_atom(
        &self,
        atom: &Atom,
        var_dom: &HashMap<String, usize>,
        var_phys: &HashMap<String, DomainId>,
    ) -> Result<AtomPlan, DatalogError> {
        let rel_ix = self.program.relation_ix[&atom.relation];
        let attr_phys = &self.rel_attr_phys[rel_ix];
        let mut consts = Vec::new();
        let mut eqs = Vec::new();
        let mut project = Vec::new();
        let mut renames = Vec::new();
        let mut vars = Vec::new();
        let mut first_occurrence: HashMap<&str, DomainId> = HashMap::new();
        for (a, term) in atom.args.iter().enumerate() {
            let p = attr_phys[a];
            match term {
                Term::Var(v) => {
                    if let Some(&first) = first_occurrence.get(v.as_str()) {
                        // Duplicate within one atom: constrain equal, keep
                        // only the first occurrence.
                        eqs.push((first, p));
                        project.push(p);
                    } else {
                        first_occurrence.insert(v, p);
                        renames.push((p, var_phys[v]));
                        vars.push(v.clone());
                    }
                }
                Term::Wildcard => project.push(p),
                t => {
                    let dom = self.program.domain_ix[&self.program.relations[rel_ix].attrs[a].1];
                    let c = self.resolve_const(t, dom)?.expect("const term");
                    if c >= self.program.domains[dom].size {
                        return Err(DatalogError::ConstantOutOfRange {
                            domain: self.program.domains[dom].name.clone(),
                            value: c,
                        });
                    }
                    consts.push((p, c));
                    project.push(p);
                }
            }
        }
        let occupied: Vec<DomainId> = attr_phys
            .iter()
            .copied()
            .filter(|p| !project.contains(p))
            .collect();
        let _ = var_dom; // typing already validated
        Ok(AtomPlan {
            rel: rel_ix,
            consts,
            eqs,
            project,
            renames: renames.into_iter().filter(|&(f, t)| f != t).collect(),
            occupied,
            vars,
        })
    }
}
