//! Small graph utilities: Tarjan's strongly-connected components and a
//! topological order over the condensation.
//!
//! Shared by the solver (predicate dependency graph, rule stratification)
//! and re-exported for the analyses crate (call-graph SCC collapsing in the
//! paper's Algorithm 4).

/// Computes strongly connected components of a directed graph given as an
/// adjacency list. Returns `(component_of, components)` where components are
/// numbered in **reverse topological order** (Tarjan's property: every edge
/// goes from a higher-numbered component to a lower-numbered one, so
/// component 0 has no outgoing cross edges).
pub fn tarjan_scc(adj: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Iterative Tarjan to survive deep graphs.
    enum Frame {
        Enter(usize),
        Continue(usize, usize), // (node, next child index)
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame::Enter(start)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = counter;
                    lowlink[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, mut child_ix) => {
                    let mut descended = false;
                    while child_ix < adj[v].len() {
                        let w = adj[v][child_ix];
                        child_ix += 1;
                        if index[w] == usize::MAX {
                            call.push(Frame::Continue(v, child_ix));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp_of[w] = comps.len();
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                    // Propagate lowlink to parent.
                    if let Some(Frame::Continue(p, _)) = call.last() {
                        let p = *p;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }
    (comp_of, comps)
}

/// Returns the components of [`tarjan_scc`] in **topological order** (every
/// edge goes from an earlier to a later component) along with the
/// `component_of` map rewritten to match.
pub fn scc_topo_order(adj: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let (comp_of, mut comps) = tarjan_scc(adj);
    comps.reverse();
    let ncomp = comps.len();
    let comp_of = comp_of.into_iter().map(|c| ncomp - 1 - c).collect();
    (comp_of, comps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_nodes() {
        let adj = vec![vec![1], vec![2], vec![]];
        let (comp_of, comps) = scc_topo_order(&adj);
        assert_eq!(comps.len(), 3);
        // Topological: 0 before 1 before 2.
        assert!(comp_of[0] < comp_of[1]);
        assert!(comp_of[1] < comp_of[2]);
    }

    #[test]
    fn cycle_collapses() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let (comp_of, comps) = scc_topo_order(&adj);
        assert_eq!(comps.len(), 3);
        assert_eq!(comp_of[1], comp_of[2]);
        assert!(comp_of[0] < comp_of[1]);
        assert!(comp_of[2] < comp_of[3]);
    }

    #[test]
    fn self_loop_is_own_component() {
        let adj = vec![vec![0], vec![]];
        let (comp_of, comps) = scc_topo_order(&adj);
        assert_eq!(comps.len(), 2);
        assert_ne!(comp_of[0], comp_of[1]);
    }

    #[test]
    fn big_chain_no_stack_overflow() {
        let n = 200_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let (_, comps) = tarjan_scc(&adj);
        assert_eq!(comps.len(), n);
    }

    #[test]
    fn two_cycles_bridge() {
        // {0,1} -> {2,3}
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let (comp_of, comps) = scc_topo_order(&adj);
        assert_eq!(comps.len(), 2);
        assert!(comp_of[0] < comp_of[2]);
    }
}
