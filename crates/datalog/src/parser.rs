//! Parser for the paper's Datalog dialect: `DOMAINS`, `RELATIONS`, `RULES`.

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::DatalogError;

/// The three sections of a parsed program.
pub(crate) type ParsedProgram = (Vec<DomainDecl>, Vec<RelationDecl>, Vec<Rule>);

pub(crate) fn parse(src: &str) -> Result<ParsedProgram, DatalogError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// Peeks skipping newlines.
    fn peek_token(&self) -> Option<&Tok> {
        self.toks[self.pos..]
            .iter()
            .map(|t| &t.tok)
            .find(|t| **t != Tok::Newline)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Next token skipping newlines.
    fn next_token(&mut self) -> Option<Tok> {
        loop {
            match self.next() {
                Some(Tok::Newline) => continue,
                other => return other,
            }
        }
    }

    fn skip_newlines(&mut self) {
        while self.peek() == Some(&Tok::Newline) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), DatalogError> {
        match self.next_token() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DatalogError> {
        match self.next_token() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn program(&mut self) -> Result<ParsedProgram, DatalogError> {
        self.skip_newlines();
        let mut domains = Vec::new();
        let mut relations = Vec::new();
        let mut rules = Vec::new();
        // Sections may appear in any order and repeat; the conventional
        // layout is DOMAINS, RELATIONS, RULES.
        while let Some(tok) = self.peek_token() {
            match tok {
                Tok::Ident(s) if s == "DOMAINS" => {
                    self.next_token();
                    self.domains_section(&mut domains)?;
                }
                Tok::Ident(s) if s == "RELATIONS" => {
                    self.next_token();
                    self.relations_section(&mut relations)?;
                }
                Tok::Ident(s) if s == "RULES" => {
                    self.next_token();
                    self.rules_section(&mut rules)?;
                }
                _ => return Err(self.err("expected DOMAINS, RELATIONS or RULES section")),
            }
        }
        Ok((domains, relations, rules))
    }

    fn at_section_header(&self) -> bool {
        matches!(self.peek_token(),
            Some(Tok::Ident(s)) if s == "DOMAINS" || s == "RELATIONS" || s == "RULES")
    }

    /// DOMAINS entries are line-oriented: `NAME SIZE [mapfile]`.
    fn domains_section(&mut self, out: &mut Vec<DomainDecl>) -> Result<(), DatalogError> {
        loop {
            self.skip_newlines();
            if self.peek_token().is_none() || self.at_section_header() {
                return Ok(());
            }
            let name = self.ident("domain name")?;
            let size = match self.next() {
                Some(Tok::Number(n)) => n,
                _ => return Err(self.err(format!("expected size after domain `{name}`"))),
            };
            // Optional map file name, on the same line.
            let map_file = if let Some(Tok::Ident(_)) = self.peek() {
                match self.next() {
                    Some(Tok::Ident(f)) => Some(f),
                    _ => unreachable!(),
                }
            } else {
                None
            };
            match self.peek() {
                Some(Tok::Newline) | None => {}
                _ => return Err(self.err("expected end of line after domain declaration")),
            }
            out.push(DomainDecl {
                name,
                size,
                map_file,
            });
        }
    }

    fn relations_section(&mut self, out: &mut Vec<RelationDecl>) -> Result<(), DatalogError> {
        loop {
            self.skip_newlines();
            if self.peek_token().is_none() || self.at_section_header() {
                return Ok(());
            }
            let first = self.ident("relation declaration")?;
            let (kind, name) = match first.as_str() {
                "input" => (RelationKind::Input, self.ident("relation name")?),
                "output" => (RelationKind::Output, self.ident("relation name")?),
                _ => (RelationKind::Intermediate, first),
            };
            self.expect(Tok::LParen, "`(`")?;
            let mut attrs = Vec::new();
            loop {
                let attr = self.ident("attribute name")?;
                self.expect(Tok::Colon, "`:`")?;
                let dom = self.ident("domain name")?;
                attrs.push((attr, dom));
                match self.next_token() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    _ => return Err(self.err("expected `,` or `)` in attribute list")),
                }
            }
            out.push(RelationDecl { name, kind, attrs });
        }
    }

    fn rules_section(&mut self, out: &mut Vec<Rule>) -> Result<(), DatalogError> {
        loop {
            self.skip_newlines();
            if self.peek_token().is_none() || self.at_section_header() {
                return Ok(());
            }
            out.push(self.rule()?);
        }
    }

    fn rule(&mut self) -> Result<Rule, DatalogError> {
        let line = self.line();
        let head = self.atom()?;
        let mut body = Vec::new();
        match self.next_token() {
            Some(Tok::Dot) => {
                return Ok(Rule { head, body, line });
            }
            Some(Tok::Turnstile) => {}
            _ => return Err(self.err("expected `:-` or `.` after rule head")),
        }
        loop {
            body.push(self.literal()?);
            match self.next_token() {
                Some(Tok::Comma) => continue,
                Some(Tok::Dot) => break,
                _ => return Err(self.err("expected `,` or `.` in rule body")),
            }
        }
        Ok(Rule { head, body, line })
    }

    fn literal(&mut self) -> Result<Literal, DatalogError> {
        if self.peek_token() == Some(&Tok::Bang) {
            self.next_token();
            let atom = self.atom()?;
            return Ok(Literal::Atom {
                atom,
                negated: true,
            });
        }
        // Either an atom `name(...)` or a constraint `term op term`.
        let left = self.term()?;
        match (&left, self.peek_token()) {
            (Term::Var(_), Some(Tok::LParen)) => {
                let name = match left {
                    Term::Var(n) => n,
                    _ => unreachable!(),
                };
                let args = self.arg_list()?;
                Ok(Literal::Atom {
                    atom: Atom {
                        relation: name,
                        args,
                    },
                    negated: false,
                })
            }
            (_, Some(Tok::Eq)) => {
                self.next_token();
                let right = self.term()?;
                Ok(Literal::Constraint {
                    left,
                    op: ConstraintOp::Eq,
                    right,
                })
            }
            (_, Some(Tok::Ne)) => {
                self.next_token();
                let right = self.term()?;
                Ok(Literal::Constraint {
                    left,
                    op: ConstraintOp::Ne,
                    right,
                })
            }
            (_, Some(Tok::Lt)) | (_, Some(Tok::Le)) | (_, Some(Tok::Gt)) | (_, Some(Tok::Ge)) => {
                let op = match self.next_token() {
                    Some(Tok::Lt) => ConstraintOp::Lt,
                    Some(Tok::Le) => ConstraintOp::Le,
                    Some(Tok::Gt) => ConstraintOp::Gt,
                    Some(Tok::Ge) => ConstraintOp::Ge,
                    _ => unreachable!(),
                };
                let right = self.term()?;
                Ok(Literal::Constraint { left, op, right })
            }
            _ => Err(self.err("expected atom or constraint")),
        }
    }

    fn atom(&mut self) -> Result<Atom, DatalogError> {
        let relation = self.ident("relation name")?;
        let args = self.arg_list()?;
        Ok(Atom { relation, args })
    }

    fn arg_list(&mut self) -> Result<Vec<Term>, DatalogError> {
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek_token() == Some(&Tok::RParen) {
            self.next_token();
            return Ok(args);
        }
        loop {
            args.push(self.term()?);
            match self.next_token() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err("expected `,` or `)` in argument list")),
            }
        }
        Ok(args)
    }

    fn term(&mut self) -> Result<Term, DatalogError> {
        match self.next_token() {
            Some(Tok::Ident(s)) if s == "_" => Ok(Term::Wildcard),
            Some(Tok::Ident(s)) => Ok(Term::Var(s)),
            Some(Tok::Number(n)) => Ok(Term::Const(n)),
            Some(Tok::Str(s)) => Ok(Term::Str(s)),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_algorithm_1() {
        // Algorithm 1 of the paper, verbatim structure.
        let src = r#"
DOMAINS
V 262144 variable.map
H 65536 heap.map
F 16384 field.map

RELATIONS
input vP0 (variable : V, heap : H)
input store (base : V, field : F, source : V)
input load (base : V, field : F, dest : V)
input assign (dest : V, source : V)
output vP (variable : V, heap : H)
output hP (base : H, field : F, target : H)

RULES
vP(v,h) :- vP0(v,h).
vP(v1,h) :- assign(v1,v2), vP(v2,h).
hP(h1,f,h2) :- store(v1,f,v2), vP(v1,h1), vP(v2,h2).
vP(v2,h2) :- load(v1,f,v2), vP(v1,h1), hP(h1,f,h2).
"#;
        let (doms, rels, rules) = parse(src).unwrap();
        assert_eq!(doms.len(), 3);
        assert_eq!(doms[0].name, "V");
        assert_eq!(doms[0].size, 262144);
        assert_eq!(doms[0].map_file.as_deref(), Some("variable.map"));
        assert_eq!(rels.len(), 6);
        assert_eq!(rels[0].kind, RelationKind::Input);
        assert_eq!(rels[4].kind, RelationKind::Output);
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[1].to_string(), "vP(v1,h) :- assign(v1,v2), vP(v2,h).");
    }

    #[test]
    fn parse_negation_wildcards_constraints() {
        let src = r#"
DOMAINS
V 16
T 16

RELATIONS
input vT (v : V, t : T)
input aT (sup : T, sub : T)
varExactTypes (v : V, t : T)
notVarType (v : V, t : T)
output varSuperTypes (v : V, t : T)
output refinable (v : V, t : T)

RULES
notVarType(v,t) :- varExactTypes(v,tv), !aT(t,tv).
varSuperTypes(v,t) :- vT(v,_), !notVarType(v,t).
refinable(v,tc) :- vT(v,td), varSuperTypes(v,tc), td != tc.
"#;
        let (_, _, rules) = parse(src).unwrap();
        assert_eq!(rules.len(), 3);
        assert!(matches!(
            rules[0].body[1],
            Literal::Atom { negated: true, .. }
        ));
        assert!(matches!(rules[1].body[0], Literal::Atom { ref atom, .. }
            if atom.args[1] == Term::Wildcard));
        assert!(matches!(
            rules[2].body[2],
            Literal::Constraint {
                op: ConstraintOp::Ne,
                ..
            }
        ));
    }

    #[test]
    fn parse_constants() {
        let src = r#"
DOMAINS
I 16
Z 4
V 16
RELATIONS
input actual (i : I, z : Z, v : V)
output firstArg (i : I, v : V)
RULES
firstArg(i,v) :- actual(i,0,v).
"#;
        let (_, _, rules) = parse(src).unwrap();
        assert_eq!(rules[0].body.len(), 1);
        match &rules[0].body[0] {
            Literal::Atom { atom, .. } => assert_eq!(atom.args[1], Term::Const(0)),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_string_constant() {
        let src = r#"
DOMAINS
H 16
F 4
RELATIONS
input hP (h1 : H, f : F, h2 : H)
output who (h : H, f : F)
RULES
who(h,f) :- hP(h, f, "a.java:57").
"#;
        let (_, _, rules) = parse(src).unwrap();
        match &rules[0].body[0] {
            Literal::Atom { atom, .. } => {
                assert_eq!(atom.args[2], Term::Str("a.java:57".into()))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors_have_lines() {
        let src = "DOMAINS\nV 16\nRULES\np(x) :- q(x)"; // missing final dot
        match parse(src) {
            Err(DatalogError::Parse { line, .. }) => assert!(line >= 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn fact_rules_allowed() {
        let src = "DOMAINS\nV 16\nRELATIONS\noutput p (x : V)\nRULES\np(3).";
        let (_, _, rules) = parse(src).unwrap();
        assert!(rules[0].body.is_empty());
        assert_eq!(rules[0].head.args[0], Term::Const(3));
    }
}
