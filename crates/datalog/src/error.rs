use std::fmt;

/// Errors reported while parsing, validating or solving Datalog programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Syntax error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A rule or declaration referenced an undeclared domain.
    UnknownDomain(String),
    /// A rule referenced an undeclared relation.
    UnknownRelation(String),
    /// A domain was declared more than once.
    DuplicateDomain(String),
    /// A relation was declared more than once.
    DuplicateRelation(String),
    /// An atom had the wrong number of arguments.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity at the use site.
        found: usize,
    },
    /// A variable was used at positions of two different domains.
    TypeConflict {
        /// Variable name.
        var: String,
        /// First domain.
        first: String,
        /// Conflicting domain.
        second: String,
    },
    /// A head variable does not occur in any positive body atom.
    UnsafeHeadVar {
        /// Variable name.
        var: String,
        /// The offending rule, pretty-printed.
        rule: String,
    },
    /// A variable in a negated atom or constraint does not occur in any
    /// positive body atom.
    UnsafeNegatedVar {
        /// Variable name.
        var: String,
        /// The offending rule, pretty-printed.
        rule: String,
        /// 1-based source line of the offending rule (0 if unknown).
        line: usize,
    },
    /// The program is not stratified: a negation occurs inside a recursive
    /// component.
    NotStratified {
        /// A relation on the offending cycle.
        relation: String,
        /// The rule whose negation closes the cycle, pretty-printed.
        rule: String,
        /// 1-based source line of that rule (0 if unknown).
        line: usize,
    },
    /// Warning: a declared relation is used by no rule.
    UnusedRelation {
        /// Relation name.
        relation: String,
    },
    /// Warning: a rule's head relation is never read by another rule and
    /// is not an `output`, so the rule can never influence a result.
    DeadRule {
        /// The dead rule, pretty-printed.
        rule: String,
        /// 1-based source line of the rule (0 if unknown).
        line: usize,
    },
    /// Warning: a named variable occurs exactly once in a rule. Such a
    /// variable is an existential the author probably meant to join on;
    /// writing `_` states the intent explicitly.
    SingletonVariable {
        /// Variable name.
        var: String,
        /// The rule containing it, pretty-printed.
        rule: String,
        /// 1-based source line of the rule (0 if unknown).
        line: usize,
    },
    /// A constant is too large for its domain.
    ConstantOutOfRange {
        /// Domain name.
        domain: String,
        /// The constant.
        value: u64,
    },
    /// A quoted constant could not be resolved against the domain's name
    /// map.
    UnresolvedName {
        /// Domain name.
        domain: String,
        /// The quoted name.
        name: String,
    },
    /// A constraint compared terms of different domains.
    ConstraintDomainMismatch {
        /// The offending rule, pretty-printed.
        rule: String,
    },
    /// Facts were added to a non-input relation, or a tuple had the wrong
    /// arity/values.
    BadFact(String),
    /// An empirical ordering search was started with a zero evaluation
    /// budget, so no candidate could legally be scored.
    ZeroSearchBudget,
    /// An error bubbled up from the BDD layer.
    Bdd(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DatalogError::UnknownDomain(d) => write!(f, "unknown domain `{d}`"),
            DatalogError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DatalogError::DuplicateDomain(d) => write!(f, "duplicate domain `{d}`"),
            DatalogError::DuplicateRelation(r) => write!(f, "duplicate relation `{r}`"),
            DatalogError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has {expected} attributes but was used with {found}"
            ),
            DatalogError::TypeConflict { var, first, second } => write!(
                f,
                "variable `{var}` used at domain `{first}` and domain `{second}`"
            ),
            DatalogError::UnsafeHeadVar { var, rule } => write!(
                f,
                "head variable `{var}` not bound by a positive body atom in `{rule}`"
            ),
            DatalogError::UnsafeNegatedVar { var, rule, line } => write!(
                f,
                "variable `{var}` in a negated atom or constraint not bound by a positive body atom in `{rule}` (line {line})"
            ),
            DatalogError::NotStratified { relation, rule, line } => write!(
                f,
                "program is not stratified: negation through recursive relation `{relation}` in `{rule}` (line {line})"
            ),
            DatalogError::UnusedRelation { relation } => {
                write!(f, "relation `{relation}` is declared but used by no rule")
            }
            DatalogError::DeadRule { rule, line } => write!(
                f,
                "dead rule `{rule}` (line {line}): its head is never read and is not an output"
            ),
            DatalogError::SingletonVariable { var, rule, line } => write!(
                f,
                "variable `{var}` occurs only once in `{rule}` (line {line}): write `_` if the value is unused"
            ),
            DatalogError::ConstantOutOfRange { domain, value } => {
                write!(f, "constant {value} out of range for domain `{domain}`")
            }
            DatalogError::UnresolvedName { domain, name } => write!(
                f,
                "quoted constant \"{name}\" not found in the name map of domain `{domain}`"
            ),
            DatalogError::ConstraintDomainMismatch { rule } => {
                write!(f, "constraint compares different domains in `{rule}`")
            }
            DatalogError::BadFact(m) => write!(f, "bad fact: {m}"),
            DatalogError::ZeroSearchBudget => {
                write!(f, "order search: evaluation budget is zero")
            }
            DatalogError::Bdd(m) => write!(f, "bdd error: {m}"),
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<whale_bdd::BddError> for DatalogError {
    fn from(e: whale_bdd::BddError) -> Self {
        DatalogError::Bdd(e.to_string())
    }
}
