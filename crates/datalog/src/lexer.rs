//! Tokenizer for the Datalog dialect.

use crate::DatalogError;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// Identifier or keyword (including `_`).
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// Quoted string constant.
    Str(String),
    LParen,
    RParen,
    Comma,
    Colon,
    /// `:-`
    Turnstile,
    /// `.` rule terminator.
    Dot,
    /// `!` (negation prefix).
    Bang,
    /// `!=`
    Ne,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of a physical line (significant only in the DOMAINS section).
    Newline,
}

#[derive(Debug, Clone)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

pub(crate) fn lex(src: &str) -> Result<Vec<SpannedTok>, DatalogError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Newline,
                    line,
                });
                line += 1;
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        out.push(SpannedTok {
                            tok: Tok::Newline,
                            line,
                        });
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::RParen,
                    line,
                });
            }
            ',' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Comma,
                    line,
                });
            }
            '.' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Dot,
                    line,
                });
            }
            '=' => {
                chars.next();
                out.push(SpannedTok { tok: Tok::Eq, line });
            }
            '<' => {
                chars.next();
                let tok = if chars.peek() == Some(&'=') {
                    chars.next();
                    Tok::Le
                } else {
                    Tok::Lt
                };
                out.push(SpannedTok { tok, line });
            }
            '>' => {
                chars.next();
                let tok = if chars.peek() == Some(&'=') {
                    chars.next();
                    Tok::Ge
                } else {
                    Tok::Gt
                };
                out.push(SpannedTok { tok, line });
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(SpannedTok { tok: Tok::Ne, line });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Bang,
                        line,
                    });
                }
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    out.push(SpannedTok {
                        tok: Tok::Turnstile,
                        line,
                    });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Colon,
                        line,
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(DatalogError::Parse {
                                line,
                                message: "unterminated string constant".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as u64 - '0' as u64))
                            .ok_or(DatalogError::Parse {
                                line,
                                message: "integer literal overflows u64".into(),
                            })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Number(n),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '$' {
                        s.push(d);
                        chars.next();
                    } else if d == '.' {
                        // Dots are allowed inside identifiers only when
                        // followed by another identifier character, so the
                        // rule terminator `foo(x).` still lexes as Dot.
                        // This admits map-file names like `variable.map`.
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&n) if n.is_alphanumeric() || n == '_' || n == '$' => {
                                s.push('.');
                                chars.next();
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            other => {
                return Err(DatalogError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .filter(|t| *t != Tok::Newline)
            .collect()
    }

    #[test]
    fn lex_rule() {
        assert_eq!(
            toks("vP(v1,h) :- assign(v1,v2), vP(v2,h)."),
            vec![
                Tok::Ident("vP".into()),
                Tok::LParen,
                Tok::Ident("v1".into()),
                Tok::Comma,
                Tok::Ident("h".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Ident("assign".into()),
                Tok::LParen,
                Tok::Ident("v1".into()),
                Tok::Comma,
                Tok::Ident("v2".into()),
                Tok::RParen,
                Tok::Comma,
                Tok::Ident("vP".into()),
                Tok::LParen,
                Tok::Ident("v2".into()),
                Tok::Comma,
                Tok::Ident("h".into()),
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lex_negation_and_constraints() {
        assert_eq!(
            toks("a(x) :- !b(x), x != y, y = 3."),
            vec![
                Tok::Ident("a".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Bang,
                Tok::Ident("b".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Comma,
                Tok::Ident("x".into()),
                Tok::Ne,
                Tok::Ident("y".into()),
                Tok::Comma,
                Tok::Ident("y".into()),
                Tok::Eq,
                Tok::Number(3),
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lex_dotted_identifier_vs_terminator() {
        // `variable.map` keeps its dot; the trailing `.` of a rule does not
        // glue onto the preceding identifier.
        assert_eq!(
            toks("V 16 variable.map"),
            vec![
                Tok::Ident("V".into()),
                Tok::Number(16),
                Tok::Ident("variable.map".into()),
            ]
        );
        assert_eq!(
            toks("p(x)."),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Dot
            ]
        );
    }

    #[test]
    fn lex_strings_and_comments() {
        assert_eq!(
            toks("# a comment\nwho(h) :- hP(h, f, \"a.java:57\")."),
            vec![
                Tok::Ident("who".into()),
                Tok::LParen,
                Tok::Ident("h".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Ident("hP".into()),
                Tok::LParen,
                Tok::Ident("h".into()),
                Tok::Comma,
                Tok::Ident("f".into()),
                Tok::Comma,
                Tok::Str("a.java:57".into()),
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lex_rejects_unterminated_string() {
        assert!(lex("p(\"abc").is_err());
    }
}
