//! A standalone `bddbddb`-style driver: solve a Datalog program from a
//! file, loading input relations from tuple files and writing output
//! relations back.
//!
//! ```console
//! bddbddb program.datalog [--facts DIR] [--out DIR] [--naive] [--order SPEC]
//!         [--reorder] [--jobs N] [--bdd-cache DIR] [--stats]
//! ```
//!
//! For every `input` relation `R`, tuples are read from `DIR/R.tuples`
//! (whitespace-separated unsigned integers, one tuple per line, `#`
//! comments allowed); missing files mean an empty relation. Every `output`
//! relation is written to `OUT/R.tuples` in the same format, and a summary
//! line is printed per output.
//!
//! With `--bdd-cache DIR`, input relations are loaded from `DIR/R.bdd`
//! when present (taking precedence over tuple files) and every output
//! relation's BDD is saved there after solving — the original `bddbddb`'s
//! `.bdd` caching. Cached BDDs are only portable across runs using the
//! same program and variable ordering.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use whale_datalog::{Engine, EngineOptions, Program, RelationKind};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bddbddb: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mut program_path: Option<PathBuf> = None;
    let mut facts_dir = PathBuf::from(".");
    let mut out_dir = PathBuf::from(".");
    let mut bdd_cache: Option<PathBuf> = None;
    let mut options = EngineOptions::default();
    let mut show_stats = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--facts" => facts_dir = PathBuf::from(args.next().ok_or("--facts needs a dir")?),
            "--out" => out_dir = PathBuf::from(args.next().ok_or("--out needs a dir")?),
            "--bdd-cache" => {
                bdd_cache = Some(PathBuf::from(args.next().ok_or("--bdd-cache needs a dir")?))
            }
            "--naive" => options.seminaive = false,
            "--order" => options.order = Some(args.next().ok_or("--order needs a spec")?),
            "--reorder" => options.reorder = true,
            "--jobs" => {
                options.jobs = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1)
            }
            "--stats" => show_stats = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bddbddb PROGRAM.datalog [--facts DIR] [--out DIR] [--naive] [--order SPEC] [--reorder] [--jobs N] [--bdd-cache DIR] [--stats]"
                );
                return Ok(());
            }
            other if program_path.is_none() => program_path = Some(PathBuf::from(other)),
            other => return Err(format!("unexpected argument `{other}`").into()),
        }
    }
    let program_path = program_path.ok_or("missing program file")?;
    let src = std::fs::read_to_string(&program_path)?;
    let program = Program::parse(&src)?;
    for w in program.warnings() {
        eprintln!("bddbddb: warning: {w}");
    }
    let mut engine = Engine::with_options(program, options)?;

    // Load input relations.
    let decls: Vec<(String, RelationKind)> = engine
        .program()
        .relations()
        .iter()
        .map(|r| (r.name.clone(), r.kind))
        .collect();
    for (name, kind) in &decls {
        if *kind != RelationKind::Input {
            continue;
        }
        if let Some(cache) = &bdd_cache {
            let cached = cache.join(format!("{name}.bdd"));
            if cached.exists() {
                let file = std::io::BufReader::new(std::fs::File::open(&cached)?);
                let bdd = whale_bdd::io::read_bdd(engine.manager(), file)?;
                eprintln!("loaded {name} from {}", cached.display());
                engine.set_relation_bdd(name, bdd)?;
                continue;
            }
        }
        let path = facts_dir.join(format!("{name}.tuples"));
        if !path.exists() {
            continue;
        }
        let tuples = read_tuples(&path)?;
        eprintln!("loaded {} tuples into {name}", tuples.len());
        engine.add_facts(name, tuples)?;
    }

    let t0 = std::time::Instant::now();
    let stats = engine.solve()?;
    eprintln!(
        "solved in {:?}: {} strata, {} rounds, {} rule applications, {} peak BDD nodes",
        t0.elapsed(),
        stats.strata,
        stats.rounds,
        stats.rule_applications,
        stats.peak_live_nodes
    );
    if stats.reorder_runs > 0 {
        eprintln!(
            "reordered {} times in {:?} ({} nodes eliminated), final order {}",
            stats.reorder_runs,
            stats.reorder_time,
            stats.reorder_delta_nodes,
            engine.current_order()
        );
    }
    if show_stats {
        print_stratum_stats(&stats);
        let bs = engine.manager().stats();
        eprintln!(
            "op caches: {:.1} MiB",
            bs.cache_bytes as f64 / (1024.0 * 1024.0)
        );
        // Per-solve counter deltas, including the relation-level memo
        // cache the engine layers on top of the kernel caches.
        for (name, c) in [
            ("apply", &stats.apply_cache),
            ("ite", &stats.ite_cache),
            ("appex", &stats.appex_cache),
            ("replace", &stats.replace_cache),
            ("rel", &stats.rel_cache),
        ] {
            eprintln!(
                "  {name:<8} hits={:<10} misses={:<10} evictions={:<10} hit rate {:.1}%",
                c.hits,
                c.misses,
                c.evictions,
                c.hit_rate() * 100.0
            );
        }
    }

    std::fs::create_dir_all(&out_dir)?;
    for (name, kind) in &decls {
        if *kind != RelationKind::Output {
            continue;
        }
        let count = engine.relation_count(name)?;
        let path = out_dir.join(format!("{name}.tuples"));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        for t in engine.relation_tuples(name)? {
            let row: Vec<String> = t.iter().map(u64::to_string).collect();
            writeln!(file, "{}", row.join(" "))?;
        }
        println!("{name}: {count} tuples -> {}", path.display());
        if let Some(cache) = &bdd_cache {
            std::fs::create_dir_all(cache)?;
            let cached = cache.join(format!("{name}.bdd"));
            let out = std::io::BufWriter::new(std::fs::File::create(&cached)?);
            whale_bdd::io::write_bdd(&engine.relation_bdd(name)?, out)?;
        }
    }
    Ok(())
}

/// Per-stratum timing summary: the slowest strata, the critical path
/// through the stratum DAG, and (for parallel solves) the node traffic
/// between the main manager and the workers.
fn print_stratum_stats(stats: &whale_datalog::SolveStats) {
    let total: std::time::Duration = stats.stratum_times.iter().sum();
    let mut by_time: Vec<(usize, std::time::Duration)> =
        stats.stratum_times.iter().copied().enumerate().collect();
    by_time.sort_by_key(|e| std::cmp::Reverse(e.1));
    eprintln!(
        "strata: {} solved in {total:?} total, critical path {:?}",
        stats.stratum_times.len(),
        stats.critical_path_time
    );
    for (ix, t) in by_time.iter().take(5) {
        if t.is_zero() {
            break;
        }
        eprintln!("  stratum {ix:<4} {t:?}");
    }
    if stats.transferred_nodes > 0 {
        eprintln!(
            "  {} BDD nodes shipped between managers",
            stats.transferred_nodes
        );
    }
}

fn read_tuples(path: &Path) -> Result<Vec<Vec<u64>>, Box<dyn std::error::Error>> {
    let file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (ln, line) in file.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tuple = Vec::new();
        for tok in line.split_whitespace() {
            // Name the offending token: a bare parse error ("invalid
            // digit found in string") is useless across a directory of
            // machine-generated fact files.
            tuple.push(
                tok.parse::<u64>().map_err(|e| {
                    format!("{}:{}: bad value `{tok}`: {e}", path.display(), ln + 1)
                })?,
            );
        }
        out.push(tuple);
    }
    Ok(out)
}
