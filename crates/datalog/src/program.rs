//! Validated Datalog programs: name resolution, safety checks, typing of
//! rule variables, and the physical-domain instance analysis.

use crate::ast::*;
use crate::parser;
use crate::DatalogError;
use std::collections::HashMap;

/// A parsed and validated Datalog program.
///
/// Validation enforces the subclass the paper's `bddbddb` accepts:
/// well-typed safe rules (every head/negated/constraint variable bound by a
/// positive body atom) over declared relations; stratification is checked
/// at solve time.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) domains: Vec<DomainDecl>,
    pub(crate) relations: Vec<RelationDecl>,
    pub(crate) rules: Vec<Rule>,
    pub(crate) domain_ix: HashMap<String, usize>,
    pub(crate) relation_ix: HashMap<String, usize>,
    /// Per rule: variable name -> logical domain index.
    pub(crate) rule_var_domains: Vec<HashMap<String, usize>>,
    /// Per logical domain: number of physical instances required.
    pub(crate) instances: Vec<usize>,
    /// Non-fatal lints found during validation (unused relations, dead
    /// rules), as displayable [`DatalogError`] values.
    pub(crate) warnings: Vec<DatalogError>,
}

impl Program {
    /// Parses and validates a program in the paper's Datalog dialect.
    ///
    /// # Errors
    ///
    /// Any [`DatalogError`] variant describing a syntax, naming, arity,
    /// typing or safety violation.
    pub fn parse(src: &str) -> Result<Self, DatalogError> {
        let (domains, relations, rules) = parser::parse(src)?;
        Self::from_parts(domains, relations, rules)
    }

    /// Builds a program from already-constructed declarations and rules.
    ///
    /// # Errors
    ///
    /// Same validation as [`Program::parse`].
    pub fn from_parts(
        domains: Vec<DomainDecl>,
        relations: Vec<RelationDecl>,
        rules: Vec<Rule>,
    ) -> Result<Self, DatalogError> {
        let mut domain_ix = HashMap::new();
        for (i, d) in domains.iter().enumerate() {
            if domain_ix.insert(d.name.clone(), i).is_some() {
                return Err(DatalogError::DuplicateDomain(d.name.clone()));
            }
        }
        let mut relation_ix = HashMap::new();
        for (i, r) in relations.iter().enumerate() {
            if relation_ix.insert(r.name.clone(), i).is_some() {
                return Err(DatalogError::DuplicateRelation(r.name.clone()));
            }
            for (_, dom) in &r.attrs {
                if !domain_ix.contains_key(dom) {
                    return Err(DatalogError::UnknownDomain(dom.clone()));
                }
            }
        }
        let mut prog = Program {
            domains,
            relations,
            rules,
            domain_ix,
            relation_ix,
            rule_var_domains: Vec::new(),
            instances: Vec::new(),
            warnings: Vec::new(),
        };
        prog.validate()?;
        Ok(prog)
    }

    /// The domain declarations.
    pub fn domains(&self) -> &[DomainDecl] {
        &self.domains
    }

    /// The relation declarations.
    pub fn relations(&self) -> &[RelationDecl] {
        &self.relations
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Non-fatal lints found during validation: declared relations no rule
    /// mentions ([`DatalogError::UnusedRelation`]), rules whose head is
    /// never read and not an `output` ([`DatalogError::DeadRule`]), and
    /// named variables occurring exactly once in a rule
    /// ([`DatalogError::SingletonVariable`]). The program still solves;
    /// callers decide whether to surface these.
    pub fn warnings(&self) -> &[DatalogError] {
        &self.warnings
    }

    pub(crate) fn relation(&self, name: &str) -> Result<&RelationDecl, DatalogError> {
        self.relation_ix
            .get(name)
            .map(|&i| &self.relations[i])
            .ok_or_else(|| DatalogError::UnknownRelation(name.to_string()))
    }

    fn validate(&mut self) -> Result<(), DatalogError> {
        // Per-rule: arity, typing, safety.
        let mut rule_var_domains = Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            let mut var_dom: HashMap<String, usize> = HashMap::new();
            let mut positive_vars: Vec<String> = Vec::new();

            let visit_atom = |atom: &Atom,
                              positive: bool,
                              var_dom: &mut HashMap<String, usize>,
                              positive_vars: &mut Vec<String>|
             -> Result<(), DatalogError> {
                let decl = self.relation(&atom.relation)?;
                if decl.attrs.len() != atom.args.len() {
                    return Err(DatalogError::ArityMismatch {
                        relation: atom.relation.clone(),
                        expected: decl.attrs.len(),
                        found: atom.args.len(),
                    });
                }
                for ((_, dom_name), term) in decl.attrs.iter().zip(&atom.args) {
                    let dom = self.domain_ix[dom_name];
                    match term {
                        Term::Var(v) => {
                            if let Some(&prev) = var_dom.get(v) {
                                if prev != dom {
                                    return Err(DatalogError::TypeConflict {
                                        var: v.clone(),
                                        first: self.domains[prev].name.clone(),
                                        second: dom_name.clone(),
                                    });
                                }
                            } else {
                                var_dom.insert(v.clone(), dom);
                            }
                            if positive {
                                positive_vars.push(v.clone());
                            }
                        }
                        Term::Wildcard => {}
                        Term::Const(c) => {
                            if *c >= self.domains[dom].size {
                                return Err(DatalogError::ConstantOutOfRange {
                                    domain: dom_name.clone(),
                                    value: *c,
                                });
                            }
                        }
                        Term::Str(_) => {
                            // Resolved against name maps at engine build.
                        }
                    }
                }
                Ok(())
            };

            // Body first (positive atoms bind variables), then negated atoms
            // and constraints, then the head.
            for lit in &rule.body {
                if let Literal::Atom {
                    atom,
                    negated: false,
                } = lit
                {
                    visit_atom(atom, true, &mut var_dom, &mut positive_vars)?;
                }
            }
            for lit in &rule.body {
                if let Literal::Atom {
                    atom,
                    negated: true,
                } = lit
                {
                    visit_atom(atom, false, &mut var_dom, &mut positive_vars)?;
                }
            }
            visit_atom(&rule.head, false, &mut var_dom, &mut positive_vars)?;

            // Safety: head vars bound positively.
            for term in &rule.head.args {
                if let Term::Var(v) = term {
                    if !positive_vars.contains(v) {
                        return Err(DatalogError::UnsafeHeadVar {
                            var: v.clone(),
                            rule: rule.to_string(),
                        });
                    }
                }
            }
            // Safety: negated-atom vars and constraint vars bound positively.
            for lit in &rule.body {
                match lit {
                    Literal::Atom {
                        atom,
                        negated: true,
                    } => {
                        for term in &atom.args {
                            if let Term::Var(v) = term {
                                if !positive_vars.contains(v) {
                                    return Err(DatalogError::UnsafeNegatedVar {
                                        var: v.clone(),
                                        rule: rule.to_string(),
                                        line: rule.line,
                                    });
                                }
                            }
                        }
                    }
                    Literal::Constraint { left, right, .. } => {
                        let mut doms = Vec::new();
                        for term in [left, right] {
                            match term {
                                Term::Var(v) => {
                                    let Some(&d) = var_dom.get(v) else {
                                        return Err(DatalogError::UnsafeNegatedVar {
                                            var: v.clone(),
                                            rule: rule.to_string(),
                                            line: rule.line,
                                        });
                                    };
                                    if !positive_vars.contains(v) {
                                        return Err(DatalogError::UnsafeNegatedVar {
                                            var: v.clone(),
                                            rule: rule.to_string(),
                                            line: rule.line,
                                        });
                                    }
                                    doms.push(Some(d));
                                }
                                Term::Wildcard => {
                                    return Err(DatalogError::UnsafeNegatedVar {
                                        var: "_".into(),
                                        rule: rule.to_string(),
                                        line: rule.line,
                                    })
                                }
                                _ => doms.push(None),
                            }
                        }
                        if let (Some(Some(a)), Some(Some(b))) = (doms.first(), doms.get(1)) {
                            if a != b {
                                return Err(DatalogError::ConstraintDomainMismatch {
                                    rule: rule.to_string(),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
            rule_var_domains.push(var_dom);
        }
        self.rule_var_domains = rule_var_domains;

        // Physical-instance analysis: a logical domain needs as many
        // instances as the widest use — attributes within one relation, or
        // distinct variables within one rule.
        let mut instances = vec![1usize; self.domains.len()];
        for rel in &self.relations {
            let mut per_dom: HashMap<usize, usize> = HashMap::new();
            for (_, dom_name) in &rel.attrs {
                *per_dom.entry(self.domain_ix[dom_name]).or_insert(0) += 1;
            }
            for (dom, count) in per_dom {
                instances[dom] = instances[dom].max(count);
            }
        }
        for var_dom in &self.rule_var_domains {
            let mut per_dom: HashMap<usize, usize> = HashMap::new();
            for &dom in var_dom.values() {
                *per_dom.entry(dom).or_insert(0) += 1;
            }
            for (dom, count) in per_dom {
                instances[dom] = instances[dom].max(count);
            }
        }
        self.instances = instances;
        self.lint();
        Ok(())
    }

    /// Collects non-fatal lints: unused relations, dead rules and
    /// singleton variables.
    fn lint(&mut self) {
        let mut in_head = vec![false; self.relations.len()];
        let mut in_body = vec![false; self.relations.len()];
        for rule in &self.rules {
            in_head[self.relation_ix[&rule.head.relation]] = true;
            for lit in &rule.body {
                if let Literal::Atom { atom, .. } = lit {
                    in_body[self.relation_ix[&atom.relation]] = true;
                }
            }
        }
        let mut warnings = Vec::new();
        for (i, rel) in self.relations.iter().enumerate() {
            if !in_head[i] && !in_body[i] {
                warnings.push(DatalogError::UnusedRelation {
                    relation: rel.name.clone(),
                });
            }
        }
        for rule in &self.rules {
            let head = &self.relations[self.relation_ix[&rule.head.relation]];
            if head.kind != RelationKind::Output && !in_body[self.relation_ix[&head.name]] {
                warnings.push(DatalogError::DeadRule {
                    rule: rule.to_string(),
                    line: rule.line,
                });
            }
        }
        // Singleton variables: a named variable occurring exactly once in a
        // rule (head, body atoms and constraints all count) joins nothing
        // and constrains nothing — the author either misspelled a join
        // variable or meant the wildcard `_`.
        for rule in &self.rules {
            // First-occurrence order keeps the warning list deterministic.
            let mut occurrences: Vec<(String, usize)> = Vec::new();
            let visit = |term: &Term, occurrences: &mut Vec<(String, usize)>| {
                if let Term::Var(v) = term {
                    match occurrences.iter_mut().find(|(n, _)| n == v) {
                        Some((_, c)) => *c += 1,
                        None => occurrences.push((v.clone(), 1)),
                    }
                }
            };
            for term in &rule.head.args {
                visit(term, &mut occurrences);
            }
            for lit in &rule.body {
                match lit {
                    Literal::Atom { atom, .. } => {
                        for term in &atom.args {
                            visit(term, &mut occurrences);
                        }
                    }
                    Literal::Constraint { left, right, .. } => {
                        visit(left, &mut occurrences);
                        visit(right, &mut occurrences);
                    }
                }
            }
            for (var, count) in occurrences {
                if count == 1 {
                    warnings.push(DatalogError::SingletonVariable {
                        var,
                        rule: rule.to_string(),
                        line: rule.line,
                    });
                }
            }
        }
        self.warnings = warnings;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Result<Program, DatalogError> {
        Program::parse(src)
    }

    const HEADER: &str = "DOMAINS\nV 16\nH 8\n\nRELATIONS\ninput a (x : V, y : V)\ninput b (x : V, h : H)\noutput out (x : V, y : V)\noutput oh (h : H)\n\nRULES\n";

    #[test]
    fn accepts_valid() {
        let p = prog(&format!("{HEADER}out(x,y) :- a(x,y), b(y,_).")).unwrap();
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn rejects_unknown_relation() {
        let e = prog(&format!("{HEADER}out(x,y) :- nope(x,y).")).unwrap_err();
        assert!(matches!(e, DatalogError::UnknownRelation(_)));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let e = prog(&format!("{HEADER}out(x,y) :- a(x,y,y).")).unwrap_err();
        assert!(matches!(e, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn rejects_type_conflict() {
        let e = prog(&format!("{HEADER}oh(h) :- a(h,_), b(_,h).")).unwrap_err();
        assert!(matches!(e, DatalogError::TypeConflict { .. }));
    }

    #[test]
    fn rejects_unsafe_head_var() {
        let e = prog(&format!("{HEADER}out(x,z) :- a(x,_).")).unwrap_err();
        assert!(matches!(e, DatalogError::UnsafeHeadVar { .. }));
    }

    #[test]
    fn rejects_unsafe_negated_var() {
        let e = prog(&format!("{HEADER}out(x,x) :- a(x,_), !a(x,z).")).unwrap_err();
        assert!(matches!(e, DatalogError::UnsafeNegatedVar { .. }));
    }

    #[test]
    fn rejects_constant_out_of_range() {
        let e = prog(&format!("{HEADER}oh(h) :- b(_,h), a(17,_).")).unwrap_err();
        assert!(matches!(e, DatalogError::ConstantOutOfRange { .. }));
    }

    #[test]
    fn rejects_mismatched_constraint() {
        let e = prog(&format!("{HEADER}out(x,x) :- a(x,_), b(_,h), x != h.")).unwrap_err();
        assert!(matches!(e, DatalogError::ConstraintDomainMismatch { .. }));
    }

    #[test]
    fn instance_analysis_counts_rule_variables() {
        // Rule with three distinct V variables forces 3 instances of V.
        let p = prog(&format!("{HEADER}out(x,z) :- a(x,y), a(y,z).")).unwrap();
        let v = p.domain_ix["V"];
        assert_eq!(p.instances[v], 3);
        let h = p.domain_ix["H"];
        assert_eq!(p.instances[h], 1);
    }

    #[test]
    fn unsafe_negated_var_names_rule_and_line() {
        let e = prog(&format!("{HEADER}out(x,x) :- a(x,_), !a(x,z).")).unwrap_err();
        match e {
            DatalogError::UnsafeNegatedVar { var, rule, line } => {
                assert_eq!(var, "z");
                assert_eq!(rule, "out(x,x) :- a(x,_), !a(x,z).");
                assert_eq!(line, 12); // HEADER spans 11 lines
            }
            other => panic!("expected UnsafeNegatedVar, got {other:?}"),
        }
    }

    #[test]
    fn warns_on_unused_relation() {
        // `b` is declared but no rule mentions it.
        let p = prog(&format!("{HEADER}out(x,y) :- a(x,y).\noh(h) :- oh(h).")).unwrap();
        let unused: Vec<String> = p
            .warnings()
            .iter()
            .filter_map(|w| match w {
                DatalogError::UnusedRelation { relation } => Some(relation.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(unused, vec!["b".to_string()]);
    }

    #[test]
    fn warns_on_dead_rule() {
        let src = "DOMAINS\nV 16\nRELATIONS\ninput a (x : V)\ndead (x : V)\noutput out (x : V)\nRULES\ndead(x) :- a(x).\nout(x) :- a(x).\n";
        let p = prog(src).unwrap();
        let dead: Vec<(&str, usize)> = p
            .warnings()
            .iter()
            .filter_map(|w| match w {
                DatalogError::DeadRule { rule, line } => Some((rule.as_str(), *line)),
                _ => None,
            })
            .collect();
        assert_eq!(dead, vec![("dead(x) :- a(x).", 8)]);
    }

    #[test]
    fn warns_on_singleton_variable() {
        // `y` is bound by `a` but used nowhere else: a singleton.
        let p = prog(&format!("{HEADER}out(x,x) :- a(x,y), b(x,_).")).unwrap();
        let singles: Vec<(&str, &str, usize)> = p
            .warnings()
            .iter()
            .filter_map(|w| match w {
                DatalogError::SingletonVariable { var, rule, line } => {
                    Some((var.as_str(), rule.as_str(), *line))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            singles,
            vec![("y", "out(x,x) :- a(x,y), b(x,_).", 12)],
            "{:?}",
            p.warnings()
        );
    }

    #[test]
    fn wildcards_and_joined_variables_are_not_singletons() {
        // Every named variable occurs at least twice; `_` never warns.
        let p = prog(&format!("{HEADER}out(x,y) :- a(x,y), b(y,_).")).unwrap();
        assert!(
            !p.warnings()
                .iter()
                .any(|w| matches!(w, DatalogError::SingletonVariable { .. })),
            "{:?}",
            p.warnings()
        );
    }

    #[test]
    fn constraint_use_counts_against_singleton() {
        // `h` occurs in `b` and in the constraint: two uses, no warning.
        let p = prog(&format!("{HEADER}out(x,x) :- a(x,_), b(x,h), h != 3.")).unwrap();
        assert!(
            !p.warnings()
                .iter()
                .any(|w| matches!(w, DatalogError::SingletonVariable { .. })),
            "{:?}",
            p.warnings()
        );
    }

    #[test]
    fn no_warnings_for_read_intermediates() {
        // `mid` is intermediate but read by the output rule: not dead.
        let src = "DOMAINS\nV 16\nRELATIONS\ninput a (x : V)\nmid (x : V)\noutput out (x : V)\nRULES\nmid(x) :- a(x).\nout(x) :- mid(x).\n";
        let p = prog(src).unwrap();
        assert!(p.warnings().is_empty(), "{:?}", p.warnings());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let e =
            prog("DOMAINS\nV 4\nRELATIONS\ninput a (x : V)\ninput a (x : V)\nRULES\n").unwrap_err();
        assert!(matches!(e, DatalogError::DuplicateRelation(_)));
    }
}
