//! The parallel solver: stratum/SCC-level rule parallelism with
//! per-worker BDD managers.
//!
//! The scheduler walks the SCC condensation of the rule-dependency graph in
//! topological order and keeps every *ready* stratum (all predecessors
//! solved) in flight at once, fanning individual rule applications out to a
//! pool of `std::thread` workers. Two levels of parallelism share the one
//! pool:
//!
//! 1. **DAG level** — independent strata run concurrently. The speedup
//!    ceiling here is the condensation's weighted critical path
//!    ([`SolveStats::critical_path_time`]).
//! 2. **Round level** — within a recursive stratum, the semi-naive rule
//!    *variants* of one fixpoint round are independent (their contributions
//!    are OR-combined, which commutes), so each round is a
//!    bulk-synchronous-parallel step: dispatch all variants, rendezvous,
//!    merge, broadcast the fresh deltas, repeat. On the paper's workload
//!    this is the workhorse level — the context-sensitive analysis spends
//!    most of its time inside one large SCC.
//!
//! **Manager ownership.** The BDD kernel is single-threaded by design
//! (`BddManager` is an `Rc` around its store), so nothing is shared:
//! the main thread keeps the engine's manager, and every worker builds a
//! private manager from the same `DomainSpec`/`OrderSpec` pair. Identical
//! construction gives identical variable numbering, so relations cross
//! threads as [`BddSnapshot`]s — plain-data, `Send` node lists naming
//! stable variables — and restore one-to-one on the other side, valid under
//! any variable order either side has sifted to in the meantime. The kernel
//! needs no locks; the only synchronization is the message channels.
//!
//! **Rendezvous protocol.** The main thread owns the authoritative relation
//! table and all merge algebra; workers hold lazily materialized *mirrors*.
//! When a stratum activates, its external sources are broadcast once
//! (`Load{reset}`); a recursive stratum's own relations follow at fixpoint
//! start, with `DeltaIsFull` aliasing the first round's delta to the mirror
//! instead of shipping the same nodes twice. After each round the main
//! thread diffs the returned contributions against the relation table and
//! broadcasts only the fresh tuples (`Load{set_delta}`). Per-worker
//! channels are FIFO, so a worker always sees the broadcasts of round *n*
//! before the tasks of round *n + 1*; mirrors are restored on first use,
//! so a worker that never evaluates a rule over some relation never pays
//! for its transfer.
//!
//! Determinism: every stratum's result is a pure function of its input
//! relations, contributions are merged with OR (commutative), and BDDs are
//! canonical — so the solved relations are byte-identical for every worker
//! count, including with reordering enabled on any manager.

use crate::engine::{cache_add, Engine, SolveStats, REORDER_MIN_NODES};
use crate::eval::RuleEval;
use crate::plan::RulePlan;
use crate::DatalogError;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use whale_bdd::io::BddSnapshot;
use whale_bdd::{Bdd, BddManager, BddManagerOptions, CacheStats, DomainId, DomainSpec, OrderSpec};

/// Predecessor strata of each stratum: `preds[c]` lists the components
/// (deduplicated, sorted) whose relations some rule with head in `c`
/// reads, positively or negatively. Indices follow the condensation's
/// topological order, so every predecessor index is smaller than its
/// successor's.
pub(crate) fn comp_preds(plans: &[RulePlan], comp_of: &[usize], ncomps: usize) -> Vec<Vec<usize>> {
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ncomps];
    for plan in plans {
        let h = comp_of[plan.head.rel];
        for atom in plan.positive.iter().chain(&plan.negative) {
            let a = comp_of[atom.rel];
            if a != h {
                preds[h].insert(a);
            }
        }
    }
    preds.into_iter().map(|s| s.into_iter().collect()).collect()
}

/// Length of the weighted critical path through the stratum DAG: the
/// longest chain of dependent strata, each weighted by its solve time.
/// This is the Amdahl bound for DAG-level parallelism — no worker count
/// can push the solve below it.
pub(crate) fn critical_path(times: &[Duration], preds: &[Vec<usize>]) -> Duration {
    let mut dp = vec![Duration::ZERO; preds.len()];
    for c in 0..preds.len() {
        let inherited = preds[c]
            .iter()
            .map(|&p| dp[p])
            .max()
            .unwrap_or(Duration::ZERO);
        dp[c] = inherited + times.get(c).copied().unwrap_or(Duration::ZERO);
    }
    dp.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Everything a worker needs to evaluate rules. Owned (cloned out of the
/// engine before the pool spawns) so the scheduler keeps exclusive use of
/// the engine itself.
struct WorkerCtx<'a> {
    specs: Vec<DomainSpec>,
    order: OrderSpec,
    bdd_opts: BddManagerOptions,
    scratch_map: HashMap<DomainId, DomainId>,
    plans: &'a [RulePlan],
    fuse_renames: bool,
    rel_cache: bool,
    reorder: bool,
    nrel: usize,
}

enum ToWorker {
    /// Update the mirror of `rel`: replace it (`reset`) or OR into it.
    /// With `set_delta` the snapshot also becomes the relation's current
    /// fixpoint delta.
    Load {
        rel: usize,
        snap: Arc<BddSnapshot>,
        reset: bool,
        set_delta: bool,
    },
    /// The relation's delta is its full mirrored value (first fixpoint
    /// round) — no second shipment of the same nodes.
    DeltaIsFull { rel: usize },
    /// Evaluate plan `plan` with the delta on positive-atom occurrence
    /// `occ` (`None`: all sources full — non-recursive rules and naive
    /// fixpoint rounds).
    Task { plan: usize, occ: Option<usize> },
    /// Drain: report manager statistics and exit.
    Finish,
}

enum FromWorker {
    Done {
        worker: usize,
        plan: usize,
        /// `None` when the contribution is empty — nothing to ship back.
        snap: Option<BddSnapshot>,
        eval_time: Duration,
    },
    Finished {
        peak_live: usize,
        caches: [CacheStats; 5],
        reorder_runs: usize,
        reorder_time: Duration,
        reorder_delta_nodes: i64,
    },
}

/// A worker's lazily materialized copy of one relation.
#[derive(Default)]
struct Mirror {
    /// Materialized value (`None` = nothing restored yet, i.e. zero unless
    /// snapshots are pending).
    base: Option<Bdd>,
    /// Snapshots received but not yet restored, to OR into `base` on first
    /// use.
    pending: Vec<Arc<BddSnapshot>>,
    /// Current fixpoint delta as an unrestored snapshot.
    delta_snap: Option<Arc<BddSnapshot>>,
    /// The delta aliases the full mirror (first fixpoint round).
    delta_is_full: bool,
    /// Restored delta, cached until the next delta update.
    delta_mat: Option<Bdd>,
}

fn worker_main(
    ctx: &WorkerCtx<'_>,
    rx: mpsc::Receiver<ToWorker>,
    tx: mpsc::Sender<FromWorker>,
    worker_ix: usize,
) {
    // Same specs and order as the engine's manager: identical variable
    // numbering, so snapshots restore with no translation.
    let mgr = BddManager::with_domains_and_options(&ctx.specs, &ctx.order, &ctx.bdd_opts)
        .expect("worker manager: same specs as the engine's");
    let eval = RuleEval::new(
        mgr.clone(),
        ctx.scratch_map.clone(),
        ctx.fuse_renames,
        ctx.rel_cache,
    );
    let mut mirrors: Vec<Mirror> = (0..ctx.nrel).map(|_| Mirror::default()).collect();
    let mut reorder_at = REORDER_MIN_NODES;
    let mut reorder_runs = 0usize;
    let mut reorder_time = Duration::ZERO;
    let mut reorder_delta_nodes = 0i64;

    // Restores the pending snapshots of one mirror and returns its value.
    let materialize = |mirrors: &mut [Mirror], rel: usize| -> Bdd {
        let m = &mut mirrors[rel];
        let mut b = m.base.clone().unwrap_or_else(|| mgr.zero());
        for s in m.pending.drain(..) {
            b = b.or(&s.restore(&mgr).expect("identical manager layout"));
        }
        m.base = Some(b.clone());
        b
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Load {
                rel,
                snap,
                reset,
                set_delta,
            } => {
                let m = &mut mirrors[rel];
                if reset {
                    m.base = None;
                    m.pending.clear();
                }
                m.pending.push(snap.clone());
                if set_delta {
                    m.delta_snap = Some(snap);
                    m.delta_is_full = false;
                    m.delta_mat = None;
                }
            }
            ToWorker::DeltaIsFull { rel } => {
                let m = &mut mirrors[rel];
                m.delta_snap = None;
                m.delta_is_full = true;
                m.delta_mat = None;
            }
            ToWorker::Task { plan, occ } => {
                let t0 = Instant::now();
                let p = &ctx.plans[plan];
                let srcs: Vec<Bdd> = p
                    .positive
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if occ == Some(i) {
                            // The variant's delta operand.
                            if mirrors[a.rel].delta_mat.is_none() {
                                let d = if mirrors[a.rel].delta_is_full {
                                    materialize(&mut mirrors, a.rel)
                                } else if let Some(s) = mirrors[a.rel].delta_snap.clone() {
                                    s.restore(&mgr).expect("identical manager layout")
                                } else {
                                    mgr.zero()
                                };
                                mirrors[a.rel].delta_mat = Some(d);
                            }
                            mirrors[a.rel].delta_mat.clone().expect("just cached")
                        } else {
                            materialize(&mut mirrors, a.rel)
                        }
                    })
                    .collect();
                let neg_srcs: Vec<Bdd> = p
                    .negative
                    .iter()
                    .map(|a| materialize(&mut mirrors, a.rel))
                    .collect();
                let order = if p.positive.is_empty() {
                    Vec::new()
                } else {
                    RuleEval::join_order(p, occ.unwrap_or(0))
                };
                let contrib = eval.eval_rule(p, &srcs, &neg_srcs, &order);
                let snap = if contrib.is_zero() {
                    None
                } else {
                    Some(BddSnapshot::of(&contrib))
                };
                if tx
                    .send(FromWorker::Done {
                        worker: worker_ix,
                        plan,
                        snap,
                        eval_time: t0.elapsed(),
                    })
                    .is_err()
                {
                    return; // main thread gone
                }
                // Between tasks no kernel operation is in flight, so a
                // worker sifts its private table on the same adaptive
                // threshold the sequential engine uses. Mirrors and cached
                // deltas survive in place; snapshots restored later are
                // order-independent anyway.
                if ctx.reorder && mgr.stats().live_nodes >= reorder_at {
                    let r0 = Instant::now();
                    let rs = mgr.reorder_sift();
                    reorder_runs += 1;
                    reorder_time += r0.elapsed();
                    reorder_delta_nodes += rs.delta_nodes();
                    reorder_at = (rs.nodes_after * 2).max(REORDER_MIN_NODES);
                }
            }
            ToWorker::Finish => {
                let s = mgr.stats();
                let _ = tx.send(FromWorker::Finished {
                    peak_live: s.peak_live_nodes,
                    caches: [
                        s.apply_cache,
                        s.ite_cache,
                        s.appex_cache,
                        s.replace_cache,
                        s.client_cache,
                    ],
                    reorder_runs,
                    reorder_time,
                    reorder_delta_nodes,
                });
                return;
            }
        }
    }
}

/// Per-stratum solve state on the main thread.
struct CompRun {
    started: Instant,
    /// Tasks dispatched and not yet rendezvoused.
    outstanding: usize,
    /// In the fixpoint phase (false: non-recursive phase).
    fixpoint: bool,
    /// Global plan indices of this stratum's recursive rules.
    rec_plans: Vec<usize>,
    /// Round contributions per head relation, merged at the rendezvous.
    acc: HashMap<usize, Bdd>,
    /// Main-side fixpoint deltas, mirroring what workers hold.
    delta: HashMap<usize, Bdd>,
}

struct Sched<'e, 'p> {
    engine: &'e mut Engine,
    plans: &'p [RulePlan],
    comp_of: &'p [usize],
    comps: &'p [Vec<usize>],
    succs: Vec<Vec<usize>>,
    indeg: Vec<usize>,
    senders: Vec<mpsc::Sender<ToWorker>>,
    inflight: Vec<usize>,
    /// Relations whose current value the workers hold (mirror == main).
    shipped: Vec<bool>,
    runs: HashMap<usize, CompRun>,
    /// Which stratum each outstanding plan-task belongs to, keyed by plan
    /// index (a plan only ever runs for its head's stratum).
    ready: VecDeque<usize>,
    solved_count: usize,
    stratum_times: Vec<Duration>,
    transferred: u64,
    rounds: usize,
    rule_applications: usize,
    reorder_at: usize,
}

impl Sched<'_, '_> {
    /// Sends one message to every worker. The snapshot is built once and
    /// shared (`Arc`); workers restore it lazily on first use, so the
    /// transfer counter counts its nodes once — the traffic crossing the
    /// channel, not the fan-out.
    fn broadcast_load(&mut self, rel: usize, bdd: &Bdd, reset: bool, set_delta: bool) {
        let snap = Arc::new(BddSnapshot::of(bdd));
        self.transferred += snap.node_count() as u64;
        for s in &self.senders {
            s.send(ToWorker::Load {
                rel,
                snap: Arc::clone(&snap),
                reset,
                set_delta,
            })
            .expect("worker alive");
        }
    }

    /// Ships a relation's full current value once (no-op if the workers
    /// already hold it). Zero relations ship nothing: mirrors start zero.
    fn ship_full(&mut self, rel: usize) {
        if self.shipped[rel] {
            return;
        }
        self.shipped[rel] = true;
        if !self.engine.rel[rel].bdd.is_zero() {
            let bdd = self.engine.rel[rel].bdd.clone();
            self.broadcast_load(rel, &bdd, true, false);
        }
    }

    /// Dispatches one rule task, preferring the plan's affinity worker —
    /// the same rule always lands on the same manager, so its source
    /// mirrors are materialized (and its operand subgraphs cached) once,
    /// not on every worker. Falls back to the least-loaded worker when
    /// the preferred one is clearly behind, trading cache locality for
    /// load balance.
    fn dispatch(&mut self, plan: usize, occ: Option<usize>) {
        let pref = plan % self.senders.len();
        let least = (0..self.senders.len())
            .min_by_key(|&w| self.inflight[w])
            .expect("at least one worker");
        let w = if self.inflight[pref] > self.inflight[least] + 2 {
            least
        } else {
            pref
        };
        self.inflight[w] += 1;
        self.senders[w]
            .send(ToWorker::Task { plan, occ })
            .expect("worker alive");
    }

    /// Activates stratum `c`: ships its external sources, then dispatches
    /// its non-recursive rules (or moves straight to the fixpoint).
    fn start_comp(&mut self, c: usize) {
        let plan_ixs: Vec<usize> = (0..self.plans.len())
            .filter(|&i| self.comp_of[self.plans[i].head.rel] == c)
            .collect();
        if plan_ixs.is_empty() {
            self.comp_done(c, Duration::ZERO);
            return;
        }
        let started = Instant::now();
        // External sources (positive and negative) this stratum reads.
        let mut ext: BTreeSet<usize> = BTreeSet::new();
        for &i in &plan_ixs {
            let p = &self.plans[i];
            for atom in p.positive.iter().chain(&p.negative) {
                if self.comp_of[atom.rel] != c {
                    ext.insert(atom.rel);
                }
            }
        }
        for rel in ext {
            self.ship_full(rel);
        }
        let is_rec = |p: &RulePlan| p.positive.iter().any(|a| self.comp_of[a.rel] == c);
        let rec_plans: Vec<usize> = plan_ixs
            .iter()
            .copied()
            .filter(|&i| is_rec(&self.plans[i]))
            .collect();
        let nonrec: Vec<usize> = plan_ixs
            .iter()
            .copied()
            .filter(|&i| !is_rec(&self.plans[i]))
            .collect();
        self.runs.insert(
            c,
            CompRun {
                started,
                outstanding: nonrec.len(),
                fixpoint: false,
                rec_plans,
                acc: HashMap::new(),
                delta: HashMap::new(),
            },
        );
        if nonrec.is_empty() {
            self.finish_nonrec(c);
        } else {
            for i in nonrec {
                self.dispatch(i, None);
            }
        }
    }

    /// Non-recursive rendezvous reached: enter the fixpoint phase, or
    /// close the stratum if it has no recursive rules.
    fn finish_nonrec(&mut self, c: usize) {
        let run = self.runs.get_mut(&c).expect("active comp");
        if run.rec_plans.is_empty() {
            let elapsed = run.started.elapsed();
            self.runs.remove(&c);
            self.comp_done(c, elapsed);
            return;
        }
        run.fixpoint = true;
        // Ship the stratum's own relations (facts plus the non-recursive
        // contributions just merged) and alias the first round's delta to
        // them — the sequential engine's `delta = full value` seeding.
        for &r in &self.comps[c] {
            let bdd = self.engine.rel[r].bdd.clone();
            self.runs
                .get_mut(&c)
                .expect("active comp")
                .delta
                .insert(r, bdd.clone());
            self.shipped[r] = true;
            if !bdd.is_zero() {
                self.broadcast_load(r, &bdd, true, false);
                for s in &self.senders {
                    s.send(ToWorker::DeltaIsFull { rel: r })
                        .expect("worker alive");
                }
            }
        }
        self.dispatch_round(c);
    }

    /// Dispatches one fixpoint round's rule-variant tasks. Semi-naive:
    /// one task per (plan, in-stratum occurrence) with a nonzero delta;
    /// naive: every recursive plan over full sources.
    fn dispatch_round(&mut self, c: usize) {
        self.rounds += 1;
        let run = self.runs.get_mut(&c).expect("active comp");
        run.acc = self.comps[c]
            .iter()
            .map(|&r| (r, self.engine.mgr.zero()))
            .collect();
        let mut tasks: Vec<(usize, Option<usize>)> = Vec::new();
        if self.engine.options.seminaive {
            for &pi in &run.rec_plans {
                let p = &self.plans[pi];
                for occ in 0..p.positive.len() {
                    let rel_r = p.positive[occ].rel;
                    if self.comp_of[rel_r] != c {
                        continue;
                    }
                    if run.delta[&rel_r].is_zero() {
                        continue;
                    }
                    tasks.push((pi, Some(occ)));
                }
            }
        } else {
            tasks.extend(run.rec_plans.iter().map(|&pi| (pi, None)));
        }
        run.outstanding = tasks.len();
        if tasks.is_empty() {
            // No variant can fire: the fixpoint is already reached.
            let run = self.runs.remove(&c).expect("active comp");
            self.comp_done(c, run.started.elapsed());
            return;
        }
        for (pi, occ) in tasks {
            self.dispatch(pi, occ);
        }
    }

    /// Round rendezvous: diff the merged contributions against the
    /// relation table, broadcast fresh deltas, and either start the next
    /// round or close the stratum.
    fn finish_round(&mut self, c: usize) {
        let mut changed = false;
        let comp_rels = self.comps[c].clone();
        for &r in &comp_rels {
            let acc = self.runs[&c].acc[&r].clone();
            let fresh = acc.diff(&self.engine.rel[r].bdd);
            if !fresh.is_zero() {
                self.engine.rel[r].bdd = self.engine.rel[r].bdd.or(&fresh);
                self.broadcast_load(r, &fresh, false, true);
                changed = true;
            }
            self.runs
                .get_mut(&c)
                .expect("active comp")
                .delta
                .insert(r, fresh);
        }
        if !changed {
            let run = self.runs.remove(&c).expect("active comp");
            self.comp_done(c, run.started.elapsed());
            return;
        }
        // Same between-rounds sifting policy as the sequential path, on
        // the main manager (workers sift their own between tasks).
        let mut dummy = SolveStats::default();
        self.engine.maybe_reorder(&mut dummy, &mut self.reorder_at);
        self.dispatch_round(c);
    }

    /// Marks a stratum solved and activates any successors that became
    /// ready.
    fn comp_done(&mut self, c: usize, elapsed: Duration) {
        self.stratum_times[c] = elapsed;
        self.solved_count += 1;
        let succs = std::mem::take(&mut self.succs[c]);
        for &s in &succs {
            self.indeg[s] -= 1;
            if self.indeg[s] == 0 {
                self.ready.push_back(s);
            }
        }
        self.succs[c] = succs;
    }

    /// Handles one worker message.
    fn handle_done(
        &mut self,
        worker: usize,
        plan: usize,
        snap: Option<BddSnapshot>,
        eval_time: Duration,
    ) -> Result<(), DatalogError> {
        self.inflight[worker] -= 1;
        self.rule_applications += 1;
        {
            let mut prof = self.engine.rule_profile.borrow_mut();
            if let Some(slot) = prof.get_mut(self.plans[plan].rule_ix) {
                slot.0 += eval_time;
                slot.1 += 1;
            }
        }
        let c = self.comp_of[self.plans[plan].head.rel];
        let contrib = match snap {
            Some(s) => {
                self.transferred += s.node_count() as u64;
                Some(s.restore(&self.engine.mgr)?)
            }
            None => None,
        };
        let head = self.plans[plan].head.rel;
        let run = self.runs.get_mut(&c).expect("active comp");
        if let Some(contrib) = contrib {
            if run.fixpoint {
                let a = run.acc.get_mut(&head).expect("head in stratum");
                *a = a.or(&contrib);
            } else {
                self.engine.rel[head].bdd = self.engine.rel[head].bdd.or(&contrib);
            }
        }
        run.outstanding -= 1;
        if run.outstanding == 0 {
            if run.fixpoint {
                self.finish_round(c);
            } else {
                self.finish_nonrec(c);
            }
        }
        Ok(())
    }
}

/// Solves the program with `engine.options.jobs` worker threads. Called by
/// [`Engine::solve`] once plans, the condensation and the stratification
/// check are done; fills the same [`SolveStats`] fields the sequential
/// path does, plus the transfer counter and worker-side cache/reorder
/// activity.
pub(crate) fn solve_parallel(
    engine: &mut Engine,
    plans: &[RulePlan],
    comp_of: &[usize],
    comps: &[Vec<usize>],
    stats: &mut SolveStats,
) -> Result<(), DatalogError> {
    let jobs = engine.options.jobs;
    let nrel = engine.program.relations.len();
    let ncomps = comps.len();
    let preds = comp_preds(plans, comp_of, ncomps);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); ncomps];
    let mut indeg = vec![0usize; ncomps];
    for (c, ps) in preds.iter().enumerate() {
        indeg[c] = ps.len();
        for &p in ps {
            succs[p].push(c);
        }
    }

    let ctx = WorkerCtx {
        specs: engine.specs.clone(),
        order: engine.order_spec.clone(),
        bdd_opts: engine.bdd_opts,
        scratch_map: engine.eval.scratch_map().clone(),
        plans,
        fuse_renames: engine.options.fuse_renames,
        rel_cache: engine.options.rel_cache,
        reorder: engine.options.reorder,
        nrel,
    };

    std::thread::scope(|scope| -> Result<(), DatalogError> {
        let (res_tx, res_rx) = mpsc::channel::<FromWorker>();
        let mut senders = Vec::with_capacity(jobs);
        for w in 0..jobs {
            let (tx, rx) = mpsc::channel::<ToWorker>();
            senders.push(tx);
            let res_tx = res_tx.clone();
            let ctx = &ctx;
            scope.spawn(move || worker_main(ctx, rx, res_tx, w));
        }
        drop(res_tx);

        let mut sched = Sched {
            engine,
            plans,
            comp_of,
            comps,
            succs,
            indeg: indeg.clone(),
            senders,
            inflight: vec![0; jobs],
            shipped: vec![false; nrel],
            runs: HashMap::new(),
            ready: (0..ncomps).filter(|&c| indeg[c] == 0).collect(),
            solved_count: 0,
            stratum_times: vec![Duration::ZERO; ncomps],
            transferred: 0,
            rounds: 0,
            rule_applications: 0,
            reorder_at: REORDER_MIN_NODES,
        };

        while sched.solved_count < ncomps {
            while let Some(c) = sched.ready.pop_front() {
                sched.start_comp(c);
            }
            if sched.solved_count == ncomps {
                break;
            }
            match res_rx.recv().expect("a worker died mid-solve") {
                FromWorker::Done {
                    worker,
                    plan,
                    snap,
                    eval_time,
                } => sched.handle_done(worker, plan, snap, eval_time)?,
                FromWorker::Finished { .. } => unreachable!("no Finish sent yet"),
            }
        }

        // Rendezvous with the pool: collect per-manager statistics.
        for s in &sched.senders {
            s.send(ToWorker::Finish).expect("worker alive");
        }
        let mut done = 0;
        while done < jobs {
            if let FromWorker::Finished {
                peak_live,
                caches,
                reorder_runs,
                reorder_time,
                reorder_delta_nodes,
            } = res_rx.recv().expect("worker finishing")
            {
                // Peak is per manager; report the largest single table
                // (memory scales with `jobs`, which `transferred_nodes`
                // and this maximum make visible together).
                stats.peak_live_nodes = stats.peak_live_nodes.max(peak_live);
                stats.apply_cache = cache_add(stats.apply_cache, caches[0]);
                stats.ite_cache = cache_add(stats.ite_cache, caches[1]);
                stats.appex_cache = cache_add(stats.appex_cache, caches[2]);
                stats.replace_cache = cache_add(stats.replace_cache, caches[3]);
                stats.rel_cache = cache_add(stats.rel_cache, caches[4]);
                stats.reorder_runs += reorder_runs;
                stats.reorder_time += reorder_time;
                stats.reorder_delta_nodes += reorder_delta_nodes;
                done += 1;
            }
        }

        stats.stratum_times = sched.stratum_times;
        stats.transferred_nodes = sched.transferred;
        stats.rounds = sched.rounds;
        stats.rule_applications = sched.rule_applications;
        Ok(())
    })
}
