//! BDD-backed relations and the attribute-rename machinery.
//!
//! Every relation stores its tuples as a BDD over one *physical domain*
//! per attribute (the paper's `V1`, `V2`, `H1`, ... instances). Rule
//! evaluation moves attributes between physical domains with BDD `replace`
//! operations; when the desired moves form a permutation cycle the cycle is
//! broken through a per-logical-domain scratch instance.

use std::collections::{HashMap, HashSet};
use whale_bdd::{Bdd, DomainId};

/// Moves the function's dependence between physical domains.
///
/// `moves` is a list of `(from, to)` physical-domain pairs (an injective
/// partial map); `occupied_now` lists every physical domain the BDD may
/// currently depend on (moved or not); `scratch_of` yields the scratch
/// instance for the logical domain of a physical instance.
///
/// Moves are batched so that every `replace` call targets only vacant
/// domains, which keeps the BDD-level rename sound even when it falls back
/// to conjoin-and-quantify.
pub(crate) fn move_attrs(
    bdd: &Bdd,
    moves: &[(DomainId, DomainId)],
    occupied_now: &[DomainId],
    scratch_of: &HashMap<DomainId, DomainId>,
) -> Bdd {
    let mut pending: Vec<(DomainId, DomainId)> =
        moves.iter().copied().filter(|&(f, t)| f != t).collect();
    if pending.is_empty() {
        return bdd.clone();
    }
    let mut occupied: HashSet<DomainId> = occupied_now.iter().copied().collect();
    let mut current = bdd.clone();
    loop {
        if pending.is_empty() {
            return current;
        }
        let (ready, blocked): (Vec<_>, Vec<_>) = pending
            .iter()
            .copied()
            .partition(|&(_, t)| !occupied.contains(&t));
        if !ready.is_empty() {
            current = current.replace(&ready);
            for (f, t) in &ready {
                occupied.remove(f);
                occupied.insert(*t);
            }
            pending = blocked;
        } else {
            // Every pending target is occupied: a permutation cycle.
            // Break it by evacuating one source to its scratch instance.
            let (from, to) = pending[0];
            let scratch = *scratch_of
                .get(&from)
                .expect("scratch instance registered for every physical domain");
            debug_assert!(!occupied.contains(&scratch), "scratch domain in use");
            current = current.replace(&[(from, scratch)]);
            occupied.remove(&from);
            occupied.insert(scratch);
            pending[0] = (scratch, to);
        }
    }
}

/// Runtime state of one declared relation.
#[derive(Clone)]
pub(crate) struct RelationState {
    /// Physical domain of each attribute.
    pub attr_phys: Vec<DomainId>,
    /// Current tuples.
    pub bdd: Bdd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_bdd::{BddManager, DomainSpec, OrderSpec};

    fn setup() -> (BddManager, Vec<DomainId>, HashMap<DomainId, DomainId>) {
        let mgr = BddManager::with_domains(
            &[
                DomainSpec::new("A0", 64),
                DomainSpec::new("A1", 64),
                DomainSpec::new("A2", 64),
                DomainSpec::new("As", 64),
            ],
            &OrderSpec::parse("A0xA1xA2xAs").unwrap(),
        )
        .unwrap();
        let ids: Vec<DomainId> = ["A0", "A1", "A2", "As"]
            .iter()
            .map(|n| mgr.domain(n).unwrap())
            .collect();
        let scratch: HashMap<DomainId, DomainId> = ids.iter().map(|&d| (d, ids[3])).collect();
        (mgr, ids, scratch)
    }

    #[test]
    fn simple_move() {
        let (mgr, ids, scratch) = setup();
        let f = mgr.domain_range(ids[0], 5, 10);
        let g = move_attrs(&f, &[(ids[0], ids[1])], &[ids[0]], &scratch);
        assert_eq!(g, mgr.domain_range(ids[1], 5, 10));
    }

    #[test]
    fn swap_through_scratch() {
        let (mgr, ids, scratch) = setup();
        // f = (A0 in 1..3) ∧ (A1 = 9); swap A0 and A1.
        let f = mgr
            .domain_range(ids[0], 1, 3)
            .and(&mgr.domain_const(ids[1], 9));
        let g = move_attrs(
            &f,
            &[(ids[0], ids[1]), (ids[1], ids[0])],
            &[ids[0], ids[1]],
            &scratch,
        );
        let expected = mgr
            .domain_range(ids[1], 1, 3)
            .and(&mgr.domain_const(ids[0], 9));
        assert_eq!(g, expected);
    }

    #[test]
    fn three_cycle() {
        let (mgr, ids, scratch) = setup();
        let f = mgr
            .domain_const(ids[0], 1)
            .and(&mgr.domain_const(ids[1], 2))
            .and(&mgr.domain_const(ids[2], 3));
        // 0 -> 1 -> 2 -> 0
        let g = move_attrs(
            &f,
            &[(ids[0], ids[1]), (ids[1], ids[2]), (ids[2], ids[0])],
            &[ids[0], ids[1], ids[2]],
            &scratch,
        );
        let expected = mgr
            .domain_const(ids[1], 1)
            .and(&mgr.domain_const(ids[2], 2))
            .and(&mgr.domain_const(ids[0], 3));
        assert_eq!(g, expected);
    }

    #[test]
    fn chain_resolves_without_scratch() {
        let (mgr, ids, scratch) = setup();
        // 0 -> 1 while 1 -> 2: applying 1->2 first frees 1.
        let f = mgr
            .domain_const(ids[0], 7)
            .and(&mgr.domain_const(ids[1], 8));
        let g = move_attrs(
            &f,
            &[(ids[0], ids[1]), (ids[1], ids[2])],
            &[ids[0], ids[1]],
            &scratch,
        );
        let expected = mgr
            .domain_const(ids[1], 7)
            .and(&mgr.domain_const(ids[2], 8));
        assert_eq!(g, expected);
    }

    #[test]
    fn noop_moves() {
        let (mgr, ids, scratch) = setup();
        let f = mgr.domain_range(ids[0], 0, 63);
        assert_eq!(move_attrs(&f, &[], &[ids[0]], &scratch), f);
        assert_eq!(move_attrs(&f, &[(ids[0], ids[0])], &[ids[0]], &scratch), f);
    }
}
