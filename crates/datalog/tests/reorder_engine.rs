//! Engine-level dynamic reordering tests: sifting between fixpoint rounds
//! must leave every solved relation bit-identical, and solver statistics
//! must describe the solve they came from.

use whale_datalog::{Engine, EngineOptions, Program};
use whale_testkit::Rng;

const TC: &str = r#"
DOMAINS
V 1024

RELATIONS
input edge (src : V, dst : V)
output path (src : V, dst : V)
"#;

const TC_RULES: &str = r#"
RULES
path(x,y) :- edge(x,y).
path(x,z) :- path(x,y), edge(y,z).
"#;

fn tc_engine(reorder: bool, seed: u64) -> Engine {
    let src = format!("{TC}{TC_RULES}");
    let program = Program::parse(&src).unwrap();
    // A deliberately split per-instance order gives the sifting pass three
    // movable blocks (the default single-group layout has nothing to move).
    let mut e = Engine::with_options(
        program,
        EngineOptions {
            order: Some("V2_V1_V0".into()),
            reorder,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    // A sparse random graph big enough that the fixpoint crosses the
    // reorder threshold.
    let mut rng = Rng::seed_from_u64(seed);
    let edges: Vec<[u64; 2]> = (0..500)
        .map(|_| [rng.gen_range(0..1024u64), rng.gen_range(0..1024u64)])
        .collect();
    e.add_facts("edge", edges.iter()).unwrap();
    e.solve().unwrap();
    e
}

#[test]
fn reorder_mid_solve_leaves_relations_unchanged() {
    let mut fired = 0usize;
    for seed in [1, 2, 3] {
        let plain = tc_engine(false, seed);
        let reordered = tc_engine(true, seed);
        let mut a = plain.relation_tuples("path").unwrap();
        let mut b = reordered.relation_tuples("path").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "reordering changed the fixpoint (seed {seed})");
        assert!(!a.is_empty());
        assert_eq!(plain.stats().reorder_runs, 0);
        fired += reordered.stats().reorder_runs;
    }
    assert!(
        fired > 0,
        "reordering never fired on any seed; the equivalence check is vacuous"
    );
}

#[test]
fn reorder_stats_are_reported() {
    let e = tc_engine(true, 1);
    let stats = e.stats();
    if stats.reorder_runs > 0 {
        assert!(stats.reorder_time > std::time::Duration::ZERO);
        // Every pass parks each block at its best position, so no pass can
        // grow the table: eliminated nodes never go negative.
        assert!(stats.reorder_delta_nodes >= 0);
    }
}

#[test]
fn peak_live_nodes_resets_between_solves() {
    let src = format!("{TC}{TC_RULES}");
    let program = Program::parse(&src).unwrap();
    let mut e = Engine::new(program).unwrap();
    e.add_fact("edge", &[1, 2]).unwrap();
    e.add_fact("edge", &[2, 3]).unwrap();
    e.solve().unwrap();

    // Inflate the peak far beyond anything this tiny program touches:
    // a pairing function across distant variables is exponential in the
    // number of pairs under the fixed order.
    let m = e.manager().clone();
    {
        let mut f = m.one();
        for i in 0..11u32 {
            let eq = m.ithvar(i).xor(&m.ithvar(16 + i)).not();
            f = f.and(&eq);
        }
        assert!(m.stats().peak_live_nodes > 2048);
        drop(f);
    }

    // The stale high-water mark must not leak into the next solve's
    // report.
    let stats = e.solve().unwrap();
    assert!(
        stats.peak_live_nodes < 2048,
        "peak_live_nodes carried over from outside the solve: {}",
        stats.peak_live_nodes
    );
}

#[test]
fn current_order_renders_and_tracks_groups() {
    let src = r#"
DOMAINS
A 256
B 256
C 256

RELATIONS
input r (x : A, y : B, z : C)
output s (x : A, y : B, z : C)

RULES
s(x,y,z) :- r(x,y,z).
"#;
    let program = Program::parse(src).unwrap();
    let e = Engine::with_options(
        program,
        EngineOptions {
            order: Some("C_AxB".into()),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    // Before any reordering this is exactly the construction order.
    assert_eq!(e.current_order(), "C_AxB");

    let program = Program::parse(src).unwrap();
    let e = Engine::new(program).unwrap();
    assert_eq!(e.current_order(), "A_B_C");
}
