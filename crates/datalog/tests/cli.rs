//! End-to-end test of the `bddbddb` command-line driver: program file,
//! tuple files in, tuple files out, `.bdd` caching.

use std::process::Command;

fn bddbddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bddbddb"))
}

#[test]
fn solves_from_files_and_caches_bdds() {
    let dir = std::env::temp_dir().join(format!("whale_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("tc.datalog");
    std::fs::write(
        &program,
        "DOMAINS\nV 64\nRELATIONS\ninput edge (s : V, d : V)\noutput path (s : V, d : V)\nRULES\npath(x,y) :- edge(x,y).\npath(x,z) :- path(x,y), edge(y,z).\n",
    )
    .unwrap();
    std::fs::write(dir.join("edge.tuples"), "0 1\n1 2\n# comment\n2 3\n").unwrap();

    let out = bddbddb()
        .arg(&program)
        .args(["--facts", dir.to_str().unwrap()])
        .args(["--out", dir.to_str().unwrap()])
        .args(["--bdd-cache", dir.join("cache").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("path: 6 tuples"), "{stdout}");

    // Output tuples are correct and sorted-parsable.
    let tuples = std::fs::read_to_string(dir.join("path.tuples")).unwrap();
    let mut rows: Vec<Vec<u64>> = tuples
        .lines()
        .map(|l| l.split_whitespace().map(|t| t.parse().unwrap()).collect())
        .collect();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3]
        ]
    );
    assert!(dir.join("cache/path.bdd").exists());

    // Second run loads nothing new and reproduces the result; seed the
    // cache as an input by renaming the saved output relation.
    std::fs::copy(dir.join("cache/path.bdd"), dir.join("cache/edge.bdd")).unwrap();
    let out2 = bddbddb()
        .arg(&program)
        .args(["--facts", dir.to_str().unwrap()])
        .args(["--out", dir.to_str().unwrap()])
        .args(["--bdd-cache", dir.join("cache").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out2.status.success());
    let stderr = String::from_utf8_lossy(&out2.stderr);
    assert!(
        stderr.contains("loaded edge from"),
        "cache should take precedence: {stderr}"
    );
    // edge := old path (already transitive), so path = edge = 6 tuples.
    assert!(String::from_utf8_lossy(&out2.stdout).contains("path: 6 tuples"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reports_errors_cleanly() {
    let out = bddbddb().arg("/nonexistent.datalog").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bddbddb:"));

    let dir = std::env::temp_dir().join(format!("whale_cli_err_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.datalog");
    std::fs::write(&bad, "DOMAINS\nV 8\nRULES\np(x) :- q(x).").unwrap();
    let out = bddbddb().arg(&bad).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown relation"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn naive_flag_matches_default() {
    let dir = std::env::temp_dir().join(format!("whale_cli_naive_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("tc.datalog");
    std::fs::write(
        &program,
        "DOMAINS\nV 32\nRELATIONS\ninput edge (s : V, d : V)\noutput path (s : V, d : V)\nRULES\npath(x,y) :- edge(x,y).\npath(x,z) :- path(x,y), edge(y,z).\n",
    )
    .unwrap();
    std::fs::write(dir.join("edge.tuples"), "0 1\n1 2\n2 0\n3 4\n").unwrap();
    let mut results = Vec::new();
    for extra in [None, Some("--naive")] {
        let mut cmd = bddbddb();
        cmd.arg(&program)
            .args(["--facts", dir.to_str().unwrap()])
            .args(["--out", dir.to_str().unwrap()]);
        if let Some(flag) = extra {
            cmd.arg(flag);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success());
        let mut rows: Vec<String> = std::fs::read_to_string(dir.join("path.tuples"))
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        rows.sort();
        results.push(rows);
    }
    assert_eq!(results[0], results[1]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_warnings_reach_stderr() {
    let dir = std::env::temp_dir().join(format!("whale_cli_lint_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("lint.datalog");
    std::fs::write(
        &program,
        "DOMAINS\nV 8\nRELATIONS\ninput edge (s : V, d : V)\ninput ghost (s : V)\ndead (s : V)\noutput path (s : V, d : V)\nRULES\npath(x,y) :- edge(x,y).\ndead(x) :- edge(x,_).\n",
    )
    .unwrap();
    let out = bddbddb()
        .arg(&program)
        .args(["--facts", dir.to_str().unwrap()])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: relation `ghost` is declared but used by no rule"),
        "{stderr}"
    );
    assert!(
        stderr.contains("warning: dead rule `dead(x) :- edge(x,_).` (line 10)"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn singleton_variable_warning_reaches_stderr() {
    let dir = std::env::temp_dir().join(format!("whale_cli_singleton_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("singleton.datalog");
    // `d` in the second rule binds nothing downstream — the lint should
    // name the variable, the rule and its source line.
    std::fs::write(
        &program,
        "DOMAINS\nV 8\nRELATIONS\ninput edge (s : V, d : V)\noutput path (s : V, d : V)\noutput node (s : V)\nRULES\npath(x,y) :- edge(x,y).\nnode(x) :- edge(x,d).\n",
    )
    .unwrap();
    let out = bddbddb()
        .arg(&program)
        .args(["--facts", dir.to_str().unwrap()])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr
            .contains("warning: variable `d` occurs only once in `node(x) :- edge(x,d).` (line 9)"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_fact_file_names_file_line_and_token() {
    let dir = std::env::temp_dir().join(format!("whale_cli_badfact_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("tc.datalog");
    std::fs::write(
        &program,
        "DOMAINS\nV 8\nRELATIONS\ninput edge (s : V, d : V)\noutput path (s : V, d : V)\nRULES\npath(x,y) :- edge(x,y).\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("edge.tuples"),
        "0 1\n1 2\n2 oops  # not a number\n",
    )
    .unwrap();
    let out = bddbddb()
        .arg(&program)
        .args(["--facts", dir.to_str().unwrap()])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The diagnostic pinpoints the file, the 1-based line, and the token.
    assert!(stderr.contains("edge.tuples:3"), "{stderr}");
    assert!(stderr.contains("bad value `oops`"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_flag_matches_sequential_and_reports_strata() {
    let dir = std::env::temp_dir().join(format!("whale_cli_jobs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("tc.datalog");
    std::fs::write(
        &program,
        "DOMAINS\nV 32\nRELATIONS\ninput edge (s : V, d : V)\noutput path (s : V, d : V)\nRULES\npath(x,y) :- edge(x,y).\npath(x,z) :- path(x,y), edge(y,z).\n",
    )
    .unwrap();
    std::fs::write(dir.join("edge.tuples"), "0 1\n1 2\n2 0\n3 4\n").unwrap();
    let mut results = Vec::new();
    for jobs in ["1", "2"] {
        let out = bddbddb()
            .arg(&program)
            .args(["--facts", dir.to_str().unwrap()])
            .args(["--out", dir.to_str().unwrap()])
            .args(["--jobs", jobs])
            .arg("--stats")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("critical path"), "{stderr}");
        if jobs == "2" {
            assert!(stderr.contains("shipped between managers"), "{stderr}");
        }
        let mut rows: Vec<String> = std::fs::read_to_string(dir.join("path.tuples"))
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        rows.sort();
        results.push(rows);
    }
    assert_eq!(results[0], results[1]);
    std::fs::remove_dir_all(&dir).ok();
}
