//! Differential testing: the BDD engine against a naive tuple-based
//! reference evaluator on randomly generated positive Datalog programs.

use proptest::prelude::*;
use std::collections::BTreeSet;
use whale_datalog::{Engine, EngineOptions, Program};

const DOM: u64 = 8;

/// A random rule over a fixed schema of three binary relations
/// `r0, r1, r2` (r0 is input; r1, r2 are outputs), built to be safe by
/// construction: head vars come from the body's variable pool.
#[derive(Debug, Clone)]
struct RRule {
    head_rel: usize,            // 1 or 2
    head_args: [usize; 2],      // indices into the var pool 0..4
    body: Vec<(usize, [Arg; 2])>, // (relation, args)
}

#[derive(Debug, Clone, Copy)]
enum Arg {
    Var(usize),
    Const(u64),
}

fn arb_arg() -> impl Strategy<Value = Arg> {
    prop_oneof![
        (0usize..4).prop_map(Arg::Var),
        (0u64..DOM).prop_map(Arg::Const),
    ]
}

fn arb_rule() -> impl Strategy<Value = RRule> {
    (
        1usize..3,
        proptest::array::uniform2(0usize..4),
        proptest::collection::vec((0usize..3, proptest::array::uniform2(arb_arg())), 1..4),
    )
        .prop_map(|(head_rel, head_args, body)| RRule {
            head_rel,
            head_args,
            body,
        })
        .prop_filter("head vars bound positively", |r| {
            let bound: Vec<usize> = r
                .body
                .iter()
                .flat_map(|(_, args)| args.iter())
                .filter_map(|a| match a {
                    Arg::Var(v) => Some(*v),
                    _ => None,
                })
                .collect();
            r.head_args.iter().all(|v| bound.contains(v))
        })
}

fn program_text(rules: &[RRule]) -> String {
    let mut s = String::from(
        "DOMAINS\nD 8\nRELATIONS\ninput r0 (a : D, b : D)\noutput r1 (a : D, b : D)\noutput r2 (a : D, b : D)\nRULES\n",
    );
    for r in rules {
        let arg = |a: &Arg| match a {
            Arg::Var(v) => format!("v{v}"),
            Arg::Const(c) => format!("{c}"),
        };
        s.push_str(&format!(
            "r{}(v{},v{}) :- ",
            r.head_rel, r.head_args[0], r.head_args[1]
        ));
        let body: Vec<String> = r
            .body
            .iter()
            .map(|(rel, args)| format!("r{rel}({},{})", arg(&args[0]), arg(&args[1])))
            .collect();
        s.push_str(&body.join(", "));
        s.push_str(".\n");
    }
    s
}

/// Naive reference: iterate all rules over all substitutions to fixpoint.
fn reference_solve(
    rules: &[RRule],
    r0: &BTreeSet<(u64, u64)>,
) -> [BTreeSet<(u64, u64)>; 3] {
    let mut rels: [BTreeSet<(u64, u64)>; 3] =
        [r0.clone(), BTreeSet::new(), BTreeSet::new()];
    loop {
        let mut changed = false;
        for rule in rules {
            // Enumerate substitutions for the (at most 4) variables.
            let mut derived: Vec<(u64, u64)> = Vec::new();
            let mut assign = [0u64; 4];
            enumerate(rule, &rels, 0, &mut assign, &mut derived);
            for t in derived {
                if rels[rule.head_rel].insert(t) {
                    changed = true;
                }
            }
        }
        if !changed {
            return rels;
        }
    }
}

fn enumerate(
    rule: &RRule,
    rels: &[BTreeSet<(u64, u64)>; 3],
    var: usize,
    assign: &mut [u64; 4],
    out: &mut Vec<(u64, u64)>,
) {
    if var == 4 {
        let sat = rule.body.iter().all(|(rel, args)| {
            let val = |a: &Arg| match a {
                Arg::Var(v) => assign[*v],
                Arg::Const(c) => *c,
            };
            rels[*rel].contains(&(val(&args[0]), val(&args[1])))
        });
        if sat {
            out.push((assign[rule.head_args[0]], assign[rule.head_args[1]]));
        }
        return;
    }
    for v in 0..DOM {
        assign[var] = v;
        enumerate(rule, rels, var + 1, assign, out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bdd_engine_matches_reference(
        rules in proptest::collection::vec(arb_rule(), 1..5),
        facts in proptest::collection::btree_set((0u64..DOM, 0u64..DOM), 0..12),
        seminaive in proptest::bool::ANY,
    ) {
        let src = program_text(&rules);
        let program = Program::parse(&src).unwrap();
        let mut engine = Engine::with_options(
            program,
            EngineOptions { seminaive, order: None },
        ).unwrap();
        for &(a, b) in &facts {
            engine.add_fact("r0", &[a, b]).unwrap();
        }
        engine.solve().unwrap();
        let expected = reference_solve(&rules, &facts);
        for rel in [1usize, 2] {
            let mut got: Vec<(u64, u64)> = engine
                .relation_tuples(&format!("r{rel}"))
                .unwrap()
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            got.sort_unstable();
            let want: Vec<(u64, u64)> = expected[rel].iter().copied().collect();
            prop_assert_eq!(got, want, "relation r{} mismatch for program:\n{}", rel, src);
        }
    }
}
