//! Differential testing: the BDD engine against a naive tuple-based
//! reference evaluator on randomly generated positive Datalog programs.
//!
//! Runs on the in-tree `whale-testkit` harness: 64 cases, failing seeds
//! are printed and replayable with `TESTKIT_SEED=<n>`.

use std::collections::BTreeSet;
use whale_datalog::{Engine, EngineOptions, Program};
use whale_testkit::{check, Gen, Rng};

const DOM: u64 = 8;
const CASES: u32 = 64;

/// A random rule over a fixed schema of three binary relations
/// `r0, r1, r2` (r0 is input; r1, r2 are outputs), built to be safe by
/// construction: head vars come from the body's variable pool.
#[derive(Debug, Clone)]
struct RRule {
    head_rel: usize,              // 1 or 2
    head_args: [usize; 2],        // indices into the var pool 0..4
    body: Vec<(usize, [Arg; 2])>, // (relation, args)
}

#[derive(Debug, Clone, Copy)]
enum Arg {
    Var(usize),
    Const(u64),
}

/// One whole test case: a rule set, input facts for `r0`, and the
/// engine's evaluation mode.
#[derive(Debug, Clone)]
struct Case {
    rules: Vec<RRule>,
    facts: BTreeSet<(u64, u64)>,
    seminaive: bool,
}

fn gen_arg(rng: &mut Rng) -> Arg {
    if rng.gen_bool(0.5) {
        Arg::Var(rng.gen_range(0..4usize))
    } else {
        Arg::Const(rng.gen_range(0..DOM))
    }
}

/// Head vars must appear in the body (safety); re-draw until they do.
fn head_bound(r: &RRule) -> bool {
    let bound: Vec<usize> = r
        .body
        .iter()
        .flat_map(|(_, args)| args.iter())
        .filter_map(|a| match a {
            Arg::Var(v) => Some(*v),
            _ => None,
        })
        .collect();
    r.head_args.iter().all(|v| bound.contains(v))
}

fn gen_rule(rng: &mut Rng) -> RRule {
    loop {
        let r = RRule {
            head_rel: rng.gen_range(1..3usize),
            head_args: [rng.gen_range(0..4usize), rng.gen_range(0..4usize)],
            body: (0..rng.gen_range(1..4usize))
                .map(|_| (rng.gen_range(0..3usize), [gen_arg(rng), gen_arg(rng)]))
                .collect(),
        };
        if head_bound(&r) {
            return r;
        }
    }
}

fn arb_case() -> Gen<Case> {
    Gen::new(|rng| {
        let rules = (0..rng.gen_range(1..5usize))
            .map(|_| gen_rule(rng))
            .collect();
        let nfacts = rng.gen_range(0..12usize);
        let facts = (0..nfacts)
            .map(|_| (rng.gen_range(0..DOM), rng.gen_range(0..DOM)))
            .collect();
        Case {
            rules,
            facts,
            seminaive: rng.gen_bool(0.5),
        }
    })
    .with_shrink(|c: &Case| {
        let mut out = Vec::new();
        // Drop one rule at a time (rule bodies stay safe).
        for i in 0..c.rules.len() {
            if c.rules.len() > 1 {
                let mut s = c.clone();
                s.rules.remove(i);
                out.push(s);
            }
        }
        // Drop one fact at a time.
        for f in &c.facts {
            let mut s = c.clone();
            s.facts.remove(f);
            out.push(s);
        }
        // Drop one body atom at a time where the rule stays safe.
        for (i, r) in c.rules.iter().enumerate() {
            for j in 0..r.body.len() {
                if r.body.len() > 1 {
                    let mut nr = r.clone();
                    nr.body.remove(j);
                    if head_bound(&nr) {
                        let mut s = c.clone();
                        s.rules[i] = nr;
                        out.push(s);
                    }
                }
            }
        }
        out
    })
}

fn program_text(rules: &[RRule]) -> String {
    let mut s = String::from(
        "DOMAINS\nD 8\nRELATIONS\ninput r0 (a : D, b : D)\noutput r1 (a : D, b : D)\noutput r2 (a : D, b : D)\nRULES\n",
    );
    for r in rules {
        let arg = |a: &Arg| match a {
            Arg::Var(v) => format!("v{v}"),
            Arg::Const(c) => format!("{c}"),
        };
        s.push_str(&format!(
            "r{}(v{},v{}) :- ",
            r.head_rel, r.head_args[0], r.head_args[1]
        ));
        let body: Vec<String> = r
            .body
            .iter()
            .map(|(rel, args)| format!("r{rel}({},{})", arg(&args[0]), arg(&args[1])))
            .collect();
        s.push_str(&body.join(", "));
        s.push_str(".\n");
    }
    s
}

/// Naive reference: iterate all rules over all substitutions to fixpoint.
fn reference_solve(rules: &[RRule], r0: &BTreeSet<(u64, u64)>) -> [BTreeSet<(u64, u64)>; 3] {
    let mut rels: [BTreeSet<(u64, u64)>; 3] = [r0.clone(), BTreeSet::new(), BTreeSet::new()];
    loop {
        let mut changed = false;
        for rule in rules {
            // Enumerate substitutions for the (at most 4) variables.
            let mut derived: Vec<(u64, u64)> = Vec::new();
            let mut assign = [0u64; 4];
            enumerate(rule, &rels, 0, &mut assign, &mut derived);
            for t in derived {
                if rels[rule.head_rel].insert(t) {
                    changed = true;
                }
            }
        }
        if !changed {
            return rels;
        }
    }
}

fn enumerate(
    rule: &RRule,
    rels: &[BTreeSet<(u64, u64)>; 3],
    var: usize,
    assign: &mut [u64; 4],
    out: &mut Vec<(u64, u64)>,
) {
    if var == 4 {
        let sat = rule.body.iter().all(|(rel, args)| {
            let val = |a: &Arg| match a {
                Arg::Var(v) => assign[*v],
                Arg::Const(c) => *c,
            };
            rels[*rel].contains(&(val(&args[0]), val(&args[1])))
        });
        if sat {
            out.push((assign[rule.head_args[0]], assign[rule.head_args[1]]));
        }
        return;
    }
    for v in 0..DOM {
        assign[var] = v;
        enumerate(rule, rels, var + 1, assign, out);
    }
}

#[test]
fn bdd_engine_matches_reference() {
    check("bdd_engine_matches_reference", CASES, &arb_case(), |case| {
        let src = program_text(&case.rules);
        let program = Program::parse(&src).unwrap();
        let mut engine = Engine::with_options(
            program,
            EngineOptions {
                seminaive: case.seminaive,
                order: None,
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        for &(a, b) in &case.facts {
            engine.add_fact("r0", &[a, b]).unwrap();
        }
        engine.solve().unwrap();
        let expected = reference_solve(&case.rules, &case.facts);
        for rel in [1usize, 2] {
            let mut got: Vec<(u64, u64)> = engine
                .relation_tuples(&format!("r{rel}"))
                .unwrap()
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            got.sort_unstable();
            let want: Vec<(u64, u64)> = expected[rel].iter().copied().collect();
            if got != want {
                return Err(format!(
                    "relation r{rel} mismatch: got {got:?}, want {want:?} for program:\n{src}"
                ));
            }
        }
        Ok(())
    });
}
