//! Parallel-solve tests: the `jobs > 1` scheduler must produce exactly
//! the relations the sequential engine does — same tuple sets, same
//! round/application counts — on programs exercising recursion,
//! negation, constraints and multiple independent strata, with and
//! without dynamic reordering on the workers.

use whale_datalog::{Engine, EngineOptions, Program, SolveStats};

/// Transitive closure plus a negation stratum and a constraint guard —
/// touches every rule shape the planner produces.
const PROGRAM: &str = r#"
DOMAINS
V 32

RELATIONS
input edge (src : V, dst : V)
output path (src : V, dst : V)
output unreachable (src : V, dst : V)
output loopy (v : V)
output far (src : V, dst : V)

RULES
path(x,y) :- edge(x,y).
path(x,z) :- path(x,y), edge(y,z).
unreachable(x,y) :- edge(x,_), edge(_,y), !path(x,y).
loopy(x) :- path(x,x).
far(x,y) :- path(x,y), x < y.
"#;

/// Two mutually recursive relations over distinct strata, so the
/// condensation has real width for the scheduler to exploit.
const WIDE: &str = r#"
DOMAINS
N 16

RELATIONS
input e1 (a : N, b : N)
input e2 (a : N, b : N)
output odd (a : N, b : N)
output even (a : N, b : N)
output t1 (a : N, b : N)
output t2 (a : N, b : N)

RULES
t1(x,y) :- e1(x,y).
t1(x,z) :- t1(x,y), e1(y,z).
t2(x,y) :- e2(x,y).
t2(x,z) :- t2(x,y), e2(y,z).
even(x,x) :- e1(x,_).
odd(x,y) :- even(x,z), e1(z,y).
even(x,y) :- odd(x,z), e1(z,y).
"#;

fn edges(n: u64) -> Vec<[u64; 2]> {
    // A chain with some chords and a cycle: recursion depth plus
    // multiple deltas per round.
    let mut v: Vec<[u64; 2]> = (0..n - 1).map(|i| [i, i + 1]).collect();
    v.push([n - 1, 2]);
    v.push([0, 5]);
    v.push([3, 9]);
    v
}

fn solve(src: &str, jobs: usize, reorder: bool) -> (Engine, SolveStats) {
    let program = Program::parse(src).expect("parse");
    let mut engine = Engine::with_options(
        program,
        EngineOptions {
            jobs,
            reorder,
            ..EngineOptions::default()
        },
    )
    .expect("engine");
    for rel in ["edge", "e1", "e2"] {
        if engine.relation_signature(rel).is_ok() {
            for t in edges(12) {
                engine.add_fact(rel, &t).expect("fact");
            }
        }
    }
    let stats = engine.solve().expect("solve");
    (engine, stats)
}

fn outputs(engine: &Engine) -> Vec<(String, Vec<Vec<u64>>)> {
    let mut out: Vec<(String, Vec<Vec<u64>>)> = engine
        .program()
        .relations()
        .iter()
        .map(|r| {
            let mut t = engine.relation_tuples(&r.name).expect("tuples");
            t.sort();
            (r.name.clone(), t)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn parallel_matches_sequential_tuples() {
    for src in [PROGRAM, WIDE] {
        let (seq, seq_stats) = solve(src, 1, false);
        let want = outputs(&seq);
        for jobs in [2, 4] {
            let (par, par_stats) = solve(src, jobs, false);
            assert_eq!(outputs(&par), want, "jobs={jobs} diverged");
            // Semi-naive structure is preserved exactly: same rounds,
            // same rule applications, independent of the worker count.
            assert_eq!(par_stats.rounds, seq_stats.rounds, "jobs={jobs}");
            assert_eq!(
                par_stats.rule_applications, seq_stats.rule_applications,
                "jobs={jobs}"
            );
        }
    }
}

#[test]
fn parallel_matches_sequential_with_reordering_workers() {
    let (seq, _) = solve(PROGRAM, 1, true);
    let (par, _) = solve(PROGRAM, 4, true);
    assert_eq!(outputs(&par), outputs(&seq));
}

#[test]
fn parallel_stats_are_populated_and_consistent() {
    let (_, stats) = solve(PROGRAM, 2, false);
    assert!(
        !stats.stratum_times.is_empty(),
        "per-stratum times recorded"
    );
    assert!(
        stats.critical_path_time > std::time::Duration::ZERO,
        "critical path measured"
    );
    // The critical path is a chain through the strata, so it can never
    // exceed the sum of all stratum times.
    let total: std::time::Duration = stats.stratum_times.iter().sum();
    assert!(
        total >= stats.critical_path_time,
        "sum of stratum times {total:?} < critical path {:?}",
        stats.critical_path_time
    );
    assert!(stats.transferred_nodes > 0, "relations crossed threads");
}

#[test]
fn sequential_solve_reports_zero_transfers() {
    let (_, stats) = solve(PROGRAM, 1, false);
    assert_eq!(stats.transferred_nodes, 0);
    assert!(!stats.stratum_times.is_empty());
    let total: std::time::Duration = stats.stratum_times.iter().sum();
    assert!(total >= stats.critical_path_time);
}

#[test]
fn more_workers_than_tasks_is_fine() {
    // A trivial single-rule program with 8 workers: most sit idle.
    let program = Program::parse(
        "DOMAINS\nV 8\n\nRELATIONS\ninput e (a : V, b : V)\noutput o (a : V, b : V)\n\nRULES\no(x,y) :- e(x,y).\n",
    )
    .expect("parse");
    let mut engine = Engine::with_options(
        program,
        EngineOptions {
            jobs: 8,
            ..EngineOptions::default()
        },
    )
    .expect("engine");
    engine.add_fact("e", &[1, 2]).expect("fact");
    engine.solve().expect("solve");
    assert_eq!(
        engine.relation_tuples("o").expect("tuples"),
        vec![vec![1, 2]]
    );
}

#[test]
fn naive_mode_parallel_matches_sequential() {
    let program = Program::parse(PROGRAM).expect("parse");
    let mk = |jobs: usize| {
        let mut engine = Engine::with_options(
            program.clone(),
            EngineOptions {
                jobs,
                seminaive: false,
                ..EngineOptions::default()
            },
        )
        .expect("engine");
        for t in edges(10) {
            engine.add_fact("edge", &t).expect("fact");
        }
        engine.solve().expect("solve");
        outputs(&engine)
    };
    assert_eq!(mk(3), mk(1));
}
