//! Engine-level tests for the two-level op-cache policy: the
//! relation-level memo cache and the pressure-adaptive kernel caches must
//! never change a fixpoint, the memo cache must actually fire on the
//! repeated work it targets, and malformed order specifications must be
//! reported as errors rather than panics.

use whale_datalog::{DatalogError, Engine, EngineOptions, Program};
use whale_testkit::Rng;

const TC: &str = r#"
DOMAINS
V 1024

RELATIONS
input edge (src : V, dst : V)
output path (src : V, dst : V)

RULES
path(x,y) :- edge(x,y).
path(x,z) :- path(x,y), edge(y,z).
"#;

fn tc_engine(options: EngineOptions, seed: u64) -> Engine {
    let program = Program::parse(TC).unwrap();
    let mut e = Engine::with_options(program, options).unwrap();
    let mut rng = Rng::seed_from_u64(seed);
    let edges: Vec<[u64; 2]> = (0..500)
        .map(|_| [rng.gen_range(0..1024u64), rng.gen_range(0..1024u64)])
        .collect();
    e.add_facts("edge", edges.iter()).unwrap();
    e.solve().unwrap();
    e
}

fn sorted_path(e: &Engine) -> Vec<Vec<u64>> {
    let mut t = e.relation_tuples("path").unwrap();
    t.sort();
    t
}

/// Regression test: an order token whose digit suffix overflows `usize`
/// (here 2^64, one past `u64::MAX`) used to panic inside order expansion;
/// it must surface as `UnknownDomain` like any other bogus token.
#[test]
fn overflowing_order_token_is_an_error_not_a_panic() {
    let program = Program::parse(TC).unwrap();
    let err = Engine::with_options(
        program,
        EngineOptions {
            order: Some("V18446744073709551616".into()),
            ..EngineOptions::default()
        },
    )
    .err()
    .expect("overflowing instance index must not resolve to a domain");
    assert!(
        matches!(&err, DatalogError::UnknownDomain(t) if t == "V18446744073709551616"),
        "expected UnknownDomain, got {err:?}"
    );
}

/// The memo cache targets work that recurs identically across fixpoint
/// rounds — here the `edge` atom of the recursive rule, whose relation
/// never changes. It must record hits, and entries must never be
/// invented: hits cannot exceed lookups that could have been seeded.
#[test]
fn rel_cache_fires_on_repeated_atom_evaluation() {
    let e = tc_engine(EngineOptions::default(), 1);
    let rel = e.stats().rel_cache;
    assert!(
        rel.hits > 0,
        "no relation-level hits on a recursive solve: {rel:?}"
    );
    assert!(rel.hits + rel.misses > rel.hits, "misses must be counted");
    assert!(!sorted_path(&e).is_empty());
}

/// Solves with every combination of the two cache features and three fact
/// seeds must produce bit-identical relations: memoization and adaptive
/// sizing are pure performance policies.
#[test]
fn cache_policies_leave_relations_unchanged() {
    for seed in [1, 2, 3] {
        let baseline = tc_engine(
            EngineOptions {
                rel_cache: false,
                adaptive_caches: false,
                ..EngineOptions::default()
            },
            seed,
        );
        let expected = sorted_path(&baseline);
        assert!(!expected.is_empty());
        for (rel, adaptive) in [(true, false), (false, true), (true, true)] {
            let e = tc_engine(
                EngineOptions {
                    rel_cache: rel,
                    adaptive_caches: adaptive,
                    ..EngineOptions::default()
                },
                seed,
            );
            assert_eq!(
                sorted_path(&e),
                expected,
                "rel_cache={rel} adaptive={adaptive} changed the fixpoint (seed {seed})"
            );
        }
    }
}

/// Mid-solve reordering clears every kernel cache including the memo
/// cache; the combination of reordering, memoization and adaptive sizing
/// must still reach the same fixpoint. (Mirrors the reorder_engine test,
/// with the cache machinery explicitly enabled on both sides.)
#[test]
fn rel_cache_survives_mid_solve_reordering() {
    let mut fired = 0usize;
    for seed in [1, 2, 3] {
        let plain = tc_engine(
            EngineOptions {
                order: Some("V2_V1_V0".into()),
                rel_cache: false,
                adaptive_caches: false,
                ..EngineOptions::default()
            },
            seed,
        );
        let cached = tc_engine(
            EngineOptions {
                order: Some("V2_V1_V0".into()),
                reorder: true,
                rel_cache: true,
                adaptive_caches: true,
                ..EngineOptions::default()
            },
            seed,
        );
        assert_eq!(
            sorted_path(&plain),
            sorted_path(&cached),
            "reorder + caches changed the fixpoint (seed {seed})"
        );
        fired += cached.stats().reorder_runs;
    }
    assert!(
        fired > 0,
        "reordering never fired; the interaction check is vacuous"
    );
}

/// Per-solve cache statistics are deltas for that solve, not lifetime
/// counters: a second solve on the same engine must not inherit the
/// first solve's counts.
#[test]
fn solve_stats_cache_counters_are_per_solve() {
    let program = Program::parse(TC).unwrap();
    let mut e = Engine::with_options(program, EngineOptions::default()).unwrap();
    let mut rng = Rng::seed_from_u64(7);
    let edges: Vec<[u64; 2]> = (0..400)
        .map(|_| [rng.gen_range(0..1024u64), rng.gen_range(0..1024u64)])
        .collect();
    e.add_facts("edge", edges.iter()).unwrap();
    e.solve().unwrap();
    let first = e.stats().appex_cache;
    // An already-saturated fixpoint re-solves with far less work.
    e.solve().unwrap();
    let second = e.stats().appex_cache;
    assert!(
        second.hits + second.misses < first.hits + first.misses,
        "second solve should do less appex work: first={first:?} second={second:?}"
    );
}
