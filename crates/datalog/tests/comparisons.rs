//! Tests of the order-comparison builtins (`<`, `<=`, `>`, `>=`).

use whale_datalog::{Engine, Program};

fn solve(rules: &str, facts: &[(u64, u64)]) -> Engine {
    let src = format!(
        "DOMAINS\nV 16\nRELATIONS\ninput e (s : V, d : V)\noutput out (s : V, d : V)\nRULES\n{rules}"
    );
    let program = Program::parse(&src).unwrap();
    let mut engine = Engine::new(program).unwrap();
    for &(a, b) in facts {
        engine.add_fact("e", &[a, b]).unwrap();
    }
    engine.solve().unwrap();
    engine
}

const FACTS: &[(u64, u64)] = &[(1, 5), (5, 1), (3, 3), (0, 15), (15, 0)];

fn out(engine: &Engine) -> Vec<(u64, u64)> {
    let mut t: Vec<(u64, u64)> = engine
        .relation_tuples("out")
        .unwrap()
        .into_iter()
        .map(|t| (t[0], t[1]))
        .collect();
    t.sort_unstable();
    t
}

#[test]
fn var_lt_var() {
    let e = solve("out(x,y) :- e(x,y), x < y.", FACTS);
    assert_eq!(out(&e), vec![(0, 15), (1, 5)]);
}

#[test]
fn var_le_var() {
    let e = solve("out(x,y) :- e(x,y), x <= y.", FACTS);
    assert_eq!(out(&e), vec![(0, 15), (1, 5), (3, 3)]);
}

#[test]
fn var_gt_var() {
    let e = solve("out(x,y) :- e(x,y), x > y.", FACTS);
    assert_eq!(out(&e), vec![(5, 1), (15, 0)]);
}

#[test]
fn var_ge_var() {
    let e = solve("out(x,y) :- e(x,y), x >= y.", FACTS);
    assert_eq!(out(&e), vec![(3, 3), (5, 1), (15, 0)]);
}

#[test]
fn var_vs_const() {
    let e = solve("out(x,y) :- e(x,y), x < 3.", FACTS);
    assert_eq!(out(&e), vec![(0, 15), (1, 5)]);
    let e = solve("out(x,y) :- e(x,y), x >= 5.", FACTS);
    assert_eq!(out(&e), vec![(5, 1), (15, 0)]);
    let e = solve("out(x,y) :- e(x,y), x <= 1.", FACTS);
    assert_eq!(out(&e), vec![(0, 15), (1, 5)]);
    // Nothing above the domain top.
    let e = solve("out(x,y) :- e(x,y), x > 15.", FACTS);
    assert!(out(&e).is_empty());
}

#[test]
fn const_vs_var_mirrors() {
    let e = solve("out(x,y) :- e(x,y), 3 < x.", FACTS);
    assert_eq!(out(&e), vec![(5, 1), (15, 0)]);
    let e = solve("out(x,y) :- e(x,y), 5 >= x.", FACTS);
    assert_eq!(out(&e), vec![(0, 15), (1, 5), (3, 3), (5, 1)]);
}

#[test]
fn comparisons_exhaustive_against_reference() {
    // All pairs over a 9-element domain, every operator.
    let src = "DOMAINS\nV 9\nRELATIONS\ninput e (s : V, d : V)\noutput lt (s : V, d : V)\noutput le (s : V, d : V)\noutput gt (s : V, d : V)\noutput ge (s : V, d : V)\nRULES\nlt(x,y) :- e(x,y), x < y.\nle(x,y) :- e(x,y), x <= y.\ngt(x,y) :- e(x,y), x > y.\nge(x,y) :- e(x,y), x >= y.";
    let program = Program::parse(src).unwrap();
    let mut engine = Engine::new(program).unwrap();
    for a in 0..9u64 {
        for b in 0..9u64 {
            engine.add_fact("e", &[a, b]).unwrap();
        }
    }
    engine.solve().unwrap();
    let count = |rel: &str| engine.relation_count(rel).unwrap() as u64;
    assert_eq!(count("lt"), 36);
    assert_eq!(count("le"), 45);
    assert_eq!(count("gt"), 36);
    assert_eq!(count("ge"), 45);
    for t in engine.relation_tuples("lt").unwrap() {
        assert!(t[0] < t[1]);
    }
    for t in engine.relation_tuples("ge").unwrap() {
        assert!(t[0] >= t[1]);
    }
}

#[test]
fn bdd_level_lt() {
    use whale_bdd::{BddManager, DomainSpec, OrderSpec};
    let mgr = BddManager::with_domains(
        &[DomainSpec::new("A", 300), DomainSpec::new("B", 300)],
        &OrderSpec::parse("AxB").unwrap(),
    )
    .unwrap();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    let lt = mgr.domain_lt(a, b);
    // |{(x,y) in [0,300)^2 : x < y}| over the 512-point bit space needs
    // restriction to valid values first.
    let valid = mgr
        .domain_range(a, 0, 299)
        .and(&mgr.domain_range(b, 0, 299));
    let count = lt.and(&valid).satcount_domains(&[a, b]) as u64;
    assert_eq!(count, 300 * 299 / 2);
    // Spot checks.
    let probe = |x: u64, y: u64| {
        !lt.and(&mgr.domain_const(a, x))
            .and(&mgr.domain_const(b, y))
            .is_zero()
    };
    assert!(probe(5, 6));
    assert!(!probe(6, 6));
    assert!(!probe(7, 6));
    assert!(probe(0, 299));
}
