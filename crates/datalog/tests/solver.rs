//! End-to-end solver tests: transitive closure, negation/stratification,
//! constraints, constants, semi-naive vs naive equivalence, and the paper's
//! Algorithm 1 (context-insensitive points-to) on a hand-computed example.

use whale_datalog::{DatalogError, Engine, EngineOptions, Program};

fn solve(src: &str, facts: &[(&str, &[u64])]) -> Engine {
    let program = Program::parse(src).unwrap();
    let mut e = Engine::new(program).unwrap();
    for (rel, tuple) in facts {
        e.add_fact(rel, tuple).unwrap();
    }
    e.solve().unwrap();
    e
}

const TC: &str = r#"
DOMAINS
V 64

RELATIONS
input edge (src : V, dst : V)
output path (src : V, dst : V)

RULES
path(x,y) :- edge(x,y).
path(x,z) :- path(x,y), edge(y,z).
"#;

#[test]
fn transitive_closure_chain() {
    let e = solve(
        TC,
        &[
            ("edge", &[0, 1]),
            ("edge", &[1, 2]),
            ("edge", &[2, 3]),
            ("edge", &[3, 4]),
        ],
    );
    assert_eq!(e.relation_count("path").unwrap() as u64, 10);
    assert!(e.relation_contains("path", &[0, 4]).unwrap());
    assert!(!e.relation_contains("path", &[4, 0]).unwrap());
}

#[test]
fn relation_select_pins_attributes() {
    let e = solve(
        TC,
        &[
            ("edge", &[0, 1]),
            ("edge", &[1, 2]),
            ("edge", &[2, 3]),
            ("edge", &[3, 4]),
        ],
    );
    // Everything reachable from 1.
    let mut from1 = e.relation_select("path", &[(0, 1)]).unwrap();
    from1.sort();
    assert_eq!(from1, vec![vec![1, 2], vec![1, 3], vec![1, 4]]);
    // Everything that reaches 2.
    let mut to2 = e.relation_select("path", &[(1, 2)]).unwrap();
    to2.sort();
    assert_eq!(to2, vec![vec![0, 2], vec![1, 2]]);
    // Both endpoints pinned: membership test. No match -> empty.
    assert_eq!(
        e.relation_select("path", &[(0, 0), (1, 4)]).unwrap(),
        vec![vec![0, 4]]
    );
    assert!(e
        .relation_select("path", &[(0, 4), (1, 0)])
        .unwrap()
        .is_empty());
    // Empty binding degenerates to relation_tuples.
    let mut all = e.relation_select("path", &[]).unwrap();
    all.sort();
    let mut tuples = e.relation_tuples("path").unwrap();
    tuples.sort();
    assert_eq!(all, tuples);
    // Out-of-arity attribute index and out-of-range value are errors.
    assert!(matches!(
        e.relation_select("path", &[(2, 0)]),
        Err(DatalogError::BadFact(_))
    ));
    assert!(matches!(
        e.relation_select("path", &[(0, 64)]),
        Err(DatalogError::ConstantOutOfRange { .. })
    ));
}

#[test]
fn transitive_closure_cycle() {
    let e = solve(
        TC,
        &[("edge", &[0, 1]), ("edge", &[1, 2]), ("edge", &[2, 0])],
    );
    // Every pair reachable: 3x3.
    assert_eq!(e.relation_count("path").unwrap() as u64, 9);
}

#[test]
fn seminaive_and_naive_agree() {
    let facts: Vec<[u64; 2]> = (0..30).map(|i| [i, (i * 7 + 3) % 40]).collect();
    let mut engines = Vec::new();
    for seminaive in [true, false] {
        let program = Program::parse(TC).unwrap();
        let mut e = Engine::with_options(
            program,
            EngineOptions {
                seminaive,
                order: None,
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        e.add_facts("edge", facts.iter()).unwrap();
        e.solve().unwrap();
        engines.push(e);
    }
    let mut a = engines[0].relation_tuples("path").unwrap();
    let mut b = engines[1].relation_tuples("path").unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn mutual_recursion() {
    let src = r#"
DOMAINS
V 32
RELATIONS
input edge (s : V, d : V)
output even (s : V, d : V)
output odd (s : V, d : V)
RULES
odd(x,y) :- edge(x,y).
odd(x,z) :- even(x,y), edge(y,z).
even(x,z) :- odd(x,y), edge(y,z).
"#;
    let e = solve(
        src,
        &[("edge", &[0, 1]), ("edge", &[1, 2]), ("edge", &[2, 3])],
    );
    assert!(e.relation_contains("odd", &[0, 1]).unwrap());
    assert!(e.relation_contains("even", &[0, 2]).unwrap());
    assert!(e.relation_contains("odd", &[0, 3]).unwrap());
    assert!(!e.relation_contains("even", &[0, 1]).unwrap());
}

#[test]
fn negation_set_difference() {
    let src = r#"
DOMAINS
V 16
RELATIONS
input a (x : V)
input b (x : V)
output only_a (x : V)
RULES
only_a(x) :- a(x), !b(x).
"#;
    let e = solve(src, &[("a", &[1]), ("a", &[2]), ("a", &[3]), ("b", &[2])]);
    let mut t = e.relation_tuples("only_a").unwrap();
    t.sort();
    assert_eq!(t, vec![vec![1], vec![3]]);
}

#[test]
fn negation_with_wildcard_projects_first() {
    // unreached(x) :- node(x), !edge(_, x): nodes with no in-edge.
    let src = r#"
DOMAINS
V 16
RELATIONS
input node (x : V)
input edge (s : V, d : V)
output unreached (x : V)
RULES
unreached(x) :- node(x), !edge(_,x).
"#;
    let e = solve(
        src,
        &[
            ("node", &[0]),
            ("node", &[1]),
            ("node", &[2]),
            ("edge", &[0, 1]),
            ("edge", &[1, 2]),
        ],
    );
    assert_eq!(e.relation_tuples("unreached").unwrap(), vec![vec![0]]);
}

#[test]
fn stratified_negation_through_recursion_rejected() {
    let src = r#"
DOMAINS
V 8
RELATIONS
input e (s : V, d : V)
output p (s : V, d : V)
output q (s : V, d : V)
RULES
p(x,y) :- e(x,y), !q(x,y).
q(x,y) :- p(x,y).
"#;
    let program = Program::parse(src).unwrap();
    let mut e = Engine::new(program).unwrap();
    match e.solve() {
        Err(DatalogError::NotStratified {
            relation,
            rule,
            line,
        }) => {
            assert_eq!(relation, "q");
            assert_eq!(rule, "p(x,y) :- e(x,y), !q(x,y).");
            assert_eq!(line, 9);
        }
        other => panic!("expected NotStratified, got {other:?}"),
    }
}

#[test]
fn negation_on_lower_stratum_of_recursion() {
    // Complement of reachability: fine because `path` stratum is below.
    let src = r#"
DOMAINS
V 8
RELATIONS
input node (x : V)
input edge (s : V, d : V)
output path (s : V, d : V)
output unreachable (s : V, d : V)
RULES
path(x,y) :- edge(x,y).
path(x,z) :- path(x,y), edge(y,z).
unreachable(x,y) :- node(x), node(y), !path(x,y).
"#;
    let e = solve(
        src,
        &[
            ("node", &[0]),
            ("node", &[1]),
            ("node", &[2]),
            ("edge", &[0, 1]),
        ],
    );
    assert!(e.relation_contains("unreachable", &[1, 0]).unwrap());
    assert!(e.relation_contains("unreachable", &[0, 2]).unwrap());
    assert!(!e.relation_contains("unreachable", &[0, 1]).unwrap());
    // 9 pairs minus path(0,1): 8.
    assert_eq!(e.relation_count("unreachable").unwrap() as u64, 8);
}

#[test]
fn ne_constraint() {
    let src = r#"
DOMAINS
V 16
RELATIONS
input e (s : V, d : V)
output loopless (s : V, d : V)
RULES
loopless(x,y) :- e(x,y), x != y.
"#;
    let e = solve(src, &[("e", &[1, 1]), ("e", &[1, 2]), ("e", &[3, 3])]);
    assert_eq!(e.relation_tuples("loopless").unwrap(), vec![vec![1, 2]]);
}

#[test]
fn eq_constraint_and_const() {
    let src = r#"
DOMAINS
V 16
RELATIONS
input e (s : V, d : V)
output diag (s : V, d : V)
output from3 (d : V)
RULES
diag(x,y) :- e(x,y), x = y.
from3(y) :- e(x,y), x = 3.
"#;
    let e = solve(
        src,
        &[
            ("e", &[1, 1]),
            ("e", &[1, 2]),
            ("e", &[3, 7]),
            ("e", &[3, 9]),
        ],
    );
    assert_eq!(e.relation_tuples("diag").unwrap(), vec![vec![1, 1]]);
    let mut f = e.relation_tuples("from3").unwrap();
    f.sort();
    assert_eq!(f, vec![vec![7], vec![9]]);
}

#[test]
fn constants_in_atoms() {
    let src = r#"
DOMAINS
I 16
Z 8
V 16
RELATIONS
input actual (i : I, z : Z, v : V)
output receiver (i : I, v : V)
RULES
receiver(i,v) :- actual(i,0,v).
"#;
    let e = solve(
        src,
        &[
            ("actual", &[1, 0, 5]),
            ("actual", &[1, 1, 6]),
            ("actual", &[2, 0, 7]),
        ],
    );
    let mut t = e.relation_tuples("receiver").unwrap();
    t.sort();
    assert_eq!(t, vec![vec![1, 5], vec![2, 7]]);
}

#[test]
fn head_constants_and_fact_rules() {
    let src = r#"
DOMAINS
V 16
RELATIONS
input e (s : V, d : V)
output tagged (s : V, d : V)
output seed (x : V)
RULES
seed(3).
tagged(x, 9) :- e(x, _).
"#;
    let e = solve(src, &[("e", &[1, 2]), ("e", &[4, 5])]);
    assert_eq!(e.relation_tuples("seed").unwrap(), vec![vec![3]]);
    let mut t = e.relation_tuples("tagged").unwrap();
    t.sort();
    assert_eq!(t, vec![vec![1, 9], vec![4, 9]]);
}

#[test]
fn duplicate_variable_in_atom() {
    let src = r#"
DOMAINS
V 16
RELATIONS
input e (s : V, d : V)
output selfloop (x : V)
RULES
selfloop(x) :- e(x,x).
"#;
    let e = solve(src, &[("e", &[2, 2]), ("e", &[2, 3]), ("e", &[5, 5])]);
    let mut t = e.relation_tuples("selfloop").unwrap();
    t.sort();
    assert_eq!(t, vec![vec![2], vec![5]]);
}

#[test]
fn duplicate_variable_in_head() {
    let src = r#"
DOMAINS
V 16
RELATIONS
input a (x : V)
output pairup (x : V, y : V)
RULES
pairup(x,x) :- a(x).
"#;
    let e = solve(src, &[("a", &[4]), ("a", &[7])]);
    let mut t = e.relation_tuples("pairup").unwrap();
    t.sort();
    assert_eq!(t, vec![vec![4, 4], vec![7, 7]]);
}

#[test]
fn string_constants_via_name_map() {
    let src = r#"
DOMAINS
H 16
F 8
RELATIONS
input hP (h1 : H, f : F, h2 : H)
output who (h : H, f : F)
RULES
who(h,f) :- hP(h, f, "a.java:57").
"#;
    let program = Program::parse(src).unwrap();
    let mut e = Engine::new(program).unwrap();
    e.set_name_map("H", &["a.java:10", "a.java:57", "b.java:3"])
        .unwrap();
    e.add_fact("hP", &[0, 2, 1]).unwrap();
    e.add_fact("hP", &[2, 3, 0]).unwrap();
    e.solve().unwrap();
    assert_eq!(e.relation_tuples("who").unwrap(), vec![vec![0, 2]]);
    assert_eq!(e.name_of("H", 1), Some("a.java:57"));
}

#[test]
fn unresolved_string_constant_errors() {
    let src = r#"
DOMAINS
H 16
RELATIONS
input a (h : H)
output b (h : H)
RULES
b(h) :- a(h), a("nope").
"#;
    let program = Program::parse(src).unwrap();
    let mut e = Engine::new(program).unwrap();
    assert!(matches!(
        e.solve(),
        Err(DatalogError::UnresolvedName { .. })
    ));
}

#[test]
fn swap_rename_in_rule() {
    // Head reverses the attribute order of the body relation: forces a
    // cyclic rename through scratch.
    let src = r#"
DOMAINS
V 16
RELATIONS
input e (s : V, d : V)
output rev (s : V, d : V)
RULES
rev(y,x) :- e(x,y).
"#;
    let e = solve(src, &[("e", &[1, 2]), ("e", &[3, 4])]);
    let mut t = e.relation_tuples("rev").unwrap();
    t.sort();
    assert_eq!(t, vec![vec![2, 1], vec![4, 3]]);
}

#[test]
fn three_way_join_with_intermediate_projection() {
    let src = r#"
DOMAINS
V 32
RELATIONS
input e (s : V, d : V)
output tri (a : V, c : V)
RULES
tri(a,c) :- e(a,b), e(b,bb), e(bb,c).
"#;
    let e = solve(
        src,
        &[
            ("e", &[0, 1]),
            ("e", &[1, 2]),
            ("e", &[2, 3]),
            ("e", &[1, 5]),
            ("e", &[5, 6]),
        ],
    );
    let mut t = e.relation_tuples("tri").unwrap();
    t.sort();
    // Three-edge paths: 0→1→2→3 and 0→1→5→6.
    assert_eq!(t, vec![vec![0, 3], vec![0, 6]]);
}

#[test]
fn custom_order_string() {
    // The TC program needs 3 instances of V (3 distinct rule variables).
    for order in ["V", "V2_V1_V0", "V0xV1xV2", "V1xV0_V2"] {
        let program = Program::parse(TC).unwrap();
        let mut e = Engine::with_options(
            program,
            EngineOptions {
                seminaive: true,
                order: Some(order.into()),
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        e.add_fact("edge", &[0, 1]).unwrap();
        e.add_fact("edge", &[1, 2]).unwrap();
        e.solve().unwrap();
        assert_eq!(e.relation_count("path").unwrap() as u64, 3, "order {order}");
    }
}

#[test]
fn bad_order_string_rejected() {
    let program = Program::parse(TC).unwrap();
    assert!(Engine::with_options(
        program,
        EngineOptions {
            seminaive: true,
            order: Some("V_W".into()),
            fuse_renames: true,
            reorder: false,
            ..EngineOptions::default()
        },
    )
    .is_err());
}

#[test]
fn add_fact_validation() {
    let program = Program::parse(TC).unwrap();
    let mut e = Engine::new(program).unwrap();
    assert!(matches!(
        e.add_fact("path", &[0, 1]),
        Err(DatalogError::BadFact(_))
    ));
    assert!(matches!(
        e.add_fact("edge", &[0]),
        Err(DatalogError::BadFact(_))
    ));
    assert!(matches!(
        e.add_fact("edge", &[0, 64]),
        Err(DatalogError::ConstantOutOfRange { .. })
    ));
    assert!(matches!(
        e.add_fact("nope", &[0]),
        Err(DatalogError::UnknownRelation(_))
    ));
}

/// Algorithm 1 of the paper on a worked example:
///
/// ```java
/// o1: p = new O();      // vP0(p, o1)
/// o2: q = new O();      // vP0(q, o2)
///     r = p;            // assign(r, p)
///     p.f = q;          // store(p, f, q)
///     s = r.f;          // load(r, f, s)
/// ```
///
/// Expected: vP = {(p,o1),(q,o2),(r,o1),(s,o2)}, hP = {(o1,f,o2)}.
#[test]
fn algorithm_1_points_to() {
    let src = r#"
DOMAINS
V 16
H 16
F 8

RELATIONS
input vP0 (variable : V, heap : H)
input store (base : V, field : F, source : V)
input load (base : V, field : F, dest : V)
input assign (dest : V, source : V)
output vP (variable : V, heap : H)
output hP (base : H, field : F, target : H)

RULES
vP(v,h) :- vP0(v,h).
vP(v1,h) :- assign(v1,v2), vP(v2,h).
hP(h1,f,h2) :- store(v1,f,v2), vP(v1,h1), vP(v2,h2).
vP(v2,h2) :- load(v1,f,v2), vP(v1,h1), hP(h1,f,h2).
"#;
    // Numbering: p=0, q=1, r=2, s=3; o1=0, o2=1; f=0.
    let e = solve(
        src,
        &[
            ("vP0", &[0, 0]),
            ("vP0", &[1, 1]),
            ("assign", &[2, 0]),
            ("store", &[0, 0, 1]),
            ("load", &[2, 0, 3]),
        ],
    );
    let mut vp = e.relation_tuples("vP").unwrap();
    vp.sort();
    assert_eq!(vp, vec![vec![0, 0], vec![1, 1], vec![2, 0], vec![3, 1]]);
    assert_eq!(e.relation_tuples("hP").unwrap(), vec![vec![0, 0, 1]]);
}

/// The type-filter variant (Algorithm 2) drops ill-typed points-to pairs.
#[test]
fn algorithm_2_type_filter() {
    let src = r#"
DOMAINS
V 16
H 16
F 8
T 8

RELATIONS
input vP0 (variable : V, heap : H)
input assign (dest : V, source : V)
input vT (variable : V, type : T)
input hT (heap : H, type : T)
input aT (supertype : T, subtype : T)
vPfilter (variable : V, heap : H)
output vP (variable : V, heap : H)

RULES
vPfilter(v,h) :- vT(v,tv), hT(h,th), aT(tv,th).
vP(v,h) :- vP0(v,h).
vP(v1,h) :- assign(v1,v2), vP(v2,h), vPfilter(v1,h).
"#;
    // v0: new A (h0:A); v1 = v0 but v1 is declared B (A not assignable to B).
    // Types: A=0, B=1. aT: A<=A, B<=B only.
    let e = solve(
        src,
        &[
            ("vP0", &[0, 0]),
            ("assign", &[1, 0]),
            ("vT", &[0, 0]),
            ("vT", &[1, 1]),
            ("hT", &[0, 0]),
            ("aT", &[0, 0]),
            ("aT", &[1, 1]),
        ],
    );
    let vp = e.relation_tuples("vP").unwrap();
    assert_eq!(vp, vec![vec![0, 0]]); // the ill-typed (v1,h0) is filtered
}

#[test]
fn solve_is_idempotent() {
    let program = Program::parse(TC).unwrap();
    let mut e = Engine::new(program).unwrap();
    e.add_fact("edge", &[0, 1]).unwrap();
    e.add_fact("edge", &[1, 2]).unwrap();
    e.solve().unwrap();
    let first = e.relation_count("path").unwrap();
    e.solve().unwrap();
    assert_eq!(e.relation_count("path").unwrap(), first);
}

#[test]
fn stats_are_populated() {
    let program = Program::parse(TC).unwrap();
    let mut e = Engine::new(program).unwrap();
    for i in 0..20 {
        e.add_fact("edge", &[i, i + 1]).unwrap();
    }
    let stats = e.solve().unwrap();
    assert!(stats.rounds >= 2, "chain of 20 needs multiple rounds");
    assert!(stats.rule_applications > 0);
    assert!(stats.peak_live_nodes > 0);
    assert!(stats.strata >= 1);
}

#[test]
fn exact_count_matches_f64_count() {
    let e = solve(
        TC,
        &[("edge", &[0, 1]), ("edge", &[1, 2]), ("edge", &[2, 3])],
    );
    assert_eq!(
        e.relation_count_exact("path").unwrap(),
        e.relation_count("path").unwrap() as u128
    );
    assert_eq!(e.relation_count_exact("path").unwrap(), 6);
}

#[test]
fn negation_across_three_strata() {
    // Stratum 1: path. Stratum 2: nonpath. Stratum 3: island (nodes with
    // no path to or from anything else).
    let src = r#"
DOMAINS
V 8
RELATIONS
input node (x : V)
input edge (s : V, d : V)
output path (s : V, d : V)
output connected (x : V)
output island (x : V)
RULES
path(x,y) :- edge(x,y).
path(x,z) :- path(x,y), edge(y,z).
connected(x) :- path(x,_).
connected(x) :- path(_,x).
island(x) :- node(x), !connected(x).
"#;
    let e = solve(
        src,
        &[
            ("node", &[0]),
            ("node", &[1]),
            ("node", &[2]),
            ("node", &[3]),
            ("edge", &[0, 1]),
            ("edge", &[1, 2]),
        ],
    );
    assert_eq!(e.relation_tuples("island").unwrap(), vec![vec![3]]);
    let stats = e.stats();
    assert!(stats.strata >= 3, "three semantic strata: {}", stats.strata);
}

#[test]
fn naive_mode_handles_negation_equally() {
    let src = r#"
DOMAINS
V 8
RELATIONS
input node (x : V)
input edge (s : V, d : V)
output reach (x : V)
output unreached (x : V)
RULES
reach(y) :- edge(0,y).
reach(z) :- reach(y), edge(y,z).
unreached(x) :- node(x), !reach(x).
"#;
    let mut results = Vec::new();
    for seminaive in [true, false] {
        let program = Program::parse(src).unwrap();
        let mut e = Engine::with_options(
            program,
            EngineOptions {
                seminaive,
                order: None,
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            e.add_fact("node", &[i]).unwrap();
        }
        e.add_fact("edge", &[0, 1]).unwrap();
        e.add_fact("edge", &[1, 2]).unwrap();
        e.add_fact("edge", &[3, 4]).unwrap();
        e.solve().unwrap();
        let mut u = e.relation_tuples("unreached").unwrap();
        u.sort();
        results.push(u);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], vec![vec![0], vec![3], vec![4]]);
}
