//! Deterministic, seedable PRNG: SplitMix64 seed expansion feeding a
//! xoshiro256** stream (Blackman & Vigna). Not cryptographic; chosen for
//! speed, full-period statistical quality, and a trivially portable
//! implementation so a seed reproduces the identical stream on every
//! platform and toolchain.

use std::ops::Range;

/// SplitMix64 step: the standard seed-expansion generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64, as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is the one fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits (upper half of the 64-bit step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`, unbiased (Lemire's multiply-shift with
    /// rejection). `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        let mut m = (self.next_u64() as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = (self.next_u64() as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[range.start, range.end)`. Panics on an empty range.
    #[inline]
    pub fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly chosen element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// An independent child generator, seeded from this stream. Forked
    /// streams let one logical seed drive several decoupled generation
    /// passes without their draws interleaving.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Integer types `gen_range` can sample uniformly.
pub trait UniformSample: Copy {
    /// Uniform in `[lo, hi)`; panics if the range is empty.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                lo + rng.below((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, usize);

impl UniformSample for u64 {
    #[inline]
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + rng.below(hi - lo)
    }
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_xoshiro256starstar() {
        // First outputs for the state {1, 2, 3, 4}, from the reference C
        // implementation — pins the stream across platforms forever.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn reference_vectors_splitmix64() {
        // From the reference implementation seeded with 1234567.
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
        assert_eq!(rng.gen_range(3u32..4), 3, "singleton range");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements moved");
    }

    #[test]
    fn fork_decouples_streams() {
        let mut a = Rng::seed_from_u64(9);
        let mut child = a.fork();
        let a_next = a.next_u64();
        assert_ne!(child.next_u64(), a_next);
    }
}
