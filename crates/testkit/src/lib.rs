//! In-tree correctness tooling for the whale workspace.
//!
//! The workspace builds in hermetic environments with no network access,
//! so everything a test or benchmark needs lives here, dependency-free:
//!
//! - [`rng`]: a deterministic, seedable PRNG (SplitMix64 seeding into
//!   xoshiro256**) with the `seed_from_u64` / `gen_range` / `gen_bool`
//!   surface the synthetic-program generator and the test suites use.
//!   Same seed, same stream, on every platform.
//! - [`prop`]: a small property-testing harness — generator combinators,
//!   configurable case counts, failing-seed reporting and greedy
//!   shrinking. Re-run a failure with `TESTKIT_SEED=<n>`.
//! - [`mod@bench`]: a micro-benchmark runner (warmup, N timed iterations,
//!   min/median/p95) that emits one JSON line per benchmark, suitable
//!   for trajectory files and regression diffing.

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::Bench;
pub use prop::{check, Config, Gen};
pub use rng::Rng;
