//! A small property-testing harness.
//!
//! A [`Gen<T>`] couples a generator function (from a [`Rng`] to a value)
//! with a shrinker (from a failing value to simpler candidates). The
//! [`check`] runner draws `cases` values from per-case seeds, evaluates
//! the property on each, and on failure greedily shrinks before
//! panicking with the failing seed.
//!
//! Replay: every failure message names a seed; re-running the test binary
//! with `TESTKIT_SEED=<seed>` executes exactly that case first, so a CI
//! failure reproduces locally regardless of case counts. `TESTKIT_CASES`
//! overrides the case count.

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::rc::Rc;

/// Default base seed: fixed so CI runs are reproducible without any
/// environment setup.
pub const DEFAULT_SEED: u64 = 0x7e57_5eed_2004_0601;

/// Runner configuration, resolved from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it.
    pub seed: u64,
    /// `true` when `TESTKIT_SEED` pinned the seed — the runner then runs
    /// the pinned case first.
    pub replay: bool,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_evals: u32,
}

impl Config {
    /// Resolves a config: `cases` unless `TESTKIT_CASES` overrides it,
    /// [`DEFAULT_SEED`] unless `TESTKIT_SEED` overrides it.
    pub fn from_env(cases: u32) -> Config {
        let env_seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(cases);
        Config {
            cases,
            seed: env_seed.unwrap_or(DEFAULT_SEED),
            replay: env_seed.is_some(),
            max_shrink_evals: 500,
        }
    }

    /// The seed driving case `i`. Case 0 under replay uses the base seed
    /// directly, so `TESTKIT_SEED=<reported seed>` reproduces the failing
    /// value immediately.
    fn case_seed(&self, i: u32) -> u64 {
        if self.replay && i == 0 {
            return self.seed;
        }
        let mut s = self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        splitmix64(&mut s)
    }
}

/// A value generator with an attached shrinker.
pub struct Gen<T> {
    generate: Rc<dyn Fn(&mut Rng) -> T>,
    #[allow(clippy::type_complexity)]
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            generate: self.generate.clone(),
            shrink: self.shrink.clone(),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator with no shrinker.
    pub fn new(f: impl Fn(&mut Rng) -> T + 'static) -> Gen<T> {
        Gen {
            generate: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attaches a shrinker: given a failing value, propose simpler
    /// candidates (the runner keeps any candidate that still fails).
    pub fn with_shrink(self, s: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        Gen {
            generate: self.generate,
            shrink: Rc::new(s),
        }
    }

    /// Draws a value.
    pub fn generate(&self, rng: &mut Rng) -> T {
        (self.generate)(rng)
    }

    /// Proposes shrink candidates for a failing value.
    pub fn shrink(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Maps the generated value. Shrinking does not compose through an
    /// arbitrary map, so the result has no shrinker; attach one with
    /// [`Gen::with_shrink`] if the mapped type supports it.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.generate;
        Gen::new(move |rng| f(g(rng)))
    }

    /// Re-draws until `pred` holds (caller guarantees this terminates;
    /// a sparse predicate will loop).
    pub fn filter(self, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        let g = self.generate;
        let s = self.shrink;
        let pred = Rc::new(pred);
        let pred2 = pred.clone();
        Gen {
            generate: Rc::new(move |rng| loop {
                let v = g(rng);
                if pred(&v) {
                    return v;
                }
            }),
            shrink: Rc::new(move |v| s(v).into_iter().filter(|c| pred2(c)).collect()),
        }
    }
}

/// Uniform integer in `[lo, hi)`, shrinking toward `lo` by halving.
pub fn ranged_u64(lo: u64, hi: u64) -> Gen<u64> {
    Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        let mut delta = v - lo;
        while delta > 0 {
            out.push(v - delta);
            delta /= 2;
        }
        out.dedup();
        out
    })
}

/// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
pub fn ranged_usize(lo: usize, hi: usize) -> Gen<usize> {
    ranged_u64(lo as u64, hi as u64).map(|v| v as usize)
}

/// Uniform `u32` in `[lo, hi)`, shrinking toward `lo`.
pub fn ranged_u32(lo: u32, hi: u32) -> Gen<u32> {
    ranged_u64(lo as u64, hi as u64).map(|v| v as u32)
}

/// A fair boolean, shrinking `true` to `false`.
pub fn any_bool() -> Gen<bool> {
    Gen::new(|rng| rng.gen_bool(0.5)).with_shrink(|&v| if v { vec![false] } else { vec![] })
}

/// Picks one of the component generators uniformly.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of of nothing");
    let for_shrink: Vec<Gen<T>> = gens.clone();
    Gen::new(move |rng| {
        let i = rng.gen_range(0..gens.len());
        gens[i].generate(rng)
    })
    .with_shrink(move |v| {
        // Union of every component's proposals: the runner discards any
        // that don't reproduce the failure.
        for_shrink.iter().flat_map(|g| g.shrink(v)).collect()
    })
}

/// A vector with a length drawn from `[min_len, max_len)`. Shrinks by
/// dropping elements (halves, then singles) and by shrinking elements.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    let elem2 = elem.clone();
    Gen::new(move |rng| {
        let n = rng.gen_range(min_len..max_len);
        (0..n).map(|_| elem.generate(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        // Drop the back half, then each single element.
        if v.len() > min_len {
            let keep = (v.len() / 2).max(min_len);
            out.push(v[..keep].to_vec());
            for i in 0..v.len() {
                if v.len() > min_len {
                    let mut c = v.clone();
                    c.remove(i);
                    out.push(c);
                }
            }
        }
        // Shrink each element in place.
        for (i, x) in v.iter().enumerate() {
            for sx in elem2.shrink(x) {
                let mut c = v.clone();
                c[i] = sx;
                out.push(c);
            }
        }
        out
    })
}

/// Zips two generators into a pair, shrinking each side independently.
pub fn pair_of<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (ga, gb) = (a.clone(), b.clone());
    Gen::new(move |rng| (a.generate(rng), b.generate(rng))).with_shrink(move |(x, y)| {
        let mut out: Vec<(A, B)> = ga.shrink(x).into_iter().map(|sx| (sx, y.clone())).collect();
        out.extend(gb.shrink(y).into_iter().map(|sy| (x.clone(), sy)));
        out
    })
}

/// Runs `prop` on `cases` values drawn from `gen`. On the first failing
/// case the value is greedily shrunk, then the runner panics with the
/// case's seed and replay instructions. `prop` returns `Err(reason)` to
/// fail (propertied assertions use `prop_assert!`-style early returns
/// or plain `assert!` — panics are NOT caught; return `Err` for
/// shrinkable failures).
pub fn check<T: Debug + 'static>(
    name: &str,
    cases: u32,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let config = Config::from_env(cases);
    let cases = if config.replay { 1 } else { config.cases };
    for i in 0..cases {
        let seed = config.case_seed(i);
        let mut rng = Rng::seed_from_u64(seed);
        let value = gen.generate(&mut rng);
        if let Err(reason) = prop(&value) {
            // Greedy shrink: adopt the first proposal that still fails,
            // restart from it, stop when no proposal fails or the eval
            // budget runs out.
            let mut best = value;
            let mut best_reason = reason;
            let mut evals = 0u32;
            'outer: loop {
                for candidate in gen.shrink(&best) {
                    if evals >= config.max_shrink_evals {
                        break 'outer;
                    }
                    evals += 1;
                    if let Err(r) = prop(&candidate) {
                        best = candidate;
                        best_reason = r;
                        continue 'outer;
                    }
                }
                break;
            }
            panic!(
                "property `{name}` failed at case {i} (seed {seed}):\n  \
                 {best_reason}\n  shrunk input ({evals} shrink evals): {best:?}\n  \
                 replay with: TESTKIT_SEED={seed} cargo test {name}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("count", 64, &ranged_u64(0, 100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        n += counter.get();
        assert_eq!(n, 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("gt_ten", 64, &ranged_u64(0, 1000), |&v| {
                if v >= 10 {
                    Err(format!("{v} >= 10"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("TESTKIT_SEED="), "replay line present: {msg}");
        // Greedy halving-toward-zero shrink must land exactly on the
        // boundary value 10.
        assert!(msg.contains("shrunk input"), "{msg}");
        assert!(msg.contains("): 10\n"), "shrunk to the boundary: {msg}");
    }

    #[test]
    fn replay_seed_reproduces_case() {
        // The value drawn for a given case seed must be a pure function
        // of that seed.
        let gen = ranged_u64(0, 1_000_000);
        let config = Config::from_env(8);
        let seed = config.case_seed(3);
        let a = gen.generate(&mut Rng::seed_from_u64(seed));
        let b = gen.generate(&mut Rng::seed_from_u64(seed));
        assert_eq!(a, b);
    }

    #[test]
    fn vec_shrinker_drops_and_shrinks_elements() {
        let g = vec_of(ranged_u64(0, 100), 0, 10);
        let proposals = g.shrink(&vec![50, 60]);
        assert!(proposals.iter().any(|v| v.len() < 2), "drops elements");
        assert!(
            proposals.iter().any(|v| v.len() == 2 && v[0] < 50),
            "shrinks elements"
        );
    }

    #[test]
    fn one_of_and_pair_generate() {
        let g = pair_of(
            one_of(vec![ranged_u64(0, 5), ranged_u64(100, 105)]),
            any_bool(),
        );
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            let (v, _) = g.generate(&mut rng);
            assert!(v < 5 || (100..105).contains(&v));
        }
    }
}
