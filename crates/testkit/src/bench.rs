//! A criterion-free micro-benchmark runner.
//!
//! Each benchmark runs `warmup` untimed iterations, then `iters` timed
//! ones, and reports min / median / p95 / mean per-iteration times as a
//! single JSON line on stdout:
//!
//! ```text
//! {"bench":"bdd/and","iters":20,"warmup":3,"min_ns":104210,"median_ns":109835,"p95_ns":131002,"mean_ns":112480.1,"total_ms":2.25}
//! ```
//!
//! JSON lines append cleanly to `BENCH_*.json` trajectory files and diff
//! line-by-line across commits. `TESTKIT_BENCH_ITERS` and
//! `TESTKIT_BENCH_WARMUP` override the counts, so CI smoke runs can use
//! 3 iterations while a real measurement uses 50.

use std::hint::black_box;
use std::time::Instant;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Untimed warmup iterations before measurement.
    pub warmup: u32,
    /// Timed iterations.
    pub iters: u32,
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark name as reported.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Median iteration.
    pub median_ns: u64,
    /// 95th-percentile iteration.
    pub p95_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
}

impl Bench {
    /// A runner with the given defaults, overridable via
    /// `TESTKIT_BENCH_ITERS` / `TESTKIT_BENCH_WARMUP`.
    pub fn from_env(warmup: u32, iters: u32) -> Bench {
        let get = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(default)
        };
        Bench {
            warmup: get("TESTKIT_BENCH_WARMUP", warmup),
            iters: get("TESTKIT_BENCH_ITERS", iters).max(1),
        }
    }

    /// Runs one benchmark and prints its JSON line. The closure's return
    /// value is passed through [`black_box`] so the optimizer cannot
    /// delete the measured work.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Stats {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples_ns: Vec<u64> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples_ns.push(t0.elapsed().as_nanos() as u64);
        }
        let stats = summarize(name, &mut samples_ns);
        let total_ms = samples_ns.iter().sum::<u64>() as f64 / 1e6;
        println!(
            "{{\"bench\":\"{}\",\"iters\":{},\"warmup\":{},\"min_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"mean_ns\":{:.1},\"total_ms\":{:.2}}}",
            escape_json(&stats.name),
            stats.iters,
            self.warmup,
            stats.min_ns,
            stats.median_ns,
            stats.p95_ns,
            stats.mean_ns,
            total_ms,
        );
        stats
    }
}

/// Sorts the samples and computes the summary.
fn summarize(name: &str, samples_ns: &mut [u64]) -> Stats {
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    let pct = |p: f64| samples_ns[(((n - 1) as f64) * p).round() as usize];
    Stats {
        name: name.to_string(),
        iters: n as u32,
        min_ns: samples_ns[0],
        median_ns: pct(0.5),
        p95_ns: pct(0.95),
        mean_ns: samples_ns.iter().sum::<u64>() as f64 / n as f64,
    }
}

/// Escapes the characters JSON strings cannot contain bare. Benchmark
/// names are ASCII identifiers in practice; this keeps the output valid
/// even if one is not.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_counted() {
        let b = Bench {
            warmup: 1,
            iters: 10,
        };
        let mut runs = 0u32;
        let stats = b.bench("testkit/spin", || {
            runs += 1;
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert_eq!(runs, 11, "warmup + timed iterations");
        assert_eq!(stats.iters, 10);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.p95_ns);
    }

    #[test]
    fn summarize_percentiles() {
        let mut xs: Vec<u64> = (1..=100).collect();
        let s = summarize("t", &mut xs);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.median_ns, 51, "round-half-up on the 49.5 index");
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.mean_ns, 50.5);
    }

    #[test]
    fn json_escape() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }
}
