//! Exception flow: thrown objects propagate to callers' exception
//! variables through the call graph, context-insensitively and
//! context-sensitively.

use whale_core::{
    context_insensitive, context_sensitive, number_contexts, CallGraph, CallGraphMode,
};
use whale_ir::{parse_program, Facts};

const SRC: &str = r#"
class Err extends Object { }
class Deep extends Object {
  static method fail() {
    var e: Err;
    e = new Err;
    throw e;
  }
}
class Mid extends Object {
  static method relay() {
    Deep::fail();
  }
}
class Main extends Object {
  entry static method main() {
    var caught: Object;
    var other: Object;
    var cast: Err;
    other = new Object;
    Mid::relay();
    catch caught;
    cast = (Err) caught;
  }
}
"#;

fn facts() -> Facts {
    Facts::extract(&parse_program(SRC).unwrap())
}

fn var(facts: &Facts, suffix: &str) -> u64 {
    facts
        .var_names
        .iter()
        .position(|n| {
            n.rsplit_once('#')
                .map(|(h, _)| h.ends_with(suffix))
                .unwrap_or(false)
        })
        .unwrap() as u64
}

#[test]
fn thrown_object_reaches_caller_catch() {
    let facts = facts();
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let caught = var(&facts, "main::caught");
    let h_err = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("Err@"))
        .unwrap() as u64;
    assert!(
        ci.engine.relation_contains("vP", &[caught, h_err]).unwrap(),
        "the exception escapes Deep::fail, through Mid::relay, into main's catch"
    );
    // The unrelated object does not masquerade as an exception.
    let h_other = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("java.lang.Object@Main.main"))
        .unwrap() as u64;
    assert!(!ci
        .engine
        .relation_contains("vP", &[caught, h_other])
        .unwrap());
}

#[test]
fn cast_narrows_with_type_filter() {
    let facts = facts();
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let cast = var(&facts, "main::cast");
    let h_err = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("Err@"))
        .unwrap() as u64;
    assert!(ci.engine.relation_contains("vP", &[cast, h_err]).unwrap());
}

#[test]
fn exception_flow_is_context_sensitive() {
    let facts = facts();
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    let caught = var(&facts, "main::caught");
    let h_err = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("Err@"))
        .unwrap() as u64;
    let vpc = cs.engine.relation_tuples("vPC").unwrap();
    assert!(
        vpc.iter().any(|t| t[1] == caught && t[2] == h_err),
        "context-sensitive exception propagation: {vpc:?}"
    );
}

#[test]
fn exc_vars_extracted() {
    let facts = facts();
    // Every method carries an exception variable so exceptions propagate
    // through frames that neither throw nor catch.
    assert_eq!(facts.mthr.len(), 3); // Deep.fail, Mid.relay, Main.main
}
