//! End-to-end tests of the spec-driven taint engine: hand-written
//! programs with known flows, sanitizer cuts, heap-mediated flows, the
//! synth-injection oracle, and the witness well-formedness property.

use whale_core::{number_contexts, taint_analysis, CallGraph, FlowKind, TaintAnalysis};
use whale_ir::synth::{generate, injected_taint_spec, SynthConfig};
use whale_ir::{parse_program, Facts, TaintSpec};
use whale_testkit::{check, Gen};

fn run(src: &str, spec: &str) -> TaintAnalysis {
    let p = parse_program(src).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let spec = TaintSpec::parse(spec).unwrap();
    taint_analysis(&facts, &cg, &numbering, &spec, None).unwrap()
}

const CHAIN: &str = r#"
class Api extends Object {
  static method secret(): Object {
    var s: Object;
    s = new Object;
    return s;
  }
}
class Util extends Object {
  static method pass(p: Object): Object {
    return p;
  }
  static method clean(p: Object): Object {
    return p;
  }
}
class Db extends Object {
  static method exec(q: Object) { }
}
class Main extends Object {
  entry static method main() {
    var x: Object;
    var y: Object;
    var fresh: Object;
    x = Api::secret();
    y = Util::pass(x);
    Db::exec(y);
    fresh = new Object;
    Db::exec(fresh);
  }
}
"#;

#[test]
fn direct_chain_is_flagged_with_witness() {
    let result = run(
        CHAIN,
        "source method Api.secret\nsink method Db.exec 0\nsanitizer method Util.clean\n",
    );
    assert_eq!(result.findings.len(), 1, "{:?}", result.findings);
    let f = &result.findings[0];
    assert_eq!(f.in_method, "Main.main");
    assert_eq!(f.sink_method, "Db.exec");
    // Witness: secret's return seed -> (return) x -> (call) pass's p ->
    // (assign) pass's ret -> (return) y.
    assert_eq!(f.witness.first().unwrap().kind, FlowKind::Source);
    assert!(f.witness.first().unwrap().var_name.contains("Api.secret"));
    assert!(f.witness.last().unwrap().var_name.contains("::y"));
    let kinds: Vec<FlowKind> = f.witness.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            FlowKind::Source,
            FlowKind::Return,
            FlowKind::Call,
            FlowKind::Assign,
            FlowKind::Return,
        ],
        "{:?}",
        f.witness
    );
    result.validate_witness(f).unwrap();
}

#[test]
fn sanitizer_cuts_the_flow() {
    // Same chain, but routed through the sanitizer: silent.
    let src = CHAIN.replace("Util::pass", "Util::clean");
    let result = run(
        &src,
        "source method Api.secret\nsink method Db.exec 0\nsanitizer method Util.clean\n",
    );
    assert!(
        result.findings.is_empty(),
        "sanitized flow must not be reported: {:?}",
        result.findings
    );
    // Without the sanitizer entry the identical program is flagged.
    let unsanitized = run(&src, "source method Api.secret\nsink method Db.exec 0\n");
    assert_eq!(unsanitized.findings.len(), 1);
}

#[test]
fn heap_mediated_flow_is_tracked() {
    // The secret travels through a field: stored in one method, loaded in
    // another, connected only by points-to aliasing of the box.
    let src = r#"
class Box extends Object { field val: Object; }
class Api extends Object {
  static method secret(): Object {
    var s: Object;
    s = new Object;
    return s;
  }
}
class Db extends Object {
  static method exec(q: Object) { }
}
class Main extends Object {
  entry static method main() {
    var b: Box;
    var s: Object;
    b = new Box;
    s = Api::secret();
    b.val = s;
    Main::drain(b);
  }
  static method drain(box: Box) {
    var got: Object;
    got = box.val;
    Db::exec(got);
  }
}
"#;
    let result = run(src, "source method Api.secret\nsink method Db.exec 0\n");
    assert_eq!(result.findings.len(), 1, "{:?}", result.findings);
    let f = &result.findings[0];
    assert_eq!(f.in_method, "Main.drain");
    assert!(
        f.witness.iter().any(|s| s.kind == FlowKind::Heap),
        "witness must cross the heap: {:?}",
        f.witness
    );
    result.validate_witness(f).unwrap();
}

#[test]
fn field_sources_taint_their_loads() {
    let src = r#"
class Conf extends Object { field passwd: Object; }
class Db extends Object {
  static method exec(q: Object) { }
}
class Main extends Object {
  entry static method main() {
    var c: Conf;
    var p: Object;
    var o: Object;
    c = new Conf;
    p = c.passwd;
    Db::exec(p);
    o = new Object;
    Db::exec(o);
  }
}
"#;
    let result = run(src, "source field passwd\nsink method Db.exec 0\n");
    assert_eq!(result.findings.len(), 1, "{:?}", result.findings);
    let f = &result.findings[0];
    assert!(f.witness.first().unwrap().var_name.contains("::p"));
    result.validate_witness(f).unwrap();
}

/// Oracle: the synth generator injects N known source→sink chains plus
/// sanitized twins; the engine must report exactly the seeded `bad`
/// drivers — and nothing else — across several seeds.
#[test]
fn synth_injected_taint_oracle() {
    for seed in [11u64, 22, 33] {
        let mut cfg = SynthConfig::tiny("taintinj", seed);
        cfg.threads = 0;
        cfg.taint = 2;
        let p = generate(&cfg);
        let facts = Facts::extract(&p);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        let spec = TaintSpec::parse(&injected_taint_spec(&cfg)).unwrap();
        let result = taint_analysis(&facts, &cg, &numbering, &spec, None).unwrap();

        let mut bad_methods = std::collections::BTreeSet::new();
        for f in &result.findings {
            assert!(
                f.in_method.starts_with("taint.Drive") && f.in_method.ends_with(".bad"),
                "seed {seed}: finding outside the injected bad drivers: {f:?}"
            );
            result
                .validate_witness(f)
                .unwrap_or_else(|e| panic!("seed {seed}: ill-formed witness: {e}"));
            bad_methods.insert(f.in_method.clone());
        }
        assert_eq!(
            bad_methods.len(),
            cfg.taint,
            "seed {seed}: every injected chain reported: {:?}",
            result.findings
        );
    }
}

/// Property: for random synth programs with injected chains, every
/// finding's witness is well-formed — starts at a spec source, ends at
/// the finding's sink variable, and each consecutive pair is connected by
/// an actual flow fact of the step's kind.
#[test]
fn witnesses_are_well_formed_on_random_programs() {
    let gen = Gen::new(|rng| {
        let mut cfg = SynthConfig::tiny("taintprop", rng.gen_range(0u64..1000));
        cfg.layers = rng.gen_range(2usize..4);
        cfg.width = rng.gen_range(2usize..5);
        cfg.classes = rng.gen_range(2usize..5);
        cfg.threads = rng.gen_range(0usize..2);
        cfg.taint = rng.gen_range(1usize..4);
        cfg
    });
    check(
        "witnesses_are_well_formed_on_random_programs",
        16,
        &gen,
        |cfg| {
            let p = generate(cfg);
            let facts = Facts::extract(&p);
            let cg = CallGraph::from_cha(&facts).unwrap();
            let numbering = number_contexts(&cg);
            let spec = TaintSpec::parse(&injected_taint_spec(cfg)).unwrap();
            let result =
                taint_analysis(&facts, &cg, &numbering, &spec, None).map_err(|e| e.to_string())?;
            if result.findings.is_empty() {
                return Err("injected chains produced no findings".into());
            }
            for f in &result.findings {
                result
                    .validate_witness(f)
                    .map_err(|e| format!("finding {f:?}: {e}"))?;
            }
            Ok(())
        },
    );
}
