//! End-to-end tests of the static race detector: hand-written programs
//! with known races, lock-guarded twins that must stay silent, and the
//! documented static-field exclusion.

use whale_core::{detect_races, singleton_sites, thread_contexts, CallGraph};
use whale_ir::synth::{generate, SynthConfig};
use whale_ir::{parse_program, Facts};

fn setup(src: &str) -> (Facts, CallGraph) {
    let p = parse_program(src).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    (facts, cg)
}

/// Two clones of one worker write the same escaping object's field with no
/// locks: a write/write race.
#[test]
fn unguarded_shared_write_races() {
    let (facts, cg) = setup(
        r#"
class Shared extends Object { field data: Object; }
class W extends Thread {
  field shared: Shared;
  method run() {
    var s: Shared; var o: Object;
    s = this.shared;
    o = new Object;
    s.data = o;
  }
}
class Main extends Object {
  entry static method main() {
    var s: Shared; var w: W;
    s = new Shared;
    w = new W;
    w.shared = s;
    start w;
  }
}
"#,
    );
    let races = detect_races(&facts, &cg, None).unwrap();
    assert!(!races.report.pairs.is_empty());
    let p = &races.report.pairs[0];
    assert!(p.write_write, "both accesses are stores");
    assert_eq!(p.field, "data");
    assert!(
        p.object.contains("Shared@"),
        "raced object is the Shared instance: {}",
        p.object
    );
    assert_ne!(p.access1.0, p.access2.0, "distinct thread contexts");
    assert!(p.access1.1.contains("W.run#"), "{:?}", p);
}

/// The same program with every access inside `sync lk { ... }` on one
/// singleton lock object: the common-lock rule suppresses all reports.
#[test]
fn guarded_twin_is_silent() {
    let (facts, cg) = setup(
        r#"
class Shared extends Object { field data: Object; }
class W extends Thread {
  field shared: Shared;
  field lock: Object;
  method run() {
    var s: Shared; var o: Object; var l: Object;
    s = this.shared;
    l = this.lock;
    o = new Object;
    sync l {
      s.data = o;
    }
  }
}
class Main extends Object {
  entry static method main() {
    var s: Shared; var w: W; var lk: Object;
    s = new Shared;
    lk = new Object;
    w = new W;
    w.shared = s;
    w.lock = lk;
    start w;
  }
}
"#,
    );
    let races = detect_races(&facts, &cg, None).unwrap();
    assert!(
        races.report.pairs.is_empty(),
        "singleton-lock-guarded accesses must not race: {:?}",
        races.report.pairs
    );
}

/// A per-thread lock (allocated inside run) protects nothing: each clone
/// locks its own object, so the race must still be reported.
#[test]
fn per_thread_lock_does_not_suppress() {
    let (facts, cg) = setup(
        r#"
class Shared extends Object { field data: Object; }
class W extends Thread {
  field shared: Shared;
  method run() {
    var s: Shared; var o: Object; var l: Object;
    s = this.shared;
    l = new Object;
    o = new Object;
    sync l {
      s.data = o;
    }
  }
}
class Main extends Object {
  entry static method main() {
    var s: Shared; var w: W;
    s = new Shared;
    w = new W;
    w.shared = s;
    start w;
  }
}
"#,
    );
    // The per-thread lock's site sits in a run method: execution count 2,
    // never a singleton.
    let contexts = thread_contexts(&facts, &cg);
    let singles = singleton_sites(&facts, &cg, &contexts);
    let run_lock = facts
        .heap_names
        .iter()
        .position(|n| n.contains("@W.run"))
        .unwrap() as u64;
    assert!(
        !singles.contains(&run_lock),
        "run-local lock is not singleton"
    );

    let races = detect_races(&facts, &cg, None).unwrap();
    assert!(
        !races.report.pairs.is_empty(),
        "per-thread locks must not suppress the race"
    );
}

/// Symmetric `race` tuples collapse to one reported pair.
#[test]
fn report_deduplicates_symmetric_tuples() {
    let (facts, cg) = setup(
        r#"
class Shared extends Object { field data: Object; }
class W extends Thread {
  field shared: Shared;
  method run() {
    var s: Shared; var o: Object;
    s = this.shared;
    o = new Object;
    s.data = o;
  }
}
class Main extends Object {
  entry static method main() {
    var s: Shared; var w: W;
    s = new Shared;
    w = new W;
    w.shared = s;
    start w;
  }
}
"#,
    );
    let races = detect_races(&facts, &cg, None).unwrap();
    // One write statement under two contexts: exactly one pair after
    // dedup, from two symmetric raw tuples.
    assert_eq!(races.report.pairs.len(), 1, "{:?}", races.report.pairs);
    assert!(races.report.raw_tuples >= 2);
}

/// Oracle: the synth generator injects N known races plus lock-guarded
/// twins; the detector must report exactly the seeded victims — and
/// nothing else — across several seeds.
#[test]
fn synth_injected_races_oracle() {
    for seed in [11u64, 22, 33] {
        let mut cfg = SynthConfig::tiny("raceinj", seed);
        // No base worker threads: the base program is then single-threaded
        // and race-free, so every report must come from the injector.
        cfg.threads = 0;
        cfg.races = 2;
        let p = generate(&cfg);
        let facts = Facts::extract(&p);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let races = detect_races(&facts, &cg, None).unwrap();

        let mut victims = std::collections::BTreeSet::new();
        for pair in &races.report.pairs {
            assert!(
                pair.object.contains("race.Vic"),
                "seed {seed}: false alarm outside the injected victims: {pair:?}"
            );
            assert_eq!(pair.field, "rdata", "seed {seed}: {pair:?}");
            assert!(pair.write_write, "seed {seed}: {pair:?}");
            victims.insert(pair.object.clone());
        }
        assert_eq!(
            victims.len(),
            cfg.races,
            "seed {seed}: every injected race reported exactly once: {:?}",
            races.report.pairs
        );
    }
}

/// Singleton analysis: allocation sites in methods called more than once
/// (or from run methods) are excluded.
#[test]
fn singleton_counts_saturate() {
    let (facts, cg) = setup(
        r#"
class A extends Object {
  static method once() { var x: Object; x = new Object; }
  static method twice() { var y: Object; y = new Object; }
}
class Main extends Object {
  entry static method main() {
    A::once();
    A::twice();
    A::twice();
  }
}
"#,
    );
    let contexts = thread_contexts(&facts, &cg);
    let singles = singleton_sites(&facts, &cg, &contexts);
    let once_site = facts
        .heap_names
        .iter()
        .position(|n| n.contains("A.once"))
        .unwrap() as u64;
    let twice_site = facts
        .heap_names
        .iter()
        .position(|n| n.contains("A.twice"))
        .unwrap() as u64;
    assert!(singles.contains(&once_site));
    assert!(!singles.contains(&twice_site));
}
