//! Tests for the Section 5 queries: leak debugging, security audit, type
//! refinement and mod-ref.

use whale_core::queries::{leak_query, mod_ref, type_refinement, vuln_query, RefineVariant};
use whale_core::{number_contexts, CallGraph};
use whale_ir::{parse_program, Facts};

fn pipeline(src: &str) -> (Facts, CallGraph, whale_core::ContextNumbering) {
    let p = parse_program(src).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    (facts, cg, numbering)
}

const LEAKY: &str = r#"
class Cache extends Object {
  field slot: Object;
}
class Main extends Object {
  entry static method main() {
    var cache: Cache;
    var leaked: Object;
    var other: Object;
    cache = new Cache;
    leaked = new Object;
    other = new Object;
    cache.slot = leaked;
  }
}
"#;

#[test]
fn leak_query_finds_holder_and_store() {
    let (facts, cg, numbering) = pipeline(LEAKY);
    // The leaked object's heap name.
    let leaked = facts
        .heap_names
        .iter()
        .find(|n| n.starts_with("java.lang.Object@Main.main:1"))
        .expect("leaked site named");
    let report = leak_query(&facts, &cg, &numbering, leaked).unwrap();
    assert_eq!(report.who_points_to.len(), 1);
    assert!(report.who_points_to[0].0.starts_with("Cache@"));
    assert_eq!(report.who_points_to[0].1, "slot");
    assert_eq!(report.who_dunnit.len(), 1);
    let (ctx, base, field, src) = &report.who_dunnit[0];
    assert_eq!(*ctx, 1, "store runs in main's context");
    assert!(base.contains("::cache"));
    assert_eq!(field, "slot");
    assert!(src.contains("::leaked"));
}

#[test]
fn leak_query_empty_for_unreferenced_site() {
    let (facts, cg, numbering) = pipeline(LEAKY);
    let other = facts
        .heap_names
        .iter()
        .find(|n| n.starts_with("java.lang.Object@Main.main:2"))
        .unwrap();
    let report = leak_query(&facts, &cg, &numbering, other).unwrap();
    assert!(report.who_points_to.is_empty());
    assert!(report.who_dunnit.is_empty());
}

/// Negative: in a program with no field stores at all, the leak query
/// must report nothing for any allocation site — no retaining `(object,
/// field)` pairs and no culpable stores.
#[test]
fn leak_query_silent_without_any_stores() {
    let src = r#"
class A extends Object {
  static method mk(): Object {
    var o: Object;
    o = new Object;
    return o;
  }
}
class Main extends Object {
  entry static method main() {
    var x: Object;
    var y: Object;
    x = A::mk();
    y = x;
  }
}
"#;
    let (facts, cg, numbering) = pipeline(src);
    for heap in &facts.heap_names {
        let report = leak_query(&facts, &cg, &numbering, heap).unwrap();
        assert!(
            report.who_points_to.is_empty(),
            "{heap}: {:?}",
            report.who_points_to
        );
        assert!(
            report.who_dunnit.is_empty(),
            "{heap}: {:?}",
            report.who_dunnit
        );
    }
}

#[test]
fn vuln_query_flags_string_derived_keys() {
    // String::valueOf must exist on the String class itself; build it via
    // the builder API instead of the textual frontend.
    use whale_ir::{MethodKind, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let obj = b.object_class();
    let string = b.string_class();
    // String.make(): String (a String-class method returning a String)
    let make = b.method(string, "make", MethodKind::Static, &[], Some(string));
    {
        let s = b.local(make, "s", string);
        b.stmt_new(make, s, string);
        b.stmt_return(make, s);
    }
    let sink_cls = b.class("crypto.PBEKeySpec", Some(obj));
    let init = b.method(sink_cls, "init", MethodKind::Static, &[("key", obj)], None);
    // safe(): passes a fresh non-String object.
    let app = b.class("app.App", Some(obj));
    let safe = b.method(app, "safe", MethodKind::Static, &[], None);
    {
        let k = b.local(safe, "k", obj);
        b.stmt_new(safe, k, obj);
        b.stmt_call_static(safe, init, &[k], None);
    }
    // unsafe(): passes a String that flowed through a helper.
    let conv = b.method(app, "convert", MethodKind::Static, &[("x", obj)], Some(obj));
    {
        let x = b.program().methods[conv.index()].formals[0];
        b.stmt_return(conv, x);
    }
    let unsafe_ = b.method(app, "unsafe", MethodKind::Static, &[], None);
    {
        let s = b.local(unsafe_, "s", string);
        let c = b.local(unsafe_, "c", obj);
        b.stmt_call_static(unsafe_, make, &[], Some(s));
        b.stmt_call_static(unsafe_, conv, &[s], Some(c));
        b.stmt_call_static(unsafe_, init, &[c], None);
    }
    b.entry(safe);
    b.entry(unsafe_);
    let p = b.finish();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    // arg position 0: init is static, so the key is actual 0.
    let vulns = vuln_query(&facts, &cg, &numbering, "crypto.PBEKeySpec.init", 0).unwrap();
    assert_eq!(
        vulns.len(),
        1,
        "exactly the unsafe call is flagged: {vulns:?}"
    );
    assert_eq!(vulns[0].in_method, "app.App.unsafe");
}

#[test]
fn refinement_variants_order_by_precision() {
    // outA is declared Object but only ever holds A objects; a B object
    // flows elsewhere keeping multiple types alive in the heap.
    let src = r#"
class A extends Object { }
class B extends Object { }
class Id extends Object {
  static method id(p: Object): Object {
    return p;
  }
}
class Main extends Object {
  entry static method main() {
    var a: A;
    var b: B;
    var ra: Object;
    var rb: Object;
    a = new A;
    b = new B;
    ra = Id::id(a);
    rb = Id::id(b);
  }
}
"#;
    let (facts, cg, numbering) = pipeline(src);
    let ci_untyped = type_refinement(&facts, None, None, RefineVariant::CiUntyped).unwrap();
    let ci_typed = type_refinement(&facts, None, None, RefineVariant::CiTyped).unwrap();
    let proj_cs = type_refinement(
        &facts,
        Some(&cg),
        Some(&numbering),
        RefineVariant::ProjectedCsPointer,
    )
    .unwrap();
    let cs = type_refinement(
        &facts,
        Some(&cg),
        Some(&numbering),
        RefineVariant::CsPointer,
    )
    .unwrap();
    // In the CI analyses ra and rb (and id's p/ret) look multi-typed.
    assert!(ci_untyped.multi >= 2, "{ci_untyped:?}");
    // Typed filtering can only reduce multi-typed vars.
    assert!(ci_typed.multi <= ci_untyped.multi);
    // Projection keeps intermediate precision gains: ra/rb are now
    // single-typed, only id-internal vars stay merged.
    assert!(proj_cs.multi <= ci_typed.multi);
    // Full context sensitivity: no variable is multi-typed in any single
    // context (the paper's "never greater than 1%" row, exact here).
    assert_eq!(cs.multi, 0, "{cs:?}");
    // More precision means more refinable variables, monotonically.
    assert!(ci_typed.refinable >= ci_untyped.refinable);
    assert!(cs.refinable >= proj_cs.refinable);
    // Percentages are well-formed.
    let (m, r) = cs.percentages();
    assert!((0.0..=100.0).contains(&m));
    assert!((0.0..=100.0).contains(&r));
}

#[test]
fn refinement_cs_type_vs_cs_pointer() {
    let src = r#"
class A extends Object { }
class Main extends Object {
  entry static method main() {
    var a: A;
    var o: Object;
    a = new A;
    o = a;
  }
}
"#;
    let (facts, cg, numbering) = pipeline(src);
    let cs_ptr = type_refinement(
        &facts,
        Some(&cg),
        Some(&numbering),
        RefineVariant::CsPointer,
    )
    .unwrap();
    let cs_ty =
        type_refinement(&facts, Some(&cg), Some(&numbering), RefineVariant::CsType).unwrap();
    let proj_ty = type_refinement(
        &facts,
        Some(&cg),
        Some(&numbering),
        RefineVariant::ProjectedCsType,
    )
    .unwrap();
    // o: Object can be refined to A in every variant.
    assert!(cs_ptr.refinable >= 1);
    assert!(cs_ty.refinable >= 1);
    assert!(proj_ty.refinable >= 1);
    // The type analysis can never be more precise than the pointer one.
    assert!(cs_ty.multi >= cs_ptr.multi);
}

#[test]
fn mod_ref_attributes_effects_to_callers() {
    let src = r#"
class Box extends Object {
  field val: Object;
}
class Main extends Object {
  entry static method main() {
    var b: Box;
    var o: Object;
    b = new Box;
    o = new Object;
    Main::write(b, o);
    Main::read(b);
  }
  static method write(target: Box, v: Object) {
    target.val = v;
  }
  static method read(target: Box): Object {
    var r: Object;
    r = target.val;
    return r;
  }
}
"#;
    let (facts, cg, numbering) = pipeline(src);
    let mr = mod_ref(&facts, &cg, &numbering).unwrap();
    let m = |name: &str| {
        facts
            .method_names
            .iter()
            .position(|n| n.ends_with(name))
            .unwrap() as u64
    };
    let h_box = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("Box@"))
        .unwrap() as u64;
    let f_val = facts.field_names.iter().position(|n| n == "val").unwrap() as u64;
    // write modifies Box.val; main inherits the effect transitively.
    let write_mods = mr.mod_of(1, m(".write")).unwrap();
    assert!(write_mods.contains(&(h_box, f_val)), "{write_mods:?}");
    let main_mods = mr.mod_of(1, m(".main")).unwrap();
    assert!(main_mods.contains(&(h_box, f_val)));
    // read references but does not modify.
    let read_refs = mr.ref_of(1, m(".read")).unwrap();
    assert!(read_refs.contains(&(h_box, f_val)));
    let read_mods = mr.mod_of(1, m(".read")).unwrap();
    assert!(read_mods.is_empty(), "{read_mods:?}");
    // write references nothing (it only stores).
    let write_refs = mr.ref_of(1, m(".write")).unwrap();
    assert!(write_refs.is_empty());
}

/// Negative: methods that only allocate and copy touch no heap location,
/// so mod-ref must report empty effect sets for every method in every
/// context.
#[test]
fn mod_ref_empty_for_pure_methods() {
    let src = r#"
class A extends Object {
  static method pure(p: Object): Object {
    var t: Object;
    t = new Object;
    t = p;
    return t;
  }
}
class Main extends Object {
  entry static method main() {
    var o: Object;
    var r: Object;
    o = new Object;
    r = A::pure(o);
  }
}
"#;
    let (facts, cg, numbering) = pipeline(src);
    let mr = mod_ref(&facts, &cg, &numbering).unwrap();
    for m in 0..facts.sizes.m {
        for c in 0..numbering.context_domain_size() {
            let mods = mr.mod_of(c, m).unwrap();
            let refs = mr.ref_of(c, m).unwrap();
            assert!(mods.is_empty(), "method {m} context {c}: {mods:?}");
            assert!(refs.is_empty(), "method {m} context {c}: {refs:?}");
        }
    }
}
