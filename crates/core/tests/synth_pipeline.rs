//! Robustness: random generator configs flow through the full pipeline,
//! and the generator's path-count estimate tracks the real numbering.
//!
//! Runs on the in-tree `whale-testkit` harness: 64 cases, failing seeds
//! are printed and replayable with `TESTKIT_SEED=<n>`.

use whale_core::{context_insensitive, number_contexts, CallGraph, CallGraphMode};
use whale_ir::synth::{generate, SynthConfig};
use whale_ir::Facts;
use whale_testkit::{check, Gen};

fn arb_config() -> Gen<SynthConfig> {
    Gen::new(|rng| SynthConfig {
        name: "prop".into(),
        seed: rng.gen_range(0u64..1000),
        layers: rng.gen_range(2usize..5),
        width: rng.gen_range(2usize..7),
        fan_in: rng.gen_range(1usize..4),
        classes: rng.gen_range(2usize..6),
        dispatch_fanout: rng.gen_range(1usize..4),
        virtual_pct: rng.gen_range(0u32..100),
        recursion_pct: rng.gen_range(0u32..40),
        allocs_per_method: 1,
        field_ops_per_method: 1,
        threads: rng.gen_range(0usize..3),
        shared_pct: 50,
        parallel_sites: rng.gen_range(1usize..3),
        races: 0,
        taint: 0,
    })
    .with_shrink(|c: &SynthConfig| {
        // Shrink each structural knob toward its minimum, one at a time.
        let mut out = Vec::new();
        let mut push = |f: fn(&mut SynthConfig)| {
            let mut s = c.clone();
            f(&mut s);
            out.push(s);
        };
        if c.layers > 2 {
            push(|s| s.layers -= 1);
        }
        if c.width > 2 {
            push(|s| s.width -= 1);
        }
        if c.fan_in > 1 {
            push(|s| s.fan_in -= 1);
        }
        if c.classes > 2 {
            push(|s| s.classes -= 1);
        }
        if c.dispatch_fanout > 1 {
            push(|s| s.dispatch_fanout -= 1);
        }
        if c.threads > 0 {
            push(|s| s.threads -= 1);
        }
        if c.parallel_sites > 1 {
            push(|s| s.parallel_sites -= 1);
        }
        if c.virtual_pct > 0 {
            push(|s| s.virtual_pct = 0);
        }
        if c.recursion_pct > 0 {
            push(|s| s.recursion_pct = 0);
        }
        out
    })
}

#[test]
fn random_configs_survive_the_pipeline() {
    check(
        "random_configs_survive_the_pipeline",
        64,
        &arb_config(),
        |config| {
            let program = generate(config);
            let facts = Facts::extract(&program);
            // Facts are well-formed.
            for t in &facts.vp0 {
                if !(t[0] < facts.sizes.v && t[1] < facts.sizes.h) {
                    return Err(format!("vp0 tuple {t:?} out of domain"));
                }
            }
            // CHA call graph + numbering never panic and produce sane counts.
            let cg = CallGraph::from_cha(&facts).unwrap();
            let numbering = number_contexts(&cg);
            if numbering.total_paths() < 1 {
                return Err("zero total paths".into());
            }
            if let Some(&c) = numbering.counts.iter().find(|&&c| c < 1) {
                return Err(format!("context count {c} < 1"));
            }
            // The context-insensitive analysis solves.
            let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
            let vp = ci.count("vP").unwrap();
            if vp < facts.vp0.len() as f64 {
                return Err(format!("vP {vp} smaller than vP0 {}", facts.vp0.len()));
            }
            Ok(())
        },
    );
}

#[test]
fn expected_paths_tracks_numbering_within_two_decades() {
    for (layers, fan) in [(6usize, 2usize), (8, 3), (10, 3)] {
        let config = SynthConfig {
            name: "cal".into(),
            seed: 99,
            layers,
            width: 12,
            fan_in: fan,
            classes: 8,
            dispatch_fanout: 2,
            virtual_pct: 50,
            recursion_pct: 10,
            allocs_per_method: 1,
            field_ops_per_method: 1,
            threads: 0,
            shared_pct: 0,
            parallel_sites: 1,
            races: 0,
            taint: 0,
        };
        let program = generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let measured = number_contexts(&cg).total_paths() as f64;
        let estimated = config.expected_paths();
        // The estimate ignores recursion back-edges, library amplification
        // and main's seeding, all of which only add paths: it is a lower
        // bound, reliable to within a few decades on deep graphs.
        assert!(
            measured >= estimated / 10.0,
            "layers={layers} fan={fan}: measured 10^{:.1} vs estimated 10^{:.1}",
            measured.log10(),
            estimated.log10()
        );
        assert!(
            measured.log10() <= estimated.log10() * 2.0 + 2.0,
            "estimate catastrophically low: measured 10^{:.1} vs 10^{:.1}",
            measured.log10(),
            estimated.log10()
        );
    }
}
