//! Robustness: random generator configs flow through the full pipeline,
//! and the generator's path-count estimate tracks the real numbering.

use proptest::prelude::*;
use whale_core::{context_insensitive, number_contexts, CallGraph, CallGraphMode};
use whale_ir::synth::{generate, SynthConfig};
use whale_ir::Facts;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        2usize..5,  // layers
        2usize..7,  // width
        1usize..4,  // fan_in
        2usize..6,  // classes
        1usize..4,  // dispatch_fanout
        0u32..100,  // virtual_pct
        0u32..40,   // recursion_pct
        0usize..3,  // threads
        1usize..3,  // parallel_sites
        0u64..1000, // seed
    )
        .prop_map(
            |(layers, width, fan_in, classes, fanout, vpct, rpct, threads, sites, seed)| {
                SynthConfig {
                    name: "prop".into(),
                    seed,
                    layers,
                    width,
                    fan_in,
                    classes,
                    dispatch_fanout: fanout,
                    virtual_pct: vpct,
                    recursion_pct: rpct,
                    allocs_per_method: 1,
                    field_ops_per_method: 1,
                    threads,
                    shared_pct: 50,
                    parallel_sites: sites,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_configs_survive_the_pipeline(config in arb_config()) {
        let program = generate(&config);
        let facts = Facts::extract(&program);
        // Facts are well-formed.
        for t in &facts.vp0 {
            prop_assert!(t[0] < facts.sizes.v && t[1] < facts.sizes.h);
        }
        // CHA call graph + numbering never panic and produce sane counts.
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        prop_assert!(numbering.total_paths() >= 1);
        for &c in &numbering.counts {
            prop_assert!(c >= 1);
        }
        // The context-insensitive analysis solves.
        let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
        prop_assert!(ci.count("vP").unwrap() >= facts.vp0.len() as f64);
    }
}

#[test]
fn expected_paths_tracks_numbering_within_two_decades() {
    for (layers, fan) in [(6usize, 2usize), (8, 3), (10, 3)] {
        let config = SynthConfig {
            name: "cal".into(),
            seed: 99,
            layers,
            width: 12,
            fan_in: fan,
            classes: 8,
            dispatch_fanout: 2,
            virtual_pct: 50,
            recursion_pct: 10,
            allocs_per_method: 1,
            field_ops_per_method: 1,
            threads: 0,
            shared_pct: 0,
            parallel_sites: 1,
        };
        let program = generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let measured = number_contexts(&cg).total_paths() as f64;
        let estimated = config.expected_paths();
        // The estimate ignores recursion back-edges, library amplification
        // and main's seeding, all of which only add paths: it is a lower
        // bound, reliable to within a few decades on deep graphs.
        assert!(
            measured >= estimated / 10.0,
            "layers={layers} fan={fan}: measured 10^{:.1} vs estimated 10^{:.1}",
            measured.log10(),
            estimated.log10()
        );
        assert!(
            measured.log10() <= estimated.log10() * 2.0 + 2.0,
            "estimate catastrophically low: measured 10^{:.1} vs 10^{:.1}",
            measured.log10(),
            estimated.log10()
        );
    }
}
