//! The flow-sensitive local factoring must be sound and (weakly) more
//! precise: interface variables (formals, returns) never GAIN pointees
//! under factoring — they may lose spurious ones, since splitting a
//! reused temp also sharpens what flows into calls and returns.
//!
//! Runs on the in-tree `whale-testkit` harness: 64 cases, failing seeds
//! are printed and replayable with `TESTKIT_SEED=<n>`.

use whale_core::{context_insensitive, CallGraphMode};
use whale_ir::ssa::factor_locals;
use whale_ir::synth::{generate, SynthConfig};
use whale_ir::{parse_program, Facts};
use whale_testkit::check;
use whale_testkit::prop::ranged_u64;

/// For every formal and return variable (matched positionally between
/// the original and factored program), the factored analysis computes a
/// subset of the unfactored pointees (soundness relative to the
/// flow-insensitive abstraction; precision may strictly improve).
fn check_interface_preserved(program: &whale_ir::Program) -> Result<(), String> {
    let facts = Facts::extract(program);
    let factored_prog = factor_locals(program);
    let f_facts = Facts::extract(&factored_prog);
    let orig = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let fact = context_insensitive(&f_facts, true, CallGraphMode::Cha, None).unwrap();
    let vp_o = orig.engine.relation_tuples("vP").unwrap();
    let vp_f = fact.engine.relation_tuples("vP").unwrap();
    // Interface vars: formals (incl. this) and ret/exc vars, matched
    // positionally per method.
    for (m_o, m_f) in program.methods.iter().zip(&factored_prog.methods) {
        let mut pairs: Vec<(u64, u64)> = m_o
            .formals
            .iter()
            .zip(&m_f.formals)
            .map(|(a, b)| (a.0 as u64, b.0 as u64))
            .collect();
        if let (Some(a), Some(b)) = (m_o.ret_var, m_f.ret_var) {
            pairs.push((a.0 as u64, b.0 as u64));
        }
        for (vo, vf) in pairs {
            let mut po: Vec<u64> = vp_o.iter().filter(|t| t[0] == vo).map(|t| t[1]).collect();
            let mut pf: Vec<u64> = vp_f.iter().filter(|t| t[0] == vf).map(|t| t[1]).collect();
            po.sort_unstable();
            pf.sort_unstable();
            for h in &pf {
                if po.binary_search(h).is_err() {
                    return Err(format!(
                        "factoring invented pointee {h} for interface var {vo}/{vf}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[test]
fn factoring_preserves_interfaces_on_hand_program() {
    let p = parse_program(
        r#"
class A extends Object { }
class B extends Object { }
class H extends Object { field f: Object; }
class Main extends Object {
  entry static method main() {
    var t: Object;
    var h: H;
    var out: Object;
    h = new H;
    t = new A;
    h.f = t;
    t = new B;
    out = Main::use(t);
  }
  static method use(p: Object): Object {
    return p;
  }
}
"#,
    )
    .unwrap();
    check_interface_preserved(&p).unwrap();
}

#[test]
fn factoring_strictly_improves_reused_temps() {
    // Without factoring, `use`'s parameter sees both A and B (t is merged
    // flow-insensitively); with factoring only B flows to the call.
    let p = parse_program(
        r#"
class A extends Object { }
class B extends Object { }
class Sink extends Object { field s: Object; }
class Main extends Object {
  entry static method main() {
    var t: Object;
    var k: Sink;
    k = new Sink;
    t = new A;
    k.s = t;
    t = new B;
    Main::use(t);
  }
  static method use(p: Object) {
  }
}
"#,
    )
    .unwrap();
    let facts = Facts::extract(&p);
    let f_facts = Facts::extract(&factor_locals(&p));
    let find_p = |facts: &Facts| {
        facts
            .var_names
            .iter()
            .position(|n| n.contains("use::p"))
            .unwrap() as u64
    };
    let orig = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let fact = context_insensitive(&f_facts, true, CallGraphMode::Cha, None).unwrap();
    let count = |a: &whale_core::Analysis, v: u64| {
        a.engine
            .relation_tuples("vP")
            .unwrap()
            .iter()
            .filter(|t| t[0] == v)
            .count()
    };
    assert_eq!(count(&orig, find_p(&facts)), 2, "unfactored merges A and B");
    assert_eq!(count(&fact, find_p(&f_facts)), 1, "factored keeps only B");
}

#[test]
fn factoring_interface_preservation_on_synthetic() {
    check(
        "factoring_interface_preservation_on_synthetic",
        64,
        &ranged_u64(0, 500),
        |&seed| {
            let config = SynthConfig::tiny("fprop", seed);
            let program = generate(&config);
            check_interface_preserved(&program)
        },
    );
}
