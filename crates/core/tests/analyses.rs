//! End-to-end tests of the analyses on hand-computed programs.

use whale_core::{
    context_insensitive, context_sensitive, cs_type_analysis, number_contexts, thread_escape,
    CallGraph, CallGraphMode,
};
use whale_ir::{parse_program, Facts};

/// Variable id by `method::name` suffix.
fn var(facts: &Facts, suffix: &str) -> u64 {
    facts
        .var_names
        .iter()
        .position(|n| {
            n.rsplit_once('#')
                .map(|(head, _)| head.ends_with(suffix))
                .unwrap_or(false)
        })
        .unwrap_or_else(|| panic!("no variable matching `{suffix}`")) as u64
}

/// Heap id by name prefix (`Class@Method`).
fn heap(facts: &Facts, prefix: &str) -> u64 {
    facts
        .heap_names
        .iter()
        .position(|n| n.starts_with(prefix))
        .unwrap_or_else(|| panic!("no heap site matching `{prefix}`")) as u64
}

/// The classic polyvariance example: a context-insensitive analysis merges
/// the two calls of `id`, the cloning-based context-sensitive analysis
/// keeps them apart.
const POLY: &str = r#"
class A extends Object { }
class B extends Object { }
class Id extends Object {
  static method id(p: Object): Object {
    return p;
  }
}
class Main extends Object {
  entry static method main() {
    var a: A;
    var b: B;
    var ra: Object;
    var rb: Object;
    a = new A;
    b = new B;
    ra = Id::id(a);
    rb = Id::id(b);
  }
}
"#;

#[test]
fn context_insensitive_merges_id_calls() {
    let p = parse_program(POLY).unwrap();
    let facts = Facts::extract(&p);
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let ra = var(&facts, "main::ra");
    let ha = heap(&facts, "A@");
    let hb = heap(&facts, "B@");
    // CI pollution: ra sees both A and B objects.
    assert!(ci.engine.relation_contains("vP", &[ra, ha]).unwrap());
    assert!(ci.engine.relation_contains("vP", &[ra, hb]).unwrap());
}

#[test]
fn context_sensitive_separates_id_calls() {
    let p = parse_program(POLY).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    let ra = var(&facts, "main::ra");
    let rb = var(&facts, "main::rb");
    let ha = heap(&facts, "A@");
    let hb = heap(&facts, "B@");
    let vpc = cs.engine.relation_tuples("vPC").unwrap();
    let pts = |v: u64| -> Vec<u64> {
        let mut hs: Vec<u64> = vpc.iter().filter(|t| t[1] == v).map(|t| t[2]).collect();
        hs.sort_unstable();
        hs.dedup();
        hs
    };
    assert_eq!(pts(ra), vec![ha], "ra only sees the A object");
    assert_eq!(pts(rb), vec![hb], "rb only sees the B object");
    // The id parameter has two contexts with different pointees.
    let idp = var(&facts, "id::p");
    let p_pts: Vec<(u64, u64)> = vpc
        .iter()
        .filter(|t| t[1] == idp)
        .map(|t| (t[0], t[2]))
        .collect();
    let ctxs: std::collections::HashSet<u64> = p_pts.iter().map(|&(c, _)| c).collect();
    assert_eq!(ctxs.len(), 2, "id has two clones");
    for &(_, h) in &p_pts {
        assert!(h == ha || h == hb);
    }
    // Each context sees exactly one object.
    for &c in &ctxs {
        let in_ctx: Vec<u64> = p_pts
            .iter()
            .filter(|&&(cc, _)| cc == c)
            .map(|&(_, h)| h)
            .collect();
        assert_eq!(in_ctx.len(), 1, "context {c} is monomorphic");
    }
}

#[test]
fn projected_cs_equals_ci_here() {
    // For this program the CS result projected to (v, h) equals the CI
    // result restricted to reachable code (CS is never less precise).
    let p = parse_program(POLY).unwrap();
    let facts = Facts::extract(&p);
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    let mut projected: Vec<(u64, u64)> = cs
        .engine
        .relation_tuples("vPC")
        .unwrap()
        .iter()
        .map(|t| (t[1], t[2]))
        .collect();
    projected.sort_unstable();
    projected.dedup();
    let mut ci_vp: Vec<(u64, u64)> = ci
        .engine
        .relation_tuples("vP")
        .unwrap()
        .iter()
        .map(|t| (t[0], t[1]))
        .collect();
    ci_vp.sort_unstable();
    // CS projected must be a subset of CI.
    for pair in &projected {
        assert!(
            ci_vp.binary_search(pair).is_ok(),
            "CS ⊆ CI violated: {pair:?}"
        );
    }
}

const VIRTUAL: &str = r#"
class Base extends Object {
  method make(): Object {
    var o: Object;
    o = new Object;
    return o;
  }
}
class Sub extends Base {
  method make(): Object {
    var o: Object;
    o = new Object;
    return o;
  }
}
class Main extends Object {
  entry static method main() {
    var b: Base;
    var r: Object;
    b = new Sub;
    r = b.make();
  }
}
"#;

#[test]
fn on_the_fly_callgraph_is_smaller_than_cha() {
    let p = parse_program(VIRTUAL).unwrap();
    let facts = Facts::extract(&p);
    let cha = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let otf = context_insensitive(&facts, true, CallGraphMode::OnTheFly, None).unwrap();
    let cha_edges = cha.count("IE").unwrap() as u64;
    let otf_edges = otf.count("IE").unwrap() as u64;
    // CHA dispatches b.make() to Base.make and Sub.make; the points-to
    // based discovery knows b is a Sub.
    assert_eq!(cha_edges, 2);
    assert_eq!(otf_edges, 1);
    // And the points-to result is more precise too.
    assert!(otf.count("vP").unwrap() <= cha.count("vP").unwrap());
}

const ILL_TYPED_FLOW: &str = r#"
class A extends Object { }
class B extends Object { }
class Holder extends Object {
  field slot: Object;
}
class Main extends Object {
  entry static method main() {
    var ha: Holder;
    var a: A;
    var b: B;
    var outA: A;
    ha = new Holder;
    a = new A;
    b = new B;
    ha.slot = a;
    ha.slot = b;
    outA = ha.slot;
  }
}
"#;

#[test]
fn type_filter_drops_ill_typed_pointees() {
    let p = parse_program(ILL_TYPED_FLOW).unwrap();
    let facts = Facts::extract(&p);
    let untyped = context_insensitive(&facts, false, CallGraphMode::Cha, None).unwrap();
    let typed = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let out = var(&facts, "main::outA");
    let ha = heap(&facts, "A@");
    let hb = heap(&facts, "B@");
    // Untyped: outA sees both objects through the slot.
    assert!(untyped.engine.relation_contains("vP", &[out, ha]).unwrap());
    assert!(untyped.engine.relation_contains("vP", &[out, hb]).unwrap());
    // Typed: the B object cannot be assigned to an A variable.
    assert!(typed.engine.relation_contains("vP", &[out, ha]).unwrap());
    assert!(!typed.engine.relation_contains("vP", &[out, hb]).unwrap());
    // Type filtering is strictly more precise overall.
    assert!(typed.count("vP").unwrap() < untyped.count("vP").unwrap());
}

#[test]
fn cs_type_analysis_overapproximates_cs_pointer_types() {
    let p = parse_program(POLY).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    let ty = cs_type_analysis(&facts, &cg, &numbering, None).unwrap();
    // Types seen by the pointer analysis (via hT) must all be seen by the
    // type analysis.
    let mut ht = std::collections::HashMap::new();
    for t in &facts.ht {
        ht.insert(t[0], t[1]);
    }
    let vtc: std::collections::HashSet<(u64, u64, u64)> = ty
        .engine
        .relation_tuples("vTC")
        .unwrap()
        .iter()
        .map(|t| (t[0], t[1], t[2]))
        .collect();
    for t in cs.engine.relation_tuples("vPC").unwrap() {
        let (c, v, h) = (t[0], t[1], t[2]);
        if let Some(&ty_of_h) = ht.get(&h) {
            assert!(
                vtc.contains(&(c, v, ty_of_h)),
                "type analysis misses ({c},{v},type {ty_of_h})"
            );
        }
    }
}

const THREADS: &str = r#"
class Worker extends Thread {
  field shared: Object;
  method run() {
    var mine: Object;
    var got: Object;
    mine = new Object;
    sync mine;
    got = this.shared;
    sync got;
  }
}
class Main extends Object {
  entry static method main() {
    var w: Worker;
    var o: Object;
    w = new Worker;
    o = new Object;
    w.shared = o;
    start w;
  }
}
"#;

#[test]
fn thread_escape_hand_example() {
    let p = parse_program(THREADS).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let esc = thread_escape(&facts, &cg, None).unwrap();
    // One thread creation site => contexts {0 global, 1 main, 2, 3}.
    assert_eq!(esc.contexts.domain_size, 4);
    let escaped = esc.engine.relation_tuples("escaped").unwrap();
    let h_o = heap(&facts, "java.lang.Object@Main.main");
    let h_mine = heap(&facts, "java.lang.Object@Worker.run");
    let h_w = heap(&facts, "Worker@");
    // o is stored into the worker and read by the thread: escaped.
    assert!(
        escaped.iter().any(|t| t[1] == h_o),
        "shared object must escape: {escaped:?}"
    );
    // The thread object itself is touched by creator and thread: escaped.
    assert!(escaped.iter().any(|t| t[1] == h_w));
    // The thread-local object stays captured.
    assert!(!escaped.iter().any(|t| t[1] == h_mine));
    let captured = esc.engine.relation_tuples("captured").unwrap();
    assert!(captured.iter().any(|t| t[1] == h_mine));
    // sync mine is unneeded, sync got is needed.
    let needed = esc.engine.relation_tuples("neededSyncs").unwrap();
    let unneeded = esc.engine.relation_tuples("unneededSyncs").unwrap();
    let v_mine = var(&facts, "run::mine");
    let v_got = var(&facts, "run::got");
    assert!(needed.iter().any(|t| t[1] == v_got));
    assert!(!needed.iter().any(|t| t[1] == v_mine));
    assert!(unneeded.iter().any(|t| t[1] == v_mine));
}

#[test]
fn single_threaded_program_only_global_escapes() {
    let p = parse_program(POLY).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let esc = thread_escape(&facts, &cg, None).unwrap();
    let escaped = esc.engine.relation_tuples("escaped").unwrap();
    // Only the synthetic global object (the paper's observation for
    // single-threaded benchmarks).
    assert_eq!(escaped.len(), 1, "escaped = {escaped:?}");
    assert_eq!(escaped[0][1], facts.sizes.h, "the global object");
}

#[test]
fn figure1_graph_through_full_cs_pipeline() {
    // A program whose call graph mirrors Figure 1 (M2<->M3 recursion).
    let src = r#"
class G extends Object {
  entry static method main() {
    var o: Object;
    o = new Object;
    o = G::m2(o);
    o = G::m3(o);
  }
  static method m2(p: Object): Object {
    var r: Object;
    r = G::m3(p);
    r = G::m4(p);
    return r;
  }
  static method m3(p: Object): Object {
    var r: Object;
    r = G::m2(p);
    r = G::m4(p);
    r = G::m5(p);
    return r;
  }
  static method m4(p: Object): Object {
    var r: Object;
    r = G::m6(p);
    return r;
  }
  static method m5(p: Object): Object {
    var r: Object;
    r = G::m6(p);
    return r;
  }
  static method m6(p: Object): Object {
    return p;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let m = |name: &str| {
        facts
            .method_names
            .iter()
            .position(|n| n.ends_with(name))
            .unwrap()
    };
    assert_eq!(numbering.counts[m(".main")], 1);
    assert_eq!(numbering.counts[m(".m2")], 2);
    assert_eq!(numbering.counts[m(".m3")], 2);
    assert_eq!(numbering.counts[m(".m4")], 4);
    assert_eq!(numbering.counts[m(".m5")], 2);
    assert_eq!(numbering.counts[m(".m6")], 6);
    // And the CS analysis over it converges with the right context domain.
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    assert!(cs.count("vPC").unwrap() > 0.0);
    // m6's parameter has results in all six contexts.
    let p6 = var(&facts, "m6::p");
    let ctxs: std::collections::HashSet<u64> = cs
        .engine
        .relation_tuples("vPC")
        .unwrap()
        .iter()
        .filter(|t| t[1] == p6)
        .map(|t| t[0])
        .collect();
    assert_eq!(ctxs.len(), 6, "m6 is analyzed in six contexts: {ctxs:?}");
}

/// The BDD-built `IEC` relation must contain exactly one tuple per
/// (edge, caller context) pair, and `mC` one per (method, context) —
/// verified with exact (u128) counting on a synthetic benchmark.
#[test]
fn iec_and_mc_exact_tuple_counts() {
    use whale_core::EdgeContexts;
    let config = whale_ir::synth::SynthConfig::tiny("iec", 11);
    let program = whale_ir::synth::generate(&config);
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();

    let expected_iec: u128 = numbering
        .edge_contexts
        .iter()
        .map(|e| match *e {
            EdgeContexts::Shift { callers, .. } => callers,
            EdgeContexts::Identity { contexts } => contexts,
            EdgeContexts::Merged { callers, .. } => callers,
        })
        .sum();
    let sig = cs.engine.relation_signature("IEC").unwrap();
    let iec = cs.engine.relation_bdd("IEC").unwrap();
    assert_eq!(iec.satcount_domains_exact(&sig), expected_iec);

    let expected_mc: u128 = numbering.counts.iter().sum();
    let sig = cs.engine.relation_signature("mC").unwrap();
    let mc = cs.engine.relation_bdd("mC").unwrap();
    assert_eq!(mc.satcount_domains_exact(&sig), expected_mc);
}

/// The full Algorithm 5 program computes the same fixpoint under naive and
/// semi-naive evaluation (cross-check of the incrementalization).
#[test]
fn cs_naive_and_seminaive_agree() {
    use whale_datalog::EngineOptions;
    let p = parse_program(POLY).unwrap();
    let facts = Facts::extract(&p);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let mut results = Vec::new();
    for seminaive in [true, false] {
        let cs = context_sensitive(
            &facts,
            &cg,
            &numbering,
            Some(EngineOptions {
                seminaive,
                order: None,
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            }),
        )
        .unwrap();
        let mut t = cs.engine.relation_tuples("vPC").unwrap();
        t.sort();
        results.push(t);
    }
    assert_eq!(results[0], results[1]);
    assert!(!results[0].is_empty());
}
