//! The hand-coded BDD analysis must agree exactly with the
//! `bddbddb`-generated one (the paper's Section 6.4 cross-check).

use whale_core::handcoded::context_insensitive_handcoded;
use whale_core::{context_insensitive, CallGraphMode};
use whale_ir::synth::SynthConfig;
use whale_ir::{parse_program, Facts};

fn cross_check(facts: &Facts) {
    let datalog = context_insensitive(facts, true, CallGraphMode::Cha, None).unwrap();
    let hand = context_insensitive_handcoded(facts).unwrap();
    let mut dl_vp = datalog.engine.relation_tuples("vP").unwrap();
    let mut hc_vp = hand.vp_tuples();
    dl_vp.sort();
    hc_vp.sort();
    assert_eq!(dl_vp, hc_vp, "vP mismatch between engines");
    assert_eq!(
        datalog.engine.relation_count("hP").unwrap() as u64,
        hand.hp_count(),
        "hP count mismatch"
    );
}

#[test]
fn agrees_on_hand_program() {
    let src = r#"
class A extends Object { }
class B extends A { }
class Holder extends Object {
  field f: A;
}
class Main extends Object {
  entry static method main() {
    var h: Holder;
    var a: A;
    var b: B;
    var out: A;
    h = new Holder;
    a = new A;
    b = new B;
    h.f = a;
    h.f = b;
    out = h.f;
    Main::consume(out);
  }
  static method consume(p: A): A {
    return p;
  }
}
"#;
    let p = parse_program(src).unwrap();
    cross_check(&Facts::extract(&p));
}

#[test]
fn agrees_on_virtual_dispatch() {
    let src = r#"
class Base extends Object {
  method make(): Object {
    var o: Object;
    o = new Object;
    return o;
  }
}
class Sub extends Base {
  method make(): Object {
    var o: Object;
    o = new Object;
    return o;
  }
}
class Main extends Object {
  entry static method main() {
    var b: Base;
    var r: Object;
    b = new Sub;
    r = b.make();
  }
}
"#;
    let p = parse_program(src).unwrap();
    cross_check(&Facts::extract(&p));
}

#[test]
fn agrees_on_synthetic_program() {
    let config = SynthConfig::tiny("hc", 77);
    let program = whale_ir::synth::generate(&config);
    let facts = Facts::extract(&program);
    cross_check(&facts);
    let hand = context_insensitive_handcoded(&facts).unwrap();
    assert!(hand.iterations > 1, "fixpoint actually iterated");
    assert!(hand.vp_count() > 0);
}
