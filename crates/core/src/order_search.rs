//! Empirical variable-ordering search.
//!
//! `bddbddb` "automatically explores different alternatives empirically to
//! find an effective ordering" (Section 2.4.2) — finding the optimal
//! ordering is NP-complete, so this is a deterministic hill-climb over
//! adjacent-group swaps, evaluated by solving a (usually down-scaled)
//! workload and scoring peak live BDD nodes.

use std::time::{Duration, Instant};
use whale_datalog::DatalogError;

/// One evaluated candidate ordering.
#[derive(Debug, Clone)]
pub struct OrderCandidate {
    /// The ordering string.
    pub order: String,
    /// Peak live BDD nodes while solving.
    pub peak_nodes: usize,
    /// Wall-clock solve time.
    pub elapsed: Duration,
}

/// The outcome of a search.
#[derive(Debug, Clone)]
pub struct OrderSearchResult {
    /// Best ordering found.
    pub best: OrderCandidate,
    /// Every evaluation, in search order.
    pub evaluated: Vec<OrderCandidate>,
}

/// Hill-climbs from `start` (an `_`-separated ordering string), swapping
/// adjacent groups, until no neighbor improves or `budget` evaluations are
/// spent. Evaluating `start` itself counts against the budget. `eval` must
/// solve the workload under the given ordering and return its peak live
/// BDD node count.
///
/// # Errors
///
/// [`DatalogError::ZeroSearchBudget`] if `budget` is `0` (nothing may be
/// evaluated, so there is no result to return); otherwise propagates the
/// first evaluation error.
pub fn hill_climb<F>(
    start: &str,
    budget: usize,
    mut eval: F,
) -> Result<OrderSearchResult, DatalogError>
where
    F: FnMut(&str) -> Result<usize, DatalogError>,
{
    if budget == 0 {
        return Err(DatalogError::ZeroSearchBudget);
    }
    let mut evaluated = Vec::new();
    let mut run = |order: &str, evaluated: &mut Vec<OrderCandidate>| {
        let t0 = Instant::now();
        let peak = eval(order)?;
        let cand = OrderCandidate {
            order: order.to_string(),
            peak_nodes: peak,
            elapsed: t0.elapsed(),
        };
        evaluated.push(cand.clone());
        Ok::<OrderCandidate, DatalogError>(cand)
    };
    let mut best = run(start, &mut evaluated)?;
    let mut spent = 1usize;
    loop {
        let groups: Vec<&str> = best.order.split('_').collect();
        let mut improved = false;
        for i in 0..groups.len().saturating_sub(1) {
            if spent >= budget {
                break;
            }
            let mut g = groups.clone();
            g.swap(i, i + 1);
            let candidate = g.join("_");
            let c = run(&candidate, &mut evaluated)?;
            spent += 1;
            if c.peak_nodes < best.peak_nodes {
                best = c;
                improved = true;
                break; // restart neighborhood from the improved order
            }
        }
        if !improved || spent >= budget {
            break;
        }
    }
    Ok(OrderSearchResult { best, evaluated })
}

/// Searches a variable ordering for the context-insensitive analysis
/// (Algorithm 2) on the given facts, scoring candidates by peak live BDD
/// nodes. Use a down-scaled workload: the best order transfers to larger
/// inputs of the same shape, which is exactly how `bddbddb`'s empirical
/// search was used.
///
/// The first evaluation runs with dynamic reordering enabled and the order
/// the sifting passes settle on seeds the climb, so the search starts from
/// an empirically improved point instead of the static default.
///
/// # Errors
///
/// [`DatalogError::ZeroSearchBudget`] if `budget` is `0`; otherwise
/// propagates the first failed evaluation.
pub fn search_ci_order(
    facts: &whale_ir::Facts,
    budget: usize,
) -> Result<OrderSearchResult, DatalogError> {
    if budget == 0 {
        return Err(DatalogError::ZeroSearchBudget);
    }
    let run = |order: &str, reorder: bool| {
        crate::analyses::context_insensitive(
            facts,
            true,
            crate::analyses::CallGraphMode::Cha,
            Some(whale_datalog::EngineOptions {
                seminaive: true,
                order: Some(order.to_string()),
                fuse_renames: true,
                reorder,
                ..whale_datalog::EngineOptions::default()
            }),
        )
    };
    // Seed evaluation: let sifting improve the default order in place, then
    // read the group permutation it settled on back off the engine.
    let t0 = Instant::now();
    let seeded = run(crate::analyses::CI_ORDER, true)?;
    let seed = OrderCandidate {
        order: seeded.engine.current_order(),
        peak_nodes: seeded.stats.peak_live_nodes,
        elapsed: t0.elapsed(),
    };
    if budget == 1 {
        return Ok(OrderSearchResult {
            best: seed.clone(),
            evaluated: vec![seed],
        });
    }
    let mut res = hill_climb(&seed.order, budget - 1, |order| {
        Ok(run(order, false)?.stats.peak_live_nodes)
    })?;
    // The seeded run is a candidate in its own right (reordering counts
    // against its peak too, so the comparison is conservative).
    if seed.peak_nodes < res.best.peak_nodes {
        res.best = seed.clone();
    }
    res.evaluated.insert(0, seed);
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_ci_order_runs() {
        let program = whale_ir::synth::generate(&whale_ir::synth::SynthConfig::tiny("os", 5));
        let facts = whale_ir::Facts::extract(&program);
        let res = search_ci_order(&facts, 4).unwrap();
        assert!(res.evaluated.len() >= 2);
        assert!(res
            .evaluated
            .iter()
            .all(|c| c.peak_nodes >= res.best.peak_nodes));
    }

    #[test]
    fn climbs_to_known_minimum() {
        // Cost = index of "G" in the order (front is best).
        let eval = |order: &str| {
            Ok(order
                .split('_')
                .position(|g| g == "G")
                .unwrap_or(usize::MAX))
        };
        let res = hill_climb("A_B_G_C", 50, eval).unwrap();
        assert_eq!(res.best.peak_nodes, 0);
        assert!(res.best.order.starts_with("G_"));
        assert!(res.evaluated.len() >= 3);
    }

    #[test]
    fn respects_budget() {
        let mut calls = 0usize;
        let res = hill_climb("A_B_C_D_E", 3, |_| {
            calls += 1;
            Ok(100 - calls) // always improving: would run forever unbudgeted
        })
        .unwrap();
        assert!(res.evaluated.len() <= 4);
    }

    #[test]
    fn zero_budget_is_an_error_and_evaluates_nothing() {
        let mut calls = 0usize;
        let res = hill_climb("A_B", 0, |_| {
            calls += 1;
            Ok(1)
        });
        assert!(matches!(res, Err(DatalogError::ZeroSearchBudget)));
        assert_eq!(calls, 0, "budget 0 must not evaluate the start order");

        let program = whale_ir::synth::generate(&whale_ir::synth::SynthConfig::tiny("os", 5));
        let facts = whale_ir::Facts::extract(&program);
        assert!(matches!(
            search_ci_order(&facts, 0),
            Err(DatalogError::ZeroSearchBudget)
        ));
    }

    #[test]
    fn budget_one_evaluates_only_the_start() {
        let mut calls = 0usize;
        let res = hill_climb("A_B_C", 1, |_| {
            calls += 1;
            Ok(7)
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(res.evaluated.len(), 1);
        assert_eq!(res.best.order, "A_B_C");
    }

    #[test]
    fn stops_at_local_minimum() {
        let res = hill_climb("A_B", 50, |o| Ok(if o == "A_B" { 1 } else { 2 })).unwrap();
        assert_eq!(res.best.order, "A_B");
        assert_eq!(res.evaluated.len(), 2);
    }
}
