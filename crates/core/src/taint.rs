//! Context-sensitive information-flow (taint) engine.
//!
//! Generalizes the Section 5.2 vulnerability audit into a spec-driven
//! client of the Algorithm 5 context-sensitive points-to analysis. A
//! [`TaintSpec`] names *sources* (methods whose return value is tainted,
//! or fields whose loads are), *sinks* (method + argument position) and
//! *sanitizers* (methods flow may not cross); the engine compiles it into
//! Datalog rules over the `IEC`/`mC`/`vPC` relations and closes a
//! transitive `taintedV (context, variable)` relation through
//! assignments, call/return edges and heap field traffic.
//!
//! # Sanitizer subtraction
//!
//! Sanitizers are subtracted *before* the fixpoint closes: the
//! parameter-passing and return step rules carry a `!sanM(m)` guard, so
//! no tainted value enters or leaves a sanitizer method through a call
//! edge. `sanM` is an input relation, so the negation is stratified —
//! this is the "subtract from the tainted set before the fixpoint"
//! formulation rather than a post-hoc filter, and it correctly kills
//! flows that would only exist *through* the sanitizer. The deliberate
//! approximation: a sanitizer that leaks its argument through the heap
//! (stores it into a field some other method loads) does not cut that
//! indirect flow, and conversely any value merely *derived* inside a
//! sanitizer is considered clean.
//!
//! # Witness paths
//!
//! Every finding carries a shortest source→sink derivation, reconstructed
//! by backward breadth-first traversal over the materialized per-step
//! flow relations (`stepAssign`, `stepCall`, `stepRet`, `stepHeap`) using
//! [`Engine::relation_select`] — the bddbddb "where did this tuple come
//! from" question answered against the solved BDDs. Every tainted
//! `(context, variable)` node is derivable from a `taintSrc` seed by rule
//! induction, so the traversal always terminates at a source.

use crate::analyses::{context_sensitive_with_facts, Analysis};
use crate::callgraph::CallGraph;
use crate::numbering::ContextNumbering;
use std::collections::{HashMap, HashSet, VecDeque};
use whale_datalog::{DatalogError, Engine, EngineOptions};
use whale_ir::{Facts, ResolvedTaintSpec, TaintSpec};

/// How a witness step's value reached its `(context, variable)` node from
/// the previous step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowKind {
    /// The first node: a spec source seed.
    Source,
    /// An intra-method copy (`stepAssign`).
    Assign,
    /// Parameter passing into a callee (`stepCall`).
    Call,
    /// A return value flowing back to the call site (`stepRet`).
    Return,
    /// A field store read back by a load on an aliasing base
    /// (`stepHeap`).
    Heap,
}

/// One node of a witness path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// How the value arrived here.
    pub kind: FlowKind,
    /// Context of the variable at this step.
    pub context: u64,
    /// The variable id.
    pub var: u64,
    /// The variable's display name.
    pub var_name: String,
}

/// One source→sink flow, with its witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// Context in which the sink call executes.
    pub context: u64,
    /// The sink invocation site.
    pub invoke: u64,
    /// The tainted variable passed at the sink's checked argument.
    pub var: u64,
    /// Display name of the method containing the sink call.
    pub in_method: String,
    /// Display name of the sink method called.
    pub sink_method: String,
    /// Shortest source→sink derivation; first step is the source seed,
    /// last step is `(context, var)` at the sink.
    pub witness: Vec<WitnessStep>,
}

/// A solved taint analysis: findings plus the underlying engine for
/// further queries.
pub struct TaintAnalysis {
    /// The solved context-sensitive engine, including the `taintedV`,
    /// `taintHit` and per-step flow relations.
    pub analysis: Analysis,
    /// All findings, sorted by `(invoke, context)`.
    pub findings: Vec<TaintFinding>,
}

/// The taint relations layered over the Algorithm 5 program.
const TAINT_RELATIONS: &str = "\
input srcM (m : M)
input srcF (f : F)
input sanM (m : M)
input sinkAt (i : I, v : V)
output taintSrc (c : C, v : V)
output stepCall (cd : C, vd : V, cs : C, vs : V)
output stepRet (cd : C, vd : V, cs : C, vs : V)
output stepHeap (cd : C, vd : V, cs : C, vs : V)
output stepAssign (c : C, vd : V, vs : V)
output taintedV (c : C, v : V)
output taintHit (c : C, i : I, v : V)
";

/// The taint rules. Step relations put the flow *destination* first and
/// the *source* second, matching the backward witness traversal. The
/// `stepHeap` rule is restricted to tainted store sources so the
/// materialized relation stays proportional to actual flows, not to the
/// whole heap; the restriction keeps the program stratified because no
/// negation is involved.
const TAINT_RULES: &str = "\
taintSrc(c,v) :- srcM(m), Mret(m,v), mC(c,m).
taintSrc(c,v) :- srcF(f), load(_,f,v), vC(c,v).
stepCall(c1,v1,c2,v2) :- IEC(c2,i,c1,m), formal(m,z,v1), actual(i,z,v2), !sanM(m).
stepRet(c2,v1,c1,v2) :- IEC(c2,i,c1,m), Iret(i,v1), Mret(m,v2), !sanM(m).
stepAssign(c,v1,v2) :- assign0(v1,v2), vC(c,v1).
stepHeap(c2,v2,c1,v1) :- store(b1,f,v1), vPC(c1,b1,h), load(b2,f,v2), vPC(c2,b2,h), taintedV(c1,v1).
taintedV(c,v) :- taintSrc(c,v).
taintedV(c1,v1) :- stepCall(c1,v1,c2,v2), taintedV(c2,v2).
taintedV(c1,v1) :- stepRet(c1,v1,c2,v2), taintedV(c2,v2).
taintedV(c1,v1) :- stepHeap(c1,v1,c2,v2), taintedV(c2,v2).
taintedV(c,v1) :- stepAssign(c,v1,v2), taintedV(c,v2).
taintHit(c,i,v) :- sinkAt(i,v), taintedV(c,v).
";

/// Runs the taint engine for a parsed spec (resolving it against the
/// program first).
///
/// # Example
///
/// ```
/// use whale_core::{number_contexts, taint_analysis, CallGraph};
/// use whale_ir::{parse_program, Facts, TaintSpec};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = parse_program(r#"
/// class Api extends Object {
///   static method secret(): Object {
///     var s: Object;
///     s = new Object;
///     return s;
///   }
/// }
/// class Db extends Object {
///   static method exec(q: Object) { }
/// }
/// class Main extends Object {
///   entry static method main() {
///     var x: Object;
///     x = Api::secret();
///     Db::exec(x);
///   }
/// }
/// "#)?;
/// let facts = Facts::extract(&program);
/// let cg = CallGraph::from_cha(&facts)?;
/// let numbering = number_contexts(&cg);
/// let spec = TaintSpec::parse("source method Api.secret\nsink method Db.exec 0\n")?;
/// let result = taint_analysis(&facts, &cg, &numbering, &spec, None)?;
/// assert_eq!(result.findings.len(), 1);
/// assert_eq!(result.findings[0].in_method, "Main.main");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`DatalogError::BadFact`] wrapping the spec-resolution error if a spec
/// name is unknown to the program; otherwise propagates Datalog/BDD
/// errors.
pub fn taint_analysis(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    spec: &TaintSpec,
    options: Option<EngineOptions>,
) -> Result<TaintAnalysis, DatalogError> {
    let resolved = spec
        .resolve(facts)
        .map_err(|e| DatalogError::BadFact(e.to_string()))?;
    taint_analysis_resolved(facts, cg, numbering, &resolved, options)
}

/// [`taint_analysis`] over an already-resolved spec (ids instead of
/// names). This is the entry point for programmatic specs such as the
/// [`crate::queries::vuln_query`] wrapper.
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn taint_analysis_resolved(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    spec: &ResolvedTaintSpec,
    options: Option<EngineOptions>,
) -> Result<TaintAnalysis, DatalogError> {
    let src_m: Vec<Vec<u64>> = spec.source_methods.iter().map(|&m| vec![m]).collect();
    let src_f: Vec<Vec<u64>> = spec.source_fields.iter().map(|&f| vec![f]).collect();
    let san_m: Vec<Vec<u64>> = spec.sanitizer_methods.iter().map(|&m| vec![m]).collect();

    // Sink sites: every call-graph edge targeting a sink method, paired
    // with the actual variable at the spec's argument position.
    let mut actual_at: HashMap<(u64, u64), u64> = HashMap::new();
    for t in &facts.actual {
        actual_at.insert((t[0], t[1]), t[2]);
    }
    let mut sink_at: Vec<Vec<u64>> = Vec::new();
    let mut sink_target: HashMap<u64, u64> = HashMap::new();
    for &(i, _, m) in &cg.edges {
        for &(sink_m, arg) in &spec.sink_methods {
            if m == sink_m {
                if let Some(&v) = actual_at.get(&(i, arg)) {
                    sink_at.push(vec![i, v]);
                    sink_target.insert(i, m);
                }
            }
        }
    }
    sink_at.sort();
    sink_at.dedup();

    let extra_facts: Vec<(&str, Vec<Vec<u64>>)> = vec![
        ("srcM", src_m),
        ("srcF", src_f),
        ("sanM", san_m),
        ("sinkAt", sink_at),
    ];
    let analysis = context_sensitive_with_facts(
        facts,
        cg,
        numbering,
        TAINT_RELATIONS,
        TAINT_RULES,
        &extra_facts,
        options,
    )?;

    // Containing method of each invocation site, for display.
    let mut site_method = vec![u64::MAX; facts.sizes.i as usize];
    for t in &facts.mi {
        site_method[t[1] as usize] = t[0];
    }
    let method_name = |m: u64| {
        facts
            .method_names
            .get(m as usize)
            .cloned()
            .unwrap_or_else(|| "?".into())
    };

    let mut hits = analysis.engine.relation_tuples("taintHit")?;
    hits.sort_by_key(|t| (t[1], t[0], t[2]));
    let mut findings = Vec::new();
    for t in hits {
        let (c, i, v) = (t[0], t[1], t[2]);
        let witness = reconstruct_witness(&analysis.engine, facts, (c, v))?;
        findings.push(TaintFinding {
            context: c,
            invoke: i,
            var: v,
            in_method: method_name(site_method[i as usize]),
            sink_method: method_name(*sink_target.get(&i).unwrap_or(&u64::MAX)),
            witness,
        });
    }
    Ok(TaintAnalysis { analysis, findings })
}

/// Shortest source→sink derivation for a tainted `(context, variable)`
/// node, by backward BFS over the step relations. Predecessor candidates
/// are sorted before expansion, so the returned path is deterministic.
fn reconstruct_witness(
    engine: &Engine,
    facts: &Facts,
    sink: (u64, u64),
) -> Result<Vec<WitnessStep>, DatalogError> {
    let step = |kind: FlowKind, (c, v): (u64, u64)| WitnessStep {
        kind,
        context: c,
        var: v,
        var_name: facts
            .var_names
            .get(v as usize)
            .cloned()
            .unwrap_or_else(|| "?".into()),
    };
    if engine.relation_contains("taintSrc", &[sink.0, sink.1])? {
        return Ok(vec![step(FlowKind::Source, sink)]);
    }
    // `next` records, for each discovered node, the successor it flows
    // into and the kind of that edge — the unwinding direction.
    let mut next: HashMap<(u64, u64), ((u64, u64), FlowKind)> = HashMap::new();
    let mut seen: HashSet<(u64, u64)> = HashSet::from([sink]);
    let mut queue: VecDeque<(u64, u64)> = VecDeque::from([sink]);
    let mut source: Option<(u64, u64)> = None;
    'bfs: while let Some(node) = queue.pop_front() {
        let mut preds: Vec<((u64, u64), FlowKind)> = Vec::new();
        for t in engine.relation_select("stepAssign", &[(0, node.0), (1, node.1)])? {
            preds.push(((node.0, t[2]), FlowKind::Assign));
        }
        for (rel, kind) in [
            ("stepCall", FlowKind::Call),
            ("stepRet", FlowKind::Return),
            ("stepHeap", FlowKind::Heap),
        ] {
            for t in engine.relation_select(rel, &[(0, node.0), (1, node.1)])? {
                preds.push(((t[2], t[3]), kind));
            }
        }
        preds.sort();
        for (pred, kind) in preds {
            if !seen.insert(pred) {
                continue;
            }
            if !engine.relation_contains("taintedV", &[pred.0, pred.1])? {
                continue;
            }
            next.insert(pred, (node, kind));
            if engine.relation_contains("taintSrc", &[pred.0, pred.1])? {
                source = Some(pred);
                break 'bfs;
            }
            queue.push_back(pred);
        }
    }
    let Some(src) = source else {
        // Unreachable for a genuinely tainted node: every taintedV tuple
        // is derived from a taintSrc seed through step edges.
        return Err(DatalogError::BadFact(format!(
            "no witness path for tainted node (context {}, var {})",
            sink.0, sink.1
        )));
    };
    let mut path = vec![step(FlowKind::Source, src)];
    let mut cur = src;
    while cur != sink {
        let (succ, kind) = next[&cur];
        path.push(step(kind, succ));
        cur = succ;
    }
    Ok(path)
}

impl TaintAnalysis {
    /// Checks a finding's witness against the solved relations: it must
    /// start at a spec source, end at the finding's sink variable, and
    /// every consecutive pair must be connected by an actual flow fact of
    /// the step's kind. Returns a description of the first violation.
    ///
    /// # Errors
    ///
    /// `Err(description)` if the witness is ill-formed; Datalog errors
    /// are folded into the description.
    pub fn validate_witness(&self, finding: &TaintFinding) -> Result<(), String> {
        let e = &self.analysis.engine;
        let contains = |rel: &str, tuple: &[u64]| -> Result<bool, String> {
            e.relation_contains(rel, tuple).map_err(|x| x.to_string())
        };
        let w = &finding.witness;
        let Some(first) = w.first() else {
            return Err("empty witness".into());
        };
        if first.kind != FlowKind::Source {
            return Err(format!("witness starts with {:?}, not Source", first.kind));
        }
        if !contains("taintSrc", &[first.context, first.var])? {
            return Err(format!(
                "witness head ({}, {}) is not a spec source",
                first.context, first.var
            ));
        }
        let last = w.last().expect("non-empty");
        if (last.context, last.var) != (finding.context, finding.var) {
            return Err(format!(
                "witness ends at ({}, {}), finding is at ({}, {})",
                last.context, last.var, finding.context, finding.var
            ));
        }
        for pair in w.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let ok = match b.kind {
                FlowKind::Source => {
                    return Err("Source step past the witness head".into());
                }
                FlowKind::Assign => {
                    a.context == b.context && contains("stepAssign", &[b.context, b.var, a.var])?
                }
                FlowKind::Call => contains("stepCall", &[b.context, b.var, a.context, a.var])?,
                FlowKind::Return => contains("stepRet", &[b.context, b.var, a.context, a.var])?,
                FlowKind::Heap => contains("stepHeap", &[b.context, b.var, a.context, a.var])?,
            };
            if !ok {
                return Err(format!(
                    "no {:?} flow fact from ({}, {}) to ({}, {})",
                    b.kind, a.context, a.var, b.context, b.var
                ));
            }
            if !contains("taintedV", &[b.context, b.var])? {
                return Err(format!(
                    "witness node ({}, {}) not tainted",
                    b.context, b.var
                ));
            }
        }
        Ok(())
    }
}
