//! A hand-coded BDD implementation of the context-insensitive points-to
//! analysis (Algorithm 2 with the CHA call graph), written directly
//! against the `whale-bdd` kernel.
//!
//! Section 6.4 of the paper recounts hand-coding every analysis in raw BDD
//! operations before building `bddbddb` — "the incrementalization was very
//! difficult to get correct, and we found a subtle bug months after the
//! implementation was completed" — and reports that the generated
//! implementations ended up *faster* than the hand-tuned ones. This module
//! reproduces that baseline for the ablation benchmark, and doubles as an
//! independent cross-check of the Datalog engine: both must compute
//! identical `vP`/`hP` relations.

use whale_bdd::{Bdd, BddError, BddManager, DomainId, DomainSpec, OrderSpec};
use whale_ir::Facts;

/// Result of the hand-coded analysis.
pub struct Handcoded {
    mgr: BddManager,
    /// `vP (V0, H0)`.
    pub vp: Bdd,
    /// `hP (H0, F0, H1)`.
    pub hp: Bdd,
    v0: DomainId,
    h0: DomainId,
    f0: DomainId,
    h1: DomainId,
    /// Fixpoint iterations of the inner loop.
    pub iterations: usize,
}

impl Handcoded {
    /// Number of `vP` tuples.
    pub fn vp_count(&self) -> u64 {
        self.vp.satcount_domains(&[self.v0, self.h0]) as u64
    }

    /// Number of `hP` tuples.
    pub fn hp_count(&self) -> u64 {
        self.hp.satcount_domains(&[self.h0, self.f0, self.h1]) as u64
    }

    /// All `vP` tuples, for cross-checking against the Datalog engine.
    pub fn vp_tuples(&self) -> Vec<Vec<u64>> {
        self.vp.tuples(&[self.v0, self.h0])
    }

    /// Peak live BDD nodes.
    pub fn peak_nodes(&self) -> usize {
        self.mgr.stats().peak_live_nodes
    }
}

/// Runs Algorithm 2 (typed, CHA call graph) hand-coded in raw BDD
/// operations.
///
/// # Errors
///
/// Propagates BDD-layer errors.
pub fn context_insensitive_handcoded(facts: &Facts) -> Result<Handcoded, BddError> {
    let s = &facts.sizes;
    // Physical domains, chosen by hand exactly like the Datalog engine's
    // assignment so results are comparable.
    let specs = [
        DomainSpec::new("Z0", s.z),
        DomainSpec::new("N0", s.n),
        DomainSpec::new("T0", s.t),
        DomainSpec::new("T1", s.t),
        DomainSpec::new("M0", s.m),
        DomainSpec::new("I0", s.i),
        DomainSpec::new("V0", s.v),
        DomainSpec::new("V1", s.v),
        DomainSpec::new("F0", s.f),
        DomainSpec::new("H0", s.h + 1),
        DomainSpec::new("H1", s.h + 1),
    ];
    let order = OrderSpec::parse("Z0_N0_T0xT1_M0_I0_V0xV1_F0_H0xH1")?;
    let mgr = BddManager::with_domains(&specs, &order)?;
    let dom = |n: &str| mgr.domain(n).expect("declared");
    let (z0, n0, t0, t1) = (dom("Z0"), dom("N0"), dom("T0"), dom("T1"));
    let (m0, i0, v0, v1) = (dom("M0"), dom("I0"), dom("V0"), dom("V1"));
    let (f0, h0, h1) = (dom("F0"), dom("H0"), dom("H1"));

    // Relation loading: tuple -> minterm, balanced OR.
    let load_rel = |doms: &[DomainId], tuples: &[Vec<u64>]| -> Bdd {
        let mut layer: Vec<Bdd> = tuples
            .iter()
            .map(|t| {
                let mut b = mgr.one();
                for (d, &val) in doms.iter().zip(t.iter()) {
                    b = b.and(&mgr.domain_const(*d, val));
                }
                b
            })
            .collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        c[0].or(&c[1])
                    } else {
                        c[0].clone()
                    }
                })
                .collect();
        }
        layer.pop().unwrap_or_else(|| mgr.zero())
    };
    let tup = |rows: &[[u64; 2]]| rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>();
    let tup3 = |rows: &[[u64; 3]]| rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>();

    let vp0 = load_rel(&[v0, h0], &tup(&facts.vp0));
    let store = load_rel(&[v0, f0, v1], &tup3(&facts.store));
    let load_ = load_rel(&[v0, f0, v1], &tup3(&facts.load));
    let assign0 = load_rel(&[v0, v1], &tup(&facts.assign));
    let vt = load_rel(&[v0, t0], &tup(&facts.vt));
    let mut ht_rows = tup(&facts.ht);
    ht_rows.push(vec![s.h, 0]); // the synthetic global object, typed Object
    let ht_t1 = load_rel(&[h0, t1], &ht_rows); // hT with the type on T1
    let at = load_rel(&[t0, t1], &tup(&facts.at)); // aT(super:T0, sub:T1)
    let cha = load_rel(&[t0, n0, m0], &tup3(&facts.cha));
    let actual = load_rel(&[i0, z0, v0], &tup3(&facts.actual));
    let formal = load_rel(&[m0, z0, v0], &tup3(&facts.formal));
    let ie0 = load_rel(&[i0, m0], &tup(&facts.ie0));
    let mi = load_rel(&[m0, i0, n0], &tup3(&facts.mi));
    let mret = load_rel(&[m0, v0], &tup(&facts.mret));
    let iret = load_rel(&[i0, v0], &tup(&facts.iret));

    // vPfilter(v, h) = ∃ t0 t1. vT(v,t0) ∧ aT(t0,t1) ∧ hT(h,t1)
    let vpfilter = vt
        .relprod_domains(&at, &[t0])
        .relprod_domains(&ht_t1, &[t1]);

    // CHA call graph:
    // IE(i,m) = IE0 ∪ ∃ n v tv t. mI(_,i,n) ∧ actual(i,0,v) ∧ vT(v,tv)
    //                             ∧ aT(tv,t) ∧ cha(t,n,m)
    let mi_in = mi.exist_domains(&[m0]); // (i, n)
    let recv = actual.and(&mgr.domain_const(z0, 0)).exist_domains(&[z0]); // (i, v:V0)
    let recv_types = recv.relprod_domains(&vt, &[v0]); // (i, tv:T0)
    let recv_subtypes = recv_types.relprod_domains(&at, &[t0]); // (i, t:T1)
                                                                // cha has its type on T0: move the receiver subtype back onto
                                                                // T0, fused into the dispatch join. ∃n distributes onto the
                                                                // mI ⋈ cha conjuncts because the receiver type is n-free.
    let cand = cha.relprod_domains(&mi_in, &[n0]); // (i, t:T0, m)
    let dispatch = recv_subtypes.replace_relprod_domains(&cand, &[(t1, t0)], &[t0]); // (i, m)
    let ie = ie0.or(&dispatch);

    // assign(v1←dest:V0, v2←source:V1) from parameter passing and returns.
    // formal(m,z,vd): vd must land on V0; actual(i,z,vs): vs on V1 —
    // the source-side rename is fused into each binding join.
    let params = actual.replace_relprod_domains(&ie.and(&formal), &[(v0, v1)], &[i0, m0, z0]);
    let rets = mret.replace_relprod_domains(&ie.and(&iret), &[(v0, v1)], &[i0, m0]);
    let assign = params.or(&rets).or(&assign0);

    // The fixpoint of rules (6)-(9), incrementalized by hand.
    let mut vp = vp0.clone();
    let mut hp = mgr.zero();
    let mut new_vp = vp.clone();
    let mut new_hp = hp.clone();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Rule (7): vP(v1,h) ⊇ assign(v1,v2) ⋈ vP(v2,h), filtered.
        // vP's variable is on V0; the source position of assign is V1.
        // The V0→V1 move of the delta fuses into the join.
        let via_assign = new_vp
            .replace_relprod_domains(&assign, &[(v0, v1)], &[v1])
            .and(&vpfilter);

        // Rule (8): hP(h1,f,h2) ⊇ store(v1,f,v2) ⋈ vP(v1,h1) ⋈ vP(v2,h2).
        // Use the new delta on either side (two half-applications); the
        // (V0,H0)→(V1,H1) move of the second vP operand fuses into the join.
        let store_h1 = store.relprod_domains(&new_vp, &[v0]); // (f, v2:V1, h1:H0)
        let hp_delta_a = vp.replace_relprod_domains(&store_h1, &[(v0, v1), (h0, h1)], &[v1]);
        let store_h1_full = store.relprod_domains(&vp, &[v0]);
        let hp_delta_b =
            new_vp.replace_relprod_domains(&store_h1_full, &[(v0, v1), (h0, h1)], &[v1]);
        let hp_from_store = hp_delta_a.or(&hp_delta_b); // (f, h1:H0, h2:H1)

        // Rule (9): vP(v2,h2) ⊇ load(v1,f,v2) ⋈ vP(v1,h1) ⋈ hP(h1,f,h2),
        // filtered. Delta on vP or on hP.
        let load_h1 = load_.relprod_domains(&new_vp, &[v0]); // (f, v2:V1, h1:H0)
        let via_load_a = load_h1.relprod_domains(&hp, &[h0, f0]); // (v2:V1, h2:H1)
        let load_h1_full = load_.relprod_domains(&vp, &[v0]);
        let via_load_b = load_h1_full.relprod_domains(&new_hp, &[h0, f0]);
        // Fused rename+AND: with no quantified variables, relprod is a
        // plain conjunction, so the (V1,H1)→(V0,H0) move and the filter
        // application collapse into one traversal.
        let via_load = via_load_a.or(&via_load_b).replace_relprod_domains(
            &vpfilter,
            &[(v1, v0), (h1, h0)],
            &[],
        );

        let grown_vp = vp.or(&via_assign).or(&via_load);
        let grown_hp = hp.or(&hp_from_store);
        new_vp = grown_vp.diff(&vp);
        new_hp = grown_hp.diff(&hp);
        if new_vp.is_zero() && new_hp.is_zero() {
            break;
        }
        vp = grown_vp;
        hp = grown_hp;
    }

    Ok(Handcoded {
        mgr,
        vp,
        hp,
        v0,
        h0,
        f0,
        h1,
        iterations,
    })
}
