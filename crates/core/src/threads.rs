//! Algorithm 7: thread-sensitive pointer analysis and escape analysis.
//!
//! Thread contexts follow the paper's scheme (Section 5.6): the global
//! object lives in a context of its own, the startup (main) thread is one
//! context, and every thread creation site gets **two** contexts so that
//! "if an object created by one instance is not accessed by its clone,
//! then it is not accessed by any other instances created by the same call
//! site".

use crate::callgraph::CallGraph;
use crate::input::{domains_section, global_object, load_base_facts, BASE_RELATIONS};
use whale_datalog::{DatalogError, Engine, EngineOptions, Program, SolveStats};
use whale_ir::Facts;

/// The thread-context assignment for a program.
#[derive(Debug, Clone)]
pub struct ThreadContexts {
    /// Context-domain size.
    pub domain_size: u64,
    /// The shared context of global objects (always 0).
    pub global_context: u64,
    /// The startup thread's context (always 1).
    pub main_context: u64,
    /// Per thread-creation site: `(heap site, [clone 1, clone 2], run
    /// method)`.
    pub sites: Vec<(u64, [u64; 2], u64)>,
    /// `HT(c, h)`: thread context `c` may execute non-thread allocation
    /// site `h`.
    pub ht: Vec<[u64; 2]>,
    /// `CM(c, m)`: thread context `c` may execute method `m` (the same
    /// filtered reachability that `HT` is built from — edges into `run`
    /// methods removed, clone contexts rooted at their `run` method).
    pub cm: Vec<[u64; 2]>,
    /// `vP0T(cv, v, ch, h)`: initial thread and global points-to tuples.
    pub vp0t: Vec<[u64; 4]>,
}

/// Computes the paper's thread-context scheme from the facts and a call
/// graph.
pub fn thread_contexts(facts: &Facts, cg: &CallGraph) -> ThreadContexts {
    // Identify each thread-creation site's run() method via CHA.
    let run_name = facts
        .simple_names
        .iter()
        .position(|n| n == "run")
        .map(|i| i as u64);
    let mut ht_of_site = vec![u64::MAX; facts.sizes.h as usize];
    for t in &facts.ht {
        ht_of_site[t[0] as usize] = t[1];
    }
    let mut sites = Vec::new();
    let mut next_ctx = 2u64;
    for &h in &facts.thread_allocs {
        let class = ht_of_site[h as usize];
        // The CHA triples cover inherited `run` methods (dispatch walks
        // the superclass chain), but nothing guarantees their order here:
        // take the lowest method id so the resolution is deterministic.
        let run = run_name.and_then(|rn| {
            facts
                .cha
                .iter()
                .filter(|t| t[0] == class && t[1] == rn)
                .map(|t| t[2])
                .min()
        });
        if let Some(run) = run {
            sites.push((h, [next_ctx, next_ctx + 1], run));
            next_ctx += 2;
        }
    }
    let domain_size = next_ctx.max(2);

    // Run methods of thread classes are roots of their own contexts, not
    // of the startup thread: per the paper, the cloned run() methods go on
    // the entry list and thread-start edges do not extend the creator's
    // context. Reachability therefore ignores edges into run methods.
    let run_methods: Vec<u64> = sites.iter().map(|s| s.2).collect();
    let main_roots: Vec<u64> = facts
        .entries
        .iter()
        .copied()
        .filter(|m| !run_methods.contains(m))
        .collect();
    let filtered = CallGraph {
        methods: cg.methods,
        edges: cg
            .edges
            .iter()
            .copied()
            .filter(|&(_, _, callee)| !run_methods.contains(&callee))
            .collect(),
        entries: cg.entries.clone(),
    };

    // HT: reachable non-thread allocation sites per context.
    let mut ht = Vec::new();
    let is_thread_alloc = |h: u64| facts.thread_allocs.contains(&h);
    let add_reach = |roots: &[u64], ctx: u64, ht: &mut Vec<[u64; 2]>| {
        let reach = filtered.reachable_from(roots);
        for t in &facts.mh {
            if reach[t[0] as usize] && !is_thread_alloc(t[1]) {
                ht.push([ctx, t[1]]);
            }
        }
    };
    add_reach(&main_roots, 1, &mut ht);
    for (_, clones, run) in &sites {
        for &c in clones {
            add_reach(&[*run], c, &mut ht);
        }
    }

    // vP0T: thread-creation sites point to their clone contexts, executed
    // from every context whose thread reaches the creating method; the
    // global variable points to the synthetic global object (context 0)
    // from every context.
    let mut vp0t = Vec::new();
    let mut method_reach: Vec<(u64, Vec<bool>)> = Vec::new();
    method_reach.push((1, filtered.reachable_from(&main_roots)));
    for (_, clones, run) in &sites {
        for &c in clones {
            method_reach.push((c, filtered.reachable_from(&[*run])));
        }
    }
    let mut site_method = vec![u64::MAX; facts.sizes.h as usize];
    for t in &facts.mh {
        site_method[t[1] as usize] = t[0];
    }
    for t in &facts.vp0 {
        let (v, h) = (t[0], t[1]);
        if !is_thread_alloc(h) {
            continue;
        }
        let m = site_method[h as usize];
        let Some((_, clones, _)) = sites.iter().find(|s| s.0 == h) else {
            continue;
        };
        for (ctx, reach) in &method_reach {
            if m != u64::MAX && reach[m as usize] {
                for &cn in clones {
                    vp0t.push([*ctx, v, cn, h]);
                }
            }
        }
    }
    // Each run() clone's `this` points to its own thread object in its own
    // context (the paper's cloned run methods on the entry list).
    for (h, clones, run) in &sites {
        let this_var = facts
            .formal
            .iter()
            .find(|t| t[0] == *run && t[1] == 0)
            .map(|t| t[2]);
        if let Some(v) = this_var {
            for &c in clones {
                vp0t.push([c, v, c, *h]);
            }
        }
    }
    // The global variable (VarId 0) points to the synthetic global object,
    // which lives in the reserved context 0; the variable itself is only
    // accessed from real thread contexts (1..), otherwise loads through it
    // would fabricate accesses from the phantom context 0.
    let g = global_object(facts);
    for c in 1..domain_size {
        vp0t.push([c, 0, 0, g]);
    }

    let mut cm = Vec::new();
    for (ctx, reach) in &method_reach {
        for (m, r) in reach.iter().enumerate() {
            if *r {
                cm.push([*ctx, m as u64]);
            }
        }
    }

    ThreadContexts {
        domain_size,
        global_context: 0,
        main_context: 1,
        sites,
        ht,
        cm,
        vp0t,
    }
}

/// Results of the thread-escape analysis (Algorithm 7 + the escape
/// queries of Section 5.6).
pub struct ThreadEscape {
    /// The solved engine (relations `vPT`, `hPT`, `escaped`, `captured`,
    /// `neededSyncs`, `unneededSyncs`).
    pub engine: Engine,
    /// Solver statistics.
    pub stats: SolveStats,
    /// The context assignment used.
    pub contexts: ThreadContexts,
}

impl ThreadEscape {
    /// `(captured, escaped)` object counts — context/site pairs, as in
    /// Figure 5.
    ///
    /// # Errors
    ///
    /// Propagates Datalog/BDD errors.
    pub fn object_counts(&self) -> Result<(u64, u64), DatalogError> {
        Ok((
            self.engine.relation_count("captured")? as u64,
            self.engine.relation_count("escaped")? as u64,
        ))
    }

    /// `(unneeded, needed)` synchronization-operation counts, as in
    /// Figure 5.
    ///
    /// # Errors
    ///
    /// Propagates Datalog/BDD errors.
    pub fn sync_counts(&self) -> Result<(u64, u64), DatalogError> {
        Ok((
            self.engine.relation_count("unneededSyncs")? as u64,
            self.engine.relation_count("neededSyncs")? as u64,
        ))
    }
}

/// Runs the thread-sensitive pointer analysis (Algorithm 7) and the escape
/// queries. The invocation edges of `cg` feed the (context-insensitive)
/// `assign` derivation, matching the paper's use of a previously computed
/// call graph.
///
/// # Example
///
/// ```
/// use whale_core::{thread_escape, CallGraph};
/// use whale_ir::{parse_program, Facts};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = parse_program(r#"
/// class W extends Thread {
///   method run() { var x: Object; x = new Object; sync x; }
/// }
/// class Main extends Object {
///   entry static method main() { var w: W; w = new W; start w; }
/// }
/// "#)?;
/// let facts = Facts::extract(&program);
/// let cg = CallGraph::from_cha(&facts)?;
/// let escape = thread_escape(&facts, &cg, None)?;
/// let (unneeded, _needed) = escape.sync_counts()?;
/// assert!(unneeded >= 1, "x never escapes, its sync is removable");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn thread_escape(
    facts: &Facts,
    cg: &CallGraph,
    options: Option<EngineOptions>,
) -> Result<ThreadEscape, DatalogError> {
    thread_escape_extended(facts, cg, &[], "", "", &[], options)
}

/// [`thread_escape`] with extra domains, relation declarations, rules and
/// input facts spliced into the Algorithm 7 program — the hook the
/// downstream clients (race detection) build on.
pub(crate) fn thread_escape_extended(
    facts: &Facts,
    cg: &CallGraph,
    extra_domains: &[String],
    extra_relations: &str,
    extra_rules: &str,
    extra_facts: &[(&str, Vec<Vec<u64>>)],
    options: Option<EngineOptions>,
) -> Result<ThreadEscape, DatalogError> {
    let contexts = thread_contexts(facts, cg);
    let mut domains = vec![format!("C {}", contexts.domain_size)];
    domains.extend_from_slice(extra_domains);
    let src = format!(
        "{}\nRELATIONS\n{}\
input HT (c : C, heap : H)
input vP0T (cv : C, variable : V, ch : C, heap : H)
input IE (invoke : I, target : M)
vPfilter (variable : V, heap : H)
assign (dest : V, source : V)
output vPT (cv : C, variable : V, ch : C, heap : H)
output hPT (cb : C, base : H, field : F, ct : C, target : H)
output escaped (c : C, heap : H)
output captured (c : C, heap : H)
output neededSyncs (c : C, var : V)
output unneededSyncs (c : C, var : V)
{}
RULES
assign(v1,v2) :- IE(i,m), formal(m,z,v1), actual(i,z,v2).
assign(v1,v2) :- IE(i,m), Iret(i,v1), Mret(m,v2).
assign(v1,v2) :- mI(m1,i,_), IE(i,m2), Mthr(m1,v1), Mthr(m2,v2).
assign(v1,v2) :- assign0(v1,v2).
vPfilter(v,h) :- vT(v,tv), hT(h,th), aT(tv,th).
vPT(c1,v,c2,h) :- vP0T(c1,v,c2,h).
vPT(c,v,c,h) :- vP0(v,h), HT(c,h).
vPT(c2,v1,ch,h) :- assign(v1,v2), vPT(c2,v2,ch,h), vPfilter(v1,h).
hPT(c1,h1,f,c2,h2) :- store(v1,f,v2), vPT(c,v1,c1,h1), vPT(c,v2,c2,h2).
vPT(c,v2,c2,h2) :- load(v1,f,v2), vPT(c,v1,c1,h1), hPT(c1,h1,f,c2,h2), vPfilter(v2,h2).
escaped(c,h) :- vPT(cv,_,c,h), cv != c.
captured(c,h) :- vPT(c,_,c,h), !escaped(c,h).
neededSyncs(c,v) :- syncs(v), vPT(c,v,ch,h), escaped(ch,h).
unneededSyncs(c,v) :- syncs(v), vPT(c,v,_,_), !neededSyncs(c,v).
{}",
        domains_section(facts, &domains),
        BASE_RELATIONS,
        extra_relations,
        extra_rules,
    );
    let program = Program::parse(&src)?;
    let mut engine = Engine::with_options(
        program,
        options.unwrap_or(EngineOptions {
            seminaive: true,
            order: Some(crate::analyses::CS_ORDER.into()),
            fuse_renames: true,
            reorder: false,
            ..EngineOptions::default()
        }),
    )?;
    load_base_facts(&mut engine, facts)?;
    engine.add_facts("HT", &contexts.ht)?;
    engine.add_facts("vP0T", &contexts.vp0t)?;
    let ie: Vec<Vec<u64>> = cg.edges.iter().map(|&(i, _, m)| vec![i, m]).collect();
    engine.add_facts("IE", &ie)?;
    for (name, tuples) in extra_facts {
        engine.add_facts(name, tuples)?;
    }
    let stats = engine.solve()?;
    Ok(ThreadEscape {
        engine,
        stats,
        contexts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_ir::parse_program;

    fn two_workers() -> (Facts, CallGraph) {
        let p = parse_program(
            r#"
class W1 extends Thread {
  method run() { var x: Object; x = new Object; }
}
class W2 extends Thread {
  method run() { var y: Object; y = new Object; }
}
class Main extends Object {
  entry static method main() {
    var a: W1;
    var b: W2;
    a = new W1;
    b = new W2;
    start a;
    start b;
  }
}
"#,
        )
        .unwrap();
        let facts = Facts::extract(&p);
        let cg = CallGraph::from_cha(&facts).unwrap();
        (facts, cg)
    }

    #[test]
    fn two_contexts_per_creation_site() {
        let (facts, cg) = two_workers();
        let ctx = thread_contexts(&facts, &cg);
        assert_eq!(ctx.sites.len(), 2);
        // Contexts: 0 global, 1 main, 2+3 for W1, 4+5 for W2.
        assert_eq!(ctx.domain_size, 6);
        assert_eq!(ctx.sites[0].1, [2, 3]);
        assert_eq!(ctx.sites[1].1, [4, 5]);
    }

    #[test]
    fn ht_separates_thread_allocations() {
        let (facts, cg) = two_workers();
        let ctx = thread_contexts(&facts, &cg);
        // W1.run's allocation belongs to W1's contexts only.
        let w1_alloc = facts
            .heap_names
            .iter()
            .position(|n| n.contains("W1.run"))
            .unwrap() as u64;
        let ctxs: Vec<u64> = ctx
            .ht
            .iter()
            .filter(|t| t[1] == w1_alloc)
            .map(|t| t[0])
            .collect();
        assert_eq!(ctxs, vec![2, 3], "W1's allocation in W1's clones only");
    }

    #[test]
    fn thread_objects_point_into_clone_contexts() {
        let (facts, cg) = two_workers();
        let ctx = thread_contexts(&facts, &cg);
        // main's `a` variable points to W1's object in both clone contexts,
        // executed from main's context 1.
        let a_var = facts
            .var_names
            .iter()
            .position(|n| n.contains("main::a#"))
            .unwrap() as u64;
        let entries: Vec<[u64; 4]> = ctx.vp0t.iter().copied().filter(|t| t[1] == a_var).collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|t| t[0] == 1));
        let clone_ctxs: Vec<u64> = entries.iter().map(|t| t[2]).collect();
        assert_eq!(clone_ctxs, vec![2, 3]);
    }

    #[test]
    fn run_this_binds_in_own_context() {
        let (facts, cg) = two_workers();
        let ctx = thread_contexts(&facts, &cg);
        let run1 = ctx.sites[0].2;
        let this1 = facts
            .formal
            .iter()
            .find(|t| t[0] == run1 && t[1] == 0)
            .map(|t| t[2])
            .unwrap();
        for &c in &ctx.sites[0].1 {
            assert!(
                ctx.vp0t.iter().any(|t| *t == [c, this1, c, ctx.sites[0].0]),
                "this of run() bound in clone context {c}"
            );
        }
    }

    #[test]
    fn inherited_run_method_resolves() {
        // Sub inherits run() from Base: the creation site must still get
        // its two clone contexts, bound to Base.run.
        let p = parse_program(
            r#"
class Base extends Thread {
  method run() { var x: Object; x = new Object; }
}
class Sub extends Base {
  method other() { }
}
class Main extends Object {
  entry static method main() { var s: Sub; s = new Sub; start s; }
}
"#,
        )
        .unwrap();
        let facts = Facts::extract(&p);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let ctx = thread_contexts(&facts, &cg);
        assert_eq!(ctx.sites.len(), 1, "Sub's creation site found");
        let run = ctx.sites[0].2;
        assert_eq!(facts.method_names[run as usize], "Base.run");
        assert_eq!(ctx.sites[0].1, [2, 3]);
    }

    #[test]
    fn global_variable_not_in_phantom_context() {
        let (facts, cg) = two_workers();
        let ctx = thread_contexts(&facts, &cg);
        assert!(
            !ctx.vp0t.iter().any(|t| t[0] == 0 && t[1] == 0),
            "the global var must not be accessed from context 0 itself"
        );
        // But it is bound in every real context.
        for c in 1..ctx.domain_size {
            assert!(ctx.vp0t.iter().any(|t| t[0] == c && t[1] == 0));
        }
    }
}
