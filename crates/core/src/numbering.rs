//! Algorithm 4: context numbering — the heart of the paper.
//!
//! Every *reduced call path* (acyclic path through the call graph with
//! strongly-connected components collapsed) defines a context. Each method
//! is assigned a contiguous range `1..=k` of context numbers, and each
//! invocation edge maps the caller's contexts onto a contiguous sub-range
//! of the callee's by *adding a constant* — both operations are cheap in
//! BDDs (the range and adder primitives of `whale-bdd`), and consecutive
//! numbering is what lets the BDD share information across similar
//! contexts.
//!
//! Context counts beyond [`CONTEXT_CLAMP`] are merged into a single
//! context, mirroring the paper's treatment of `pmd` (whose 5×10²³ paths
//! exceeded their 63-bit physical domain).

use crate::callgraph::CallGraph;
use whale_bdd::Bdd;
use whale_datalog::graph::scc_topo_order;
use whale_datalog::{DatalogError, Engine};

/// Context counts saturate here (2^62), matching the paper's 63-bit signed
/// physical-domain limit.
pub const CONTEXT_CLAMP: u128 = 1 << 62;

/// How one invocation edge maps caller contexts to callee contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeContexts {
    /// Cross-component edge: caller context `x` (`1..=callers`) calls
    /// callee context `x + offset`.
    Shift {
        /// Number of caller contexts.
        callers: u128,
        /// Offset added to the caller context.
        offset: u128,
    },
    /// Within a strongly connected component: the `i`th clone calls the
    /// `i`th clone.
    Identity {
        /// Number of contexts of the component.
        contexts: u128,
    },
    /// Overflow: every caller context maps to the single merged context.
    Merged {
        /// Number of caller contexts.
        callers: u128,
        /// The merged callee context number.
        merged: u128,
    },
}

/// The result of numbering a call graph.
#[derive(Debug, Clone)]
pub struct ContextNumbering {
    /// Per-method context count (number of clones).
    pub counts: Vec<u128>,
    /// Per-method SCC id (topological order).
    pub scc_of: Vec<usize>,
    /// Per call-graph edge (same order as [`CallGraph::edges`]): the
    /// context mapping.
    pub edge_contexts: Vec<EdgeContexts>,
    /// Largest context count over all methods.
    pub max_contexts: u128,
    /// Whether any count saturated at [`CONTEXT_CLAMP`].
    pub clamped: bool,
}

/// Runs Algorithm 4 over a call graph.
///
/// # Example
///
/// Two call sites into one method produce two clones:
///
/// ```
/// use whale_core::{number_contexts, CallGraph};
/// let cg = CallGraph {
///     methods: 2,
///     edges: vec![(0, 0, 1), (1, 0, 1)], // two sites, main -> helper
///     entries: vec![0],
/// };
/// let numbering = number_contexts(&cg);
/// assert_eq!(numbering.counts[1], 2);
/// ```
pub fn number_contexts(cg: &CallGraph) -> ContextNumbering {
    let n = cg.methods;
    let (scc_of, sccs) = scc_topo_order(&cg.method_adjacency());

    // Incoming cross-SCC edges per target SCC, in deterministic order.
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); sccs.len()];
    for (e, &(_, caller, callee)) in cg.edges.iter().enumerate() {
        let (cs, ts) = (scc_of[caller as usize], scc_of[callee as usize]);
        if cs != ts {
            incoming[ts].push(e);
        }
    }

    // Topological accumulation of counts with per-edge offsets.
    let mut scc_count: Vec<u128> = vec![0; sccs.len()];
    let mut edge_contexts: Vec<EdgeContexts> =
        vec![EdgeContexts::Identity { contexts: 0 }; cg.edges.len()];
    let mut clamped = false;
    for (s, edges_in) in incoming.iter().enumerate() {
        if edges_in.is_empty() {
            // Nodes with no predecessors get the singleton context 1.
            scc_count[s] = 1;
            continue;
        }
        let mut offset: u128 = 0;
        for &e in edges_in {
            let caller = cg.edges[e].1 as usize;
            let k = scc_count[scc_of[caller]];
            debug_assert!(k >= 1, "topological order violated");
            if offset + k >= CONTEXT_CLAMP {
                clamped = true;
                edge_contexts[e] = EdgeContexts::Merged {
                    callers: k,
                    merged: CONTEXT_CLAMP,
                };
                offset = CONTEXT_CLAMP;
            } else {
                edge_contexts[e] = EdgeContexts::Shift { callers: k, offset };
                offset += k;
            }
        }
        scc_count[s] = offset.max(1);
    }
    // Intra-SCC edges are identities on the component's count.
    for (e, &(_, caller, callee)) in cg.edges.iter().enumerate() {
        let (cs, ts) = (scc_of[caller as usize], scc_of[callee as usize]);
        if cs == ts {
            edge_contexts[e] = EdgeContexts::Identity {
                contexts: scc_count[cs],
            };
        }
    }

    let counts: Vec<u128> = (0..n).map(|m| scc_count[scc_of[m]]).collect();
    let max_contexts = counts.iter().copied().max().unwrap_or(1).max(1);
    ContextNumbering {
        counts,
        scc_of,
        edge_contexts,
        max_contexts,
        clamped,
    }
}

impl ContextNumbering {
    /// The context-domain size needed to hold every context number
    /// (contexts are 1-based; the merged overflow context is
    /// [`CONTEXT_CLAMP`]).
    pub fn context_domain_size(&self) -> u64 {
        (self.max_contexts + 1).min(CONTEXT_CLAMP + 1) as u64
    }

    /// Total reduced call paths, reported as the largest per-method context
    /// count (Figure 3's "C.S. paths" column).
    pub fn total_paths(&self) -> u128 {
        self.max_contexts
    }

    /// Builds the `IEC (caller : C, invoke : I, callee : C, tgt : M)`
    /// relation of Algorithm 4 directly as a BDD — per edge, a range over
    /// the caller contexts conjoined with the O(bits) adder relation — and
    /// installs it into `engine`.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`] if `relation` is not declared.
    pub fn install_iec(
        &self,
        cg: &CallGraph,
        engine: &mut Engine,
        relation: &str,
    ) -> Result<(), DatalogError> {
        let sig = engine.relation_signature(relation)?;
        let (c_caller, d_invoke, c_callee, d_target) = (sig[0], sig[1], sig[2], sig[3]);
        let mgr = engine.manager().clone();
        let mut parts: Vec<Bdd> = Vec::with_capacity(cg.edges.len());
        for (e, &(i, _, callee)) in cg.edges.iter().enumerate() {
            let site = mgr
                .domain_const(d_invoke, i)
                .and(&mgr.domain_const(d_target, callee));
            let ctx = match self.edge_contexts[e] {
                EdgeContexts::Shift { callers, offset } => mgr
                    .domain_range(c_caller, 1, callers as u64)
                    .and(&mgr.domain_add_const(c_caller, c_callee, offset as u64)),
                EdgeContexts::Identity { contexts } => mgr
                    .domain_range(c_caller, 1, contexts as u64)
                    .and(&mgr.domain_eq(c_caller, c_callee)),
                EdgeContexts::Merged { callers, merged } => mgr
                    .domain_range(c_caller, 1, callers as u64)
                    .and(&mgr.domain_const(c_callee, merged as u64)),
            };
            parts.push(site.and(&ctx));
        }
        engine.set_relation_bdd(relation, or_reduce(&mgr, parts))?;
        Ok(())
    }

    /// Builds the `mC (context : C, method : M)` relation: the valid
    /// contexts (`1..=count`) of every method.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`] if `relation` is not declared.
    pub fn install_mc(&self, engine: &mut Engine, relation: &str) -> Result<(), DatalogError> {
        let sig = engine.relation_signature(relation)?;
        let (c_dom, m_dom) = (sig[0], sig[1]);
        let mgr = engine.manager().clone();
        let mut parts: Vec<Bdd> = Vec::with_capacity(self.counts.len());
        for (m, &k) in self.counts.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let hi = k.min(CONTEXT_CLAMP) as u64;
            parts.push(
                mgr.domain_range(c_dom, 1, hi)
                    .and(&mgr.domain_const(m_dom, m as u64)),
            );
        }
        engine.set_relation_bdd(relation, or_reduce(&mgr, parts))?;
        Ok(())
    }
}

/// Balanced OR-reduction (keeps intermediate BDDs small).
fn or_reduce(mgr: &whale_bdd::BddManager, mut parts: Vec<Bdd>) -> Bdd {
    if parts.is_empty() {
        return mgr.zero();
    }
    while parts.len() > 1 {
        parts = parts
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    c[0].or(&c[1])
                } else {
                    c[0].clone()
                }
            })
            .collect();
    }
    parts.pop().expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The call graph of Figure 1: M2 and M3 form an SCC; M6 ends up with
    /// six clones.
    fn figure1() -> CallGraph {
        // Methods: M1=0 .. M6=5. Edges a..i:
        // a: M1->M2, b: M1->M3, c: M2->M3, d: M3->M2,
        // e: M2->M4, f: M3->M4, g: M3->M5, h: M4->M6, i: M5->M6.
        CallGraph {
            methods: 6,
            edges: vec![
                (0, 0, 1), // a
                (1, 0, 2), // b
                (2, 1, 2), // c
                (3, 2, 1), // d
                (4, 1, 3), // e
                (5, 2, 3), // f
                (6, 2, 4), // g
                (7, 3, 5), // h
                (8, 4, 5), // i
            ],
            entries: vec![0],
        }
    }

    #[test]
    fn figure1_counts_match_example_2() {
        let num = number_contexts(&figure1());
        assert_eq!(num.counts[0], 1, "M1 is the root");
        assert_eq!(num.counts[1], 2, "M2 (SCC with M3): contexts a, b");
        assert_eq!(num.counts[2], 2, "M3 (SCC with M2)");
        assert_eq!(num.counts[3], 4, "M4: (a|b) x (e|f)");
        assert_eq!(num.counts[4], 2, "M5: (a|b) x g");
        assert_eq!(num.counts[5], 6, "M6 has six clones (Figure 2)");
        assert!(!num.clamped);
        assert_eq!(num.total_paths(), 6);
    }

    #[test]
    fn figure1_scc_structure() {
        let num = number_contexts(&figure1());
        assert_eq!(num.scc_of[1], num.scc_of[2], "M2 and M3 share an SCC");
        assert_ne!(num.scc_of[0], num.scc_of[1]);
        // Intra-SCC edges are identities; cross edges shift.
        assert!(matches!(
            num.edge_contexts[2],
            EdgeContexts::Identity { contexts: 2 }
        ));
        assert!(matches!(num.edge_contexts[0], EdgeContexts::Shift { .. }));
    }

    #[test]
    fn figure1_edge_ranges_partition_callee_contexts() {
        let num = number_contexts(&figure1());
        // M6's incoming edges (h from M4 with 4 contexts, i from M5 with 2)
        // partition 1..=6.
        let mut covered = [false; 7];
        for (e, &(_, _, callee)) in figure1().edges.iter().enumerate() {
            if callee == 5 {
                match num.edge_contexts[e] {
                    EdgeContexts::Shift { callers, offset } => {
                        for x in 1..=callers {
                            let c = (x + offset) as usize;
                            assert!(!covered[c], "context {c} assigned twice");
                            covered[c] = true;
                        }
                    }
                    other => panic!("unexpected edge context {other:?}"),
                }
            }
        }
        assert!(covered[1..=6].iter().all(|&b| b), "all six contexts used");
    }

    #[test]
    fn parallel_edges_multiply_paths() {
        // Two parallel edges from a root: the callee has 2 contexts.
        let cg = CallGraph {
            methods: 2,
            edges: vec![(0, 0, 1), (1, 0, 1)],
            entries: vec![0],
        };
        let num = number_contexts(&cg);
        assert_eq!(num.counts[1], 2);
    }

    #[test]
    fn exponential_chain_clamps() {
        // 40 nodes, 8 parallel edges each: 8^39 >> 2^62.
        let mut edges = Vec::new();
        let mut site = 0u64;
        for n in 0..39u64 {
            for _ in 0..8 {
                edges.push((site, n, n + 1));
                site += 1;
            }
        }
        let cg = CallGraph {
            methods: 40,
            edges,
            entries: vec![0],
        };
        let num = number_contexts(&cg);
        assert!(num.clamped);
        assert_eq!(num.counts[39], CONTEXT_CLAMP);
        assert_eq!(num.context_domain_size(), (CONTEXT_CLAMP + 1) as u64);
        // Early nodes are exact.
        assert_eq!(num.counts[1], 8);
        assert_eq!(num.counts[2], 64);
    }

    #[test]
    fn self_recursion_is_single_context_scc() {
        let cg = CallGraph {
            methods: 2,
            edges: vec![(0, 0, 1), (1, 1, 1)],
            entries: vec![0],
        };
        let num = number_contexts(&cg);
        assert_eq!(num.counts[1], 1);
        assert!(matches!(
            num.edge_contexts[1],
            EdgeContexts::Identity { contexts: 1 }
        ));
    }
}
