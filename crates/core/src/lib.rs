//! Cloning-based context-sensitive pointer alias analysis using BDDs.
//!
//! A faithful reproduction of Whaley & Lam, *Cloning-Based
//! Context-Sensitive Pointer Alias Analysis Using Binary Decision
//! Diagrams* (PLDI 2004): the context numbering scheme of Algorithm 4, the
//! pointer analyses of Algorithms 1–3 and 5, the context-sensitive type
//! analysis of Algorithm 6, the thread-escape analysis of Algorithm 7 and
//! the queries of Section 5 — all expressed in Datalog and executed by the
//! `whale-datalog` (bddbddb) engine over `whale-bdd`.
//!
//! # Quick start
//!
//! ```
//! use whale_core::{
//!     context_insensitive, context_sensitive, number_contexts, CallGraph,
//!     CallGraphMode,
//! };
//! use whale_ir::{parse_program, Facts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(r#"
//! class A extends Object {
//!   entry static method main() {
//!     var a: A;
//!     a = new A;
//!     A::use(a);
//!   }
//!   static method use(p: A) { }
//! }
//! "#)?;
//! let facts = Facts::extract(&program);
//!
//! // Context-insensitive points-to (Algorithm 2).
//! let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None)?;
//! assert!(ci.count("vP")? >= 1.0);
//!
//! // Cloning-based context-sensitive points-to (Algorithms 4 + 5).
//! let cg = CallGraph::from_cha(&facts)?;
//! let numbering = number_contexts(&cg);
//! let cs = context_sensitive(&facts, &cg, &numbering, None)?;
//! assert!(cs.count("vPC")? >= 1.0);
//! # Ok(())
//! # }
//! ```

mod analyses;
mod callgraph;
pub mod handcoded;
mod input;
mod numbering;
pub mod order_search;
pub mod queries;
mod races;
mod taint;
mod threads;

pub use analyses::{
    context_insensitive, context_sensitive, cs_type_analysis, default_options, Analysis,
    CallGraphMode, CI_ORDER, CS_ORDER,
};
pub use callgraph::CallGraph;
pub use numbering::{number_contexts, ContextNumbering, EdgeContexts, CONTEXT_CLAMP};
pub use races::{detect_races, singleton_sites, RaceAnalysis, RacePair, RaceReport, RACE_ORDER};
pub use taint::{
    taint_analysis, taint_analysis_resolved, FlowKind, TaintAnalysis, TaintFinding, WitnessStep,
};
pub use threads::{thread_contexts, thread_escape, ThreadContexts, ThreadEscape};
