//! Call multigraphs: the input to the context numbering of Algorithm 4.

use crate::input::{callgraph_rules, domains_section, load_base_facts, BASE_RELATIONS};
use whale_datalog::{DatalogError, Engine, Program};
use whale_ir::Facts;

/// A call multigraph over method ids, with one edge per invocation-edge
/// `(invocation site, caller, callee)`.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Number of methods (`M` domain size).
    pub methods: usize,
    /// Edges `(invoke, caller, callee)`. Parallel edges are meaningful: a
    /// caller with two sites calling the same method contributes two paths.
    pub edges: Vec<(u64, u64, u64)>,
    /// Entry methods (roots for the numbering).
    pub entries: Vec<u64>,
}

impl CallGraph {
    /// Builds the precomputed call graph the paper assumes for Algorithms
    /// 1, 2 and 5: class-hierarchy analysis over declared receiver types.
    ///
    /// # Errors
    ///
    /// Propagates Datalog/BDD errors.
    pub fn from_cha(facts: &Facts) -> Result<CallGraph, DatalogError> {
        let src = format!(
            "{}\nRELATIONS\n{}\noutput IE (invoke : I, target : M)\nassign (dest : V, source : V)\nvP (variable : V, heap : H)\n\nRULES\n{}",
            domains_section(facts, &[]),
            BASE_RELATIONS,
            callgraph_rules(true),
        );
        let program = Program::parse(&src)?;
        let mut engine = Engine::new(program)?;
        load_base_facts(&mut engine, facts)?;
        engine.solve()?;
        Self::from_ie(facts, &engine)
    }

    /// Builds a call graph from a solved engine exposing `IE (invoke,
    /// target)`, joining with `mI` for the caller method — use this with
    /// the on-the-fly Algorithm 3 results.
    ///
    /// # Errors
    ///
    /// Propagates Datalog/BDD errors.
    pub fn from_ie(facts: &Facts, engine: &Engine) -> Result<CallGraph, DatalogError> {
        let ie = engine.relation_tuples("IE")?;
        // invoke -> caller method
        let mut caller_of = vec![u64::MAX; facts.sizes.i as usize];
        for t in &facts.mi {
            caller_of[t[1] as usize] = t[0];
        }
        let mut edges = Vec::with_capacity(ie.len());
        for t in ie {
            let (i, callee) = (t[0], t[1]);
            let caller = caller_of[i as usize];
            if caller != u64::MAX {
                edges.push((i, caller, callee));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Ok(CallGraph {
            methods: facts.sizes.m as usize,
            edges,
            entries: facts.entries.clone(),
        })
    }

    /// Out-adjacency over methods (collapsing parallel edges).
    pub fn method_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.methods];
        for &(_, caller, callee) in &self.edges {
            adj[caller as usize].push(callee as usize);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Methods reachable from `roots` (inclusive).
    pub fn reachable_from(&self, roots: &[u64]) -> Vec<bool> {
        let adj = self.method_adjacency();
        let mut seen = vec![false; self.methods];
        let mut stack: Vec<usize> = roots.iter().map(|&m| m as usize).collect();
        while let Some(m) = stack.pop() {
            if seen[m] {
                continue;
            }
            seen[m] = true;
            for &n in &adj[m] {
                if !seen[n] {
                    stack.push(n);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_ir::{parse_program, Facts};

    #[test]
    fn cha_graph_includes_all_overrides() {
        let src = r#"
class A extends Object {
  method m(): Object { var r: Object; r = new Object; return r; }
}
class B extends A {
  method m(): Object { var r: Object; r = new Object; return r; }
}
class Main extends Object {
  entry static method main() {
    var a: A;
    var r: Object;
    a = new B;
    r = a.m();
  }
}
"#;
        let p = parse_program(src).unwrap();
        let f = Facts::extract(&p);
        let cg = CallGraph::from_cha(&f).unwrap();
        // Declared type A: CHA resolves to both A.m and B.m.
        assert_eq!(cg.edges.len(), 2);
    }

    #[test]
    fn reachability() {
        let cg = CallGraph {
            methods: 4,
            edges: vec![(0, 0, 1), (1, 1, 2)],
            entries: vec![0],
        };
        let r = cg.reachable_from(&[0]);
        assert_eq!(r, vec![true, true, true, false]);
    }
}
