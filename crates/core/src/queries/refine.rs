//! Type refinement (Section 5.3), the query behind Figure 6.
//!
//! A variable's type is *refinable* if it can be declared with a more
//! precise type than its current declaration; a variable is *multi-typed*
//! if its points-to set spans types with no common exact type. The paper
//! compares six analysis variants; [`RefineVariant`] enumerates them.

use crate::analyses::{
    context_insensitive_with_facts, context_sensitive_with_facts, cs_type_analysis_with_facts,
    Analysis, CallGraphMode,
};
use crate::callgraph::CallGraph;
use crate::numbering::ContextNumbering;
use whale_datalog::DatalogError;
use whale_ir::Facts;

/// The six analysis variants of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineVariant {
    /// Context-insensitive pointer analysis without type filtering
    /// (Algorithm 1).
    CiUntyped,
    /// Context-insensitive pointer analysis with type filtering
    /// (Algorithm 2).
    CiTyped,
    /// Context-sensitive pointer analysis with the context projected away.
    ProjectedCsPointer,
    /// Context-sensitive type analysis with the context projected away.
    ProjectedCsType,
    /// Fully context-sensitive pointer analysis.
    CsPointer,
    /// Fully context-sensitive type analysis.
    CsType,
}

impl RefineVariant {
    /// All six variants in Figure 6 column order.
    pub fn all() -> [RefineVariant; 6] {
        [
            RefineVariant::CiUntyped,
            RefineVariant::CiTyped,
            RefineVariant::ProjectedCsPointer,
            RefineVariant::ProjectedCsType,
            RefineVariant::CsPointer,
            RefineVariant::CsType,
        ]
    }

    /// Whether this variant needs contexts (Algorithms 4+5/6).
    pub fn context_sensitive(self) -> bool {
        !matches!(self, RefineVariant::CiUntyped | RefineVariant::CiTyped)
    }
}

/// Counts from one refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Variables with at least one pointee (the denominator).
    pub pointer_vars: u64,
    /// Variables whose pointees span multiple exact types.
    pub multi: u64,
    /// Variables whose declared type can be refined.
    pub refinable: u64,
}

impl RefineStats {
    /// `(percent multi-typed, percent refinable)` as in Figure 6.
    pub fn percentages(&self) -> (f64, f64) {
        if self.pointer_vars == 0 {
            return (0.0, 0.0);
        }
        (
            100.0 * self.multi as f64 / self.pointer_vars as f64,
            100.0 * self.refinable as f64 / self.pointer_vars as f64,
        )
    }
}

const REFINE_CI_RELATIONS: &str = "\
input allT (t : T)
varExactTypes (v : V, t : T)
notVarType (v : V, t : T)
varSuperTypes (v : V, t : T)
refinable (v : V, t : T)
output multiType (v : V)
output refinableVar (v : V)
output pointerVars (v : V)
";

/// Context-insensitive refinement rules, parameterized by the source of
/// `varExactTypes`.
fn refine_ci_rules(exact_src: &str) -> String {
    format!(
        "{exact_src}\
notVarType(v,t) :- varExactTypes(v,tv), allT(t), !aT(t,tv).
varSuperTypes(v,t) :- varExactTypes(v,_), allT(t), !notVarType(v,t).
refinable(v,tc) :- vT(v,td), varSuperTypes(v,tc), aT(td,tc), td != tc.
multiType(v) :- varExactTypes(v,t1), varExactTypes(v,t2), t1 != t2.
refinableVar(v) :- refinable(v,_).
pointerVars(v) :- varExactTypes(v,_).
"
    )
}

const REFINE_CS_RELATIONS: &str = "\
input allT (t : T)
varExactTypesC (c : C, v : V, t : T)
notVarTypeC (c : C, v : V, t : T)
varSuperTypesC (c : C, v : V, t : T)
refinableC (c : C, v : V, t : T)
output multiType (v : V)
output refinableVar (v : V)
output pointerVars (v : V)
";

/// Context-sensitive refinement rules: a variable counts as multi-typed
/// only if some single context sees multiple types.
fn refine_cs_rules(exact_src: &str) -> String {
    format!(
        "{exact_src}\
notVarTypeC(c,v,t) :- varExactTypesC(c,v,tv), allT(t), !aT(t,tv).
varSuperTypesC(c,v,t) :- varExactTypesC(c,v,_), allT(t), !notVarTypeC(c,v,t).
refinableC(c,v,tc) :- vT(v,td), varSuperTypesC(c,v,tc), aT(td,tc), td != tc.
multiType(v) :- varExactTypesC(c,v,t1), varExactTypesC(c,v,t2), t1 != t2.
refinableVar(v) :- refinableC(_,v,_).
pointerVars(v) :- varExactTypesC(_,v,_).
"
    )
}

fn all_t(facts: &Facts) -> Vec<Vec<u64>> {
    (0..facts.sizes.t).map(|t| vec![t]).collect()
}

fn stats_from(analysis: &Analysis) -> Result<RefineStats, DatalogError> {
    Ok(RefineStats {
        pointer_vars: analysis.count("pointerVars")? as u64,
        multi: analysis.count("multiType")? as u64,
        refinable: analysis.count("refinableVar")? as u64,
    })
}

/// Runs the type-refinement query under one of the six Figure 6 variants.
///
/// `cg`/`numbering` are required for the context-sensitive variants and
/// ignored otherwise.
///
/// # Errors
///
/// Propagates Datalog/BDD errors; context-sensitive variants without a
/// numbering report an unknown-relation error.
pub fn type_refinement(
    facts: &Facts,
    cg: Option<&CallGraph>,
    numbering: Option<&ContextNumbering>,
    variant: RefineVariant,
) -> Result<RefineStats, DatalogError> {
    let analysis = match variant {
        RefineVariant::CiUntyped | RefineVariant::CiTyped => {
            let typed = variant == RefineVariant::CiTyped;
            context_insensitive_with_facts(
                facts,
                typed,
                CallGraphMode::Cha,
                REFINE_CI_RELATIONS,
                &refine_ci_rules("varExactTypes(v,t) :- vP(v,h), hT(h,t).\n"),
                &[("allT", all_t(facts))],
                None,
            )?
        }
        RefineVariant::ProjectedCsPointer => {
            let (cg, numbering) = require(cg, numbering)?;
            run_cs_pointer(
                facts,
                cg,
                numbering,
                REFINE_CI_RELATIONS,
                &refine_ci_rules("varExactTypes(v,t) :- vPC(_,v,h), hT(h,t).\n"),
            )?
        }
        RefineVariant::CsPointer => {
            let (cg, numbering) = require(cg, numbering)?;
            run_cs_pointer(
                facts,
                cg,
                numbering,
                REFINE_CS_RELATIONS,
                &refine_cs_rules("varExactTypesC(c,v,t) :- vPC(c,v,h), hT(h,t).\n"),
            )?
        }
        RefineVariant::ProjectedCsType => {
            let (cg, numbering) = require(cg, numbering)?;
            run_cs_type(
                facts,
                cg,
                numbering,
                REFINE_CI_RELATIONS,
                &refine_ci_rules("varExactTypes(v,t) :- vTC(_,v,t).\n"),
            )?
        }
        RefineVariant::CsType => {
            let (cg, numbering) = require(cg, numbering)?;
            run_cs_type(
                facts,
                cg,
                numbering,
                REFINE_CS_RELATIONS,
                &refine_cs_rules("varExactTypesC(c,v,t) :- vTC(c,v,t).\n"),
            )?
        }
    };
    stats_from(&analysis)
}

fn require<'a>(
    cg: Option<&'a CallGraph>,
    numbering: Option<&'a ContextNumbering>,
) -> Result<(&'a CallGraph, &'a ContextNumbering), DatalogError> {
    match (cg, numbering) {
        (Some(c), Some(n)) => Ok((c, n)),
        _ => Err(DatalogError::BadFact(
            "context-sensitive refinement variant needs a call graph and numbering".into(),
        )),
    }
}

fn run_cs_pointer(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    relations: &str,
    rules: &str,
) -> Result<Analysis, DatalogError> {
    context_sensitive_with_facts(
        facts,
        cg,
        numbering,
        relations,
        rules,
        &[("allT", all_t(facts))],
        None,
    )
}

fn run_cs_type(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    relations: &str,
    rules: &str,
) -> Result<Analysis, DatalogError> {
    cs_type_analysis_with_facts(
        facts,
        cg,
        numbering,
        relations,
        rules,
        &[("allT", all_t(facts))],
        None,
    )
}
