//! The Section 5 queries: memory-leak debugging, security-vulnerability
//! audit, type refinement and context-sensitive mod-ref — each a handful
//! of Datalog rules over the analysis results, exactly as in the paper —
//! plus the data-race detector built on the thread-escape analysis and
//! the spec-driven taint engine subsuming the vulnerability audit.

mod leak;
mod modref;
mod refine;
mod vuln;

pub use crate::races::{detect_races, RaceAnalysis, RacePair, RaceReport};
pub use crate::taint::{taint_analysis, FlowKind, TaintAnalysis, TaintFinding, WitnessStep};
pub use leak::{leak_query, LeakReport};
pub use modref::{mod_ref, ModRef};
pub use refine::{type_refinement, RefineStats, RefineVariant};
pub use vuln::{vuln_query, VulnReport};
