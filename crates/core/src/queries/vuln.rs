//! Security-vulnerability audit (Section 5.2).
//!
//! The paper's JCE example: a secret key must not be derived from an
//! immutable `String`. Since PR 4 this query is a one-spec instance of
//! the general taint engine ([`crate::taint_analysis`]): every method of
//! `java.lang.String` is a source, the audited method + argument position
//! is the sink, and there are no sanitizers. An invocation is flagged
//! when the checked argument may carry a value returned by any String
//! method — even through arbitrarily many copies, fields and calls.

use crate::callgraph::CallGraph;
use crate::numbering::ContextNumbering;
use crate::taint::taint_analysis_resolved;
use whale_datalog::DatalogError;
use whale_ir::{Facts, ResolvedTaintSpec};

/// A flagged call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VulnReport {
    /// Context in which the vulnerable call executes.
    pub context: u64,
    /// The invocation-site id.
    pub invoke: u64,
    /// The method containing the invocation site, for display.
    pub in_method: String,
}

/// Audits for String-derived data reaching `sink_method` (a method
/// name-map entry, e.g. `"crypto.PBEKeySpec.init"`). `arg` is the
/// argument position checked (1 = first argument after the receiver, as
/// in the paper's query).
///
/// # Errors
///
/// [`DatalogError::UnresolvedName`] if the sink is unknown;
/// [`DatalogError::BadFact`] if the program has no `java.lang.String`
/// class; otherwise propagates Datalog/BDD errors.
pub fn vuln_query(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    sink_method: &str,
    arg: u64,
) -> Result<Vec<VulnReport>, DatalogError> {
    let string_type = facts
        .string_type
        .ok_or_else(|| DatalogError::BadFact("program has no java.lang.String class".into()))?;
    let sink = facts
        .method_names
        .iter()
        .position(|n| n == sink_method)
        .ok_or_else(|| DatalogError::UnresolvedName {
            domain: "M".into(),
            name: sink_method.to_string(),
        })? as u64;
    let spec = ResolvedTaintSpec {
        source_methods: facts
            .mcls
            .iter()
            .filter(|t| t[1] == string_type)
            .map(|t| t[0])
            .collect(),
        source_fields: Vec::new(),
        sink_methods: vec![(sink, arg)],
        sanitizer_methods: Vec::new(),
    };
    let result = taint_analysis_resolved(facts, cg, numbering, &spec, None)?;
    Ok(result
        .findings
        .into_iter()
        .map(|f| VulnReport {
            context: f.context,
            invoke: f.invoke,
            in_method: f.in_method,
        })
        .collect())
}
