//! Security-vulnerability audit (Section 5.2).
//!
//! The paper's JCE example: a secret key must not be derived from an
//! immutable `String`. An invocation of the sink method is flagged when
//! its first (non-receiver) argument may point to an object returned by
//! any `java.lang.String` method — even through arbitrarily many copies,
//! fields and calls.

use crate::analyses::context_sensitive_with_facts;
use crate::callgraph::CallGraph;
use crate::numbering::ContextNumbering;
use whale_datalog::DatalogError;
use whale_ir::Facts;

/// A flagged call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VulnReport {
    /// Context in which the vulnerable call executes.
    pub context: u64,
    /// The invocation-site id.
    pub invoke: u64,
    /// The method containing the invocation site, for display.
    pub in_method: String,
}

/// Audits for String-derived data reaching `sink_method` (a method
/// name-map entry, e.g. `"crypto.PBEKeySpec.init"`). `arg` is the
/// argument position checked (1 = first argument after the receiver, as
/// in the paper's query).
///
/// # Errors
///
/// [`DatalogError::UnresolvedName`] if the sink is unknown; otherwise
/// propagates Datalog/BDD errors.
pub fn vuln_query(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    sink_method: &str,
    arg: u64,
) -> Result<Vec<VulnReport>, DatalogError> {
    let string_type = facts
        .string_type
        .ok_or_else(|| DatalogError::BadFact("program has no java.lang.String class".into()))?;
    let relations = "\
input IE (invoke : I, target : M)
fromString (h : H)
output vuln (c : C, i : I)
";
    let rules = format!(
        "fromString(h) :- mCls(m, {string_type}), Mret(m,v), vPC(_,v,h).\n\
vuln(c,i) :- IE(i, \"{sink_method}\"), actual(i, {arg}, v), vPC(c,v,h), fromString(h).\n"
    );
    let ie: Vec<Vec<u64>> = cg.edges.iter().map(|&(i, _, m)| vec![i, m]).collect();
    let analysis =
        context_sensitive_with_facts(facts, cg, numbering, relations, &rules, &[("IE", ie)], None)?;
    let e = &analysis.engine;
    let mut site_method = vec![u64::MAX; facts.sizes.i as usize];
    for t in &facts.mi {
        site_method[t[1] as usize] = t[0];
    }
    let mut out = Vec::new();
    for t in e.relation_tuples("vuln")? {
        let m = site_method[t[1] as usize];
        out.push(VulnReport {
            context: t[0],
            invoke: t[1],
            in_method: facts
                .method_names
                .get(m as usize)
                .cloned()
                .unwrap_or_else(|| "?".into()),
        });
    }
    out.sort_by_key(|v| (v.invoke, v.context));
    Ok(out)
}
