//! Memory-leak debugging (Section 5.1).
//!
//! Given an allocation site suspected of leaking, `whoPointsTo` finds the
//! objects and fields that may retain it, and `whoDunnit` finds the store
//! statements — and the contexts under which they execute — that created
//! those references.

use crate::analyses::context_sensitive_extended;
use crate::callgraph::CallGraph;
use crate::numbering::ContextNumbering;
use whale_datalog::DatalogError;
use whale_ir::Facts;

/// Results of the leak query, with display names resolved.
#[derive(Debug, Clone, Default)]
pub struct LeakReport {
    /// `(holder heap object, field)` pairs that may point to the leaked
    /// object.
    pub who_points_to: Vec<(String, String)>,
    /// `(context, base var, field, source var)` stores that may have
    /// created the reference, with the context number attached.
    pub who_dunnit: Vec<(u64, String, String, String)>,
}

/// Runs the paper's leak query against the context-sensitive points-to
/// results, for the allocation site named `heap_name` (a heap name-map
/// entry, e.g. `"A@app.Main.main:3"`).
///
/// # Errors
///
/// [`DatalogError::UnresolvedName`] if `heap_name` is not a known
/// allocation site; otherwise propagates Datalog/BDD errors.
pub fn leak_query(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    heap_name: &str,
) -> Result<LeakReport, DatalogError> {
    let relations = "\
output whoPointsTo (h : H, f : F)
output whoDunnit (c : C, base : V, f : F, src : V)
";
    let rules = format!(
        "whoPointsTo(h,f) :- hP(h, f, \"{heap_name}\").\n\
whoDunnit(c,v1,f,v2) :- store(v1,f,v2), vPC(c, v2, \"{heap_name}\").\n"
    );
    let analysis = context_sensitive_extended(facts, cg, numbering, relations, &rules, None)?;
    let e = &analysis.engine;
    let mut report = LeakReport::default();
    for t in e.relation_tuples("whoPointsTo")? {
        report.who_points_to.push((
            e.name_of("H", t[0]).unwrap_or("?").to_string(),
            e.name_of("F", t[1]).unwrap_or("?").to_string(),
        ));
    }
    for t in e.relation_tuples("whoDunnit")? {
        report.who_dunnit.push((
            t[0],
            e.name_of("V", t[1]).unwrap_or("?").to_string(),
            e.name_of("F", t[2]).unwrap_or("?").to_string(),
            e.name_of("V", t[3]).unwrap_or("?").to_string(),
        ));
    }
    report.who_points_to.sort();
    report.who_dunnit.sort();
    Ok(report)
}
