//! Context-sensitive mod-ref analysis (Section 5.4).
//!
//! Determines which fields of which objects a method (in a given context)
//! may modify or reference, transitively through everything it calls.

use crate::analyses::{context_sensitive_extended, Analysis};
use crate::callgraph::CallGraph;
use crate::numbering::ContextNumbering;
use whale_datalog::DatalogError;
use whale_ir::Facts;

/// Solved mod-ref relations.
pub struct ModRef {
    /// The underlying analysis with `mod (c, m, h, f)` and
    /// `ref (c, m, h, f)` output relations.
    pub analysis: Analysis,
}

impl ModRef {
    /// `(heap, field)` pairs method `m` may modify in context `c`.
    ///
    /// # Errors
    ///
    /// Propagates Datalog/BDD errors.
    pub fn mod_of(&self, c: u64, m: u64) -> Result<Vec<(u64, u64)>, DatalogError> {
        Ok(self
            .analysis
            .engine
            .relation_tuples("mod")?
            .into_iter()
            .filter(|t| t[0] == c && t[1] == m)
            .map(|t| (t[2], t[3]))
            .collect())
    }

    /// `(heap, field)` pairs method `m` may reference in context `c`.
    ///
    /// # Errors
    ///
    /// Propagates Datalog/BDD errors.
    pub fn ref_of(&self, c: u64, m: u64) -> Result<Vec<(u64, u64)>, DatalogError> {
        Ok(self
            .analysis
            .engine
            .relation_tuples("ref")?
            .into_iter()
            .filter(|t| t[0] == c && t[1] == m)
            .map(|t| (t[2], t[3]))
            .collect())
    }
}

/// Runs the paper's context-sensitive mod-ref analysis on top of
/// Algorithm 5.
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn mod_ref(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
) -> Result<ModRef, DatalogError> {
    let relations = "\
mVC (c1 : C, m1 : M, c2 : C, v : V)
output mod (c : C, m : M, h : H, f : F)
output ref (c : C, m : M, h : H, f : F)
";
    let rules = "\
mVC(c,m,c,v) :- mV(m,v), mC(c,m).
mVC(c1,m1,c3,v3) :- mI(m1,i,_), IEC(c1,i,c2,m2), mVC(c2,m2,c3,v3).
mod(c,m,h,f) :- mVC(c,m,cv,v), store(v,f,_), vPC(cv,v,h).
ref(c,m,h,f) :- mVC(c,m,cv,v), load(v,f,_), vPC(cv,v,h).
";
    let analysis = context_sensitive_extended(facts, cg, numbering, relations, rules, None)?;
    Ok(ModRef { analysis })
}
