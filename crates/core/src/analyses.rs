//! The paper's analyses, expressed (as in the paper) as Datalog programs.
//!
//! - [`context_insensitive`] — Algorithms 1 and 2 (precomputed CHA call
//!   graph, optional type filtering) and Algorithm 3 (call graph discovered
//!   on the fly).
//! - [`context_sensitive`] — Algorithm 5: the cloning-based
//!   context-sensitive points-to analysis over the `IEC` relation of
//!   Algorithm 4.
//! - [`cs_type_analysis`] — Algorithm 6: context-sensitive type analysis.
//!
//! Every function returns the solved [`Engine`] so callers can run further
//! queries against the result relations.

use crate::callgraph::CallGraph;
use crate::input::{callgraph_rules, domains_section, load_base_facts, BASE_RELATIONS};
use crate::numbering::ContextNumbering;
use whale_datalog::{DatalogError, Engine, EngineOptions, Program, SolveStats};
use whale_ir::Facts;

/// How the call graph feeding an analysis is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallGraphMode {
    /// Precomputed by class-hierarchy analysis on declared receiver types
    /// (the assumption of Algorithms 1, 2 and 5).
    Cha,
    /// Discovered on the fly from points-to results (Algorithm 3).
    OnTheFly,
}

/// A solved analysis: query its relations through [`Analysis::engine`].
pub struct Analysis {
    /// The solved Datalog engine.
    pub engine: Engine,
    /// Solver statistics (rounds ≈ the paper's "iterations" column).
    pub stats: SolveStats,
}

impl Analysis {
    /// Tuple count of a result relation.
    ///
    /// # Errors
    ///
    /// [`DatalogError::UnknownRelation`].
    pub fn count(&self, relation: &str) -> Result<f64, DatalogError> {
        self.engine.relation_count(relation)
    }
}

/// The engine options an analysis uses when the caller passes `None`:
/// semi-naive evaluation with fused renames over the given variable
/// order. Public so drivers can layer overrides (worker count, dynamic
/// reordering) on an analysis's own defaults, e.g.
/// `EngineOptions { jobs: 4, ..default_options(CS_ORDER) }`.
pub fn default_options(order: &str) -> EngineOptions {
    EngineOptions {
        seminaive: true,
        order: Some(order.into()),
        fuse_renames: true,
        reorder: false,
        ..EngineOptions::default()
    }
}

/// Default variable order for the context-insensitive analyses.
pub const CI_ORDER: &str = "Z_N_F_T_M_I_V_H";
/// Default variable order for the context-sensitive analyses (context bits
/// between the variable and heap domains, as in the paper's tuned order).
pub const CS_ORDER: &str = "Z_N_F_T_M_I_V_C_H";

/// The context-insensitive points-to rules (Algorithms 1/2/3), shared with
/// the query programs.
pub(crate) fn ci_rules(typed: bool, mode: CallGraphMode) -> String {
    let mut rules = String::new();
    rules.push_str("vPfilter(v,h) :- vT(v,tv), hT(h,th), aT(tv,th).\n");
    rules.push_str(&callgraph_rules(mode == CallGraphMode::Cha));
    rules.push_str("vP(v,h) :- vP0(v,h).\n");
    if typed {
        rules.push_str("vP(v1,h) :- assign(v1,v2), vP(v2,h), vPfilter(v1,h).\n");
    } else {
        rules.push_str("vP(v1,h) :- assign(v1,v2), vP(v2,h).\n");
    }
    rules.push_str("hP(h1,f,h2) :- store(v1,f,v2), vP(v1,h1), vP(v2,h2).\n");
    if typed {
        rules.push_str("vP(v2,h2) :- load(v1,f,v2), vP(v1,h1), hP(h1,f,h2), vPfilter(v2,h2).\n");
    } else {
        rules.push_str("vP(v2,h2) :- load(v1,f,v2), vP(v1,h1), hP(h1,f,h2).\n");
    }
    rules
}

/// The relation declarations of the context-insensitive programs.
pub(crate) const CI_RELATIONS: &str = "\
vPfilter (variable : V, heap : H)
output IE (invoke : I, target : M)
assign (dest : V, source : V)
output vP (variable : V, heap : H)
output hP (base : H, field : F, target : H)
";

/// The relation declarations of the Algorithm 5 program.
pub(crate) const CS_RELATIONS: &str = "\
input IEC (caller : C, invoke : I, callee : C, tgt : M)
input mC (context : C, method : M)
vC (context : C, variable : V)
vPfilter (variable : V, heap : H)
assignC (destc : C, dest : V, srcc : C, src : V)
output vPC (context : C, variable : V, heap : H)
output hP (base : H, field : F, target : H)
";

/// The Algorithm 5 rules.
pub(crate) const CS_RULES: &str = "\
vC(c,v) :- mV(m,v), mC(c,m).
vPfilter(v,h) :- vT(v,tv), hT(h,th), aT(tv,th).
vPC(c,v,h) :- vP0(v,h), vC(c,v).
assignC(c1,v1,c2,v2) :- IEC(c2,i,c1,m), formal(m,z,v1), actual(i,z,v2).
assignC(c2,v1,c1,v2) :- IEC(c2,i,c1,m), Iret(i,v1), Mret(m,v2).
assignC(c2,v1,c1,v2) :- IEC(c2,i,c1,m2), mI(m1,i,_), Mthr(m1,v1), Mthr(m2,v2).
vPC(c1,v1,h) :- assignC(c1,v1,c2,v2), vPC(c2,v2,h), vPfilter(v1,h).
vPC(c,v1,h) :- assign0(v1,v2), vPC(c,v2,h), vPfilter(v1,h).
hP(h1,f,h2) :- store(v1,f,v2), vPC(c,v1,h1), vPC(c,v2,h2).
vPC(c,v2,h2) :- load(v1,f,v2), vPC(c,v1,h1), hP(h1,f,h2), vPfilter(v2,h2).
";

/// The Algorithm 6 relations.
pub(crate) const CS_TYPE_RELATIONS: &str = "\
input IEC (caller : C, invoke : I, callee : C, tgt : M)
input mC (context : C, method : M)
vC (context : C, variable : V)
vTfilter (variable : V, type : T)
assignC (destc : C, dest : V, srcc : C, src : V)
output vTC (context : C, variable : V, type : T)
output fT (field : F, target : T)
";

/// The Algorithm 6 rules.
pub(crate) const CS_TYPE_RULES: &str = "\
vC(c,v) :- mV(m,v), mC(c,m).
vTfilter(v,t) :- vT(v,tv), aT(tv,t).
vTC(c,v,t) :- vP0(v,h), hT(h,t), vC(c,v).
assignC(c1,v1,c2,v2) :- IEC(c2,i,c1,m), formal(m,z,v1), actual(i,z,v2).
assignC(c2,v1,c1,v2) :- IEC(c2,i,c1,m), Iret(i,v1), Mret(m,v2).
assignC(c2,v1,c1,v2) :- IEC(c2,i,c1,m2), mI(m1,i,_), Mthr(m1,v1), Mthr(m2,v2).
vTC(c1,v1,t) :- assignC(c1,v1,c2,v2), vTC(c2,v2,t), vTfilter(v1,t).
vTC(c,v1,t) :- assign0(v1,v2), vTC(c,v2,t), vTfilter(v1,t).
fT(f,t) :- store(_,f,v2), vTC(_,v2,t).
vTC(c,v,t) :- load(_,f,v), fT(f,t), vTfilter(v,t), vC(c,v).
";

/// Assembles and solves an Algorithm 5 program with optional extra
/// relation declarations and rules appended (for queries built on top of
/// the context-sensitive results).
pub(crate) fn context_sensitive_extended(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    extra_relations: &str,
    extra_rules: &str,
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    context_sensitive_with_facts(
        facts,
        cg,
        numbering,
        extra_relations,
        extra_rules,
        &[],
        options,
    )
}

/// [`context_sensitive_extended`] plus extra input facts loaded before
/// solving.
#[allow(clippy::too_many_arguments)]
pub(crate) fn context_sensitive_with_facts(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    extra_relations: &str,
    extra_rules: &str,
    extra_facts: &[(&str, Vec<Vec<u64>>)],
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    let src = format!(
        "{}\nRELATIONS\n{}{}{}\nRULES\n{}{}",
        domains_section(facts, &context_domain(numbering)),
        BASE_RELATIONS,
        CS_RELATIONS,
        extra_relations,
        CS_RULES,
        extra_rules,
    );
    let program = Program::parse(&src)?;
    let mut engine = Engine::with_options(
        program,
        options.unwrap_or_else(|| default_options(CS_ORDER)),
    )?;
    load_base_facts(&mut engine, facts)?;
    for (rel, tuples) in extra_facts {
        engine.add_facts(rel, tuples)?;
    }
    numbering.install_iec(cg, &mut engine, "IEC")?;
    numbering.install_mc(&mut engine, "mC")?;
    let stats = engine.solve()?;
    Ok(Analysis { engine, stats })
}

/// Algorithms 1/2/3: context-insensitive points-to analysis.
///
/// `typed` enables the Algorithm 2 type filter; `mode` selects the
/// precomputed CHA call graph or on-the-fly discovery. Output relations:
/// `vP (variable, heap)`, `hP (base, field, target)`, `IE (invoke,
/// target)`.
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn context_insensitive(
    facts: &Facts,
    typed: bool,
    mode: CallGraphMode,
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    context_insensitive_extended(facts, typed, mode, "", "", options)
}

/// [`context_insensitive`] with extra relations and rules appended.
pub(crate) fn context_insensitive_extended(
    facts: &Facts,
    typed: bool,
    mode: CallGraphMode,
    extra_relations: &str,
    extra_rules: &str,
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    context_insensitive_with_facts(
        facts,
        typed,
        mode,
        extra_relations,
        extra_rules,
        &[],
        options,
    )
}

/// [`context_insensitive_extended`] plus extra input facts loaded before
/// solving.
pub(crate) fn context_insensitive_with_facts(
    facts: &Facts,
    typed: bool,
    mode: CallGraphMode,
    extra_relations: &str,
    extra_rules: &str,
    extra_facts: &[(&str, Vec<Vec<u64>>)],
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    let src = format!(
        "{}\nRELATIONS\n{}{}{}\nRULES\n{}{}",
        domains_section(facts, &[]),
        BASE_RELATIONS,
        CI_RELATIONS,
        extra_relations,
        ci_rules(typed, mode),
        extra_rules,
    );
    let program = Program::parse(&src)?;
    let mut engine = Engine::with_options(
        program,
        options.unwrap_or_else(|| default_options(CI_ORDER)),
    )?;
    load_base_facts(&mut engine, facts)?;
    for (rel, tuples) in extra_facts {
        engine.add_facts(rel, tuples)?;
    }
    let stats = engine.solve()?;
    Ok(Analysis { engine, stats })
}

/// Context-domain declaration line for a numbering.
fn context_domain(numbering: &ContextNumbering) -> Vec<String> {
    vec![format!("C {}", numbering.context_domain_size())]
}

/// Algorithm 5: context-sensitive points-to analysis with a precomputed
/// call graph, exploded by the context numbering.
///
/// Output relations: `vPC (context, variable, heap)` and `hP`.
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn context_sensitive(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    context_sensitive_extended(facts, cg, numbering, "", "", options)
}

/// Algorithm 6: context-sensitive type analysis (the fast 0-CFA-style
/// variant lifted to contexts by the Algorithm 4 numbering).
///
/// Output relations: `vTC (context, variable, type)` and `fT (field,
/// type)`.
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn cs_type_analysis(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    cs_type_analysis_extended(facts, cg, numbering, "", "", options)
}

/// [`cs_type_analysis`] with extra relations and rules appended.
pub(crate) fn cs_type_analysis_extended(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    extra_relations: &str,
    extra_rules: &str,
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    cs_type_analysis_with_facts(
        facts,
        cg,
        numbering,
        extra_relations,
        extra_rules,
        &[],
        options,
    )
}

/// [`cs_type_analysis_extended`] plus extra input facts loaded before
/// solving.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cs_type_analysis_with_facts(
    facts: &Facts,
    cg: &CallGraph,
    numbering: &ContextNumbering,
    extra_relations: &str,
    extra_rules: &str,
    extra_facts: &[(&str, Vec<Vec<u64>>)],
    options: Option<EngineOptions>,
) -> Result<Analysis, DatalogError> {
    let src = format!(
        "{}\nRELATIONS\n{}{}{}\nRULES\n{}{}",
        domains_section(facts, &context_domain(numbering)),
        BASE_RELATIONS,
        CS_TYPE_RELATIONS,
        extra_relations,
        CS_TYPE_RULES,
        extra_rules,
    );
    let program = Program::parse(&src)?;
    let mut engine = Engine::with_options(
        program,
        options.unwrap_or_else(|| default_options(CS_ORDER)),
    )?;
    load_base_facts(&mut engine, facts)?;
    for (rel, tuples) in extra_facts {
        engine.add_facts(rel, tuples)?;
    }
    numbering.install_iec(cg, &mut engine, "IEC")?;
    numbering.install_mc(&mut engine, "mC")?;
    let stats = engine.solve()?;
    Ok(Analysis { engine, stats })
}
