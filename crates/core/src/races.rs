//! Static data-race detection on top of the thread-escape analysis.
//!
//! A race candidate is a pair of field accesses `(s1, s2)` on the same
//! field of the same thread-escaping abstract object `(ch, h)`, executed
//! under distinct thread contexts (the Algorithm 7 context scheme of
//! [`crate::thread_contexts`]), where at least one access is a write and
//! the two accesses hold no common lock.
//!
//! # Lock-set approximation
//!
//! Two accesses hold a common lock iff their enclosing `synchronized`
//! monitors *must* point to the same **singleton** abstract object: an
//! allocation site the execution-count analysis proves is instantiated at
//! most once (its method executes at most once, and never from a thread's
//! `run` method). Must-alias is checked by requiring the monitor variable
//! to point to exactly one `(context, heap)` pair. This deliberately
//! under-approximates lock protection — per-thread or multiply-allocated
//! locks never suppress a report — so it cannot hide a real race at the
//! price of false alarms on exotic locking.
//!
//! # Soundness caveats
//!
//! - Accesses through the synthetic global object (static fields) are
//!   excluded: the initial publication store from `main` and the readers
//!   would otherwise always race. Races *through static fields* are
//!   therefore not reported.
//! - Accesses are attributed to a thread context only if that context can
//!   actually reach the enclosing method (`CM` from
//!   [`crate::ThreadContexts`]). The underlying `vPT` relation is built
//!   from context-blind `assign` edges, so without this restriction a
//!   `run` method's statements would also appear to execute in the
//!   *creating* thread's context.
//! - Fields of the thread objects themselves are excluded: the idiomatic
//!   start handshake (`w.shared = s; start w;` in the creator, `s =
//!   this.shared;` in `run`) is ordered by `Thread.start`'s happens-before
//!   edge, which the detector does not model. Real races on a thread
//!   object's own fields after it started are therefore not reported.
//! - `wait`/`notify`, `join`-ordering and volatile semantics are not
//!   modeled; the detector reasons about mutual exclusion only.

use crate::callgraph::CallGraph;
use crate::input::global_object;
use crate::threads::{thread_escape_extended, ThreadContexts, ThreadEscape};
use whale_datalog::{DatalogError, EngineOptions};
use whale_ir::Facts;

/// Default variable order for the race program: the statement domain sits
/// next to the other "small" domains, contexts between variables and heap
/// as in [`crate::CS_ORDER`].
pub const RACE_ORDER: &str = "Z_N_S_F_T_M_I_V_C_H";

/// One reported racy access pair, with display names resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacePair {
    /// First access: `(context, statement name)`. For write/read pairs
    /// this is the write.
    pub access1: (u64, String),
    /// Second access: `(context, statement name)`.
    pub access2: (u64, String),
    /// Display name of the abstract object raced on.
    pub object: String,
    /// Display name of the field raced on.
    pub field: String,
    /// Whether both accesses are writes.
    pub write_write: bool,
}

/// Results of the race detector.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Deduplicated racy pairs, write/write races first, then by name.
    pub pairs: Vec<RacePair>,
    /// Raw (un-deduplicated) tuple count of the `race` relation.
    pub raw_tuples: u64,
}

/// The race detector's outputs: the solved escape engine (with the race
/// relations) plus the resolved report.
pub struct RaceAnalysis {
    /// The underlying thread-escape analysis; its engine additionally
    /// holds `write`, `access` and `race`.
    pub escape: ThreadEscape,
    /// The resolved, ranked report.
    pub report: RaceReport,
}

/// Allocation sites instantiated at most once: sites in methods whose
/// saturating execution count is exactly 1.
///
/// The count is a fixpoint over the call graph with values in
/// `{0, 1, 2 = many}`: entry methods start at 1, thread `run` methods at 2
/// (one creation site stands for arbitrarily many threads), and each call
/// edge adds the caller's count. Recursive cycles saturate to 2, so no
/// SCC machinery is needed.
pub fn singleton_sites(facts: &Facts, cg: &CallGraph, contexts: &ThreadContexts) -> Vec<u64> {
    let nm = facts.sizes.m as usize;
    let run_methods: Vec<u64> = contexts.sites.iter().map(|s| s.2).collect();
    let mut entry = vec![0u8; nm];
    for &m in &facts.entries {
        entry[m as usize] = 1;
    }
    for &m in &run_methods {
        entry[m as usize] = 2;
    }
    let mut count = vec![0u8; nm];
    loop {
        let mut changed = false;
        for m in 0..nm {
            let mut c = entry[m] as u32;
            for &(_, caller, callee) in &cg.edges {
                if callee as usize == m {
                    c += count[caller as usize] as u32;
                }
            }
            let c = c.min(2) as u8;
            if c != count[m] {
                count[m] = c;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    facts
        .mh
        .iter()
        .filter(|t| count[t[0] as usize] == 1)
        .map(|t| t[1])
        .collect()
}

/// Runs the race detector: Algorithm 7 extended with access, lock-set and
/// race rules, then resolves and ranks the reported pairs.
///
/// # Example
///
/// ```
/// use whale_core::{detect_races, CallGraph};
/// use whale_ir::{parse_program, Facts};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = parse_program(r#"
/// class Shared extends Object { field data: Object; }
/// class W extends Thread {
///   field shared: Shared;
///   method run() {
///     var s: Shared; var o: Object;
///     s = this.shared;
///     o = new Object;
///     s.data = o;
///   }
/// }
/// class Main extends Object {
///   entry static method main() {
///     var s: Shared; var w: W;
///     s = new Shared;
///     w = new W;
///     w.shared = s;
///     start w;
///   }
/// }
/// "#)?;
/// let facts = Facts::extract(&program);
/// let cg = CallGraph::from_cha(&facts)?;
/// let races = detect_races(&facts, &cg, None)?;
/// assert!(!races.report.pairs.is_empty(), "unsynchronized write races");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates Datalog/BDD errors.
pub fn detect_races(
    facts: &Facts,
    cg: &CallGraph,
    options: Option<EngineOptions>,
) -> Result<RaceAnalysis, DatalogError> {
    let relations = "\
input storeAt (stmt : S, base : V, field : F, source : V)
input loadAt (stmt : S, base : V, field : F, dest : V)
input guardedBy (stmt : S, lock : V)
input singleton (heap : H)
input stmtM (stmt : S, method : M)
input CM (c : C, method : M)
input threadObj (heap : H)
output write (c : C, stmt : S, ch : C, heap : H, field : F)
output access (c : C, stmt : S, ch : C, heap : H, field : F)
multiPT (c : C, var : V)
lockOn (c : C, stmt : S, cl : C, lock : H)
commonLock (c1 : C, s1 : S, c2 : C, s2 : S)
output race (c1 : C, s1 : S, c2 : C, s2 : S, heap : H, field : F)
";
    let g = global_object(facts);
    let rules = format!(
        "write(c,s,ch,h,f) :- storeAt(s,v,f,_), stmtM(s,m), CM(c,m), vPT(c,v,ch,h).
access(c,s,ch,h,f) :- write(c,s,ch,h,f).
access(c,s,ch,h,f) :- loadAt(s,v,f,_), stmtM(s,m), CM(c,m), vPT(c,v,ch,h).
multiPT(c,v) :- vPT(c,v,_,h1), vPT(c,v,_,h2), h1 != h2.
multiPT(c,v) :- vPT(c,v,c1,_), vPT(c,v,c2,_), c1 != c2.
lockOn(c,s,cl,l) :- guardedBy(s,v), vPT(c,v,cl,l), singleton(l), !multiPT(c,v).
commonLock(c1,s1,c2,s2) :- lockOn(c1,s1,cl,l), lockOn(c2,s2,cl,l).
race(c1,s1,c2,s2,h,f) :- write(c1,s1,ch,h,f), access(c2,s2,ch,h,f), escaped(ch,h), c1 != c2, h != {g}, !threadObj(h), !commonLock(c1,s1,c2,s2).
"
    );

    // Facts derived outside Datalog: statement-labeled accesses, lexical
    // guard regions, and the singleton sites for the lock-set check.
    let store_at: Vec<Vec<u64>> = facts.store_at.iter().map(|t| t.to_vec()).collect();
    let load_at: Vec<Vec<u64>> = facts.load_at.iter().map(|t| t.to_vec()).collect();
    let guarded_by: Vec<Vec<u64>> = facts.guarded.iter().map(|t| vec![t[1], t[2]]).collect();

    // `thread_contexts` is deterministic and cheap; recompute it here for
    // the singleton analysis (the solved engine gets its own copy).
    let contexts = crate::threads::thread_contexts(facts, cg);
    let singleton: Vec<Vec<u64>> = singleton_sites(facts, cg, &contexts)
        .into_iter()
        .map(|h| vec![h])
        .collect();

    let stmt_m: Vec<Vec<u64>> = facts.sm.iter().map(|t| t.to_vec()).collect();
    let cm: Vec<Vec<u64>> = contexts.cm.iter().map(|t| t.to_vec()).collect();
    let thread_obj: Vec<Vec<u64>> = facts.thread_allocs.iter().map(|&h| vec![h]).collect();

    let extra_facts: Vec<(&str, Vec<Vec<u64>>)> = vec![
        ("storeAt", store_at),
        ("loadAt", load_at),
        ("guardedBy", guarded_by),
        ("singleton", singleton),
        ("stmtM", stmt_m),
        ("CM", cm),
        ("threadObj", thread_obj),
    ];
    let mut escape = thread_escape_extended(
        facts,
        cg,
        &[format!("S {}", facts.sizes.s)],
        relations,
        &rules,
        &extra_facts,
        Some(options.unwrap_or(EngineOptions {
            seminaive: true,
            order: Some(RACE_ORDER.into()),
            fuse_renames: true,
            reorder: false,
            ..EngineOptions::default()
        })),
    )?;
    escape.engine.set_name_map("S", &facts.stmt_names)?;

    let report = build_report(facts, &escape)?;
    Ok(RaceAnalysis { escape, report })
}

/// Resolves, deduplicates and ranks the `race` tuples of a solved engine.
fn build_report(facts: &Facts, escape: &ThreadEscape) -> Result<RaceReport, DatalogError> {
    let e = &escape.engine;
    let is_write: std::collections::HashSet<u64> = facts.store_at.iter().map(|t| t[0]).collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    let tuples = e.relation_tuples("race")?;
    let raw_tuples = tuples.len() as u64;
    for t in tuples {
        let (c1, s1, c2, s2, h, f) = (t[0], t[1], t[2], t[3], t[4], t[5]);
        // Canonicalize the unordered pair so symmetric tuples collapse.
        let (a, b) = if (c1, s1) <= (c2, s2) {
            ((c1, s1), (c2, s2))
        } else {
            ((c2, s2), (c1, s1))
        };
        if !seen.insert((a, b, h, f)) {
            continue;
        }
        let stmt_name = |s: u64| e.name_of("S", s).unwrap_or("?").to_string();
        pairs.push(RacePair {
            access1: (a.0, stmt_name(a.1)),
            access2: (b.0, stmt_name(b.1)),
            object: e.name_of("H", h).unwrap_or("?").to_string(),
            field: e.name_of("F", f).unwrap_or("?").to_string(),
            write_write: is_write.contains(&a.1) && is_write.contains(&b.1),
        });
    }
    pairs.sort_by(|x, y| {
        y.write_write
            .cmp(&x.write_write)
            .then_with(|| x.object.cmp(&y.object))
            .then_with(|| x.field.cmp(&y.field))
            .then_with(|| x.access1.cmp(&y.access1))
            .then_with(|| x.access2.cmp(&y.access2))
    });
    Ok(RaceReport { pairs, raw_tuples })
}
