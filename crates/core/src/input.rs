//! Shared plumbing: domain declarations and fact loading for the analysis
//! Datalog programs.

use whale_datalog::{DatalogError, Engine};
use whale_ir::Facts;

/// Renders the common `DOMAINS` section from extracted fact sizes.
///
/// `extra` lines (e.g. a context domain `C <size>`) are appended verbatim.
pub(crate) fn domains_section(facts: &Facts, extra: &[String]) -> String {
    let s = &facts.sizes;
    let mut out = String::from("DOMAINS\n");
    out.push_str(&format!("V {}\n", s.v));
    out.push_str(&format!("H {}\n", s.h + 1)); // +1: synthetic global object
    out.push_str(&format!("F {}\n", s.f));
    out.push_str(&format!("T {}\n", s.t));
    out.push_str(&format!("I {}\n", s.i));
    out.push_str(&format!("M {}\n", s.m));
    out.push_str(&format!("N {}\n", s.n));
    out.push_str(&format!("Z {}\n", s.z));
    for line in extra {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The id of the synthetic global heap object (see [`domains_section`]).
pub(crate) fn global_object(facts: &Facts) -> u64 {
    facts.sizes.h
}

/// Standard `RELATIONS` declarations for the base input relations.
pub(crate) const BASE_RELATIONS: &str = "\
input vP0 (variable : V, heap : H)
input store (base : V, field : F, source : V)
input load (base : V, field : F, dest : V)
input assign0 (dest : V, source : V)
input vT (variable : V, type : T)
input hT (heap : H, type : T)
input aT (supertype : T, subtype : T)
input cha (type : T, name : N, target : M)
input actual (invoke : I, param : Z, var : V)
input formal (method : M, param : Z, var : V)
input IE0 (invoke : I, target : M)
input mI (method : M, invoke : I, name : N)
input Mret (method : M, var : V)
input Mthr (method : M, var : V)
input Iret (invoke : I, var : V)
input mCls (method : M, type : T)
input mV (method : M, var : V)
input mH (method : M, heap : H)
input syncs (var : V)
";

/// Loads every base input relation and name map into an engine.
pub(crate) fn load_base_facts(engine: &mut Engine, facts: &Facts) -> Result<(), DatalogError> {
    engine.add_facts("vP0", &facts.vp0)?;
    engine.add_facts("store", &facts.store)?;
    engine.add_facts("load", &facts.load)?;
    engine.add_facts("assign0", &facts.assign)?;
    engine.add_facts("vT", &facts.vt)?;
    engine.add_facts("hT", &facts.ht)?;
    engine.add_facts("aT", &facts.at)?;
    engine.add_facts("cha", &facts.cha)?;
    engine.add_facts("actual", &facts.actual)?;
    engine.add_facts("formal", &facts.formal)?;
    engine.add_facts("IE0", &facts.ie0)?;
    engine.add_facts("mI", &facts.mi)?;
    engine.add_facts("Mret", &facts.mret)?;
    engine.add_facts("Mthr", &facts.mthr)?;
    engine.add_facts("Iret", &facts.iret)?;
    engine.add_facts("mCls", &facts.mcls)?;
    engine.add_facts("mV", &facts.mv)?;
    engine.add_facts("mH", &facts.mh)?;
    engine.add_facts("syncs", &facts.syncs)?;
    // The synthetic global object is typed as java.lang.Object (type 0).
    engine.add_fact("hT", &[global_object(facts), 0])?;
    set_name_maps(engine, facts)?;
    Ok(())
}

/// Registers the element-name maps so queries can use quoted constants and
/// results print readably.
pub(crate) fn set_name_maps(engine: &mut Engine, facts: &Facts) -> Result<(), DatalogError> {
    engine.set_name_map("V", &facts.var_names)?;
    let mut heap_names = facts.heap_names.clone();
    heap_names.push("<global>".to_string());
    engine.set_name_map("H", &heap_names)?;
    engine.set_name_map("F", &facts.field_names)?;
    engine.set_name_map("T", &facts.type_names)?;
    engine.set_name_map("M", &facts.method_names)?;
    engine.set_name_map("N", &facts.simple_names)?;
    Ok(())
}

/// The call-graph construction rules shared by every analysis.
///
/// `cha_based == true` resolves receivers by their declared types (the
/// precomputed CHA call graph the paper assumes for Algorithms 1, 2 and 5);
/// `false` resolves by points-to results (Algorithm 3, discovered on the
/// fly).
pub(crate) fn callgraph_rules(cha_based: bool) -> String {
    let mut s = String::new();
    s.push_str("IE(i,m) :- IE0(i,m).\n");
    if cha_based {
        s.push_str("IE(i,m) :- mI(_,i,n), actual(i,0,v), vT(v,tv), aT(tv,t), cha(t,n,m).\n");
    } else {
        s.push_str("IE(i,m) :- mI(_,i,n), actual(i,0,v), vP(v,h), hT(h,t), cha(t,n,m).\n");
    }
    s.push_str("assign(v1,v2) :- IE(i,m), formal(m,z,v1), actual(i,z,v2).\n");
    s.push_str("assign(v1,v2) :- IE(i,m), Iret(i,v1), Mret(m,v2).\n");
    // Exceptions escape callees into their callers' exception variables.
    s.push_str("assign(v1,v2) :- mI(m1,i,_), IE(i,m2), Mthr(m1,v1), Mthr(m2,v2).\n");
    s.push_str("assign(v1,v2) :- assign0(v1,v2).\n");
    s
}
