//! Shared harness utilities for the table and micro-benchmark binaries.

use std::time::{Duration, Instant};
use whale_core::{context_insensitive, CallGraph, CallGraphMode, ContextNumbering};
use whale_ir::synth::{self, SynthConfig};
use whale_ir::{Facts, Program};

/// A generated benchmark with everything the analyses need.
pub struct Prepared {
    /// The generator config (scaled).
    pub config: SynthConfig,
    /// The generated program.
    pub program: Program,
    /// Extracted facts.
    pub facts: Facts,
}

/// A prepared benchmark plus its discovered call graph and numbering.
pub struct PreparedCs {
    /// The base preparation.
    pub base: Prepared,
    /// Call graph from the on-the-fly analysis (Algorithm 3), as the paper
    /// uses for the context-sensitive runs.
    pub cg: CallGraph,
    /// Algorithm 4 numbering.
    pub numbering: ContextNumbering,
    /// Time spent discovering the call graph.
    pub discovery_time: Duration,
    /// Fixpoint rounds of the discovery run (the paper's "iterations").
    pub discovery_rounds: usize,
}

/// Parses a `--scale N/D` style argument list: `[filter] [num den]`.
pub fn parse_args() -> (Option<String>, usize, usize) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filter = None;
    let mut nums: Vec<usize> = Vec::new();
    for a in &args {
        if let Ok(n) = a.parse::<usize>() {
            nums.push(n);
        } else {
            filter = Some(a.clone());
        }
    }
    let num = nums.first().copied().unwrap_or(1);
    let den = nums.get(1).copied().unwrap_or(8);
    (filter, num, den)
}

/// The calibrated benchmark set, scaled and optionally filtered by name.
pub fn benchmarks(filter: Option<&str>, num: usize, den: usize) -> Vec<SynthConfig> {
    synth::benchmarks()
        .into_iter()
        .filter(|c| filter.map(|f| c.name.contains(f)).unwrap_or(true))
        .map(|c| c.scaled(num, den))
        .collect()
}

/// Generates a benchmark and extracts facts.
pub fn prepare(config: &SynthConfig) -> Prepared {
    let program = synth::generate(config);
    let facts = Facts::extract(&program);
    Prepared {
        config: config.clone(),
        program,
        facts,
    }
}

/// Prepares a benchmark and discovers its call graph (Algorithm 3).
pub fn prepare_cs(config: &SynthConfig) -> PreparedCs {
    let base = prepare(config);
    let t0 = Instant::now();
    let otf = context_insensitive(&base.facts, true, CallGraphMode::OnTheFly, None)
        .expect("on-the-fly analysis");
    let discovery_time = t0.elapsed();
    let cg = CallGraph::from_ie(&base.facts, &otf.engine).expect("call graph");
    let numbering = whale_core::number_contexts(&cg);
    PreparedCs {
        base,
        cg,
        numbering,
        discovery_time,
        discovery_rounds: otf.stats.rounds,
    }
}

/// Formats a context/path count like the paper: `4 x 10^14`.
pub fn paths_display(paths: u128) -> String {
    if paths < 100_000 {
        return paths.to_string();
    }
    let log = (paths as f64).log10();
    let exp = log.floor() as u32;
    let mantissa = (paths as f64) / 10f64.powi(exp as i32);
    format!("{mantissa:.0} x 10^{exp}")
}

/// Peak-node count rendered as megabytes using the kernel's actual node
/// size (the paper reports peak live BDD nodes at 20 bytes/node; ours is
/// [`whale_bdd::NODE_BYTES`]).
pub fn peak_mb(peak_nodes: usize) -> f64 {
    (peak_nodes * whale_bdd::NODE_BYTES) as f64 / (1024.0 * 1024.0)
}

/// Runs `f`, returning its result and the elapsed wall time in seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
