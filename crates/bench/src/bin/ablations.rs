//! Ablation benchmarks for the design choices the paper calls out:
//!
//! - **Incrementalization** (Section 2.4.1): semi-naive vs naive fixpoint.
//! - **Type filtering** (Section 2.3): the paper observes filtering makes
//!   the analysis *faster* as well as more precise.
//! - **Variable ordering** (Section 2.4.2): sensitivity to the ordering
//!   string.
//! - **Hand-coded vs generated** (Section 6.4): the raw-BDD hand
//!   implementation against the Datalog engine.
//!
//! JSON-lines output via `whale_testkit::bench`.

use whale_bench::benchmarks;
use whale_core::handcoded::context_insensitive_handcoded;
use whale_core::{context_insensitive, CallGraphMode};
use whale_datalog::EngineOptions;
use whale_ir::{synth, Facts};
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    let config = benchmarks(Some("freetts"), 1, 12).remove(0);
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);

    // Incrementalization (the paper's semi-naive evaluation).
    for seminaive in [true, false] {
        let label = if seminaive { "seminaive" } else { "naive" };
        bench.bench(&format!("ablation/fixpoint/{label}"), || {
            context_insensitive(
                &facts,
                true,
                CallGraphMode::Cha,
                Some(EngineOptions {
                    seminaive,
                    order: None,
                    fuse_renames: true,
                    reorder: false,
                    ..EngineOptions::default()
                }),
            )
            .unwrap()
        });
    }

    // Type filtering: untyped vs typed (Algorithm 1 vs 2).
    for typed in [false, true] {
        let label = if typed { "typed" } else { "untyped" };
        bench.bench(&format!("ablation/filter/{label}"), || {
            context_insensitive(&facts, typed, CallGraphMode::Cha, None).unwrap()
        });
    }

    // Variable ordering sensitivity.
    for order in ["Z_N_F_T_M_I_V_H", "H_V_I_M_T_F_N_Z", "V_H_Z_N_F_T_M_I"] {
        bench.bench(&format!("ablation/order/{order}"), || {
            context_insensitive(
                &facts,
                true,
                CallGraphMode::Cha,
                Some(EngineOptions {
                    seminaive: true,
                    order: Some(order.into()),
                    fuse_renames: true,
                    reorder: false,
                    ..EngineOptions::default()
                }),
            )
            .unwrap()
        });
    }

    // Hand-coded vs bddbddb-generated (Section 6.4).
    bench.bench("ablation/engine/bddbddb_generated", || {
        context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap()
    });
    bench.bench("ablation/engine/hand_coded", || {
        context_insensitive_handcoded(&facts).unwrap()
    });
}
