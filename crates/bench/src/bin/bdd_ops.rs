//! Microbenchmarks of the BDD kernel: the apply family, the relational
//! product, renames, and the paper's O(bits) range/adder constructions.
//!
//! Emits one JSON line per benchmark (see `whale_testkit::bench`).
//! Iteration counts: `TESTKIT_BENCH_ITERS` / `TESTKIT_BENCH_WARMUP`.

use whale_bdd::{Bdd, BddManager, DomainSpec, OrderSpec};
use whale_testkit::Bench;

fn setup() -> (BddManager, Bdd, Bdd) {
    let mgr = BddManager::with_domains(
        &[
            DomainSpec::new("A", 1 << 16),
            DomainSpec::new("B", 1 << 16),
            DomainSpec::new("C", 1 << 16),
        ],
        &OrderSpec::parse("AxBxC").unwrap(),
    )
    .unwrap();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    // Two structured relations with partial overlap.
    let r1 = mgr
        .domain_range(a, 1000, 40000)
        .and(&mgr.domain_add_const(a, b, 17));
    let r2 = mgr
        .domain_range(a, 20000, 60000)
        .and(&mgr.domain_add_const(a, b, 4099));
    (mgr, r1, r2)
}

fn main() {
    let bench = Bench::from_env(3, 20);
    let (mgr, r1, r2) = setup();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    let cc = mgr.domain("C").unwrap();

    bench.bench("bdd/and", || r1.and(&r2));
    bench.bench("bdd/or", || r1.or(&r2));
    bench.bench("bdd/diff", || r1.diff(&r2));
    bench.bench("bdd/relprod", || r1.relprod_domains(&r2, &[a]));
    bench.bench("bdd/replace", || r1.replace(&[(b, cc)]));
    {
        let mgr = BddManager::with_domains(
            &[DomainSpec::new("X", 1 << 62)],
            &OrderSpec::parse("X").unwrap(),
        )
        .unwrap();
        let x = mgr.domain("X").unwrap();
        bench.bench("bdd/range_62bit", || {
            mgr.domain_range(x, 123_456_789, 1 << 55)
        });
    }
    {
        let mgr = BddManager::with_domains(
            &[DomainSpec::new("X", 1 << 62), DomainSpec::new("Y", 1 << 62)],
            &OrderSpec::parse("XxY").unwrap(),
        )
        .unwrap();
        let x = mgr.domain("X").unwrap();
        let y = mgr.domain("Y").unwrap();
        bench.bench("bdd/adder_62bit", || {
            mgr.domain_add_const(x, y, 0x1234_5678_9abc)
        });
    }
    bench.bench("bdd/satcount", || r1.satcount());
}
