//! Microbenchmarks of the BDD kernel: the apply family, the relational
//! product, renames, and the paper's O(bits) range/adder constructions.
//!
//! Emits one JSON line per benchmark (see `whale_testkit::bench`).
//! Iteration counts: `TESTKIT_BENCH_ITERS` / `TESTKIT_BENCH_WARMUP`.

use whale_bdd::{Bdd, BddManager, DomainSpec, OrderSpec};
use whale_testkit::Bench;

fn setup() -> (BddManager, Bdd, Bdd) {
    let mgr = BddManager::with_domains(
        &[
            DomainSpec::new("A", 1 << 16),
            DomainSpec::new("B", 1 << 16),
            DomainSpec::new("C", 1 << 16),
        ],
        &OrderSpec::parse("AxBxC").unwrap(),
    )
    .unwrap();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    // Two structured relations with partial overlap: unions of shifted
    // adders, i.e. sparse many-to-many edge relations like the points-to
    // and assignment relations of the analyses (thousands of BDD nodes,
    // far from both the dense and the singleton extremes).
    let edges = |base: u64, lo: u64, hi: u64| {
        let mut r = mgr.zero();
        for k in 0..64u64 {
            r = r.or(&mgr.domain_add_const(a, b, base + k * 977));
        }
        r.and(&mgr.domain_range(a, lo, hi))
    };
    let r1 = edges(17, 1000, 60000);
    let r2 = edges(4099, 20000, 60000);
    (mgr, r1, r2)
}

fn main() {
    let bench = Bench::from_env(3, 20);
    let (mgr, r1, r2) = setup();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    let cc = mgr.domain("C").unwrap();

    bench.bench("bdd/and", || r1.and(&r2));
    bench.bench("bdd/or", || r1.or(&r2));
    bench.bench("bdd/diff", || r1.diff(&r2));
    bench.bench("bdd/relprod", || r1.relprod_domains(&r2, &[a]));
    bench.bench("bdd/replace", || r1.replace(&[(b, cc)]));
    // Fused vs. composed rename+join on the semi-naive hot-path shape: a
    // large relation renamed and joined against a delta narrowed on the
    // join variable, so the composed variant materializes a full renamed
    // BDD the join then mostly discards. The A→B, B→C shift is monotone
    // under the AxBxC interleave, so the fused call takes the single-pass
    // kernel. Op caches are cleared (O(1) generation bump) each iteration
    // so both variants measure real traversals, not warm cache hits.
    let pairs = [(a, b), (b, cc)];
    let delta = r2.and(&mgr.domain_range(b, 24000, 24100));
    // Pre-grow the unique table so neither variant pays first-run growth.
    {
        let _ = r1.replace(&pairs).relprod_domains(&delta, &[b]);
    }
    bench.bench("bdd/replace_relprod_composed", || {
        mgr.clear_op_caches();
        r1.replace(&pairs).relprod_domains(&delta, &[b])
    });
    bench.bench("bdd/replace_relprod_fused", || {
        mgr.clear_op_caches();
        r1.fused_replace_relprod_domains(&delta, &pairs, &[b])
            .expect("monotone shift must take the fused kernel")
    });
    {
        let mgr = BddManager::with_domains(
            &[DomainSpec::new("X", 1 << 62)],
            &OrderSpec::parse("X").unwrap(),
        )
        .unwrap();
        let x = mgr.domain("X").unwrap();
        bench.bench("bdd/range_62bit", || {
            mgr.domain_range(x, 123_456_789, 1 << 55)
        });
    }
    {
        let mgr = BddManager::with_domains(
            &[DomainSpec::new("X", 1 << 62), DomainSpec::new("Y", 1 << 62)],
            &OrderSpec::parse("XxY").unwrap(),
        )
        .unwrap();
        let x = mgr.domain("X").unwrap();
        let y = mgr.domain("Y").unwrap();
        bench.bench("bdd/adder_62bit", || {
            mgr.domain_add_const(x, y, 0x1234_5678_9abc)
        });
    }
    bench.bench("bdd/satcount", || r1.satcount());

    // One JSON line of cumulative op-cache counters for the trajectory
    // files, in the same style as the bench lines.
    let s = mgr.stats();
    let cache = |c: whale_bdd::CacheStats| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.4}}}",
            c.hits,
            c.misses,
            c.evictions,
            c.hit_rate()
        )
    };
    println!(
        "{{\"bench\":\"bdd/cache_stats\",\"apply\":{},\"ite\":{},\"appex\":{},\"replace\":{}}}",
        cache(s.apply_cache),
        cache(s.ite_cache),
        cache(s.appex_cache),
        cache(s.replace_cache),
    );
}
