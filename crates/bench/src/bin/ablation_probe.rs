//! One-shot ablation probe at configurable scale: semi-naive vs naive
//! fixpoint, and generated vs hand-coded engines.

use std::time::Instant;
use whale_core::handcoded::context_insensitive_handcoded;
use whale_core::{context_insensitive, CallGraphMode};
use whale_datalog::EngineOptions;
use whale_ir::{synth, Facts};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("freetts");
    let den: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let config = synth::benchmarks()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap()
        .scaled(1, den);
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    println!("{name} 1/{den}: methods={}", program.methods.len());
    for seminaive in [true, false] {
        let t = Instant::now();
        let a = context_insensitive(
            &facts,
            true,
            CallGraphMode::Cha,
            Some(EngineOptions {
                seminaive,
                order: None,
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            }),
        )
        .unwrap();
        println!(
            "{}: {:?} ({} rounds, {} rule applications)",
            if seminaive { "seminaive" } else { "naive" },
            t.elapsed(),
            a.stats.rounds,
            a.stats.rule_applications
        );
    }
    let t = Instant::now();
    let hc = context_insensitive_handcoded(&facts).unwrap();
    println!(
        "hand-coded: {:?} ({} iterations, vP={})",
        t.elapsed(),
        hc.iterations,
        hc.vp_count()
    );
}
