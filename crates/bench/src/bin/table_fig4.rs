//! Regenerates Figure 4 of the paper: analysis times (seconds) and peak
//! BDD memory (MB) for each benchmark and algorithm:
//!
//! - CI: context-insensitive, no type filtering (Algorithm 1)
//! - CI+T: context-insensitive with type filtering (Algorithm 2)
//! - OTF: with call-graph discovery (Algorithm 3), plus iteration count
//! - CS: context-sensitive pointer analysis (Algorithm 5)
//! - CS-T: context-sensitive type analysis (Algorithm 6)
//! - THR: thread-sensitive pointer analysis (Algorithm 7)
//!
//! Usage: `cargo run --release -p whale-bench --bin table_fig4 [filter] [num den]`

use whale_bench::{benchmarks, parse_args, peak_mb, prepare_cs, timed};
use whale_core::{
    context_insensitive, context_sensitive, cs_type_analysis, thread_escape, CallGraphMode,
};

fn main() {
    let (filter, num, den) = parse_args();
    println!("Figure 4 (scale {num}/{den}): analysis time (s) / peak BDD memory (MB)");
    println!(
        "{:<12} {:>13} {:>13} {:>17} {:>14} {:>13} {:>13}",
        "Name", "CI", "CI+T", "OTF(iters)", "CS", "CS-T", "THR"
    );
    for config in benchmarks(filter.as_deref(), num, den) {
        let p = prepare_cs(&config);
        let facts = &p.base.facts;

        let (a1, t1) =
            timed(|| context_insensitive(facts, false, CallGraphMode::Cha, None).expect("alg1"));
        let (a2, t2) =
            timed(|| context_insensitive(facts, true, CallGraphMode::Cha, None).expect("alg2"));
        let (a3, t3) = timed(|| {
            context_insensitive(facts, true, CallGraphMode::OnTheFly, None).expect("alg3")
        });
        let (a5, t5) = timed(|| context_sensitive(facts, &p.cg, &p.numbering, None).expect("alg5"));
        let (a6, t6) = timed(|| cs_type_analysis(facts, &p.cg, &p.numbering, None).expect("alg6"));
        let (a7, t7) = timed(|| thread_escape(facts, &p.cg, None).expect("alg7"));

        println!(
            "{:<12} {:>6.1}/{:<6.0} {:>6.1}/{:<6.0} {:>7.1}/{:<4.0}({:>3}) {:>7.1}/{:<6.0} {:>6.1}/{:<6.0} {:>6.1}/{:<6.0}",
            config.name,
            t1,
            peak_mb(a1.stats.peak_live_nodes),
            t2,
            peak_mb(a2.stats.peak_live_nodes),
            t3,
            peak_mb(a3.stats.peak_live_nodes),
            a3.stats.rounds,
            t5,
            peak_mb(a5.stats.peak_live_nodes),
            t6,
            peak_mb(a6.stats.peak_live_nodes),
            t7,
            peak_mb(a7.stats.peak_live_nodes),
        );
    }
}
