//! Profiling probe for the static race detector.
//!
//! Generates a synthetic workload with `races` injected victim/twin
//! pairs, runs `detect_races` and emits one JSON line with the seeded
//! and reported counts, the solve time, and the solver's effort
//! counters. Defaults to the tiny config so the CI smoke run stays
//! fast; pass a Figure 3 benchmark name and a scale denominator for
//! real workloads: `race_probe nfcchat 16 4`.

use std::time::Instant;
use whale_core::{detect_races, CallGraph};
use whale_ir::synth::{self, SynthConfig};
use whale_ir::Facts;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("tiny");
    let den: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let races: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    let mut config = if name == "tiny" {
        SynthConfig::tiny("tiny", 0x5eed)
    } else {
        synth::benchmarks()
            .into_iter()
            .find(|c| c.name == name)
            .expect("unknown benchmark name")
            .scaled(1, den)
    };
    config.races = races;

    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let t = Instant::now();
    let analysis = detect_races(&facts, &cg, None).unwrap();
    let secs = t.elapsed().as_secs_f64();
    let stats = &analysis.escape.stats;
    println!(
        "{{\"bench\":\"race/{name}\",\"seeded\":{races},\"pairs\":{},\"raw_tuples\":{},\
         \"solve_secs\":{secs:.4},\"rounds\":{},\"rule_applications\":{},\"peak_live_nodes\":{}}}",
        analysis.report.pairs.len(),
        analysis.report.raw_tuples,
        stats.rounds,
        stats.rule_applications,
        stats.peak_live_nodes,
    );
}
