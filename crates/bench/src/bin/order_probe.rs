//! Probes variable orderings for the context-insensitive analysis.

use std::time::Instant;
use whale_core::{context_insensitive, CallGraphMode};
use whale_datalog::EngineOptions;
use whale_ir::{synth, Facts};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let den: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let config = synth::benchmarks()[0].scaled(1, den);
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    println!(
        "freetts 1/{den}: methods={} vars={}",
        program.methods.len(),
        facts.sizes.v
    );
    let orders = [
        "Z_N_F_T_M_I_V_H",
        "Z_N_F_T_M_I_VxH",
        "Z_N_F_T_M_I_H_V",
        "F_Z_N_T_I_M_V_H",
        "V_H_Z_N_F_T_M_I",
        "Z_N_T_M_I_V_F_H",
        "N_F_I_M_T_Z_V_H",
    ];
    for order in orders {
        let t = Instant::now();
        let a = context_insensitive(
            &facts,
            true,
            CallGraphMode::Cha,
            Some(EngineOptions {
                seminaive: true,
                order: Some(order.into()),
                fuse_renames: true,
                reorder: false,
                ..EngineOptions::default()
            }),
        )
        .unwrap();
        println!(
            "{order:>20}: {:>8.2?} vP={} rounds={} apps={} peak={}",
            t.elapsed(),
            a.count("vP").unwrap(),
            a.stats.rounds,
            a.stats.rule_applications,
            a.stats.peak_live_nodes
        );
    }
}
