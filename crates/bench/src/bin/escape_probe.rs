//! Profiling probe for the thread-escape analysis.

use std::time::Instant;
use whale_bench::prepare_cs;
use whale_core::thread_escape;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("pmd");
    let den: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let config = whale_ir::synth::benchmarks()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap()
        .scaled(1, den);
    let p = prepare_cs(&config);
    println!(
        "{name} 1/{den}: methods={} otf={:?}",
        p.base.program.methods.len(),
        p.discovery_time
    );
    let t = Instant::now();
    let esc = thread_escape(&p.base.facts, &p.cg, None).unwrap();
    println!(
        "escape: {:?} rounds={} peak={}",
        t.elapsed(),
        esc.stats.rounds,
        esc.stats.peak_live_nodes
    );
}
