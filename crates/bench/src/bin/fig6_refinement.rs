//! Figure 6 as a micro-benchmark: the type-refinement query under all
//! six analysis variants on one benchmark. JSON-lines output.

use whale_bench::{benchmarks, prepare_cs};
use whale_core::queries::{type_refinement, RefineVariant};
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    let config = benchmarks(Some("freetts"), 1, 12).remove(0);
    let p = prepare_cs(&config);
    for variant in RefineVariant::all() {
        bench.bench(&format!("fig6_refinement/{variant:?}"), || {
            if variant.context_sensitive() {
                type_refinement(&p.base.facts, Some(&p.cg), Some(&p.numbering), variant)
            } else {
                type_refinement(&p.base.facts, None, None, variant)
            }
            .unwrap()
        });
    }
}
