//! Profiling probe for the two-level op-cache policy.
//!
//! Runs the context-sensitive scaling workload at one layer depth twice —
//! once with the pressure-adaptive kernel caches and the relation-level
//! memo cache enabled (the default engine configuration) and once with
//! both disabled (the legacy table-proportional policy) — and emits one
//! JSON line per configuration with the solve time, the per-solve cache
//! counters and the current cache footprint. The paired records are the
//! before/after evidence for DESIGN.md §5g and EXPERIMENTS.md.
//!
//! ```console
//! cache_probe [LAYERS] [--check-floor RATE]
//! ```
//!
//! `--check-floor RATE` exits nonzero when the enabled configuration's
//! appex hit rate falls below `RATE` — the CI regression gate for the
//! committed hit-rate floor.

use std::process::ExitCode;
use std::time::Instant;
use whale_core::{context_sensitive, number_contexts, CallGraph, CS_ORDER};
use whale_datalog::EngineOptions;
use whale_ir::synth::SynthConfig;
use whale_ir::Facts;

fn main() -> ExitCode {
    let mut layers: usize = 9;
    let mut floor: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-floor" => {
                let v = args.next().expect("--check-floor needs a rate");
                floor = Some(v.parse().expect("floor must be a number"));
            }
            other => layers = other.parse().expect("layers must be an integer"),
        }
    }

    let config = SynthConfig {
        name: format!("cacheprobe{layers}"),
        seed: 0xdead,
        layers,
        width: 24,
        fan_in: 3,
        classes: 18,
        dispatch_fanout: 2,
        virtual_pct: 50,
        recursion_pct: 10,
        allocs_per_method: 2,
        field_ops_per_method: 2,
        threads: 0,
        shared_pct: 0,
        parallel_sites: 1,
        races: 0,
        taint: 0,
    };
    let program = whale_ir::synth::generate(&config);
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);

    let mut gated_rate = 1.0f64;
    for enabled in [true, false] {
        let opts = EngineOptions {
            seminaive: true,
            order: Some(CS_ORDER.into()),
            adaptive_caches: enabled,
            rel_cache: enabled,
            ..EngineOptions::default()
        };
        let t = Instant::now();
        let a = context_sensitive(&facts, &cg, &numbering, Some(opts)).unwrap();
        let secs = t.elapsed().as_secs_f64();
        let st = &a.stats;
        let bs = a.engine.manager().stats();
        let cache = |c: &whale_bdd::CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.4}}}",
                c.hits,
                c.misses,
                c.evictions,
                c.hit_rate()
            )
        };
        println!(
            "{{\"bench\":\"cache_probe/layers{layers}_{}\",\"solve_secs\":{secs:.4},\
             \"cache_bytes\":{},\"apply\":{},\"ite\":{},\"appex\":{},\"replace\":{},\"rel\":{}}}",
            if enabled { "adaptive" } else { "legacy" },
            bs.cache_bytes,
            cache(&st.apply_cache),
            cache(&st.ite_cache),
            cache(&st.appex_cache),
            cache(&st.replace_cache),
            cache(&st.rel_cache),
        );
        if enabled {
            gated_rate = st.appex_cache.hit_rate();
        }
    }

    if let Some(f) = floor {
        if gated_rate < f {
            eprintln!("cache_probe: appex hit rate {gated_rate:.4} below committed floor {f:.4}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
