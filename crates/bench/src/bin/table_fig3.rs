//! Regenerates Figure 3 of the paper: benchmark vitals — classes, methods,
//! statements (the bytecodes analogue), variables, allocation sites and
//! context-sensitive (reduced call) paths.
//!
//! Usage: `cargo run --release -p whale-bench --bin table_fig3 [filter] [num den]`
//! Scale defaults to 1/8 of the calibrated configs.

use whale_bench::{benchmarks, parse_args, paths_display, prepare_cs};

fn main() {
    let (filter, num, den) = parse_args();
    println!("Figure 3 (scale {num}/{den}): benchmark vitals");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>7} {:>7}  {:>12}",
        "Name", "Classes", "Methods", "Stmts", "Vars", "Allocs", "C.S. Paths"
    );
    for config in benchmarks(filter.as_deref(), num, den) {
        let p = prepare_cs(&config);
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>7} {:>7}  {:>12}",
            config.name,
            p.base.program.classes.len(),
            p.base.program.methods.len(),
            p.base.program.statement_count(),
            p.base.facts.sizes.v,
            p.base.facts.sizes.h,
            paths_display(p.numbering.total_paths()),
        );
    }
}
