//! Profiling probe for the parallel solver.
//!
//! Solves the context-sensitive analysis on a synthetic workload with
//! `jobs = 1` and `jobs = 4`, asserts the two runs produce identical
//! output relations (tuple-set content hashes), and emits one JSON line
//! with both wall times, the speedup, the host's core count, the
//! critical path through the stratum DAG and the inter-manager node
//! traffic. On a single-core host the speedup is honestly ≤ 1 — the
//! `cores` field is what makes the record interpretable.
//!
//! ```console
//! par_probe [LAYERS]   # default 6
//! ```

use std::time::Instant;
use whale_core::{context_sensitive, default_options, number_contexts, CallGraph, CS_ORDER};
use whale_datalog::EngineOptions;
use whale_ir::synth::SynthConfig;
use whale_ir::Facts;

/// FNV-1a over every output relation's sorted tuples — a stable content
/// hash of the full solve result.
fn result_hash(analysis: &whale_core::Analysis) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    let names: Vec<String> = analysis
        .engine
        .program()
        .relations()
        .iter()
        .map(|r| r.name.clone())
        .collect();
    for name in names {
        let mut tuples = analysis.engine.relation_tuples(&name).unwrap();
        tuples.sort();
        eat(tuples.len() as u64);
        for t in tuples {
            for v in t {
                eat(v);
            }
        }
    }
    h
}

fn main() {
    let layers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let config = SynthConfig {
        name: format!("par{layers}"),
        seed: 0xdead,
        layers,
        width: 24,
        fan_in: 3,
        classes: 18,
        dispatch_fanout: 2,
        virtual_pct: 50,
        recursion_pct: 10,
        allocs_per_method: 2,
        field_ops_per_method: 2,
        threads: 0,
        shared_pct: 0,
        parallel_sites: 1,
        races: 0,
        taint: 0,
    };
    let program = whale_ir::synth::generate(&config);
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);

    let solve = |jobs: usize| {
        let opts = EngineOptions {
            jobs,
            ..default_options(CS_ORDER)
        };
        let t = Instant::now();
        let a = context_sensitive(&facts, &cg, &numbering, Some(opts)).unwrap();
        (t.elapsed().as_secs_f64(), a)
    };

    let (secs1, a1) = solve(1);
    let (secs4, a4) = solve(4);
    let (h1, h4) = (result_hash(&a1), result_hash(&a4));
    assert_eq!(h1, h4, "jobs=1 and jobs=4 diverged");

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let s4 = a4.stats.clone();
    println!(
        "{{\"bench\":\"par/layers{layers}\",\"cores\":{cores},\"jobs1_secs\":{secs1:.4},\
         \"jobs4_secs\":{secs4:.4},\"speedup\":{:.3},\"hash\":{h1},\
         \"critical_path_secs\":{:.4},\"strata\":{},\"transferred_nodes\":{}}}",
        secs1 / secs4,
        s4.critical_path_time.as_secs_f64(),
        s4.stratum_times.len(),
        s4.transferred_nodes,
    );
}
