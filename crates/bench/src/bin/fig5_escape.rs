//! Figure 5 as a micro-benchmark: the thread-escape analysis on a
//! single-threaded and a multithreaded benchmark. JSON-lines output.

use whale_bench::{benchmarks, prepare_cs};
use whale_core::thread_escape;
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    for name in ["freetts", "jetty"] {
        let config = benchmarks(Some(name), 1, 8).remove(0);
        let p = prepare_cs(&config);
        bench.bench(&format!("fig5_escape/{name}"), || {
            thread_escape(&p.base.facts, &p.cg, None).unwrap()
        });
    }
}
