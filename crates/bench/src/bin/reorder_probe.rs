//! Profiling probe for dynamic variable reordering.
//!
//! Emits two JSON lines:
//!
//! 1. `reorder/kernel` — a pairing function `∧ (x_i ↔ x_{n+i})` built under
//!    the deliberately bad split ordering (exponential), then sifted:
//!    before/after node counts, swap count and sift time. This is the
//!    direct measurement behind the acceptance claim that sifting rescues
//!    a bad ordering.
//! 2. `reorder/<bench>` — the context-insensitive analysis solved with
//!    between-rounds reordering enabled: solve time, reorder passes, time
//!    spent sifting and the net node delta.
//!
//! Defaults to the tiny config so the CI smoke run stays fast; pass a
//! Figure 3 benchmark name and a scale denominator for real workloads:
//! `reorder_probe javac 8`.

use std::time::Instant;
use whale_bdd::BddManager;
use whale_core::{context_insensitive, CallGraphMode, CI_ORDER};
use whale_datalog::EngineOptions;
use whale_ir::synth::{self, SynthConfig};
use whale_ir::Facts;

fn kernel_probe() {
    let n = 10u32;
    let m = BddManager::with_vars(2 * n);
    let mut f = m.one();
    for i in 0..n {
        let eq = m.ithvar(i).xor(&m.ithvar(n + i)).not();
        f = f.and(&eq);
    }
    m.gc();
    let t = Instant::now();
    let stats = m.reorder_sift();
    let secs = t.elapsed().as_secs_f64();
    println!(
        "{{\"bench\":\"reorder/kernel\",\"vars\":{},\"nodes_before\":{},\"nodes_after\":{},\
         \"swaps\":{},\"sift_secs\":{secs:.4}}}",
        2 * n,
        stats.nodes_before,
        stats.nodes_after,
        stats.swaps,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("tiny");
    let den: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let config = if name == "tiny" {
        SynthConfig::tiny("tiny", 0x5eed)
    } else {
        synth::benchmarks()
            .into_iter()
            .find(|c| c.name == name)
            .expect("unknown benchmark name")
            .scaled(1, den)
    };

    kernel_probe();

    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    let t = Instant::now();
    let analysis = context_insensitive(
        &facts,
        true,
        CallGraphMode::Cha,
        Some(EngineOptions {
            order: Some(CI_ORDER.into()),
            reorder: true,
            ..EngineOptions::default()
        }),
    )
    .unwrap();
    let secs = t.elapsed().as_secs_f64();
    let stats = &analysis.stats;
    println!(
        "{{\"bench\":\"reorder/{name}\",\"solve_secs\":{secs:.4},\"rounds\":{},\
         \"peak_live_nodes\":{},\"reorder_runs\":{},\"reorder_secs\":{:.4},\
         \"reorder_delta_nodes\":{}}}",
        stats.rounds,
        stats.peak_live_nodes,
        stats.reorder_runs,
        stats.reorder_time.as_secs_f64(),
        stats.reorder_delta_nodes,
    );
}
