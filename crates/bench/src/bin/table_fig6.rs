//! Regenerates Figure 6 of the paper: type-refinement precision under the
//! six analysis variants — percentage of multi-typed variables and of
//! refinable variables.
//!
//! Usage: `cargo run --release -p whale-bench --bin table_fig6 [filter] [num den]`

use whale_bench::{benchmarks, parse_args, prepare_cs};
use whale_core::queries::{type_refinement, RefineVariant};

fn main() {
    let (filter, num, den) = parse_args();
    println!("Figure 6 (scale {num}/{den}): type refinement, % multi-typed / % refinable");
    println!(
        "{:<12} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "Name", "CI no-filter", "CI filter", "proj CS ptr", "proj CS type", "CS pointer", "CS type"
    );
    for config in benchmarks(filter.as_deref(), num, den) {
        let p = prepare_cs(&config);
        let facts = &p.base.facts;
        let mut cells = Vec::new();
        for variant in RefineVariant::all() {
            let stats = if variant.context_sensitive() {
                type_refinement(facts, Some(&p.cg), Some(&p.numbering), variant)
            } else {
                type_refinement(facts, None, None, variant)
            }
            .expect("refinement");
            let (multi, refinable) = stats.percentages();
            cells.push(format!("{multi:>5.1}/{refinable:<5.1}"));
        }
        println!(
            "{:<12} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
            config.name, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
}
