//! Figure 4 as a micro-benchmark: analysis times per algorithm on the
//! two smallest calibrated benchmarks at reduced scale. The `table_fig4`
//! binary produces the full table; this bin tracks regressions as JSON
//! lines.

use whale_bench::{benchmarks, prepare_cs};
use whale_core::{
    context_insensitive, context_sensitive, cs_type_analysis, thread_escape, CallGraphMode,
};
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    for config in benchmarks(Some("freetts"), 1, 8)
        .into_iter()
        .chain(benchmarks(Some("nfcchat"), 1, 8))
    {
        let p = prepare_cs(&config);
        let facts = &p.base.facts;
        let name = &config.name;
        bench.bench(&format!("fig4/ci_untyped/{name}"), || {
            context_insensitive(facts, false, CallGraphMode::Cha, None).unwrap()
        });
        bench.bench(&format!("fig4/ci_typed/{name}"), || {
            context_insensitive(facts, true, CallGraphMode::Cha, None).unwrap()
        });
        bench.bench(&format!("fig4/otf/{name}"), || {
            context_insensitive(facts, true, CallGraphMode::OnTheFly, None).unwrap()
        });
        bench.bench(&format!("fig4/cs_pointer/{name}"), || {
            context_sensitive(facts, &p.cg, &p.numbering, None).unwrap()
        });
        bench.bench(&format!("fig4/cs_type/{name}"), || {
            cs_type_analysis(facts, &p.cg, &p.numbering, None).unwrap()
        });
        bench.bench(&format!("fig4/thread/{name}"), || {
            thread_escape(facts, &p.cg, None).unwrap()
        });
    }
}
