//! Pipeline smoke/perf check: runs every analysis on one benchmark config
//! at a chosen scale, printing wall time and peak BDD nodes.

use std::time::Instant;
use whale_core::{
    context_insensitive, context_sensitive, cs_type_analysis, number_contexts, thread_escape,
    CallGraph, CallGraphMode,
};
use whale_ir::{synth, Facts};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("freetts");
    let num: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let den: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let config = synth::benchmarks()
        .into_iter()
        .find(|c| c.name == name)
        .expect("known benchmark")
        .scaled(num, den);
    let t0 = Instant::now();
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    println!(
        "{name} x{num}/{den}: classes={} methods={} stmts={} vars={} allocs={} gen={:?}",
        program.classes.len(),
        program.methods.len(),
        program.statement_count(),
        facts.sizes.v,
        facts.sizes.h,
        t0.elapsed()
    );

    let t = Instant::now();
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    println!(
        "ci-cha: vP={} time={:?} peak={}",
        ci.count("vP").unwrap(),
        t.elapsed(),
        ci.stats.peak_live_nodes
    );

    let t = Instant::now();
    let otf = context_insensitive(&facts, true, CallGraphMode::OnTheFly, None).unwrap();
    println!(
        "ci-otf: vP={} IE={} rounds={} time={:?} peak={}",
        otf.count("vP").unwrap(),
        otf.count("IE").unwrap(),
        otf.stats.rounds,
        t.elapsed(),
        otf.stats.peak_live_nodes
    );

    let t = Instant::now();
    let cg = CallGraph::from_ie(&facts, &otf.engine).unwrap();
    let numbering = number_contexts(&cg);
    println!(
        "numbering: edges={} paths={:.3e} clamped={} time={:?}",
        cg.edges.len(),
        numbering.total_paths() as f64,
        numbering.clamped,
        t.elapsed()
    );

    let t = Instant::now();
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    println!(
        "cs: vPC={:.3e} time={:?} peak={}",
        cs.count("vPC").unwrap(),
        t.elapsed(),
        cs.stats.peak_live_nodes
    );

    let t = Instant::now();
    let ty = cs_type_analysis(&facts, &cg, &numbering, None).unwrap();
    println!(
        "cs-type: vTC={:.3e} time={:?} peak={}",
        ty.count("vTC").unwrap(),
        t.elapsed(),
        ty.stats.peak_live_nodes
    );

    let t = Instant::now();
    let esc = thread_escape(&facts, &cg, None).unwrap();
    let (cap, escd) = esc.object_counts().unwrap();
    let (unneeded, needed) = esc.sync_counts().unwrap();
    println!(
        "escape: captured={cap} escaped={escd} syncs(unneeded/needed)={unneeded}/{needed} time={:?} peak={}",
        t.elapsed(),
        esc.stats.peak_live_nodes
    );
}
