//! Regenerates Figure 5 of the paper: thread-escape analysis results —
//! captured and escaped heap objects (context/site pairs), unneeded and
//! needed synchronization operations.
//!
//! Usage: `cargo run --release -p whale-bench --bin table_fig5 [filter] [num den]`

use whale_bench::{benchmarks, parse_args, prepare_cs};
use whale_core::thread_escape;

fn main() {
    let (filter, num, den) = parse_args();
    println!("Figure 5 (scale {num}/{den}): escape analysis");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "Name", "captured", "escaped", "!needed", "needed"
    );
    for config in benchmarks(filter.as_deref(), num, den) {
        let p = prepare_cs(&config);
        let esc = thread_escape(&p.base.facts, &p.cg, None).expect("alg7");
        let (captured, escaped) = esc.object_counts().expect("counts");
        let (unneeded, needed) = esc.sync_counts().expect("sync counts");
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9}",
            config.name, captured, escaped, unneeded, needed
        );
    }
}
