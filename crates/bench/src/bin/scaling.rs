//! Section 6.2's scaling claim: context-sensitive analysis time grows
//! roughly with `lg² n` in the number of reduced call paths. This sweep
//! holds program size fixed and multiplies paths by deepening the call
//! graph. JSON-lines output.
//!
//! Each layer depth is solved twice — with the fused `replace_relprod`
//! kernel (the default) and with renames evaluated as a separate pass
//! (`fuse_renames: false`) — so the trajectory files record the
//! before/after delta of kernel fusion end to end.

use whale_core::{context_sensitive, default_options, number_contexts, CallGraph, CS_ORDER};
use whale_datalog::EngineOptions;
use whale_ir::synth::SynthConfig;
use whale_ir::Facts;
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    for layers in [6usize, 9, 12, 15] {
        let config = SynthConfig {
            name: format!("sweep{layers}"),
            seed: 0xdead,
            layers,
            width: 24,
            fan_in: 3,
            classes: 18,
            dispatch_fanout: 2,
            virtual_pct: 50,
            recursion_pct: 10,
            allocs_per_method: 2,
            field_ops_per_method: 2,
            threads: 0,
            shared_pct: 0,
            parallel_sites: 1,
            races: 0,
            taint: 0,
        };
        let program = whale_ir::synth::generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        let paths = numbering.total_paths();
        bench.bench(
            &format!("scaling_paths/layers{layers}_paths{paths}"),
            || context_sensitive(&facts, &cg, &numbering, None).unwrap(),
        );
        let unfused = EngineOptions {
            seminaive: true,
            order: Some(CS_ORDER.into()),
            fuse_renames: false,
            reorder: false,
            ..EngineOptions::default()
        };
        bench.bench(
            &format!("scaling_paths/layers{layers}_paths{paths}_unfused"),
            || context_sensitive(&facts, &cg, &numbering, Some(unfused.clone())).unwrap(),
        );
        // Op-cache counters of one fused solve, as a JSON line alongside
        // the timings — once under the default two-level cache policy
        // (pressure-adaptive kernel caches + relation-level memo) and once
        // under the legacy table-proportional policy, so the trajectory
        // files record the policy's before/after delta per layer depth.
        let cache = |c: whale_bdd::CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.4}}}",
                c.hits,
                c.misses,
                c.evictions,
                c.hit_rate()
            )
        };
        for (tag, adaptive) in [("cache_stats", true), ("cache_stats_legacy", false)] {
            let opts = EngineOptions {
                seminaive: true,
                order: Some(CS_ORDER.into()),
                adaptive_caches: adaptive,
                rel_cache: adaptive,
                ..EngineOptions::default()
            };
            let analysis = context_sensitive(&facts, &cg, &numbering, Some(opts)).unwrap();
            let s = analysis.engine.manager().stats();
            println!(
                "{{\"bench\":\"scaling_paths/layers{layers}_{tag}\",\"cache_bytes\":{},\"apply\":{},\"ite\":{},\"appex\":{},\"replace\":{},\"client\":{}}}",
                s.cache_bytes,
                cache(s.apply_cache),
                cache(s.ite_cache),
                cache(s.appex_cache),
                cache(s.replace_cache),
                cache(s.client_cache),
            );
        }
        // Speedup curve of the parallel solver: one timed solve per
        // worker count. The `cores` field keeps the records honest — on a
        // single-core host the wall-clock ratio measures scheduling and
        // transfer overhead, not parallelism; `critical_path_secs` is the
        // DAG-level speedup ceiling an unconstrained host could reach.
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let base = std::time::Instant::now();
        let a1 =
            context_sensitive(&facts, &cg, &numbering, Some(default_options(CS_ORDER))).unwrap();
        let jobs1_secs = base.elapsed().as_secs_f64();
        let seq_total: f64 = a1
            .stats
            .stratum_times
            .iter()
            .map(std::time::Duration::as_secs_f64)
            .sum();
        for jobs in [2usize, 4] {
            let opts = EngineOptions {
                jobs,
                ..default_options(CS_ORDER)
            };
            let t = std::time::Instant::now();
            let a = context_sensitive(&facts, &cg, &numbering, Some(opts)).unwrap();
            let secs = t.elapsed().as_secs_f64();
            println!(
                "{{\"bench\":\"scaling_paths/layers{layers}_jobs{jobs}\",\"cores\":{cores},\
                 \"jobs\":{jobs},\"secs\":{secs:.4},\"jobs1_secs\":{jobs1_secs:.4},\
                 \"speedup\":{:.3},\"critical_path_secs\":{:.4},\"seq_stratum_secs\":{seq_total:.4},\
                 \"transferred_nodes\":{}}}",
                jobs1_secs / secs,
                a.stats.critical_path_time.as_secs_f64(),
                a.stats.transferred_nodes,
            );
        }
    }
}
