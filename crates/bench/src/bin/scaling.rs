//! Section 6.2's scaling claim: context-sensitive analysis time grows
//! roughly with `lg² n` in the number of reduced call paths. This sweep
//! holds program size fixed and multiplies paths by deepening the call
//! graph. JSON-lines output.
//!
//! Each layer depth is solved twice — with the fused `replace_relprod`
//! kernel (the default) and with renames evaluated as a separate pass
//! (`fuse_renames: false`) — so the trajectory files record the
//! before/after delta of kernel fusion end to end.

use whale_core::{context_sensitive, number_contexts, CallGraph, CS_ORDER};
use whale_datalog::EngineOptions;
use whale_ir::synth::SynthConfig;
use whale_ir::Facts;
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    for layers in [6usize, 9, 12, 15] {
        let config = SynthConfig {
            name: format!("sweep{layers}"),
            seed: 0xdead,
            layers,
            width: 24,
            fan_in: 3,
            classes: 18,
            dispatch_fanout: 2,
            virtual_pct: 50,
            recursion_pct: 10,
            allocs_per_method: 2,
            field_ops_per_method: 2,
            threads: 0,
            shared_pct: 0,
            parallel_sites: 1,
            races: 0,
            taint: 0,
        };
        let program = whale_ir::synth::generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        let paths = numbering.total_paths();
        bench.bench(
            &format!("scaling_paths/layers{layers}_paths{paths}"),
            || context_sensitive(&facts, &cg, &numbering, None).unwrap(),
        );
        let unfused = EngineOptions {
            seminaive: true,
            order: Some(CS_ORDER.into()),
            fuse_renames: false,
            reorder: false,
            ..EngineOptions::default()
        };
        bench.bench(
            &format!("scaling_paths/layers{layers}_paths{paths}_unfused"),
            || context_sensitive(&facts, &cg, &numbering, Some(unfused.clone())).unwrap(),
        );
        // Op-cache counters of one fused solve, as a JSON line alongside
        // the timings — once under the default two-level cache policy
        // (pressure-adaptive kernel caches + relation-level memo) and once
        // under the legacy table-proportional policy, so the trajectory
        // files record the policy's before/after delta per layer depth.
        let cache = |c: whale_bdd::CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.4}}}",
                c.hits,
                c.misses,
                c.evictions,
                c.hit_rate()
            )
        };
        for (tag, adaptive) in [("cache_stats", true), ("cache_stats_legacy", false)] {
            let opts = EngineOptions {
                seminaive: true,
                order: Some(CS_ORDER.into()),
                adaptive_caches: adaptive,
                rel_cache: adaptive,
                ..EngineOptions::default()
            };
            let analysis = context_sensitive(&facts, &cg, &numbering, Some(opts)).unwrap();
            let s = analysis.engine.manager().stats();
            println!(
                "{{\"bench\":\"scaling_paths/layers{layers}_{tag}\",\"cache_bytes\":{},\"apply\":{},\"ite\":{},\"appex\":{},\"replace\":{},\"client\":{}}}",
                s.cache_bytes,
                cache(s.apply_cache),
                cache(s.ite_cache),
                cache(s.appex_cache),
                cache(s.replace_cache),
                cache(s.client_cache),
            );
        }
    }
}
