//! Section 6.2's scaling claim: context-sensitive analysis time grows
//! roughly with `lg² n` in the number of reduced call paths. This sweep
//! holds program size fixed and multiplies paths by deepening the call
//! graph. JSON-lines output.

use whale_core::{context_sensitive, number_contexts, CallGraph};
use whale_ir::synth::SynthConfig;
use whale_ir::Facts;
use whale_testkit::Bench;

fn main() {
    let bench = Bench::from_env(1, 10);
    for layers in [6usize, 9, 12, 15] {
        let config = SynthConfig {
            name: format!("sweep{layers}"),
            seed: 0xdead,
            layers,
            width: 24,
            fan_in: 3,
            classes: 18,
            dispatch_fanout: 2,
            virtual_pct: 50,
            recursion_pct: 10,
            allocs_per_method: 2,
            field_ops_per_method: 2,
            threads: 0,
            shared_pct: 0,
            parallel_sites: 1,
        };
        let program = whale_ir::synth::generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        let paths = numbering.total_paths();
        bench.bench(
            &format!("scaling_paths/layers{layers}_paths{paths}"),
            || context_sensitive(&facts, &cg, &numbering, None).unwrap(),
        );
    }
}
