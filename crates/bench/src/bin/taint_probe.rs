//! Profiling probe for the spec-driven taint engine.
//!
//! Generates a synthetic workload with `taint` injected source→sink
//! chains (each with a sanitized twin), runs `taint_analysis` against
//! the matching generated spec and emits one JSON line with the seeded
//! and reported counts, the witness-path lengths, the solve time, and
//! the solver's effort counters. Defaults to the tiny config so the CI
//! smoke run stays fast; pass a Figure 3 benchmark name and a scale
//! denominator for real workloads: `taint_probe nfcchat 16 4`.

use std::time::Instant;
use whale_core::{number_contexts, taint_analysis, CallGraph};
use whale_ir::synth::{self, SynthConfig};
use whale_ir::{Facts, TaintSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("tiny");
    let den: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let taint: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    let mut config = if name == "tiny" {
        SynthConfig::tiny("tiny", 0x5eed)
    } else {
        synth::benchmarks()
            .into_iter()
            .find(|c| c.name == name)
            .expect("unknown benchmark name")
            .scaled(1, den)
    };
    config.taint = taint;

    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let spec = TaintSpec::parse(&synth::injected_taint_spec(&config)).unwrap();
    let t = Instant::now();
    let result = taint_analysis(&facts, &cg, &numbering, &spec, None).unwrap();
    let secs = t.elapsed().as_secs_f64();
    let witness_steps: usize = result.findings.iter().map(|f| f.witness.len()).sum();
    let stats = &result.analysis.stats;
    println!(
        "{{\"bench\":\"taint/{name}\",\"seeded\":{taint},\"findings\":{},\"witness_steps\":{},\
         \"solve_secs\":{secs:.4},\"rounds\":{},\"rule_applications\":{},\"peak_live_nodes\":{}}}",
        result.findings.len(),
        witness_steps,
        stats.rounds,
        stats.rule_applications,
        stats.peak_live_nodes,
    );
}
