//! Figure 5 as a criterion benchmark: the thread-escape analysis on a
//! single-threaded and a multithreaded benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whale_bench::{benchmarks, prepare_cs};
use whale_core::thread_escape;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_escape");
    group.sample_size(10);
    for name in ["freetts", "jetty"] {
        let config = benchmarks(Some(name), 1, 8).remove(0);
        let p = prepare_cs(&config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| thread_escape(&p.base.facts, &p.cg, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
