//! Microbenchmarks of the BDD kernel: the apply family, the relational
//! product, renames, and the paper's O(bits) range/adder constructions.

use criterion::{criterion_group, criterion_main, Criterion};
use whale_bdd::{Bdd, BddManager, DomainSpec, OrderSpec};

fn setup() -> (BddManager, Bdd, Bdd) {
    let mgr = BddManager::with_domains(
        &[
            DomainSpec::new("A", 1 << 16),
            DomainSpec::new("B", 1 << 16),
            DomainSpec::new("C", 1 << 16),
        ],
        &OrderSpec::parse("AxBxC").unwrap(),
    )
    .unwrap();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    // Two structured relations with partial overlap.
    let r1 = mgr
        .domain_range(a, 1000, 40000)
        .and(&mgr.domain_add_const(a, b, 17));
    let r2 = mgr
        .domain_range(a, 20000, 60000)
        .and(&mgr.domain_add_const(a, b, 4099));
    (mgr, r1, r2)
}

fn bench_ops(c: &mut Criterion) {
    let (mgr, r1, r2) = setup();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    let cc = mgr.domain("C").unwrap();

    c.bench_function("bdd/and", |bench| bench.iter(|| r1.and(&r2)));
    c.bench_function("bdd/or", |bench| bench.iter(|| r1.or(&r2)));
    c.bench_function("bdd/diff", |bench| bench.iter(|| r1.diff(&r2)));
    c.bench_function("bdd/relprod", |bench| {
        bench.iter(|| r1.relprod_domains(&r2, &[a]))
    });
    c.bench_function("bdd/replace", |bench| bench.iter(|| r1.replace(&[(b, cc)])));
    c.bench_function("bdd/range_62bit", |bench| {
        let mgr = BddManager::with_domains(
            &[DomainSpec::new("X", 1 << 62)],
            &OrderSpec::parse("X").unwrap(),
        )
        .unwrap();
        let x = mgr.domain("X").unwrap();
        bench.iter(|| mgr.domain_range(x, 123_456_789, 1 << 55))
    });
    c.bench_function("bdd/adder_62bit", |bench| {
        let mgr = BddManager::with_domains(
            &[DomainSpec::new("X", 1 << 62), DomainSpec::new("Y", 1 << 62)],
            &OrderSpec::parse("XxY").unwrap(),
        )
        .unwrap();
        let x = mgr.domain("X").unwrap();
        let y = mgr.domain("Y").unwrap();
        bench.iter(|| mgr.domain_add_const(x, y, 0x1234_5678_9abc))
    });
    c.bench_function("bdd/satcount", |bench| bench.iter(|| r1.satcount()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops
}
criterion_main!(benches);
