//! Figure 4 as a criterion benchmark: analysis times per algorithm on the
//! two smallest calibrated benchmarks at reduced scale. The `table_fig4`
//! binary produces the full table; this bench tracks regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whale_bench::{benchmarks, prepare_cs};
use whale_core::{
    context_insensitive, context_sensitive, cs_type_analysis, thread_escape, CallGraphMode,
};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for config in benchmarks(Some("freetts"), 1, 8)
        .into_iter()
        .chain(benchmarks(Some("nfcchat"), 1, 8))
    {
        let p = prepare_cs(&config);
        let facts = &p.base.facts;
        group.bench_with_input(
            BenchmarkId::new("ci_untyped", &config.name),
            facts,
            |b, f| b.iter(|| context_insensitive(f, false, CallGraphMode::Cha, None).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("ci_typed", &config.name), facts, |b, f| {
            b.iter(|| context_insensitive(f, true, CallGraphMode::Cha, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("otf", &config.name), facts, |b, f| {
            b.iter(|| context_insensitive(f, true, CallGraphMode::OnTheFly, None).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("cs_pointer", &config.name),
            facts,
            |b, f| b.iter(|| context_sensitive(f, &p.cg, &p.numbering, None).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("cs_type", &config.name), facts, |b, f| {
            b.iter(|| cs_type_analysis(f, &p.cg, &p.numbering, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("thread", &config.name), facts, |b, f| {
            b.iter(|| thread_escape(f, &p.cg, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
