//! Ablation benchmarks for the design choices the paper calls out:
//!
//! - **Incrementalization** (Section 2.4.1): semi-naive vs naive fixpoint.
//! - **Type filtering** (Section 2.3): the paper observes filtering makes
//!   the analysis *faster* as well as more precise.
//! - **Variable ordering** (Section 2.4.2): sensitivity to the ordering
//!   string.
//! - **Hand-coded vs generated** (Section 6.4): the raw-BDD hand
//!   implementation against the Datalog engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whale_bench::benchmarks;
use whale_core::handcoded::context_insensitive_handcoded;
use whale_core::{context_insensitive, CallGraphMode};
use whale_datalog::EngineOptions;
use whale_ir::{synth, Facts};

fn bench_ablations(c: &mut Criterion) {
    let config = benchmarks(Some("freetts"), 1, 12).remove(0);
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // Incrementalization (the paper's semi-naive evaluation).
    for seminaive in [true, false] {
        let label = if seminaive { "seminaive" } else { "naive" };
        group.bench_with_input(
            BenchmarkId::new("fixpoint", label),
            &seminaive,
            |b, &sn| {
                b.iter(|| {
                    context_insensitive(
                        &facts,
                        true,
                        CallGraphMode::Cha,
                        Some(EngineOptions {
                            seminaive: sn,
                            order: None,
                        }),
                    )
                    .unwrap()
                })
            },
        );
    }

    // Type filtering: untyped vs typed (Algorithm 1 vs 2).
    for typed in [false, true] {
        let label = if typed { "typed" } else { "untyped" };
        group.bench_with_input(BenchmarkId::new("filter", label), &typed, |b, &t| {
            b.iter(|| context_insensitive(&facts, t, CallGraphMode::Cha, None).unwrap())
        });
    }

    // Variable ordering sensitivity.
    for order in ["Z_N_F_T_M_I_V_H", "H_V_I_M_T_F_N_Z", "V_H_Z_N_F_T_M_I"] {
        group.bench_with_input(BenchmarkId::new("order", order), &order, |b, &o| {
            b.iter(|| {
                context_insensitive(
                    &facts,
                    true,
                    CallGraphMode::Cha,
                    Some(EngineOptions {
                        seminaive: true,
                        order: Some(o.into()),
                    }),
                )
                .unwrap()
            })
        });
    }

    // Hand-coded vs bddbddb-generated (Section 6.4).
    group.bench_function("engine/bddbddb_generated", |b| {
        b.iter(|| context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap())
    });
    group.bench_function("engine/hand_coded", |b| {
        b.iter(|| context_insensitive_handcoded(&facts).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
