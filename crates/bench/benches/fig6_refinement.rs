//! Figure 6 as a criterion benchmark: the type-refinement query under all
//! six analysis variants on one benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whale_bench::{benchmarks, prepare_cs};
use whale_core::queries::{type_refinement, RefineVariant};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_refinement");
    group.sample_size(10);
    let config = benchmarks(Some("freetts"), 1, 12).remove(0);
    let p = prepare_cs(&config);
    for variant in RefineVariant::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &v| {
                b.iter(|| {
                    if v.context_sensitive() {
                        type_refinement(&p.base.facts, Some(&p.cg), Some(&p.numbering), v)
                    } else {
                        type_refinement(&p.base.facts, None, None, v)
                    }
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
