//! Finite-domain ("fdd") layer: blocks of boolean variables encoding
//! bounded integer domains, as in BuDDy's `fdd` interface which the paper's
//! `bddbddb` system was built on.

use crate::store::{Store, ONE, ZERO};
use crate::Level;

/// Identifier of a declared finite domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub(crate) usize);

/// Declaration of a finite domain: a name and the number of elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpec {
    pub(crate) name: String,
    pub(crate) size: u64,
}

impl DomainSpec {
    /// Declares a domain holding values `0..size`.
    pub fn new(name: impl Into<String>, size: u64) -> Self {
        DomainSpec {
            name: name.into(),
            size,
        }
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of elements.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// Number of bits needed to encode values `0..size`.
pub(crate) fn bits_for(size: u64) -> u32 {
    if size <= 2 {
        1
    } else {
        64 - (size - 1).leading_zeros()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct DomainData {
    pub(crate) name: String,
    pub(crate) size: u64,
    /// Levels of this domain's bits, least-significant first.
    pub(crate) bits: Vec<Level>,
}

// ----- constructions over domains, at store level ---------------------------
//
// All intermediates are protected on the store's refstack via the returned
// nodes being immediately consumed by callers that protect them; within each
// function we protect accumulators explicitly because any `mk` may trigger a
// garbage collection.

/// BDD encoding `value` in the domain with the given bit levels (LSB first).
pub(crate) fn const_rec(store: &mut Store, bits: &[Level], value: u64) -> u32 {
    let mut acc = ONE;
    // Conjoin literal by literal; the accumulator must be protected before
    // the literal is created, because creating a node can garbage collect.
    for (k, &lvl) in bits.iter().enumerate() {
        store.protect(acc);
        let lit = if (value >> k) & 1 == 1 {
            store.ithvar(lvl)
        } else {
            store.nithvar(lvl)
        };
        store.protect(lit);
        let next = store.and_rec(acc, lit);
        store.unprotect(2);
        acc = next;
    }
    acc
}

/// BDD encoding `x <= bound` over the given bits (LSB first).
pub(crate) fn leq_rec(store: &mut Store, bits: &[Level], bound: u64) -> u32 {
    // Walk from LSB to MSB accumulating: acc' for bit k with bound bit b:
    //   b == 1:  acc' = ¬x_k ∨ (x_k ∧ acc)   (x_k < b, or equal and rest ok)
    //   b == 0:  acc' = ¬x_k ∧ acc
    let mut acc = ONE;
    for (k, &lvl) in bits.iter().enumerate() {
        let b = (bound >> k) & 1;
        store.protect(acc);
        let x = store.ithvar(lvl);
        store.protect(x);
        let next = if b == 1 {
            store.ite_rec(x, acc, ONE)
        } else {
            store.ite_rec(x, ZERO, acc)
        };
        store.unprotect(2);
        acc = next;
    }
    acc
}

/// BDD encoding `x >= bound` over the given bits (LSB first).
pub(crate) fn geq_rec(store: &mut Store, bits: &[Level], bound: u64) -> u32 {
    let mut acc = ONE;
    for (k, &lvl) in bits.iter().enumerate() {
        let b = (bound >> k) & 1;
        store.protect(acc);
        let x = store.ithvar(lvl);
        store.protect(x);
        let next = if b == 0 {
            store.ite_rec(x, ONE, acc)
        } else {
            store.ite_rec(x, acc, ZERO)
        };
        store.unprotect(2);
        acc = next;
    }
    acc
}

/// BDD encoding `lo <= x <= hi` over the given bits.
///
/// This is the O(bits) *range* primitive of Section 4.1 of the paper: one
/// BDD for the values below the upper bound, one for the values above the
/// lower bound, and their conjunction.
pub(crate) fn range_rec(store: &mut Store, bits: &[Level], lo: u64, hi: u64) -> u32 {
    if lo > hi {
        return ZERO;
    }
    let le = leq_rec(store, bits, hi);
    store.protect(le);
    let ge = geq_rec(store, bits, lo);
    store.protect(ge);
    let res = store.and_rec(le, ge);
    store.unprotect(2);
    res
}

/// BDD encoding `x < y` over two equally wide bit vectors (LSB first).
///
/// Built LSB-to-MSB like the other comparators: at each bit, either the
/// higher bits decide, or they are equal and the current bit decides.
pub(crate) fn lt_rec(store: &mut Store, xbits: &[Level], ybits: &[Level]) -> u32 {
    debug_assert_eq!(xbits.len(), ybits.len());
    // acc = comparison of bits below the current one.
    let mut acc = ZERO; // empty prefixes are equal, so not less-than
    for (&xl, &yl) in xbits.iter().zip(ybits) {
        // less' = (¬x ∧ y) ∨ ((x ↔ y) ∧ less)
        store.protect(acc);
        let x = store.ithvar(xl);
        store.protect(x);
        let y = store.ithvar(yl);
        store.protect(y);
        let nx = store.not_rec(x);
        store.protect(nx);
        let strictly = store.and_rec(nx, y);
        store.protect(strictly);
        let ny = store.not_rec(y);
        store.protect(ny);
        let xnor = store.ite_rec(x, y, ny);
        store.protect(xnor);
        let carry = store.and_rec(xnor, acc);
        store.protect(carry);
        let next = store.or_rec(strictly, carry);
        store.unprotect(8);
        acc = next;
    }
    acc
}

/// BDD encoding bitwise equality of two equally wide domains.
pub(crate) fn eq_rec(store: &mut Store, xbits: &[Level], ybits: &[Level]) -> u32 {
    debug_assert_eq!(xbits.len(), ybits.len());
    let mut acc = ONE;
    for (&xl, &yl) in xbits.iter().zip(ybits) {
        store.protect(acc);
        let x = store.ithvar(xl);
        store.protect(x);
        let y = store.ithvar(yl);
        store.protect(y);
        let ny = store.not_rec(y);
        store.protect(ny);
        let xnor = store.ite_rec(x, y, ny);
        store.protect(xnor);
        let next = store.and_rec(acc, xnor);
        store.unprotect(5);
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::bits_for;

    #[test]
    fn bit_widths() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
        assert_eq!(bits_for(1 << 40), 40);
    }
}
