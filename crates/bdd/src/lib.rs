//! An ordered binary decision diagram (OBDD) kernel with a finite-domain
//! relation layer, built for BDD-based program analysis.
//!
//! This crate is the substrate of a reproduction of Whaley & Lam,
//! *Cloning-Based Context-Sensitive Pointer Alias Analysis Using Binary
//! Decision Diagrams* (PLDI 2004). It plays the role BuDDy/JavaBDD played for
//! the paper's `bddbddb` system and therefore provides exactly the operations
//! that system needs:
//!
//! - the classic apply family ([`Bdd::and`], [`Bdd::or`], [`Bdd::xor`],
//!   [`Bdd::diff`], [`Bdd::not`], [`Bdd::ite`]),
//! - quantification and the combined *relational product*
//!   ([`Bdd::exist`], [`Bdd::relprod`]) used to implement Datalog joins,
//! - variable renaming ([`Bdd::replace`]) used to implement attribute
//!   renaming, and the fused rename-then-join kernel
//!   ([`Bdd::replace_relprod_domains`]) that performs a monotone rename *on
//!   the fly* inside the AND-∃ recursion — the dominant `rename ∘ join`
//!   sequence of compiled Datalog rules in one traversal with no
//!   intermediate BDD,
//! - model counting and enumeration ([`Bdd::satcount`],
//!   [`Bdd::for_each_tuple`]),
//! - a finite-domain ("fdd") layer assigning blocks of boolean variables to
//!   integer domains, with the O(bits) **range** construction the paper
//!   describes in Section 4.1 and an O(bits) **adder** relation
//!   (`y = x + c`) used to shift context numbers by a constant.
//!
//! # Example
//!
//! ```
//! use whale_bdd::{BddManager, DomainSpec, OrderSpec};
//!
//! # fn main() -> Result<(), whale_bdd::BddError> {
//! let mgr = BddManager::with_domains(
//!     &[DomainSpec::new("V", 64), DomainSpec::new("H", 64)],
//!     &OrderSpec::parse("VxH")?,
//! )?;
//! let v = mgr.domain("V").unwrap();
//! let h = mgr.domain("H").unwrap();
//! // the set of pairs {(x, x) | 10 <= x <= 20}
//! let diag = mgr.domain_eq(v, h).and(&mgr.domain_range(v, 10, 20));
//! assert_eq!(diag.satcount_domains(&[v, h]) as u64, 11);
//! # Ok(())
//! # }
//! ```
//!
//! # Design notes
//!
//! The manager is deliberately single-threaded (`!Send`), like the default
//! builds of the BDD packages the paper used. Handles ([`Bdd`]) are
//! reference-counted RAII values; garbage collection is a mark-and-sweep over
//! externally referenced nodes plus the kernel's internal recursion stack and
//! runs only under allocation pressure.
//!
//! The operation caches are 4-way set-associative with round-robin eviction
//! and generation-tagged entries: `clear` is an O(1) generation bump, and a
//! GC that frees nodes *revalidates* surviving entries instead of discarding
//! warm memoization state (a sweep that frees nothing leaves the caches
//! untouched). Per-cache hit/miss/eviction counters are exposed as the
//! [`CacheStats`]-typed fields `apply_cache`, `ite_cache`, `appex_cache`,
//! `replace_cache` and `client_cache` of [`BddStats`].
//!
//! Cache sizing is **pressure-adaptive** by default (see
//! [`BddManagerOptions`]): each cache monitors its own eviction/miss ratio
//! in fixed windows and doubles while the working set does not fit,
//! independently of node-table growth, then shrinks back after a reordering
//! pass collapses the table. A *client operation cache* with the same
//! GC-safe lifecycle lets callers memoize whole derived operations —
//! [`BddManager::memo_get`]/[`BddManager::memo_put`] — which the Datalog
//! engine uses to skip entire relation-level joins across fixpoint rounds.
//!
//! The manager supports **in-place dynamic variable reordering**
//! ([`BddManager::reorder_sift`], plus an opt-in automatic trigger via
//! [`BddManager::set_auto_reorder`]): Rudell-style sifting over
//! adjacent-level swaps that rewrite affected nodes in place, so node
//! indices — and therefore every live [`Bdd`] handle — stay valid while the
//! order changes under them. Sifting moves each ordering group as one
//! block, keeping interleaved domains interleaved.

mod adder;
mod cache;
mod domain;
mod error;
pub mod io;
mod manager;
mod order;
mod sat;
mod store;

pub use cache::CacheStats;
pub use domain::{DomainId, DomainSpec};
pub use error::BddError;
pub use manager::{Bdd, BddManager, BddManagerOptions, BddStats};
pub use order::{OrderSpec, ReorderStats};
pub use store::NODE_BYTES;

/// A boolean variable, identified by the position it held in the *initial*
/// order (0 = topmost at construction). Variable numbers are stable: all
/// API parameters — domain bit lists, quantification sets, rename pairs —
/// keep meaning the same variable after dynamic reordering moves it to a
/// different position ([`BddManager::level_of_var`] gives the current one).
pub type Level = u32;
