//! Satisfying-assignment enumeration and decoding over finite domains,
//! plus the node-keyed memo table used by the counting algorithms.

use crate::store::{Store, ONE, ZERO};
use crate::Level;

/// An open-addressing memo keyed by node index, in the same style as the
/// kernel's operation caches (multiplicative hash, power-of-two table,
/// linear probing). Replaces `std::collections::HashMap` in the counting
/// hot paths: SipHash on a `u32` key dominated profiles of
/// `relation_count` on large relations.
///
/// Keys must not be `u32::MAX` (the empty-slot sentinel); node indices
/// never are.
pub(crate) struct NodeMemo<V> {
    keys: Vec<u32>,
    vals: Vec<V>,
    mask: usize,
    len: usize,
}

const MEMO_EMPTY: u32 = u32::MAX;

#[inline]
fn memo_hash(k: u32) -> usize {
    let mut h = (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    h as usize
}

impl<V: Copy + Default> NodeMemo<V> {
    pub(crate) fn new() -> Self {
        Self::with_log2_capacity(10)
    }

    fn with_log2_capacity(log2: u32) -> Self {
        let cap = 1usize << log2;
        NodeMemo {
            keys: vec![MEMO_EMPTY; cap],
            vals: vec![V::default(); cap],
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: u32) -> Option<V> {
        debug_assert_ne!(key, MEMO_EMPTY);
        let mut i = memo_hash(key) & self.mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == MEMO_EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, key: u32, val: V) {
        debug_assert_ne!(key, MEMO_EMPTY);
        // Grow at 7/8 load to keep probe chains short.
        if self.len * 8 >= self.keys.len() * 7 {
            self.grow();
        }
        let mut i = memo_hash(key) & self.mask;
        loop {
            let k = self.keys[i];
            if k == MEMO_EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = old_keys.len() * 2;
        self.keys = vec![MEMO_EMPTY; cap];
        self.vals = vec![V::default(); cap];
        self.mask = cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != MEMO_EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// Enumerates all satisfying assignments of `f` restricted to `vars`
/// (sorted by level ascending), expanding don't-cares, and calls `cb` with
/// one `bool` per variable in `vars` order.
///
/// The support of `f` must be a subset of `vars`.
pub(crate) fn for_each_sat(store: &Store, f: u32, vars: &[Level], cb: &mut dyn FnMut(&[bool])) {
    debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
    let mut assignment = vec![false; vars.len()];
    walk(store, f, vars, 0, &mut assignment, cb);
}

fn walk(
    store: &Store,
    f: u32,
    vars: &[Level],
    ix: usize,
    assignment: &mut Vec<bool>,
    cb: &mut dyn FnMut(&[bool]),
) {
    if f == ZERO {
        return;
    }
    if ix == vars.len() {
        assert_eq!(
            f, ONE,
            "support of the function is not covered by the variable list"
        );
        cb(assignment);
        return;
    }
    let lv = vars[ix];
    let fl = store.level(f);
    if f == ONE || fl > lv {
        // Don't-care on this variable: expand both branches.
        assignment[ix] = false;
        walk(store, f, vars, ix + 1, assignment, cb);
        assignment[ix] = true;
        walk(store, f, vars, ix + 1, assignment, cb);
    } else {
        assert_eq!(
            fl, lv,
            "function depends on a variable not in the variable list"
        );
        assignment[ix] = false;
        walk(store, store.low(f), vars, ix + 1, assignment, cb);
        assignment[ix] = true;
        walk(store, store.high(f), vars, ix + 1, assignment, cb);
    }
}

/// Decodes domain values out of a boolean assignment.
///
/// `positions[d]` maps each domain to the `(index into assignment, bit
/// significance)` pairs of its variables.
pub(crate) fn decode_tuple(assignment: &[bool], positions: &[Vec<(usize, u32)>]) -> Vec<u64> {
    positions
        .iter()
        .map(|ps| {
            ps.iter()
                .map(|&(ix, sig)| (assignment[ix] as u64) << sig)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::NodeMemo;

    #[test]
    fn node_memo_insert_get_overwrite() {
        let mut m: NodeMemo<u64> = NodeMemo::new();
        assert_eq!(m.get(2), None);
        m.insert(2, 10);
        m.insert(3, 20);
        assert_eq!(m.get(2), Some(10));
        assert_eq!(m.get(3), Some(20));
        m.insert(2, 11);
        assert_eq!(m.get(2), Some(11));
    }

    #[test]
    fn node_memo_grows_past_initial_capacity() {
        let mut m: NodeMemo<u32> = NodeMemo::new();
        for k in 2..5000u32 {
            m.insert(k, k * 3);
        }
        for k in 2..5000u32 {
            assert_eq!(m.get(k), Some(k * 3));
        }
        assert_eq!(m.get(6000), None);
    }
}
