//! Satisfying-assignment enumeration and decoding over finite domains.

use crate::store::{Store, ONE, ZERO};
use crate::Level;

/// Enumerates all satisfying assignments of `f` restricted to `vars`
/// (sorted by level ascending), expanding don't-cares, and calls `cb` with
/// one `bool` per variable in `vars` order.
///
/// The support of `f` must be a subset of `vars`.
pub(crate) fn for_each_sat(store: &Store, f: u32, vars: &[Level], cb: &mut dyn FnMut(&[bool])) {
    debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
    let mut assignment = vec![false; vars.len()];
    walk(store, f, vars, 0, &mut assignment, cb);
}

fn walk(
    store: &Store,
    f: u32,
    vars: &[Level],
    ix: usize,
    assignment: &mut Vec<bool>,
    cb: &mut dyn FnMut(&[bool]),
) {
    if f == ZERO {
        return;
    }
    if ix == vars.len() {
        assert_eq!(
            f, ONE,
            "support of the function is not covered by the variable list"
        );
        cb(assignment);
        return;
    }
    let lv = vars[ix];
    let fl = store.level(f);
    if f == ONE || fl > lv {
        // Don't-care on this variable: expand both branches.
        assignment[ix] = false;
        walk(store, f, vars, ix + 1, assignment, cb);
        assignment[ix] = true;
        walk(store, f, vars, ix + 1, assignment, cb);
    } else {
        assert_eq!(
            fl, lv,
            "function depends on a variable not in the variable list"
        );
        assignment[ix] = false;
        walk(store, store.low(f), vars, ix + 1, assignment, cb);
        assignment[ix] = true;
        walk(store, store.high(f), vars, ix + 1, assignment, cb);
    }
}

/// Decodes domain values out of a boolean assignment.
///
/// `positions[d]` maps each domain to the `(index into assignment, bit
/// significance)` pairs of its variables.
pub(crate) fn decode_tuple(assignment: &[bool], positions: &[Vec<(usize, u32)>]) -> Vec<u64> {
    positions
        .iter()
        .map(|ps| {
            ps.iter()
                .map(|&(ix, sig)| (assignment[ix] as u64) << sig)
                .sum()
        })
        .collect()
}
