//! The public BDD manager and RAII node handles.

use crate::adder::add_const_rec;
use crate::cache::{CacheStats, NIL};
use crate::domain::{bits_for, const_rec, eq_rec, range_rec, DomainData, DomainId, DomainSpec};
use crate::order::{assign_levels_grouped, OrderSpec, ReorderStats};
use crate::sat::{decode_tuple, for_each_sat};
use crate::store::{CachePolicy, Store, DEFAULT_MAX_GROWTH, NODE_BYTES, ONE, ZERO};
use crate::{BddError, Level};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A shared, single-threaded BDD manager.
///
/// All [`Bdd`] handles created from one manager share its node table;
/// operations between handles of different managers panic. Cloning the
/// manager is cheap (it is a shared reference).
///
/// # Example
///
/// ```
/// use whale_bdd::BddManager;
/// let mgr = BddManager::with_vars(4);
/// let x0 = mgr.ithvar(0);
/// let x1 = mgr.ithvar(1);
/// let f = x0.or(&x1);
/// assert_eq!(f.satcount() as u64, 12); // 3 of 4 combos, times 2^2 free vars
/// ```
#[derive(Clone)]
pub struct BddManager {
    store: Rc<RefCell<Store>>,
}

/// Construction-time options of a [`BddManager`], chiefly the operation
/// cache sizing policy.
///
/// By default the op caches are *pressure-adaptive*: each cache tracks its
/// own eviction pressure in windows of `cache_adapt_window` misses and
/// doubles (up to `1 << cache_max_log2` entries) whenever evictions account
/// for at least `cache_grow_eviction_ratio` of a window's misses — the
/// signature of a working set that does not fit. This decouples cache
/// capacity from node-table growth, which is the only signal the
/// table-proportional legacy policy (`adaptive_caches: false`) reacts to.
///
/// Growth is *feedback-gated*: eviction pressure alone cannot distinguish
/// a too-small cache from a stream of first-time keys, so after each
/// doubling the policy checks whether the window hit rate actually rose by
/// `cache_grow_min_hit_gain`. If it did not, the evicted entries were
/// never going to be re-requested — the misses are compulsory — and the
/// cache stops growing until the next full clear.
/// After a reordering pass that changed the order (which clears every
/// cache anyway), caches shrink back to a live-node-proportional size when
/// `cache_shrink_after_reorder` is set, releasing adaptively grown memory
/// whose working set the reorder just collapsed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BddManagerOptions {
    /// Initial node-table capacity hint (rounded up to a power of two, at
    /// least 2^12). Sizing the table for the expected workload avoids
    /// early grow-and-collect cycles.
    pub initial_capacity: usize,
    /// Enable pressure-adaptive op-cache growth and post-reorder shrink.
    pub adaptive_caches: bool,
    /// Evictions/misses ratio within one pressure window at which a cache
    /// doubles (clamped to `[0, 1]`).
    pub cache_grow_eviction_ratio: f64,
    /// Cache misses that close a pressure window and trigger one sizing
    /// decision.
    pub cache_adapt_window: u64,
    /// Minimum absolute window-hit-rate improvement a doubling must
    /// deliver; below it the cache is declared saturated and adaptive
    /// growth stops (clamped to `[0, 1]`).
    pub cache_grow_min_hit_gain: f64,
    /// Hard cap on any op cache's log2 entry count (clamped to `[16, 26]`).
    pub cache_max_log2: u32,
    /// Shrink caches to live-node-proportional sizes after a reordering
    /// pass that changed the order.
    pub cache_shrink_after_reorder: bool,
}

impl Default for BddManagerOptions {
    fn default() -> Self {
        BddManagerOptions {
            initial_capacity: 1 << 14,
            adaptive_caches: true,
            cache_grow_eviction_ratio: 0.5,
            cache_adapt_window: 1 << 13,
            cache_grow_min_hit_gain: 0.01,
            cache_max_log2: 23,
            cache_shrink_after_reorder: true,
        }
    }
}

impl BddManagerOptions {
    fn cache_policy(&self) -> CachePolicy {
        CachePolicy {
            adaptive: self.adaptive_caches,
            grow_eviction_ratio: self.cache_grow_eviction_ratio.clamp(0.0, 1.0),
            adapt_window: self.cache_adapt_window.max(1),
            grow_min_hit_gain: self.cache_grow_min_hit_gain.clamp(0.0, 1.0),
            max_log2: self.cache_max_log2.clamp(16, 26),
            min_log2: 12,
            shrink_after_reorder: self.cache_shrink_after_reorder,
        }
    }
}

/// Aggregate statistics about a manager's node table and operation caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddStats {
    /// Number of boolean variables.
    pub varcount: u32,
    /// Live (reachable) nodes right now.
    pub live_nodes: usize,
    /// Peak live nodes observed (sampled at GC points and stat queries).
    pub peak_live_nodes: usize,
    /// Total allocated node slots.
    pub allocated_nodes: usize,
    /// Number of garbage collections run.
    pub gc_runs: usize,
    /// Number of sifting passes run (manual and automatic).
    pub reorder_runs: usize,
    /// Counters of the binary-apply cache (and/or/xor/diff/not).
    pub apply_cache: CacheStats,
    /// Counters of the if-then-else cache.
    pub ite_cache: CacheStats,
    /// Counters of the exist/relprod/fused-replace-relprod cache.
    pub appex_cache: CacheStats,
    /// Counters of the replace cache.
    pub replace_cache: CacheStats,
    /// Counters of the client operation cache
    /// ([`BddManager::memo_get`]/[`BddManager::memo_put`]).
    pub client_cache: CacheStats,
    /// Bytes currently held by all operation caches (entry arrays plus
    /// victim pointers). Unlike [`BddStats::peak_bytes`] this is a *current*
    /// figure, so it drops when the post-reorder shrink releases memory.
    pub cache_bytes: usize,
}

impl BddStats {
    /// Approximate peak memory of the node table in bytes, derived from the
    /// actual node layout (matching the paper's reporting of "peak number
    /// of live BDD nodes").
    pub fn peak_bytes(&self) -> usize {
        self.peak_live_nodes * NODE_BYTES
    }
}

impl BddManager {
    /// Creates a manager over `varcount` raw boolean variables (no domains).
    pub fn with_vars(varcount: u32) -> Self {
        Self::with_vars_and_options(varcount, &BddManagerOptions::default())
    }

    /// [`BddManager::with_vars`] with explicit [`BddManagerOptions`].
    pub fn with_vars_and_options(varcount: u32, opts: &BddManagerOptions) -> Self {
        let mut store = Store::new(varcount, opts.initial_capacity);
        store.policy = opts.cache_policy();
        BddManager {
            store: Rc::new(RefCell::new(store)),
        }
    }

    /// Creates a manager from finite-domain declarations and a variable
    /// ordering.
    ///
    /// Every declared domain must appear exactly once in `order`, and vice
    /// versa.
    ///
    /// # Errors
    ///
    /// [`BddError::EmptyDomain`], [`BddError::DuplicateDomain`],
    /// [`BddError::UnknownDomainInOrder`] or
    /// [`BddError::DomainMissingFromOrder`] on inconsistent declarations.
    pub fn with_domains(specs: &[DomainSpec], order: &OrderSpec) -> Result<Self, BddError> {
        Self::with_domains_and_capacity(specs, order, 1 << 14)
    }

    /// [`BddManager::with_domains`] with an initial node-table capacity
    /// hint (rounded up to a power of two). Sizing the table for the
    /// expected workload avoids early grow-and-collect cycles, each of
    /// which clears the operation caches.
    ///
    /// # Errors
    ///
    /// As [`BddManager::with_domains`].
    pub fn with_domains_and_capacity(
        specs: &[DomainSpec],
        order: &OrderSpec,
        capacity: usize,
    ) -> Result<Self, BddError> {
        let opts = BddManagerOptions {
            initial_capacity: capacity,
            ..BddManagerOptions::default()
        };
        Self::with_domains_and_options(specs, order, &opts)
    }

    /// [`BddManager::with_domains`] with explicit [`BddManagerOptions`]
    /// (initial capacity and operation-cache sizing policy).
    ///
    /// # Errors
    ///
    /// As [`BddManager::with_domains`].
    pub fn with_domains_and_options(
        specs: &[DomainSpec],
        order: &OrderSpec,
        opts: &BddManagerOptions,
    ) -> Result<Self, BddError> {
        let mut by_name: HashMap<&str, usize> = HashMap::new();
        for (i, spec) in specs.iter().enumerate() {
            if spec.size == 0 {
                return Err(BddError::EmptyDomain(spec.name.clone()));
            }
            if by_name.insert(&spec.name, i).is_some() {
                return Err(BddError::DuplicateDomain(spec.name.clone()));
            }
        }
        // Validate the order spec against the declarations.
        let mut seen = vec![false; specs.len()];
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut placement: Vec<(usize, usize)> = Vec::new(); // spec idx -> (group, member)
        let mut spec_of_placement: Vec<usize> = Vec::new();
        for (g, group) in order.groups().iter().enumerate() {
            let mut widths = Vec::new();
            for (m, name) in group.iter().enumerate() {
                let &ix = by_name
                    .get(name.as_str())
                    .ok_or_else(|| BddError::UnknownDomainInOrder(name.clone()))?;
                if seen[ix] {
                    return Err(BddError::DuplicateDomain(name.clone()));
                }
                seen[ix] = true;
                widths.push(bits_for(specs[ix].size));
                placement.push((g, m));
                spec_of_placement.push(ix);
            }
            groups.push(widths);
        }
        if let Some(ix) = seen.iter().position(|&s| !s) {
            return Err(BddError::DomainMissingFromOrder(specs[ix].name.clone()));
        }
        let levels = assign_levels_grouped(&groups);
        let varcount: u32 = groups.iter().flatten().sum();
        let mut store = Store::new(varcount, opts.initial_capacity);
        store.policy = opts.cache_policy();
        // Each ordering group is one sifting block: reordering moves whole
        // groups, so interleaved domains stay interleaved.
        let widths: Vec<u32> = groups.iter().map(|g| g.iter().sum()).collect();
        store.order.assign_blocks(&widths);
        let mut domains: Vec<Option<DomainData>> = vec![None; specs.len()];
        for (p, &(g, m)) in placement.iter().enumerate() {
            let ix = spec_of_placement[p];
            domains[ix] = Some(DomainData {
                name: specs[ix].name.clone(),
                size: specs[ix].size,
                bits: levels[g][m].clone(),
            });
        }
        store.domains = domains.into_iter().map(Option::unwrap).collect();
        store.domain_names = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        Ok(BddManager {
            store: Rc::new(RefCell::new(store)),
        })
    }

    fn wrap(&self, s: &mut Store, idx: u32) -> Bdd {
        s.inc_ref(idx);
        Bdd {
            store: self.store.clone(),
            idx,
        }
    }

    /// The constant `false` (the empty relation).
    pub fn zero(&self) -> Bdd {
        let mut s = self.store.borrow_mut();
        self.wrap(&mut s, ZERO)
    }

    /// The constant `true` (the universal relation).
    pub fn one(&self) -> Bdd {
        let mut s = self.store.borrow_mut();
        self.wrap(&mut s, ONE)
    }

    /// The positive literal for variable `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= varcount`.
    pub fn ithvar(&self, level: Level) -> Bdd {
        let mut s = self.store.borrow_mut();
        let idx = s.ithvar(level);
        self.wrap(&mut s, idx)
    }

    /// The negative literal for variable `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= varcount`.
    pub fn nithvar(&self, level: Level) -> Bdd {
        let mut s = self.store.borrow_mut();
        let idx = s.nithvar(level);
        self.wrap(&mut s, idx)
    }

    /// Number of boolean variables in this manager.
    pub fn varcount(&self) -> u32 {
        self.store.borrow().varcount
    }

    /// Looks up a domain by name.
    pub fn domain(&self, name: &str) -> Option<DomainId> {
        self.store
            .borrow()
            .domain_names
            .get(name)
            .copied()
            .map(DomainId)
    }

    /// All declared domains, in declaration order.
    pub fn domains(&self) -> Vec<DomainId> {
        (0..self.store.borrow().domains.len())
            .map(DomainId)
            .collect()
    }

    /// The name of a domain.
    pub fn domain_name(&self, d: DomainId) -> String {
        self.store.borrow().domains[d.0].name.clone()
    }

    /// The declared size of a domain.
    pub fn domain_size(&self, d: DomainId) -> u64 {
        self.store.borrow().domains[d.0].size
    }

    /// The variables of a domain's bits, least-significant first. These are
    /// stable identities: dynamic reordering changes where they sit in the
    /// order ([`BddManager::level_of_var`]), never the numbers themselves.
    pub fn domain_levels(&self, d: DomainId) -> Vec<Level> {
        self.store.borrow().domains[d.0].bits.clone()
    }

    /// BDD encoding the single value `value` in domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn domain_const(&self, d: DomainId, value: u64) -> Bdd {
        let mut s = self.store.borrow_mut();
        assert!(
            value < s.domains[d.0].size,
            "value {} out of range for domain `{}` of size {}",
            value,
            s.domains[d.0].name,
            s.domains[d.0].size
        );
        let bits = s.domains[d.0].bits.clone();
        let idx = const_rec(&mut s, &bits, value);
        self.wrap(&mut s, idx)
    }

    /// BDD encoding `lo <= x <= hi` in domain `d` — the O(bits) *range*
    /// primitive of Section 4.1 of the paper.
    ///
    /// An empty range (`lo > hi`) yields the empty set.
    ///
    /// # Panics
    ///
    /// Panics if `hi` is outside the domain.
    pub fn domain_range(&self, d: DomainId, lo: u64, hi: u64) -> Bdd {
        let mut s = self.store.borrow_mut();
        assert!(
            lo > hi || hi < s.domains[d.0].size,
            "range upper bound {} out of range for domain `{}` of size {}",
            hi,
            s.domains[d.0].name,
            s.domains[d.0].size
        );
        let bits = s.domains[d.0].bits.clone();
        let idx = range_rec(&mut s, &bits, lo, hi);
        self.wrap(&mut s, idx)
    }

    /// BDD encoding pointwise equality of two domains of equal bit width.
    ///
    /// # Panics
    ///
    /// Panics if the domains have different bit widths.
    pub fn domain_eq(&self, a: DomainId, b: DomainId) -> Bdd {
        let mut s = self.store.borrow_mut();
        let (ab, bb) = (s.domains[a.0].bits.clone(), s.domains[b.0].bits.clone());
        assert_eq!(
            ab.len(),
            bb.len(),
            "domain_eq requires equal bit widths ({} vs {})",
            s.domains[a.0].name,
            s.domains[b.0].name
        );
        let idx = eq_rec(&mut s, &ab, &bb);
        self.wrap(&mut s, idx)
    }

    /// BDD encoding the strict order `x < y` between two domains of equal
    /// bit width.
    ///
    /// # Panics
    ///
    /// Panics if the domains have different bit widths.
    pub fn domain_lt(&self, a: DomainId, b: DomainId) -> Bdd {
        let mut s = self.store.borrow_mut();
        let (ab, bb) = (s.domains[a.0].bits.clone(), s.domains[b.0].bits.clone());
        assert_eq!(
            ab.len(),
            bb.len(),
            "domain_lt requires equal bit widths ({} vs {})",
            s.domains[a.0].name,
            s.domains[b.0].name
        );
        let idx = crate::domain::lt_rec(&mut s, &ab, &bb);
        self.wrap(&mut s, idx)
    }

    /// BDD encoding the relation `{(x, y) | y = x + c}` between domains
    /// `from` (holding `x`) and `to` (holding `y`), with no wrap-around.
    ///
    /// This is the O(bits) shift used by the context numbering scheme
    /// (Algorithm 4): the contexts of a callee are the contexts of the
    /// caller plus a constant.
    ///
    /// # Panics
    ///
    /// Panics if the domains have different bit widths.
    pub fn domain_add_const(&self, from: DomainId, to: DomainId, c: u64) -> Bdd {
        let mut s = self.store.borrow_mut();
        let (fb, tb) = (s.domains[from.0].bits.clone(), s.domains[to.0].bits.clone());
        assert_eq!(
            fb.len(),
            tb.len(),
            "domain_add_const requires equal bit widths ({} vs {})",
            s.domains[from.0].name,
            s.domains[to.0].name
        );
        let idx = add_const_rec(&mut s, &fb, &tb, c);
        self.wrap(&mut s, idx)
    }

    /// Forces a garbage collection.
    pub fn gc(&self) {
        self.store.borrow_mut().gc();
    }

    /// Current node-table statistics.
    pub fn stats(&self) -> BddStats {
        let mut s = self.store.borrow_mut();
        let live = s.live_count();
        s.peak_live = s.peak_live.max(live);
        let (apply_cache, ite_cache, appex_cache, replace_cache, client_cache) = s.cache_stats();
        BddStats {
            varcount: s.varcount,
            live_nodes: live,
            peak_live_nodes: s.peak_live,
            allocated_nodes: s.nodes.len(),
            gc_runs: s.gc_runs,
            reorder_runs: s.reorder_runs,
            apply_cache,
            ite_cache,
            appex_cache,
            replace_cache,
            client_cache,
            cache_bytes: s.cache_bytes(),
        }
    }

    /// Looks up a result memoized with [`BddManager::memo_put`] under the
    /// same `(a, b, tag)` key. Hits and misses are counted in
    /// [`BddStats::client_cache`].
    ///
    /// # Panics
    ///
    /// Panics if an operand belongs to a different manager.
    pub fn memo_get(&self, a: &Bdd, b: Option<&Bdd>, tag: u32) -> Option<Bdd> {
        assert!(
            Rc::ptr_eq(&self.store, &a.store)
                && b.is_none_or(|b| Rc::ptr_eq(&self.store, &b.store)),
            "memo operands belong to a different manager"
        );
        let mut s = self.store.borrow_mut();
        let idx = s.client_get(a.idx, b.map_or(NIL, |b| b.idx), tag)?;
        Some(self.wrap(&mut s, idx))
    }

    /// Memoizes `result` as the outcome of a client-defined operation `tag`
    /// applied to `a` (and optionally `b`) in the *client operation cache*
    /// — a whole-operation memo table sharing the kernel caches' lifecycle:
    /// entries naming a node freed by GC go stale before the slot can be
    /// reused, and a reordering pass that changes the order drops
    /// everything. A hit therefore always returns a live handle denoting
    /// the exact function that was stored.
    ///
    /// `tag` is an opaque key the caller must keep stable for as long as it
    /// wants hits (e.g. an interned id of the operation's parameters).
    ///
    /// # Panics
    ///
    /// Panics if an operand belongs to a different manager.
    pub fn memo_put(&self, a: &Bdd, b: Option<&Bdd>, tag: u32, result: &Bdd) {
        assert!(
            Rc::ptr_eq(&self.store, &a.store)
                && Rc::ptr_eq(&self.store, &result.store)
                && b.is_none_or(|b| Rc::ptr_eq(&self.store, &b.store)),
            "memo operands belong to a different manager"
        );
        let mut s = self.store.borrow_mut();
        s.client_put(a.idx, b.map_or(NIL, |b| b.idx), tag, result.idx);
    }

    /// Drops every memoized operation result (an O(1) generation bump per
    /// cache). Useful for cold-cache benchmarking; never required for
    /// correctness.
    pub fn clear_op_caches(&self) {
        self.store.borrow_mut().clear_caches();
    }

    /// Resets the peak-live-node statistic to the current live count.
    pub fn reset_peak(&self) {
        let mut s = self.store.borrow_mut();
        s.peak_live = s.live_count();
    }

    /// Runs one sifting pass with the default max-growth bound (1.2): every
    /// ordering group, largest first, is moved as a unit to its locally
    /// optimal position in the variable order.
    ///
    /// Node indices are stable, so every live [`Bdd`] handle remains valid
    /// and denotes the same function afterwards; only the internal shape
    /// (and hence node counts) changes. All memoized operation results are
    /// dropped when the order actually changed.
    pub fn reorder_sift(&self) -> ReorderStats {
        self.store.borrow_mut().sift(DEFAULT_MAX_GROWTH)
    }

    /// [`BddManager::reorder_sift`] with an explicit max-growth factor: a
    /// sweep direction is abandoned once the table exceeds `max_growth`
    /// times the best size seen for the block being sifted.
    pub fn reorder_sift_bounded(&self, max_growth: f64) -> ReorderStats {
        self.store.borrow_mut().sift(max_growth.max(1.0))
    }

    /// Enables (`Some(threshold)`) or disables (`None`, the default)
    /// automatic reordering: when the live node count reaches the threshold
    /// at a collection, a sifting pass runs at the next operation entry.
    /// After each automatic pass the threshold is raised to at least twice
    /// the sifted size, so a table that keeps growing re-sifts at a
    /// geometric cadence instead of thrashing.
    pub fn set_auto_reorder(&self, threshold_nodes: Option<usize>) {
        self.store.borrow_mut().auto_reorder_threshold = threshold_nodes;
    }

    /// Swaps the variables at positions `level` and `level + 1` of the
    /// current order, in place. A building block for tests and experiments;
    /// real reordering should use [`BddManager::reorder_sift`], which
    /// amortizes the per-call bookkeeping this pays in full.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= varcount`.
    pub fn swap_adjacent_levels(&self, level: Level) {
        self.store.borrow_mut().swap_levels_once(level);
    }

    /// The current variable order: the variable number at each level,
    /// outermost first. Identity until a reorder runs.
    pub fn var_order(&self) -> Vec<Level> {
        self.store.borrow().order.level_to_var().to_vec()
    }

    /// Current position of variable `var` in the order.
    ///
    /// # Panics
    ///
    /// Panics if `var >= varcount`.
    pub fn level_of_var(&self, var: Level) -> Level {
        self.store.borrow().order.level_of(var)
    }

    /// Whether two managers are the same underlying instance.
    pub fn same_as(&self, other: &BddManager) -> bool {
        Rc::ptr_eq(&self.store, &other.store)
    }
}

impl std::fmt::Debug for BddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.stats();
        f.debug_struct("BddManager")
            .field("varcount", &st.varcount)
            .field("live_nodes", &st.live_nodes)
            .finish()
    }
}

/// A reference-counted handle to a BDD node.
///
/// Handles keep their nodes (and the whole manager) alive; dropping the
/// handle releases the node for a future garbage collection. Two handles
/// compare equal iff they denote the same function of the same manager
/// (BDDs are canonical).
pub struct Bdd {
    store: Rc<RefCell<Store>>,
    idx: u32,
}

impl Bdd {
    fn mgr(&self) -> BddManager {
        BddManager {
            store: self.store.clone(),
        }
    }

    #[inline]
    fn same_store(&self, other: &Bdd) {
        assert!(
            Rc::ptr_eq(&self.store, &other.store),
            "operation between BDDs of different managers"
        );
    }

    fn wrap(&self, s: &mut Store, idx: u32) -> Bdd {
        s.inc_ref(idx);
        Bdd {
            store: self.store.clone(),
            idx,
        }
    }

    /// The manager this handle belongs to.
    pub fn manager(&self) -> BddManager {
        self.mgr()
    }

    /// Whether this is the constant `false`.
    pub fn is_zero(&self) -> bool {
        self.idx == ZERO
    }

    /// Whether this is the constant `true`.
    pub fn is_one(&self) -> bool {
        self.idx == ONE
    }

    /// Conjunction.
    pub fn and(&self, other: &Bdd) -> Bdd {
        self.same_store(other);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.and_rec(self.idx, other.idx);
        self.wrap(&mut s, idx)
    }

    /// Disjunction.
    pub fn or(&self, other: &Bdd) -> Bdd {
        self.same_store(other);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.or_rec(self.idx, other.idx);
        self.wrap(&mut s, idx)
    }

    /// Exclusive or.
    pub fn xor(&self, other: &Bdd) -> Bdd {
        self.same_store(other);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.xor_rec(self.idx, other.idx);
        self.wrap(&mut s, idx)
    }

    /// Set difference `self ∧ ¬other`.
    pub fn diff(&self, other: &Bdd) -> Bdd {
        self.same_store(other);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.diff_rec(self.idx, other.idx);
        self.wrap(&mut s, idx)
    }

    /// Negation.
    pub fn not(&self) -> Bdd {
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.not_rec(self.idx);
        self.wrap(&mut s, idx)
    }

    /// If-then-else: `(self ∧ then_) ∨ (¬self ∧ else_)`.
    pub fn ite(&self, then_: &Bdd, else_: &Bdd) -> Bdd {
        self.same_store(then_);
        self.same_store(else_);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.ite_rec(self.idx, then_.idx, else_.idx);
        self.wrap(&mut s, idx)
    }

    /// Existential quantification over the given variables.
    pub fn exist(&self, vars: &[Level]) -> Bdd {
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.exist(self.idx, vars);
        self.wrap(&mut s, idx)
    }

    /// Existential quantification over whole domains.
    pub fn exist_domains(&self, doms: &[DomainId]) -> Bdd {
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let vars: Vec<Level> = doms
            .iter()
            .flat_map(|d| s.domains[d.0].bits.clone())
            .collect();
        let idx = s.exist(self.idx, &vars);
        self.wrap(&mut s, idx)
    }

    /// Universal quantification over the given variable levels
    /// (`∀x. f  =  ¬∃x. ¬f`).
    pub fn forall(&self, vars: &[Level]) -> Bdd {
        self.not().exist(vars).not()
    }

    /// Restricts variables to constants: the generalized cofactor
    /// `f[x := v, ...]` for the given `(level, value)` assignments.
    pub fn restrict(&self, assignment: &[(Level, bool)]) -> Bdd {
        let mgr = self.mgr();
        let mut cube = mgr.one();
        for &(level, value) in assignment {
            let lit = if value {
                mgr.ithvar(level)
            } else {
                mgr.nithvar(level)
            };
            cube = cube.and(&lit);
        }
        let levels: Vec<Level> = assignment.iter().map(|&(l, _)| l).collect();
        self.relprod(&cube, &levels)
    }

    /// The relational product `∃ vars. (self ∧ other)` in a single pass —
    /// the workhorse of Datalog joins (BDD `relprod`).
    ///
    /// # Example
    ///
    /// Composing two edge relations into a two-step reachability relation:
    ///
    /// ```
    /// use whale_bdd::{BddManager, DomainSpec, OrderSpec};
    /// # fn main() -> Result<(), whale_bdd::BddError> {
    /// let mgr = BddManager::with_domains(
    ///     &[DomainSpec::new("A", 64), DomainSpec::new("B", 64), DomainSpec::new("C", 64)],
    ///     &OrderSpec::parse("AxBxC")?,
    /// )?;
    /// let (a, b, c) = (mgr.domain("A").unwrap(), mgr.domain("B").unwrap(), mgr.domain("C").unwrap());
    /// let ab = mgr.domain_add_const(a, b, 1); // b = a + 1
    /// let bc = mgr.domain_add_const(b, c, 2); // c = b + 2
    /// let ac = ab.relprod_domains(&bc, &[b]); // ∃b: c = a + 3
    /// assert_eq!(ac, mgr.domain_add_const(a, c, 3));
    /// # Ok(())
    /// # }
    /// ```
    pub fn relprod(&self, other: &Bdd, vars: &[Level]) -> Bdd {
        self.same_store(other);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let idx = s.relprod(self.idx, other.idx, vars);
        self.wrap(&mut s, idx)
    }

    /// [`Bdd::relprod`] quantifying whole domains.
    pub fn relprod_domains(&self, other: &Bdd, doms: &[DomainId]) -> Bdd {
        self.same_store(other);
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let vars: Vec<Level> = doms
            .iter()
            .flat_map(|d| s.domains[d.0].bits.clone())
            .collect();
        let idx = s.relprod(self.idx, other.idx, &vars);
        self.wrap(&mut s, idx)
    }

    /// Renames whole domains: each `(from, to)` pair moves the function's
    /// dependence on `from`'s variables onto `to`'s variables (BDD
    /// `replace`).
    ///
    /// # Example
    ///
    /// ```
    /// use whale_bdd::{BddManager, DomainSpec, OrderSpec};
    /// # fn main() -> Result<(), whale_bdd::BddError> {
    /// let mgr = BddManager::with_domains(
    ///     &[DomainSpec::new("V0", 32), DomainSpec::new("V1", 32)],
    ///     &OrderSpec::parse("V0xV1")?,
    /// )?;
    /// let (v0, v1) = (mgr.domain("V0").unwrap(), mgr.domain("V1").unwrap());
    /// let f = mgr.domain_range(v0, 5, 9);
    /// assert_eq!(f.replace(&[(v0, v1)]), mgr.domain_range(v1, 5, 9));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if widths differ, or if the rename is non-monotone *and* a
    /// target domain overlaps the support (see [`Bdd::try_replace`]).
    pub fn replace(&self, pairs: &[(DomainId, DomainId)]) -> Bdd {
        self.try_replace(pairs)
            .expect("replace: target variables overlap support in non-monotone rename")
    }

    /// Fallible version of [`Bdd::replace`].
    ///
    /// # Errors
    ///
    /// [`BddError::BitWidthMismatch`] if a pair has different widths;
    /// [`BddError::ReplaceTargetInSupport`] if the rename is non-monotone
    /// and a target variable is in the support (the conjoin-and-quantify
    /// fallback would then be unsound).
    pub fn try_replace(&self, pairs: &[(DomainId, DomainId)]) -> Result<Bdd, BddError> {
        let level_pairs: Vec<(Level, Level)> = {
            let s = self.store.borrow();
            let mut lp = Vec::new();
            for &(from, to) in pairs {
                let (fb, tb) = (&s.domains[from.0].bits, &s.domains[to.0].bits);
                if fb.len() != tb.len() {
                    return Err(BddError::BitWidthMismatch {
                        left: s.domains[from.0].name.clone(),
                        right: s.domains[to.0].name.clone(),
                    });
                }
                lp.extend(fb.iter().copied().zip(tb.iter().copied()));
            }
            lp
        };
        self.try_replace_levels(&level_pairs)
    }

    /// Renames individual variable levels.
    ///
    /// Uses a fast recursive pass when the mapping is monotone on the
    /// support; otherwise falls back to `∃ from. (self ∧ eq(from, to))`,
    /// which requires the target variables to be absent from the support.
    ///
    /// # Errors
    ///
    /// [`BddError::ReplaceTargetInSupport`] when neither strategy applies.
    pub fn try_replace_levels(&self, pairs: &[(Level, Level)]) -> Result<Bdd, BddError> {
        let pairs: Vec<(Level, Level)> = pairs.iter().copied().filter(|&(f, t)| f != t).collect();
        if pairs.is_empty() {
            return Ok(self.clone());
        }
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        let support = s.support(self.idx);
        // Pairs whose source is not in the support are no-ops.
        let live_pairs: Vec<(Level, Level)> = pairs
            .iter()
            .copied()
            .filter(|&(f, _)| support.binary_search(&f).is_ok())
            .collect();
        if live_pairs.is_empty() {
            let idx = self.idx;
            return Ok(self.wrap(&mut s, idx));
        }
        if s.replace_is_monotone(&support, &live_pairs) {
            let idx = s.replace_monotone(self.idx, &live_pairs);
            return Ok(self.wrap(&mut s, idx));
        }
        // Fallback: conjoin with an equality relation and quantify sources.
        for &(_, to) in &live_pairs {
            if support.binary_search(&to).is_ok() {
                return Err(BddError::ReplaceTargetInSupport);
            }
        }
        let from_bits: Vec<Level> = live_pairs.iter().map(|&(f, _)| f).collect();
        let to_bits: Vec<Level> = live_pairs.iter().map(|&(_, t)| t).collect();
        s.protect(self.idx);
        let eq = eq_rec(&mut s, &from_bits, &to_bits);
        s.protect(eq);
        let idx = s.relprod(self.idx, eq, &from_bits);
        s.unprotect(2);
        Ok(self.wrap(&mut s, idx))
    }

    /// Fused rename-then-join at variable-level granularity:
    /// `∃ vars. (replace(self, pairs) ∧ other)` in one kernel traversal,
    /// with no intermediate BDD for the renamed operand.
    ///
    /// Returns `None` when the rename is not monotone on the support of
    /// `self` — the single-pass kernel only applies to order-preserving
    /// renames, so the caller must then rename separately (e.g. via
    /// [`Bdd::try_replace_levels`]) and join with [`Bdd::relprod`].
    pub fn fused_replace_relprod_levels(
        &self,
        other: &Bdd,
        pairs: &[(Level, Level)],
        vars: &[Level],
    ) -> Option<Bdd> {
        self.same_store(other);
        let pairs: Vec<(Level, Level)> = pairs.iter().copied().filter(|&(f, t)| f != t).collect();
        let mut s = self.store.borrow_mut();
        s.enter_public_op();
        if pairs.is_empty() {
            let idx = s.relprod(self.idx, other.idx, vars);
            return Some(self.wrap(&mut s, idx));
        }
        let support = s.support(self.idx);
        let live_pairs: Vec<(Level, Level)> = pairs
            .iter()
            .copied()
            .filter(|&(f, _)| support.binary_search(&f).is_ok())
            .collect();
        if !s.replace_is_monotone(&support, &live_pairs) {
            return None;
        }
        let idx = s.replace_relprod(self.idx, other.idx, &live_pairs, vars);
        Some(self.wrap(&mut s, idx))
    }

    /// [`Bdd::fused_replace_relprod_levels`] over whole domains: renames
    /// each `(from, to)` domain pair of `self` while joining with `other`
    /// and quantifying `doms`, in one traversal.
    ///
    /// Returns `None` when the induced level rename is not monotone on the
    /// support (rename separately, then join).
    ///
    /// # Panics
    ///
    /// Panics if a rename pair has mismatched bit widths.
    pub fn fused_replace_relprod_domains(
        &self,
        other: &Bdd,
        pairs: &[(DomainId, DomainId)],
        doms: &[DomainId],
    ) -> Option<Bdd> {
        let (level_pairs, vars) = {
            let s = self.store.borrow();
            let mut lp = Vec::new();
            for &(from, to) in pairs {
                let (fb, tb) = (&s.domains[from.0].bits, &s.domains[to.0].bits);
                assert_eq!(
                    fb.len(),
                    tb.len(),
                    "fused replace+relprod requires equal bit widths ({} vs {})",
                    s.domains[from.0].name,
                    s.domains[to.0].name
                );
                lp.extend(fb.iter().copied().zip(tb.iter().copied()));
            }
            let vars: Vec<Level> = doms
                .iter()
                .flat_map(|d| s.domains[d.0].bits.clone())
                .collect();
            (lp, vars)
        };
        self.fused_replace_relprod_levels(other, &level_pairs, &vars)
    }

    /// `∃ doms. (replace(self, pairs) ∧ other)` — fused into one traversal
    /// when the rename is monotone on the support, composed from
    /// [`Bdd::replace`] and [`Bdd::relprod_domains`] otherwise.
    ///
    /// # Panics
    ///
    /// As [`Bdd::replace`] on the composed fallback path.
    pub fn replace_relprod_domains(
        &self,
        other: &Bdd,
        pairs: &[(DomainId, DomainId)],
        doms: &[DomainId],
    ) -> Bdd {
        self.fused_replace_relprod_domains(other, pairs, doms)
            .unwrap_or_else(|| self.replace(pairs).relprod_domains(other, doms))
    }

    /// Number of satisfying assignments over all manager variables.
    pub fn satcount(&self) -> f64 {
        self.store.borrow().satcount(self.idx)
    }

    /// Number of tuples when `self` is read as a relation over the given
    /// domains (don't-care bits outside those domains are not counted).
    ///
    /// The support must be a subset of the domains' variables.
    pub fn satcount_domains(&self, doms: &[DomainId]) -> f64 {
        let s = self.store.borrow();
        let dom_bits: u32 = doms.iter().map(|d| s.domains[d.0].bits.len() as u32).sum();
        let total = s.satcount(self.idx);
        total / 2f64.powi((s.varcount - dom_bits) as i32)
    }

    /// Exact tuple count over the given domains (saturating at
    /// `u128::MAX`) — unlike [`Bdd::satcount_domains`], no floating-point
    /// rounding at the astronomical counts this analysis produces.
    ///
    /// The support must be a subset of the domains' variables.
    pub fn satcount_domains_exact(&self, doms: &[DomainId]) -> u128 {
        let s = self.store.borrow();
        let vars: Vec<Level> = doms
            .iter()
            .flat_map(|d| s.domains[d.0].bits.clone())
            .collect();
        s.satcount_exact(self.idx, &vars)
    }

    /// Number of distinct internal nodes (the paper's measure of BDD size).
    pub fn node_count(&self) -> usize {
        self.store.borrow().node_count(self.idx)
    }

    /// The support: variables the function depends on, numerically
    /// ascending (variable numbers are stable under reordering).
    pub fn support(&self) -> Vec<Level> {
        self.store.borrow_mut().support(self.idx)
    }

    /// Internal node list with children before parents (ordered BDDs have
    /// strictly increasing levels toward the leaves, so sorting by level
    /// descending suffices): `(id, variable, low_id, high_id)`. Nodes carry
    /// the stable *variable* number, not the current level, so a dump is
    /// meaningful under any order.
    pub(crate) fn dump_nodes(&self) -> Vec<(u64, u32, u64, u64)> {
        let s = self.store.borrow();
        if self.idx <= 1 {
            return Vec::new();
        }
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![self.idx];
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if u <= 1 || !visited.insert(u) {
                continue;
            }
            out.push((u as u64, s.level(u), s.low(u) as u64, s.high(u) as u64));
            stack.push(s.low(u));
            stack.push(s.high(u));
        }
        out.sort_by_key(|n| std::cmp::Reverse(n.1));
        out.iter()
            .map(|&(id, lvl, lo, hi)| (id, s.order.var_at(lvl), lo, hi))
            .collect()
    }

    /// The root's raw id (`0`/`1` for terminals), paired with
    /// [`Bdd::dump_nodes`] by the serializer.
    pub(crate) fn root_token(&self) -> u64 {
        self.idx as u64
    }

    /// Decodes the relation into concrete tuples over the given domains.
    ///
    /// Intended for inspecting results (queries, tests); counting should use
    /// [`Bdd::satcount_domains`]. Tuples are produced in lexicographic
    /// variable-level order.
    ///
    /// # Panics
    ///
    /// Panics if the support is not covered by the domains' variables.
    pub fn tuples(&self, doms: &[DomainId]) -> Vec<Vec<u64>> {
        let s = self.store.borrow();
        // Union of the domains' variables, translated to current levels and
        // sorted — the cube enumeration walks the order top-down — with
        // decode positions mapping each domain bit back into that list.
        let mut levels: Vec<Level> = Vec::new();
        for d in doms {
            levels.extend(s.domains[d.0].bits.iter().map(|&v| s.order.level_of(v)));
        }
        levels.sort_unstable();
        levels.dedup();
        let positions: Vec<Vec<(usize, u32)>> = doms
            .iter()
            .map(|d| {
                s.domains[d.0]
                    .bits
                    .iter()
                    .enumerate()
                    .map(|(sig, &var)| {
                        let ix = levels
                            .binary_search(&s.order.level_of(var))
                            .expect("level present");
                        (ix, sig as u32)
                    })
                    .collect()
            })
            .collect();
        let mut out = Vec::new();
        for_each_sat(&s, self.idx, &levels, &mut |assignment| {
            out.push(decode_tuple(assignment, &positions));
        });
        out
    }

    /// Calls `cb` for every tuple of the relation (see [`Bdd::tuples`]).
    pub fn for_each_tuple(&self, doms: &[DomainId], mut cb: impl FnMut(&[u64])) {
        // Collected first so the callback runs without the store borrowed
        // (it may drop other handles).
        for t in self.tuples(doms) {
            cb(&t);
        }
    }
}

impl Clone for Bdd {
    fn clone(&self) -> Self {
        self.store.borrow_mut().inc_ref(self.idx);
        Bdd {
            store: self.store.clone(),
            idx: self.idx,
        }
    }
}

impl Drop for Bdd {
    fn drop(&mut self) {
        // The store is never borrowed across a user callback, so this
        // normally succeeds; if it ever fails the reference is leaked, which
        // is safe (the node merely survives future collections).
        if let Ok(mut s) = self.store.try_borrow_mut() {
            s.dec_ref(self.idx);
        }
    }
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx && Rc::ptr_eq(&self.store, &other.store)
    }
}

impl Eq for Bdd {}

impl std::hash::Hash for Bdd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.idx.hash(state);
    }
}

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            write!(f, "Bdd(false)")
        } else if self.is_one() {
            write!(f, "Bdd(true)")
        } else {
            write!(f, "Bdd(node {}, {} nodes)", self.idx, self.node_count())
        }
    }
}
