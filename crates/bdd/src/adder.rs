//! The O(bits) adder relation `{(x, y) | y = x + c}` between two domains.
//!
//! Algorithm 4 of the paper computes the contexts of callees by "adding a
//! constant to the contexts of the callers", noting that "this operation is
//! also cheap in BDDs". This module is that operation: a ripple-carry
//! construction memoized on (bit index, carry), so the resulting BDD has
//! O(bits) distinct subfunctions regardless of the constant.

use crate::store::{Store, ONE, ZERO};
use crate::Level;
use std::collections::HashMap;

/// Builds the relation `y = x + c` (no wrap-around: assignments that would
/// overflow the bit width are excluded) over two equally wide bit vectors,
/// least-significant bit first.
pub(crate) fn add_const_rec(store: &mut Store, xbits: &[Level], ybits: &[Level], c: u64) -> u32 {
    debug_assert_eq!(xbits.len(), ybits.len());
    let n = xbits.len();
    let mut memo: HashMap<(usize, u8), u32> = HashMap::new();
    let mut protected = 0usize;
    let res = rec(store, xbits, ybits, c, 0, 0, n, &mut memo, &mut protected);
    store.unprotect(protected);
    res
}

#[allow(clippy::too_many_arguments)]
fn rec(
    store: &mut Store,
    xbits: &[Level],
    ybits: &[Level],
    c: u64,
    k: usize,
    carry: u8,
    n: usize,
    memo: &mut HashMap<(usize, u8), u32>,
    protected: &mut usize,
) -> u32 {
    if k == n {
        // A remaining carry means overflow past the most significant bit.
        return if carry == 0 { ONE } else { ZERO };
    }
    if let Some(&r) = memo.get(&(k, carry)) {
        return r;
    }
    let cb = ((c >> k) & 1) as u8;

    // Both recursive calls run first: they push their memoized results onto
    // the protection stack, and interleaving those pushes with this frame's
    // own (strictly LIFO) pushes would unprotect the wrong nodes below.
    let s0 = cb + carry;
    let s1 = 1 + cb + carry;
    let sub0 = rec(store, xbits, ybits, c, k + 1, s0 >> 1, n, memo, protected);
    let sub1 = rec(store, xbits, ybits, c, k + 1, s1 >> 1, n, memo, protected);
    // sub0/sub1 are terminals or memo entries, hence already protected.

    let y0 = lit(store, ybits[k], s0 & 1 == 1);
    store.protect(y0);
    let b0 = store.and_rec(y0, sub0);
    store.protect(b0);
    let y1 = lit(store, ybits[k], s1 & 1 == 1);
    store.protect(y1);
    let b1 = store.and_rec(y1, sub1);
    store.protect(b1);
    let x = store.ithvar(xbits[k]);
    store.protect(x);
    let res = store.ite_rec(x, b1, b0);
    store.unprotect(5);
    // Keep memoized results protected until the whole construction is done:
    // a later `mk` may garbage collect, and memo entries are raw indices.
    store.protect(res);
    *protected += 1;
    memo.insert((k, carry), res);
    res
}

fn lit(store: &mut Store, level: Level, positive: bool) -> u32 {
    if positive {
        store.ithvar(level)
    } else {
        store.nithvar(level)
    }
}
