use std::fmt;

/// Errors reported by the BDD kernel and its finite-domain layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A domain name appeared twice in a declaration set.
    DuplicateDomain(String),
    /// An ordering spec referenced a domain that was never declared.
    UnknownDomainInOrder(String),
    /// A declared domain was missing from the ordering spec.
    DomainMissingFromOrder(String),
    /// An ordering spec failed to parse.
    MalformedOrderSpec(String),
    /// A domain was declared with size zero.
    EmptyDomain(String),
    /// A value was out of range for the domain it was encoded into.
    ValueOutOfRange {
        /// Domain name.
        domain: String,
        /// The offending value.
        value: u64,
        /// The domain size.
        size: u64,
    },
    /// Two domains participating in a pairwise operation have different
    /// bit widths.
    BitWidthMismatch {
        /// First domain name.
        left: String,
        /// Second domain name.
        right: String,
    },
    /// A `replace` fallback required the target variables to be absent from
    /// the function's support, but they were present.
    ReplaceTargetInSupport,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::DuplicateDomain(d) => write!(f, "duplicate domain declaration `{d}`"),
            BddError::UnknownDomainInOrder(d) => {
                write!(f, "ordering spec references unknown domain `{d}`")
            }
            BddError::DomainMissingFromOrder(d) => {
                write!(f, "domain `{d}` missing from ordering spec")
            }
            BddError::MalformedOrderSpec(s) => write!(f, "malformed ordering spec `{s}`"),
            BddError::EmptyDomain(d) => write!(f, "domain `{d}` declared with size zero"),
            BddError::ValueOutOfRange {
                domain,
                value,
                size,
            } => write!(
                f,
                "value {value} out of range for domain `{domain}` of size {size}"
            ),
            BddError::BitWidthMismatch { left, right } => write!(
                f,
                "domains `{left}` and `{right}` have different bit widths"
            ),
            BddError::ReplaceTargetInSupport => {
                write!(f, "replace target variables overlap the function's support")
            }
        }
    }
}

impl std::error::Error for BddError {}
