//! Serialization of BDDs to a compact, order-portable text format.
//!
//! The original `bddbddb` cached relations as `.bdd` files between runs;
//! this module provides the same capability. The format is line-based:
//!
//! ```text
//! bdd 2 <varcount> <node-count> <root-id>
//! order <var-at-level-0> <var-at-level-1> ...
//! <id> <variable> <low-id> <high-id>
//! ...
//! ```
//!
//! Node ids are arbitrary (they are remapped on load); ids `0` and `1`
//! denote the terminals. Node lines name stable *variables*, and the
//! `order` line records the writer's level→variable map, so a file written
//! under one variable order decodes correctly under any other (the reader
//! rebuilds through ordinary apply operations). Version-1 files, which
//! predate dynamic reordering, carried levels in the node lines; they are
//! still accepted, with the numbers read as variables — identical for the
//! identity orders every version-1 writer had.
//!
//! Loading validates the variable count and (for version 2) that the
//! persisted order is a permutation of the variables.

use crate::manager::{Bdd, BddManager};
use crate::BddError;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Writes `f` to `out` in the text format above.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bdd<W: Write>(f: &Bdd, mut out: W) -> std::io::Result<()> {
    let mgr = f.manager();
    let nodes = f.dump_nodes();
    writeln!(
        out,
        "bdd 2 {} {} {}",
        mgr.varcount(),
        nodes.len(),
        f.root_token()
    )?;
    let order: Vec<String> = mgr.var_order().iter().map(u32::to_string).collect();
    writeln!(out, "order {}", order.join(" "))?;
    for (id, var, low, high) in nodes {
        writeln!(out, "{id} {var} {low} {high}")?;
    }
    Ok(())
}

/// Reads a BDD written by [`write_bdd`] into `mgr`, which may use a
/// different variable order than the writer did.
///
/// # Errors
///
/// [`BddError::MalformedOrderSpec`] is reused for malformed input
/// (including a version-2 `order` line that is not a permutation of the
/// variables); variable-count mismatches are reported as
/// [`BddError::BitWidthMismatch`].
pub fn read_bdd<R: BufRead>(mgr: &BddManager, input: R) -> Result<Bdd, BddError> {
    let malformed = |m: &str| BddError::MalformedOrderSpec(format!("bdd file: {m}"));
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty input"))?
        .map_err(|e| malformed(&e.to_string()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 5 || parts[0] != "bdd" || !matches!(parts[1], "1" | "2") {
        return Err(malformed("bad header"));
    }
    let version = parts[1];
    let varcount: u32 = parts[2].parse().map_err(|_| malformed("bad varcount"))?;
    if varcount != mgr.varcount() {
        return Err(BddError::BitWidthMismatch {
            left: format!("file({varcount} vars)"),
            right: format!("manager({} vars)", mgr.varcount()),
        });
    }
    let count: usize = parts[3].parse().map_err(|_| malformed("bad node count"))?;
    let root: u64 = parts[4].parse().map_err(|_| malformed("bad root"))?;

    if version == "2" {
        // The writer's level→variable map. The node lines carry variables,
        // so the map is not needed to decode — but it must be a valid
        // permutation or the file is corrupt.
        let line = lines
            .next()
            .ok_or_else(|| malformed("missing order line"))?
            .map_err(|e| malformed(&e.to_string()))?;
        let mut p = line.split_whitespace();
        if p.next() != Some("order") {
            return Err(malformed("missing order line"));
        }
        let mut seen = vec![false; varcount as usize];
        let mut n = 0u32;
        for tok in p {
            let v: u32 = tok.parse().map_err(|_| malformed("bad order entry"))?;
            if v >= varcount || std::mem::replace(&mut seen[v as usize], true) {
                return Err(malformed("order is not a permutation of the variables"));
            }
            n += 1;
        }
        if n != varcount {
            return Err(malformed("order is not a permutation of the variables"));
        }
    }

    let mut map: HashMap<u64, Bdd> = HashMap::new();
    map.insert(0, mgr.zero());
    map.insert(1, mgr.one());
    for _ in 0..count {
        let line = lines
            .next()
            .ok_or_else(|| malformed("truncated node list"))?
            .map_err(|e| malformed(&e.to_string()))?;
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() != 4 {
            return Err(malformed("bad node line"));
        }
        let id: u64 = p[0].parse().map_err(|_| malformed("bad id"))?;
        let var: u32 = p[1].parse().map_err(|_| malformed("bad variable"))?;
        if var >= varcount {
            return Err(malformed("node variable out of range"));
        }
        let low: u64 = p[2].parse().map_err(|_| malformed("bad low"))?;
        let high: u64 = p[3].parse().map_err(|_| malformed("bad high"))?;
        let low_b = map
            .get(&low)
            .ok_or_else(|| malformed("low reference before definition"))?
            .clone();
        let high_b = map
            .get(&high)
            .ok_or_else(|| malformed("high reference before definition"))?
            .clone();
        // mk via ite on the variable: var ? high : low.
        let var = mgr.ithvar(var);
        let node = var.ite(&high_b, &low_b);
        map.insert(id, node);
    }
    map.get(&root)
        .cloned()
        .ok_or_else(|| malformed("root not defined"))
}

/// A plain-data snapshot of a BDD, detached from any manager.
///
/// This is the in-memory form of the `.bdd` text format: a children-first
/// node list naming stable *variables* (not levels), plus the root. Being
/// plain data it is `Send`, which makes it the unit of transfer between
/// solver workers that each own a private [`BddManager`] — the sending
/// side snapshots under whatever order its manager currently uses, the
/// receiving side [`restore`](Self::restore)s through ordinary apply
/// operations, so both sides may reorder freely in between.
#[derive(Clone, Debug)]
pub struct BddSnapshot {
    varcount: u32,
    root: u64,
    nodes: Vec<(u64, u32, u64, u64)>,
}

impl BddSnapshot {
    /// Captures `f` as manager-independent plain data.
    #[must_use]
    pub fn of(f: &Bdd) -> Self {
        BddSnapshot {
            varcount: f.manager().varcount(),
            root: f.root_token(),
            nodes: f.dump_nodes(),
        }
    }

    /// Number of inner nodes captured (terminals excluded). This is the
    /// payload size a transfer ships, independent of either side's order.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rebuilds the snapshot inside `target`.
    ///
    /// Variables are copied one-to-one, so `target` must assign the same
    /// meaning to each variable number as the source manager did — in
    /// practice: construct both from the same `DomainSpec`/`OrderSpec`
    /// pair (variable numbers are fixed at construction). Dynamic
    /// reordering on either side afterwards is harmless, because
    /// variables are stable identities that survive level moves. For
    /// managers with genuinely different layouts use [`transfer`] with an
    /// explicit variable map.
    ///
    /// # Errors
    ///
    /// [`BddError::BitWidthMismatch`] if `target` has a different variable
    /// count than the snapshot's source manager.
    pub fn restore(&self, target: &BddManager) -> Result<Bdd, BddError> {
        if self.varcount != target.varcount() {
            return Err(BddError::BitWidthMismatch {
                left: format!("snapshot({} vars)", self.varcount),
                right: format!("manager({} vars)", target.varcount()),
            });
        }
        let mut map: HashMap<u64, Bdd> = HashMap::new();
        map.insert(0, target.zero());
        map.insert(1, target.one());
        for &(id, var, low, high) in &self.nodes {
            let low_b = map.get(&low).expect("children first").clone();
            let high_b = map.get(&high).expect("children first").clone();
            let node = target.ithvar(var).ite(&high_b, &low_b);
            map.insert(id, node);
        }
        Ok(map.get(&self.root).expect("root present").clone())
    }
}

/// Rebuilds `f` inside another manager, translating variables with
/// `var_map` (source variable → target variable). The rebuild goes through
/// ordinary apply operations, so the target manager may use a completely
/// different variable order — this is the offline form of variable
/// reordering: construct the function once, then transfer it under a
/// better order and compare sizes.
///
/// # Errors
///
/// [`BddError::MalformedOrderSpec`] (reused) if `var_map` is shorter
/// than the source manager's variable count or maps outside the target's.
pub fn transfer(f: &Bdd, target: &BddManager, var_map: &[u32]) -> Result<Bdd, BddError> {
    let bad = |m: &str| BddError::MalformedOrderSpec(format!("transfer: {m}"));
    if (var_map.len() as u32) < f.manager().varcount() {
        return Err(bad("variable map shorter than source varcount"));
    }
    if var_map.iter().any(|&l| l >= target.varcount()) {
        return Err(bad("variable map exceeds target varcount"));
    }
    // Children-first node list lets us rebuild bottom-up with a plain map.
    let nodes = f.dump_nodes();
    let mut map: HashMap<u64, Bdd> = HashMap::new();
    map.insert(0, target.zero());
    map.insert(1, target.one());
    for (id, var, low, high) in nodes {
        let low_b = map.get(&low).expect("children first").clone();
        let high_b = map.get(&high).expect("children first").clone();
        let var = target.ithvar(var_map[var as usize]);
        let node = var.ite(&high_b, &low_b);
        map.insert(id, node);
    }
    // The root is identified by id, not position: several nodes may share
    // the root's level, so the last-emitted node need not be the root.
    Ok(map
        .get(&f.root_token())
        .expect("root present in node list")
        .clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainSpec, OrderSpec};

    fn mgr() -> BddManager {
        BddManager::with_domains(
            &[DomainSpec::new("A", 1000), DomainSpec::new("B", 1000)],
            &OrderSpec::parse("AxB").unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let m = mgr();
        let a = m.domain("A").unwrap();
        let b = m.domain("B").unwrap();
        let f = m.domain_range(a, 17, 600).and(&m.domain_add_const(a, b, 3));
        let mut buf = Vec::new();
        write_bdd(&f, &mut buf).unwrap();
        let g = read_bdd(&m, buf.as_slice()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn roundtrip_constants() {
        let m = mgr();
        for f in [m.zero(), m.one()] {
            let mut buf = Vec::new();
            write_bdd(&f, &mut buf).unwrap();
            assert_eq!(read_bdd(&m, buf.as_slice()).unwrap(), f);
        }
    }

    #[test]
    fn roundtrip_across_managers_same_layout() {
        let m1 = mgr();
        let m2 = mgr();
        let a = m1.domain("A").unwrap();
        let f = m1.domain_range(a, 5, 800);
        let mut buf = Vec::new();
        write_bdd(&f, &mut buf).unwrap();
        let g = read_bdd(&m2, buf.as_slice()).unwrap();
        let a2 = m2.domain("A").unwrap();
        assert_eq!(g, m2.domain_range(a2, 5, 800));
    }

    #[test]
    fn varcount_mismatch_rejected() {
        let m1 = mgr();
        let m2 = BddManager::with_vars(3);
        let f = m1.one();
        let mut buf = Vec::new();
        write_bdd(&f, &mut buf).unwrap();
        assert!(matches!(
            read_bdd(&m2, buf.as_slice()),
            Err(BddError::BitWidthMismatch { .. })
        ));
    }

    #[test]
    fn transfer_between_orders_preserves_relation() {
        // Same domains, opposite layouts: A then B vs B then A.
        let m1 = BddManager::with_domains(
            &[DomainSpec::new("A", 256), DomainSpec::new("B", 256)],
            &OrderSpec::parse("A_B").unwrap(),
        )
        .unwrap();
        let m2 = BddManager::with_domains(
            &[DomainSpec::new("A", 256), DomainSpec::new("B", 256)],
            &OrderSpec::parse("B_A").unwrap(),
        )
        .unwrap();
        let (a1, b1) = (m1.domain("A").unwrap(), m1.domain("B").unwrap());
        let (a2, b2) = (m2.domain("A").unwrap(), m2.domain("B").unwrap());
        let f = m1
            .domain_add_const(a1, b1, 5)
            .and(&m1.domain_range(a1, 10, 200));
        // level_map: bit k of A in m1 -> bit k of A in m2, same for B.
        let mut map = vec![0u32; m1.varcount() as usize];
        for (from, to) in m1.domain_levels(a1).iter().zip(m2.domain_levels(a2)) {
            map[*from as usize] = to;
        }
        for (from, to) in m1.domain_levels(b1).iter().zip(m2.domain_levels(b2)) {
            map[*from as usize] = to;
        }
        let g = transfer(&f, &m2, &map).unwrap();
        let expected = m2
            .domain_add_const(a2, b2, 5)
            .and(&m2.domain_range(a2, 10, 200));
        assert_eq!(g, expected);
        // The interleaved source order shares adder structure better than
        // the split target order: sizes differ, the function does not.
        assert_eq!(
            g.satcount_domains_exact(&[a2, b2]),
            f.satcount_domains_exact(&[a1, b1])
        );
    }

    #[test]
    fn transfer_terminals_and_validation() {
        let m1 = BddManager::with_vars(4);
        let m2 = BddManager::with_vars(4);
        let map = [0u32, 1, 2, 3];
        assert_eq!(transfer(&m1.zero(), &m2, &map).unwrap(), m2.zero());
        assert_eq!(transfer(&m1.one(), &m2, &map).unwrap(), m2.one());
        assert!(transfer(&m1.ithvar(0), &m2, &[0, 1]).is_err());
        assert!(transfer(&m1.ithvar(0), &m2, &[9, 9, 9, 9]).is_err());
    }

    #[test]
    fn snapshot_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BddSnapshot>();
    }

    #[test]
    fn snapshot_restores_across_same_layout_managers() {
        // Two managers from the same spec/order assign identical variable
        // numbers, so a snapshot carries over with no explicit map — the
        // worker-transfer shape.
        let m1 = mgr();
        let m2 = mgr();
        let (a1, b1) = (m1.domain("A").unwrap(), m1.domain("B").unwrap());
        let (a2, b2) = (m2.domain("A").unwrap(), m2.domain("B").unwrap());
        let f = m1
            .domain_add_const(a1, b1, 5)
            .and(&m1.domain_range(a1, 10, 200));
        let snap = BddSnapshot::of(&f);
        assert!(snap.node_count() > 0);
        let g = snap.restore(&m2).unwrap();
        let expected = m2
            .domain_add_const(a2, b2, 5)
            .and(&m2.domain_range(a2, 10, 200));
        assert_eq!(g, expected);
    }

    #[test]
    fn snapshot_survives_reordering_on_both_sides() {
        let m1 = mgr();
        let m2 = mgr();
        let a = m1.domain("A").unwrap();
        let b = m1.domain("B").unwrap();
        let f = m1
            .domain_add_const(a, b, 3)
            .and(&m1.domain_range(a, 17, 600));
        // Sift the *source* before snapshotting and the *target* before
        // restoring: variables are stable identities, so neither matters.
        m1.reorder_sift();
        let snap = BddSnapshot::of(&f);
        m2.reorder_sift();
        let g = snap.restore(&m2).unwrap();
        let (a2, b2) = (m2.domain("A").unwrap(), m2.domain("B").unwrap());
        let expected = m2
            .domain_add_const(a2, b2, 3)
            .and(&m2.domain_range(a2, 17, 600));
        assert_eq!(g, expected);
    }

    #[test]
    fn snapshot_terminals_and_mismatch() {
        let m = mgr();
        let m3 = BddManager::with_vars(3);
        for f in [m.zero(), m.one()] {
            let snap = BddSnapshot::of(&f);
            assert_eq!(snap.node_count(), 0);
            assert_eq!(snap.restore(&m).unwrap(), f);
            assert!(matches!(
                snap.restore(&m3),
                Err(BddError::BitWidthMismatch { .. })
            ));
        }
    }

    #[test]
    fn malformed_rejected() {
        let m = mgr();
        assert!(read_bdd(&m, "nope".as_bytes()).is_err());
        assert!(read_bdd(&m, "".as_bytes()).is_err());
        assert!(read_bdd(&m, "bdd 1 20 1 5\n5 0 9 1".as_bytes()).is_err());
    }
}
