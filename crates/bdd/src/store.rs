//! The node store: unique table, reference counting, garbage collection and
//! the recursive implementations of every BDD operation.
//!
//! The design follows BuDDy: nodes live in one flat array, the unique table
//! is a bucket array with intrusive hash chains (`Node::next`), external
//! references are per-node refcounts maintained by the RAII [`crate::Bdd`]
//! handles, and the kernel protects its own intermediate results on an
//! explicit `refstack` so that garbage collection can run in the middle of an
//! operation when the node table fills up.

use crate::cache::{Cache, CacheStats, NIL};
use crate::domain::DomainData;
use crate::order::{ReorderStats, VarOrder};
use crate::sat::NodeMemo;
use crate::Level;
use std::collections::HashMap;

/// Index of the constant `false` node.
pub(crate) const ZERO: u32 = 0;
/// Index of the constant `true` node.
pub(crate) const ONE: u32 = 1;
/// Level assigned to the two terminal nodes; orders below every variable.
pub(crate) const TERM_LEVEL: u32 = u32::MAX;

#[derive(Clone, Copy)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) low: u32,
    pub(crate) high: u32,
    pub(crate) refcount: u32,
    pub(crate) next: u32,
}

const FREE_NODE: Node = Node {
    level: TERM_LEVEL,
    low: NIL,
    high: NIL,
    refcount: 0,
    next: NIL,
};

/// Bytes per node slot — the basis of `BddStats::peak_bytes`.
pub const NODE_BYTES: usize = std::mem::size_of::<Node>();

/// Default max-growth factor of a sifting pass: a sweep direction is
/// abandoned once the table exceeds this multiple of the best size seen
/// for the block being sifted (Rudell's bound; BuDDy ships 1.2 as well).
pub(crate) const DEFAULT_MAX_GROWTH: f64 = 1.2;

/// Binary apply operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Diff,
}

impl Op {
    #[inline]
    fn tag(self) -> u32 {
        match self {
            Op::And => 1,
            Op::Or => 2,
            Op::Xor => 3,
            Op::Diff => 4,
        }
    }
}

const NOT_TAG: u32 = 5;

/// Resolved cache-sizing policy of one store (derived from
/// [`crate::BddManagerOptions`]). With `adaptive` off, caches grow only
/// from [`Store::grow`] at the historical table-proportional sizes; with it
/// on, each cache additionally grows on its own eviction pressure and
/// shrinks back after a reordering pass collapses the table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CachePolicy {
    pub(crate) adaptive: bool,
    /// Evictions/misses ratio (within one pressure window) above which a
    /// cache doubles.
    pub(crate) grow_eviction_ratio: f64,
    /// Misses that close a pressure window and trigger a sizing decision.
    pub(crate) adapt_window: u64,
    /// Minimum window-hit-rate improvement a doubling must deliver; below
    /// it the cache is declared saturated (misses are compulsory) and
    /// growth stops until the next full cache clear.
    pub(crate) grow_min_hit_gain: f64,
    /// Hard cap on any cache's log2 entry count.
    pub(crate) max_log2: u32,
    /// Floor on any cache's log2 entry count (shrink never goes below).
    pub(crate) min_log2: u32,
    /// Shrink caches back to table-proportional sizes after a sifting pass
    /// that moved anything (the caches were just cleared, so this is free).
    pub(crate) shrink_after_reorder: bool,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            adaptive: true,
            grow_eviction_ratio: 0.5,
            adapt_window: 1 << 13,
            grow_min_hit_gain: 0.01,
            max_log2: 23,
            min_log2: 12,
            shrink_after_reorder: true,
        }
    }
}

/// Sequence-tag space of the `appex_cache`: `exist` uses `varset_id * 2`,
/// `relprod` uses `varset_id * 2 + 1`, and the fused replace+relprod kernel
/// uses `FUSED_SEQ_BASE | fused_id` — the high bit keeps the three tag
/// families disjoint so entries of different operations can never collide.
const FUSED_SEQ_BASE: u32 = 0x8000_0000;

pub(crate) struct Store {
    pub(crate) nodes: Vec<Node>,
    marks: Vec<bool>,
    buckets: Vec<u32>,
    bucket_mask: usize,
    free_head: u32,
    free_count: usize,
    pub(crate) varcount: u32,
    refstack: Vec<u32>,
    apply_cache: Cache,
    ite_cache: Cache,
    appex_cache: Cache,
    replace_cache: Cache,
    /// Client operation cache: memoizes whole-operation results for the
    /// library's caller (the Datalog engine's relation-level joins), keyed
    /// by `(root a, root b | NIL, client tag)`. It shares the kernel
    /// caches' lifecycle — revalidated after GC, cleared by reordering —
    /// so a warm entry always names live nodes.
    client_cache: Cache,
    /// Cache-sizing policy (see [`CachePolicy`]).
    pub(crate) policy: CachePolicy,
    /// Registered quantification variable sets: stable ids let the
    /// exist/relprod caches persist across calls (BuDDy's varset scheme).
    varset_ids: HashMap<Vec<Level>, u32>,
    /// Registered replace permutations, likewise.
    perm_ids: HashMap<Vec<(Level, Level)>, u32>,
    /// Registered (varset id, perm id) pairs of fused replace+relprod
    /// calls, so fused results stay cached across calls too.
    fused_ids: HashMap<(u32, u32), u32>,
    /// Membership bitmap for the variable set of the current quantification.
    quant_set: Vec<bool>,
    /// Largest quantified level in the current quantification.
    quant_last: u32,
    /// Level permutation for the current replace call.
    perm: Vec<u32>,
    /// Smallest level at and below which `perm` is the identity — the fused
    /// kernel's license to fall back to the plain AND recursion.
    perm_tail: u32,
    pub(crate) gc_runs: usize,
    pub(crate) peak_live: usize,
    pub(crate) domains: Vec<DomainData>,
    pub(crate) domain_names: HashMap<String, usize>,
    /// Level↔variable bijection; public API speaks variables, nodes carry
    /// levels, and dynamic reordering permutes this mapping.
    pub(crate) order: VarOrder,
    /// Live-node threshold that arms an automatic sift (None = disabled).
    pub(crate) auto_reorder_threshold: Option<usize>,
    /// Armed by `reclaim` when the threshold is crossed; fired at the next
    /// public operation entry, where the refstack is empty.
    auto_reorder_pending: bool,
    pub(crate) reorder_runs: usize,
}

#[inline]
fn hash3(a: u32, b: u32, c: u32) -> usize {
    let mut h = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = h.wrapping_add((b as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    h = h.wrapping_add((c as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    h ^= h >> 31;
    h as usize
}

impl Store {
    pub(crate) fn new(varcount: u32, initial_capacity: usize) -> Self {
        let capacity = initial_capacity.next_power_of_two().max(1 << 12);
        let mut nodes = vec![FREE_NODE; capacity];
        nodes[ZERO as usize] = Node {
            level: TERM_LEVEL,
            low: ZERO,
            high: ZERO,
            refcount: 1,
            next: NIL,
        };
        nodes[ONE as usize] = Node {
            level: TERM_LEVEL,
            low: ONE,
            high: ONE,
            refcount: 1,
            next: NIL,
        };
        // Chain all remaining nodes into the free list.
        let mut free_head = NIL;
        for i in (2..capacity).rev() {
            nodes[i].next = free_head;
            free_head = i as u32;
        }
        Store {
            nodes,
            marks: vec![false; capacity],
            buckets: vec![NIL; capacity],
            bucket_mask: capacity - 1,
            free_head,
            free_count: capacity - 2,
            varcount,
            refstack: Vec::with_capacity(1024),
            // The apply cache is the one with measured capacity misses
            // (~35% hit rate), so it evicts by generation age; the others
            // are compulsory-miss dominated and keep round-robin.
            apply_cache: Cache::new_aged(16),
            ite_cache: Cache::new(14),
            appex_cache: Cache::new(16),
            replace_cache: Cache::new(15),
            client_cache: Cache::new(12),
            policy: CachePolicy::default(),
            varset_ids: HashMap::new(),
            perm_ids: HashMap::new(),
            fused_ids: HashMap::new(),
            quant_set: vec![false; varcount as usize],
            quant_last: 0,
            perm: (0..varcount).collect(),
            perm_tail: 0,
            gc_runs: 0,
            peak_live: 0,
            domains: Vec::new(),
            domain_names: HashMap::new(),
            order: VarOrder::new(varcount),
            auto_reorder_threshold: None,
            auto_reorder_pending: false,
            reorder_runs: 0,
        }
    }

    // ----- basic accessors -------------------------------------------------

    #[inline]
    pub(crate) fn level(&self, f: u32) -> u32 {
        self.nodes[f as usize].level
    }

    #[inline]
    pub(crate) fn low(&self, f: u32) -> u32 {
        self.nodes[f as usize].low
    }

    #[inline]
    pub(crate) fn high(&self, f: u32) -> u32 {
        self.nodes[f as usize].high
    }

    #[inline]
    fn is_term(&self, f: u32) -> bool {
        f <= ONE
    }

    pub(crate) fn live_count(&self) -> usize {
        self.nodes.len() - 2 - self.free_count
    }

    // ----- external reference counting ------------------------------------

    pub(crate) fn inc_ref(&mut self, f: u32) {
        let rc = &mut self.nodes[f as usize].refcount;
        *rc = rc.saturating_add(1);
    }

    pub(crate) fn dec_ref(&mut self, f: u32) {
        let rc = &mut self.nodes[f as usize].refcount;
        debug_assert!(*rc > 0, "refcount underflow on node {f}");
        if *rc != u32::MAX {
            *rc -= 1;
        }
    }

    #[inline]
    fn push_ref(&mut self, f: u32) -> u32 {
        self.refstack.push(f);
        f
    }

    #[inline]
    fn pop_ref(&mut self, n: usize) {
        let len = self.refstack.len();
        self.refstack.truncate(len - n);
    }

    /// Protects `f` from garbage collection until the matching
    /// [`Store::unprotect`]. Used by multi-step constructions outside this
    /// module (domain encodings, the adder) whose intermediates are not yet
    /// externally referenced.
    #[inline]
    pub(crate) fn protect(&mut self, f: u32) {
        self.push_ref(f);
    }

    /// Releases the last `n` protections.
    #[inline]
    pub(crate) fn unprotect(&mut self, n: usize) {
        self.pop_ref(n);
    }

    // ----- unique table ----------------------------------------------------

    /// Finds or creates the node `(level, low, high)`.
    ///
    /// `low` and `high` must be protected (externally referenced, on the
    /// refstack, or reachable from such a node): this call may garbage
    /// collect.
    pub(crate) fn mk(&mut self, level: u32, low: u32, high: u32) -> u32 {
        if low == high {
            return low;
        }
        debug_assert!(level < self.varcount);
        debug_assert!(
            level < self.level(low) && level < self.level(high),
            "mk: ordering violated (level {level} vs children {}/{})",
            self.level(low),
            self.level(high)
        );
        let mut slot = hash3(level, low, high) & self.bucket_mask;
        let mut cur = self.buckets[slot];
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.level == level && n.low == low && n.high == high {
                return cur;
            }
            cur = n.next;
        }
        if self.free_head == NIL {
            self.push_ref(low);
            self.push_ref(high);
            self.reclaim();
            self.pop_ref(2);
            // Buckets may have been rebuilt / resized.
            slot = hash3(level, low, high) & self.bucket_mask;
            // The node cannot have appeared: GC only removes nodes.
        }
        let idx = self.free_head;
        self.free_head = self.nodes[idx as usize].next;
        self.free_count -= 1;
        self.nodes[idx as usize] = Node {
            level,
            low,
            high,
            refcount: 0,
            next: self.buckets[slot],
        };
        self.buckets[slot] = idx;
        idx
    }

    /// Runs a garbage collection and grows the table if it is still mostly
    /// full afterwards.
    fn reclaim(&mut self) {
        self.gc();
        if self.free_count < self.nodes.len() / 4 {
            self.grow();
        }
        if let Some(t) = self.auto_reorder_threshold {
            if self.live_count() >= t {
                // Can't sift here — the refstack holds an operation's
                // intermediates. Arm the trigger; the next public entry
                // point runs the pass.
                self.auto_reorder_pending = true;
            }
        }
    }

    pub(crate) fn gc(&mut self) {
        self.peak_live = self.peak_live.max(self.live_count());
        // Mark phase: externally referenced nodes and the kernel refstack.
        for i in 2..self.nodes.len() {
            if self.nodes[i].refcount > 0 && self.nodes[i].low != NIL {
                self.mark(i as u32);
            }
        }
        let roots: Vec<u32> = self.refstack.clone();
        for r in roots {
            self.mark(r);
        }
        // Sweep phase: rebuild the unique table and the free list.
        let live_before = self.live_count();
        self.buckets.fill(NIL);
        self.free_head = NIL;
        self.free_count = 0;
        for i in (2..self.nodes.len()).rev() {
            if self.marks[i] {
                self.marks[i] = false;
                let n = self.nodes[i];
                let slot = hash3(n.level, n.low, n.high) & self.bucket_mask;
                self.nodes[i].next = self.buckets[slot];
                self.buckets[slot] = i as u32;
            } else {
                self.nodes[i] = FREE_NODE;
                self.nodes[i].next = self.free_head;
                self.free_head = i as u32;
                self.free_count += 1;
            }
        }
        let freed = live_before - self.live_count();
        if freed > 0 {
            // Generation-tagged invalidation: entries whose operands and
            // result all survived are re-tagged and stay warm; everything
            // else goes stale before its node slots can be reallocated. A
            // sweep that freed nothing leaves the caches untouched — every
            // memoized result is still valid.
            self.revalidate_caches();
        }
        self.gc_runs += 1;
    }

    /// Re-tags the operation caches after a node-freeing sweep. Freed
    /// slots are reset to `FREE_NODE` (whose `low` is `NIL`), which is the
    /// liveness test.
    fn revalidate_caches(&mut self) {
        let nodes = &self.nodes;
        let live = |x: u32| x <= ONE || nodes[x as usize].low != NIL;
        // Key layouts: apply is (node, node|NIL, op tag), ite is
        // (node, node, node), appex is (node, node|NIL, seq tag), replace
        // is (node, NIL, seq tag).
        self.apply_cache.revalidate(live, true, false);
        self.ite_cache.revalidate(live, true, true);
        self.appex_cache.revalidate(live, true, false);
        self.replace_cache.revalidate(live, false, false);
        // Client entries are (node, node|NIL, opaque tag).
        self.client_cache.revalidate(live, true, false);
    }

    /// Drops every memoized operation result (O(1) generation bumps).
    pub(crate) fn clear_caches(&mut self) {
        for c in [
            &mut self.apply_cache,
            &mut self.ite_cache,
            &mut self.appex_cache,
            &mut self.replace_cache,
            &mut self.client_cache,
        ] {
            c.clear();
            // All memoized state is gone: the adaptive policy's saturation
            // verdict no longer describes the upcoming miss stream.
            c.reset_adapt();
        }
    }

    /// Cumulative per-cache counters:
    /// `(apply, ite, appex, replace, client)`.
    pub(crate) fn cache_stats(
        &self,
    ) -> (CacheStats, CacheStats, CacheStats, CacheStats, CacheStats) {
        (
            self.apply_cache.stats,
            self.ite_cache.stats,
            self.appex_cache.stats,
            self.replace_cache.stats,
            self.client_cache.stats,
        )
    }

    /// Bytes currently held by all five operation caches.
    pub(crate) fn cache_bytes(&self) -> usize {
        self.apply_cache.bytes()
            + self.ite_cache.bytes()
            + self.appex_cache.bytes()
            + self.replace_cache.bytes()
            + self.client_cache.bytes()
    }

    // ----- client operation cache ------------------------------------------

    /// Looks up a client-memoized result for `(a, b, tag)`.
    pub(crate) fn client_get(&mut self, a: u32, b: u32, tag: u32) -> Option<u32> {
        self.client_cache.get(a, b, tag)
    }

    /// Memoizes `res` as the client result of `(a, b, tag)`. All node
    /// arguments must be externally referenced (they are `Bdd` roots), so
    /// revalidation keeps the entry exactly as long as they stay live.
    pub(crate) fn client_put(&mut self, a: u32, b: u32, tag: u32, res: u32) {
        self.client_cache.put(a, b, tag, res);
    }

    // ----- adaptive cache sizing -------------------------------------------

    /// Public-operation entry hook: fires a pending automatic reorder and
    /// lets the adaptive policy inspect each cache's eviction pressure.
    /// Both actions are only safe here, where the refstack is empty.
    pub(crate) fn enter_public_op(&mut self) {
        self.maybe_auto_reorder();
        if self.policy.adaptive {
            self.adapt_caches();
        }
    }

    /// One adaptive-sizing decision per cache whose pressure window has
    /// closed — see [`Cache::adapt`] for the grow/saturate rules.
    fn adapt_caches(&mut self) {
        let p = self.policy;
        for c in [
            &mut self.apply_cache,
            &mut self.ite_cache,
            &mut self.appex_cache,
            &mut self.replace_cache,
            &mut self.client_cache,
        ] {
            c.adapt(
                p.adapt_window,
                p.grow_eviction_ratio,
                p.grow_min_hit_gain,
                p.max_log2,
            );
        }
    }

    /// Shrinks every cache back to a live-node-proportional size. Called
    /// right after a reordering pass cleared the caches (so no entries need
    /// rehashing and the resize is a pure reallocation), undoing adaptive
    /// growth whose working set the reorder just collapsed.
    fn shrink_caches_to_live(&mut self) {
        let p = self.policy;
        let live = self.live_count().max(1);
        let base = (live.next_power_of_two().trailing_zeros() + 1).clamp(p.min_log2, p.max_log2);
        let floor = |x: u32| x.max(p.min_log2);
        self.apply_cache
            .resize(self.apply_cache.log2_size().min(base));
        self.appex_cache
            .resize(self.appex_cache.log2_size().min(base));
        self.ite_cache.resize(
            self.ite_cache
                .log2_size()
                .min(floor(base.saturating_sub(2))),
        );
        self.replace_cache.resize(
            self.replace_cache
                .log2_size()
                .min(floor(base.saturating_sub(1))),
        );
        self.client_cache
            .resize(self.client_cache.log2_size().min(base));
        for c in [
            &mut self.apply_cache,
            &mut self.ite_cache,
            &mut self.appex_cache,
            &mut self.replace_cache,
            &mut self.client_cache,
        ] {
            c.end_window();
        }
    }

    fn mark(&mut self, f: u32) {
        if self.is_term(f) || self.marks[f as usize] {
            return;
        }
        // Iterative DFS: BDD depth is bounded by varcount but width is not,
        // and an explicit stack avoids any risk with very tall orderings.
        let mut stack = vec![f];
        while let Some(u) = stack.pop() {
            if self.is_term(u) || self.marks[u as usize] {
                continue;
            }
            self.marks[u as usize] = true;
            stack.push(self.nodes[u as usize].low);
            stack.push(self.nodes[u as usize].high);
        }
    }

    fn grow(&mut self) {
        let old_len = self.nodes.len();
        let new_len = old_len * 2;
        // Keep the operation caches proportioned to the table: a cache much
        // smaller than the working set thrashes and destroys the
        // memoization BDD algorithms depend on. Never shrink here — a cache
        // the adaptive policy grew past the table-proportional size is
        // sized to measured pressure, not table occupancy.
        let max_log2 = self.policy.max_log2;
        let target: u32 = (new_len.clamp(1 << 16, 1usize << max_log2) as u64).ilog2();
        self.apply_cache
            .resize(target.max(self.apply_cache.log2_size()));
        self.appex_cache
            .resize(target.max(self.appex_cache.log2_size()));
        self.ite_cache
            .resize(target.saturating_sub(2).max(self.ite_cache.log2_size()));
        self.replace_cache
            .resize(target.saturating_sub(1).max(self.replace_cache.log2_size()));
        self.nodes.resize(new_len, FREE_NODE);
        self.marks.resize(new_len, false);
        for i in (old_len..new_len).rev() {
            self.nodes[i].next = self.free_head;
            self.free_head = i as u32;
            self.free_count += 1;
        }
        // Rebuild buckets at the new size: live nodes are exactly the chained
        // ones, collected from the old bucket array.
        let mut live = Vec::with_capacity(old_len);
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                live.push(cur);
                cur = self.nodes[cur as usize].next;
            }
        }
        self.buckets = vec![NIL; new_len];
        self.bucket_mask = new_len - 1;
        for idx in live {
            let n = self.nodes[idx as usize];
            let slot = hash3(n.level, n.low, n.high) & self.bucket_mask;
            self.nodes[idx as usize].next = self.buckets[slot];
            self.buckets[slot] = idx;
        }
    }

    /// Stable id for a quantification variable set; same set, same id, so
    /// exist/relprod results stay cached across calls.
    fn varset_id(&mut self, vars: &[Level]) -> u32 {
        let mut key: Vec<Level> = vars.to_vec();
        key.sort_unstable();
        key.dedup();
        let next = self.varset_ids.len() as u32;
        *self.varset_ids.entry(key).or_insert(next)
    }

    /// Stable id for a replace permutation.
    fn perm_id(&mut self, pairs: &[(Level, Level)]) -> u32 {
        let mut key: Vec<(Level, Level)> = pairs.to_vec();
        key.sort_unstable();
        let next = self.perm_ids.len() as u32;
        *self.perm_ids.entry(key).or_insert(next)
    }

    /// Stable appex-cache tag for a fused replace+relprod call.
    fn fused_seq(&mut self, varset: u32, perm: u32) -> u32 {
        let next = self.fused_ids.len() as u32;
        FUSED_SEQ_BASE | *self.fused_ids.entry((varset, perm)).or_insert(next)
    }

    // ----- variables --------------------------------------------------------

    pub(crate) fn ithvar(&mut self, var: Level) -> u32 {
        assert!(var < self.varcount, "variable out of range");
        let level = self.order.level_of(var);
        self.mk(level, ZERO, ONE)
    }

    pub(crate) fn nithvar(&mut self, var: Level) -> u32 {
        assert!(var < self.varcount, "variable out of range");
        let level = self.order.level_of(var);
        self.mk(level, ONE, ZERO)
    }

    // ----- apply family -----------------------------------------------------

    pub(crate) fn and_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        if f == ONE || f == g {
            return g;
        }
        if g == ONE {
            return f;
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.get(a, b, Op::And.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.and_rec(f0, g0);
        self.push_ref(low);
        let high = self.and_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(a, b, Op::And.tag(), res);
        res
    }

    pub(crate) fn or_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == ONE || g == ONE {
            return ONE;
        }
        if f == ZERO || f == g {
            return g;
        }
        if g == ZERO {
            return f;
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.get(a, b, Op::Or.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.or_rec(f0, g0);
        self.push_ref(low);
        let high = self.or_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(a, b, Op::Or.tag(), res);
        res
    }

    pub(crate) fn xor_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == g {
            return ZERO;
        }
        if f == ZERO {
            return g;
        }
        if g == ZERO {
            return f;
        }
        if f == ONE {
            return self.not_rec(g);
        }
        if g == ONE {
            return self.not_rec(f);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.get(a, b, Op::Xor.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.xor_rec(f0, g0);
        self.push_ref(low);
        let high = self.xor_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(a, b, Op::Xor.tag(), res);
        res
    }

    /// `f ∧ ¬g` (set difference).
    pub(crate) fn diff_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == ZERO || g == ONE || f == g {
            return ZERO;
        }
        if g == ZERO {
            return f;
        }
        if f == ONE {
            return self.not_rec(g);
        }
        if let Some(r) = self.apply_cache.get(f, g, Op::Diff.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.diff_rec(f0, g0);
        self.push_ref(low);
        let high = self.diff_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(f, g, Op::Diff.tag(), res);
        res
    }

    pub(crate) fn not_rec(&mut self, f: u32) -> u32 {
        if f == ZERO {
            return ONE;
        }
        if f == ONE {
            return ZERO;
        }
        if let Some(r) = self.apply_cache.get(f, NIL, NOT_TAG) {
            return r;
        }
        let (flow, fhigh, flevel) = {
            let n = &self.nodes[f as usize];
            (n.low, n.high, n.level)
        };
        let low = self.not_rec(flow);
        self.push_ref(low);
        let high = self.not_rec(fhigh);
        self.push_ref(high);
        let res = self.mk(flevel, low, high);
        self.pop_ref(2);
        self.apply_cache.put(f, NIL, NOT_TAG, res);
        res
    }

    pub(crate) fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> u32 {
        if f == ONE {
            return g;
        }
        if f == ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == ONE && h == ZERO {
            return f;
        }
        if g == ZERO && h == ONE {
            return self.not_rec(f);
        }
        if let Some(r) = self.ite_cache.get(f, g, h) {
            return r;
        }
        let m = self.level(f).min(self.level(g)).min(self.level(h));
        let cof = |s: &Store, x: u32| {
            if s.level(x) == m {
                (s.low(x), s.high(x))
            } else {
                (x, x)
            }
        };
        let (f0, f1) = cof(self, f);
        let (g0, g1) = cof(self, g);
        let (h0, h1) = cof(self, h);
        let low = self.ite_rec(f0, g0, h0);
        self.push_ref(low);
        let high = self.ite_rec(f1, g1, h1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.ite_cache.put(f, g, h, res);
        res
    }

    // ----- quantification ----------------------------------------------------

    fn set_quant(&mut self, vars: &[Level]) {
        self.quant_set.fill(false);
        self.quant_set.resize(self.varcount as usize, false);
        self.quant_last = 0;
        for &v in vars {
            assert!(v < self.varcount, "quantified variable out of range");
            let l = self.order.level_of(v);
            self.quant_set[l as usize] = true;
            self.quant_last = self.quant_last.max(l);
        }
    }

    /// Existentially quantifies the variables in `vars` out of `f`.
    pub(crate) fn exist(&mut self, f: u32, vars: &[Level]) -> u32 {
        if vars.is_empty() || self.is_term(f) {
            return f;
        }
        self.set_quant(vars);
        let id = self.varset_id(vars);
        self.exist_rec(f, id.wrapping_mul(2))
    }

    fn exist_rec(&mut self, f: u32, seq: u32) -> u32 {
        if self.is_term(f) || self.level(f) > self.quant_last {
            return f;
        }
        if let Some(r) = self.appex_cache.get(f, NIL, seq) {
            return r;
        }
        let (flow, fhigh, flevel) = {
            let n = &self.nodes[f as usize];
            (n.low, n.high, n.level)
        };
        let low = self.exist_rec(flow, seq);
        self.push_ref(low);
        let res = if self.quant_set[flevel as usize] {
            if low == ONE {
                self.pop_ref(1);
                self.appex_cache.put(f, NIL, seq, ONE);
                return ONE;
            }
            let high = self.exist_rec(fhigh, seq);
            self.push_ref(high);
            let r = self.or_rec(low, high);
            self.pop_ref(2);
            r
        } else {
            let high = self.exist_rec(fhigh, seq);
            self.push_ref(high);
            let r = self.mk(flevel, low, high);
            self.pop_ref(2);
            r
        };
        self.appex_cache.put(f, NIL, seq, res);
        res
    }

    /// The relational product `∃ vars. (f ∧ g)`, computed in one pass.
    pub(crate) fn relprod(&mut self, f: u32, g: u32, vars: &[Level]) -> u32 {
        if vars.is_empty() {
            return self.and_rec(f, g);
        }
        self.set_quant(vars);
        let id = self.varset_id(vars);
        self.relprod_rec(f, g, id.wrapping_mul(2).wrapping_add(1))
    }

    fn relprod_rec(&mut self, f: u32, g: u32, seq: u32) -> u32 {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        if lf > self.quant_last && lg > self.quant_last {
            return self.and_rec(f, g);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.appex_cache.get(a, b, seq) {
            return r;
        }
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let res = if self.quant_set[m as usize] {
            let low = self.relprod_rec(f0, g0, seq);
            if low == ONE {
                self.appex_cache.put(a, b, seq, ONE);
                return ONE;
            }
            self.push_ref(low);
            let high = self.relprod_rec(f1, g1, seq);
            self.push_ref(high);
            let r = self.or_rec(low, high);
            self.pop_ref(2);
            r
        } else {
            let low = self.relprod_rec(f0, g0, seq);
            self.push_ref(low);
            let high = self.relprod_rec(f1, g1, seq);
            self.push_ref(high);
            let r = self.mk(m, low, high);
            self.pop_ref(2);
            r
        };
        self.appex_cache.put(a, b, seq, res);
        res
    }

    // ----- replace -----------------------------------------------------------

    /// Renames variables of `f` according to `pairs` of `(from, to)` levels.
    ///
    /// The fast path applies when the induced level mapping is monotone on
    /// the support of `f`; otherwise the caller (the manager) falls back to a
    /// conjoin-and-quantify rename.
    pub(crate) fn replace_monotone(&mut self, f: u32, pairs: &[(Level, Level)]) -> u32 {
        if self.is_term(f) || pairs.is_empty() {
            return f;
        }
        self.set_perm(pairs);
        let id = self.perm_id(pairs);
        self.replace_rec(f, id)
    }

    /// Installs the level-space permutation for `pairs` of `(from, to)`
    /// variables: `perm` maps the *level* of each source variable to the
    /// *level* of its target, identity elsewhere.
    fn set_perm(&mut self, pairs: &[(Level, Level)]) {
        self.perm.clear();
        self.perm.extend(0..self.varcount);
        for &(from, to) in pairs {
            assert!(from < self.varcount && to < self.varcount);
            let (fl, tl) = (self.order.level_of(from), self.order.level_of(to));
            self.perm[fl as usize] = tl;
        }
    }

    fn replace_rec(&mut self, f: u32, seq: u32) -> u32 {
        if self.is_term(f) {
            return f;
        }
        if let Some(r) = self.replace_cache.get(f, NIL, seq) {
            return r;
        }
        let (flow, fhigh, flevel) = {
            let n = &self.nodes[f as usize];
            (n.low, n.high, n.level)
        };
        let low = self.replace_rec(flow, seq);
        self.push_ref(low);
        let high = self.replace_rec(fhigh, seq);
        self.push_ref(high);
        let res = self.mk(self.perm[flevel as usize], low, high);
        self.pop_ref(2);
        self.replace_cache.put(f, NIL, seq, res);
        res
    }

    /// The fused kernel: `∃ vars. (replace(f, pairs) ∧ g)` in a single
    /// traversal with no intermediate BDD.
    ///
    /// The rename is applied *during* the AND-∃ recursion: each node of `f`
    /// is read at its translated level `perm[level]`, which is sound
    /// because the caller guarantees `pairs` is monotone on the support of
    /// `f` (translation preserves the relative order of `f`'s nodes, so
    /// the renamed `f` is a well-formed OBDD that is never materialized).
    /// Results are memoized in the `appex_cache` under a tag derived from
    /// the (varset, permutation) pair.
    pub(crate) fn replace_relprod(
        &mut self,
        f: u32,
        g: u32,
        pairs: &[(Level, Level)],
        vars: &[Level],
    ) -> u32 {
        if pairs.is_empty() {
            return if vars.is_empty() {
                self.and_rec(f, g)
            } else {
                self.relprod(f, g, vars)
            };
        }
        self.set_quant(vars);
        self.set_perm(pairs);
        // Levels >= perm_tail are untouched by the permutation; once the
        // recursion is past both it and the last quantified level it can
        // downgrade to the plain AND and share the apply cache.
        let mut tail = self.varcount;
        while tail > 0 && self.perm[tail as usize - 1] == tail - 1 {
            tail -= 1;
        }
        self.perm_tail = tail;
        let vid = self.varset_id(vars);
        let pid = self.perm_id(pairs);
        let fseq = self.fused_seq(vid, pid);
        let eseq = vid.wrapping_mul(2);
        self.fused_rec(f, g, fseq, eseq)
    }

    fn fused_rec(&mut self, f: u32, g: u32, fseq: u32, eseq: u32) -> u32 {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        if f == ONE {
            // replace(1) = 1, so the rest is pure quantification of g.
            return if g == ONE {
                ONE
            } else {
                self.exist_rec(g, eseq)
            };
        }
        let lf = self.level(f);
        let plf = self.perm[lf as usize];
        let lg = self.level(g); // TERM_LEVEL when g == ONE
        if lf >= self.perm_tail && plf > self.quant_last && lg > self.quant_last {
            // No renamed and no quantified variables remain below: plain AND.
            return self.and_rec(f, g);
        }
        if let Some(r) = self.appex_cache.get(f, g, fseq) {
            return r;
        }
        let m = plf.min(lg);
        let (f0, f1) = if plf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let res = if self.quant_set[m as usize] {
            let low = self.fused_rec(f0, g0, fseq, eseq);
            if low == ONE {
                self.appex_cache.put(f, g, fseq, ONE);
                return ONE;
            }
            self.push_ref(low);
            let high = self.fused_rec(f1, g1, fseq, eseq);
            self.push_ref(high);
            let r = self.or_rec(low, high);
            self.pop_ref(2);
            r
        } else {
            let low = self.fused_rec(f0, g0, fseq, eseq);
            self.push_ref(low);
            let high = self.fused_rec(f1, g1, fseq, eseq);
            self.push_ref(high);
            let r = self.mk(m, low, high);
            self.pop_ref(2);
            r
        };
        self.appex_cache.put(f, g, fseq, res);
        res
    }

    /// Checks whether the `(from, to)` pairs are monotone on `support`
    /// under the *current* variable order: applying the mapping preserves
    /// the relative level order of the support variables and does not
    /// collide with any unmapped support variable.
    pub(crate) fn replace_is_monotone(&self, support: &[Level], pairs: &[(Level, Level)]) -> bool {
        let mut mapped: Vec<(Level, Level)> = support
            .iter()
            .map(|&s| {
                let to = pairs
                    .iter()
                    .find(|&&(from, _)| from == s)
                    .map(|&(_, to)| to)
                    .unwrap_or(s);
                (self.order.level_of(s), self.order.level_of(to))
            })
            .collect();
        mapped.sort_unstable_by_key(|&(sl, _)| sl);
        mapped.windows(2).all(|w| w[0].1 < w[1].1)
    }

    // ----- structural queries --------------------------------------------------

    /// Returns the support of `f` as a sorted list of variables.
    pub(crate) fn support(&mut self, f: u32) -> Vec<Level> {
        let mut seen = vec![false; self.varcount as usize];
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(u) = stack.pop() {
            if self.is_term(u) || !visited.insert(u) {
                continue;
            }
            let n = &self.nodes[u as usize];
            seen[self.order.var_at(n.level) as usize] = true;
            stack.push(n.low);
            stack.push(n.high);
        }
        (0..self.varcount).filter(|&v| seen[v as usize]).collect()
    }

    /// Number of distinct internal nodes in `f` (excluding terminals).
    pub(crate) fn node_count(&self, f: u32) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0usize;
        while let Some(u) = stack.pop() {
            if self.is_term(u) || !visited.insert(u) {
                continue;
            }
            count += 1;
            let n = &self.nodes[u as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Exact number of satisfying assignments restricted to the variables
    /// in `vars` (which must cover the support of `f`), saturating at
    /// `u128::MAX`.
    pub(crate) fn satcount_exact(&self, f: u32, vars: &[Level]) -> u128 {
        // prefix[l] = how many of `vars` have level < l; this counts the
        // skipped (free) variables between a node and its children.
        let mut in_set = vec![false; self.varcount as usize + 1];
        for &v in vars {
            in_set[self.order.level_of(v) as usize] = true;
        }
        let mut prefix = vec![0u32; self.varcount as usize + 2];
        for l in 0..=self.varcount as usize {
            prefix[l + 1] = prefix[l] + u32::from(in_set[l]);
        }
        let eff = |x: u32| -> u32 {
            if self.is_term(x) {
                self.varcount
            } else {
                self.level(x)
            }
        };
        let pow2 = |bits: u32| -> u128 {
            if bits >= 128 {
                u128::MAX
            } else {
                1u128 << bits
            }
        };
        fn sc(
            s: &Store,
            f: u32,
            memo: &mut NodeMemo<u128>,
            prefix: &[u32],
            eff: &dyn Fn(u32) -> u32,
            pow2: &dyn Fn(u32) -> u128,
        ) -> u128 {
            if f == ZERO {
                return 0;
            }
            if f == ONE {
                return 1;
            }
            if let Some(v) = memo.get(f) {
                return v;
            }
            let n = s.nodes[f as usize];
            let free = |from: u32, to: u32| prefix[to as usize] - prefix[from as usize + 1];
            let l = sc(s, n.low, memo, prefix, eff, pow2)
                .saturating_mul(pow2(free(n.level, eff(n.low))));
            let h = sc(s, n.high, memo, prefix, eff, pow2)
                .saturating_mul(pow2(free(n.level, eff(n.high))));
            let v = l.saturating_add(h);
            memo.insert(f, v);
            v
        }
        let mut memo = NodeMemo::new();
        let base = sc(self, f, &mut memo, &prefix, &eff, &pow2);
        // Free variables above the root.
        let above = if self.is_term(f) {
            prefix[self.varcount as usize]
        } else {
            prefix[self.level(f) as usize]
        };
        base.saturating_mul(pow2(above))
    }

    /// Number of satisfying assignments over all `varcount` variables.
    pub(crate) fn satcount(&self, f: u32) -> f64 {
        let mut memo: NodeMemo<f64> = NodeMemo::new();
        let eff = |s: &Store, x: u32| -> u32 {
            if s.is_term(x) {
                s.varcount
            } else {
                s.level(x)
            }
        };
        fn sc(
            s: &Store,
            f: u32,
            memo: &mut NodeMemo<f64>,
            eff: &dyn Fn(&Store, u32) -> u32,
        ) -> f64 {
            if f == ZERO {
                return 0.0;
            }
            if f == ONE {
                return 1.0;
            }
            if let Some(v) = memo.get(f) {
                return v;
            }
            let n = s.nodes[f as usize];
            let l = sc(s, n.low, memo, eff) * 2f64.powi((eff(s, n.low) - n.level - 1) as i32);
            let h = sc(s, n.high, memo, eff) * 2f64.powi((eff(s, n.high) - n.level - 1) as i32);
            let v = l + h;
            memo.insert(f, v);
            v
        }
        sc(self, f, &mut memo, &eff) * 2f64.powi(eff(self, f) as i32)
    }

    // ----- dynamic reordering -------------------------------------------------
    //
    // In-place Rudell sifting. The invariants (see DESIGN.md):
    //
    //   * node indices are stable — external `Bdd` handles survive because a
    //     node whose function changes shape is rewritten *in place*;
    //   * a swap of levels (l, l+1) touches only nodes at those two levels;
    //   * only old level-(l+1) nodes can die during a swap, and deaths never
    //     cascade deeper (a dying node's children are always retained by the
    //     rewritten nodes' new children);
    //   * the unique table stays canonical at every intermediate step.

    /// Removes `idx` from its hash bucket (keyed by its current fields).
    fn bucket_remove(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let slot = hash3(n.level, n.low, n.high) & self.bucket_mask;
        let mut cur = self.buckets[slot];
        if cur == idx {
            self.buckets[slot] = n.next;
            return;
        }
        while cur != NIL {
            let next = self.nodes[cur as usize].next;
            if next == idx {
                self.nodes[cur as usize].next = n.next;
                return;
            }
            cur = next;
        }
        unreachable!("node {idx} not found in its unique-table bucket");
    }

    /// Chains `idx` into the bucket for its current `(level, low, high)`.
    fn bucket_insert(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let slot = hash3(n.level, n.low, n.high) & self.bucket_mask;
        self.nodes[idx as usize].next = self.buckets[slot];
        self.buckets[slot] = idx;
    }

    /// Builds the bookkeeping for a reordering pass: total reference counts
    /// (external + one per table parent) and per-level node lists. Runs a
    /// collection first so dead nodes don't distort sifting scores.
    fn build_reorder_ctx(&mut self) -> ReorderCtx {
        assert!(
            self.refstack.is_empty(),
            "reorder attempted while an operation is in flight"
        );
        self.gc();
        let len = self.nodes.len();
        let mut ctx = ReorderCtx {
            rc: vec![0; len],
            lists: vec![Vec::new(); self.varcount as usize],
            pos: vec![0; len],
        };
        for i in 2..len {
            let n = self.nodes[i];
            if n.low == NIL {
                continue; // free slot
            }
            ctx.rc[i] += n.refcount as u64;
            ctx.rc[n.low as usize] += 1;
            ctx.rc[n.high as usize] += 1;
            ctx.pos[i] = ctx.lists[n.level as usize].len() as u32;
            ctx.lists[n.level as usize].push(i as u32);
        }
        ctx
    }

    /// Finds or creates the node `(level, low, high)` during a swap, keeping
    /// the reorder context's refcounts and level lists current. Unlike
    /// [`Store::mk`] this never collects: the caller pre-reserved capacity.
    fn swap_node(&mut self, level: u32, low: u32, high: u32, ctx: &mut ReorderCtx) -> u32 {
        if low == high {
            return low;
        }
        let slot = hash3(level, low, high) & self.bucket_mask;
        let mut cur = self.buckets[slot];
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.level == level && n.low == low && n.high == high {
                return cur;
            }
            cur = n.next;
        }
        let idx = self.free_head;
        debug_assert_ne!(idx, NIL, "swap ran out of pre-reserved capacity");
        self.free_head = self.nodes[idx as usize].next;
        self.free_count -= 1;
        self.nodes[idx as usize] = Node {
            level,
            low,
            high,
            refcount: 0,
            next: self.buckets[slot],
        };
        self.buckets[slot] = idx;
        ctx.rc[idx as usize] = 0;
        ctx.rc[low as usize] += 1;
        ctx.rc[high as usize] += 1;
        ctx.pos[idx as usize] = ctx.lists[level as usize].len() as u32;
        ctx.lists[level as usize].push(idx);
        idx
    }

    /// Releases one reference to `f` held by a rewritten node. If that was
    /// the last reference, `f` — necessarily an old lower-level node, now
    /// labeled `l` — is freed on the spot so `live_count` stays exact for
    /// sifting scores. Deaths never cascade: the dying node's children are
    /// still referenced by the rewritten node's new children.
    fn swap_deref(&mut self, f: u32, l: u32, ctx: &mut ReorderCtx) {
        if f <= ONE {
            return;
        }
        ctx.rc[f as usize] -= 1;
        if ctx.rc[f as usize] != 0 {
            return;
        }
        debug_assert_eq!(self.nodes[f as usize].level, l);
        debug_assert_eq!(self.nodes[f as usize].refcount, 0);
        self.bucket_remove(f);
        let n = self.nodes[f as usize];
        for c in [n.low, n.high] {
            if c > ONE {
                ctx.rc[c as usize] -= 1;
                debug_assert!(ctx.rc[c as usize] > 0, "cascading death in swap");
            }
        }
        let p = ctx.pos[f as usize] as usize;
        let list = &mut ctx.lists[l as usize];
        list.swap_remove(p);
        if p < list.len() {
            ctx.pos[list[p] as usize] = p as u32;
        }
        self.nodes[f as usize] = FREE_NODE;
        self.nodes[f as usize].next = self.free_head;
        self.free_head = f;
        self.free_count += 1;
    }

    /// Swaps adjacent levels `l` and `l + 1` in place.
    ///
    /// Writing `u` for the variable at level `l` and `v` for the one below:
    /// every `v`-node is relabeled one level up (phase A); `u`-nodes not
    /// depending on `v` are relabeled one level down (phase B1); `u`-nodes
    /// depending on `v` are rewritten in place to test `v` first, with their
    /// two new children looked up or created at level `l + 1` (phase B2).
    /// Phase order matters for canonicity: B2's lookups at level `l + 1`
    /// must see every B1-relabeled node, and no still-at-`l + 1` `v`-node.
    pub(crate) fn swap_adjacent(&mut self, l: u32, ctx: &mut ReorderCtx) {
        debug_assert!(l + 1 < self.varcount);
        let (lu, lv) = (l as usize, l as usize + 1);
        // Reserve enough free slots that phase B2 never allocates from an
        // empty list (each dependent node creates at most two children).
        let need = 2 * ctx.lists[lu].len() + 2;
        while self.free_count < need {
            self.grow();
            ctx.rc.resize(self.nodes.len(), 0);
            ctx.pos.resize(self.nodes.len(), 0);
        }
        let unodes = std::mem::take(&mut ctx.lists[lu]);
        let vnodes = std::mem::take(&mut ctx.lists[lv]);
        // Phase A: old lower-level nodes move up to level l.
        for &v in &vnodes {
            self.bucket_remove(v);
            self.nodes[v as usize].level = l;
            self.bucket_insert(v);
            ctx.pos[v as usize] = ctx.lists[lu].len() as u32;
            ctx.lists[lu].push(v);
        }
        // Phase B1: upper-level nodes independent of v move down untouched.
        let mut dependent = Vec::new();
        for &u in &unodes {
            let n = self.nodes[u as usize];
            // v-nodes sit at level l now; u's children were at > l before.
            if self.level(n.low) == l || self.level(n.high) == l {
                dependent.push(u);
            } else {
                self.bucket_remove(u);
                self.nodes[u as usize].level = l + 1;
                self.bucket_insert(u);
                ctx.pos[u as usize] = ctx.lists[lv].len() as u32;
                ctx.lists[lv].push(u);
            }
        }
        // Phase B2: rewrite v-dependent nodes in place, preserving indices.
        for &u in &dependent {
            let n = self.nodes[u as usize];
            let (f0, f1) = (n.low, n.high);
            let (f00, f01) = if self.level(f0) == l {
                (self.low(f0), self.high(f0))
            } else {
                (f0, f0)
            };
            let (f10, f11) = if self.level(f1) == l {
                (self.low(f1), self.high(f1))
            } else {
                (f1, f1)
            };
            self.bucket_remove(u);
            let a = self.swap_node(l + 1, f00, f10, ctx);
            let b = self.swap_node(l + 1, f01, f11, ctx);
            debug_assert_ne!(a, b, "rewritten node collapsed to a redundant test");
            {
                let n = &mut self.nodes[u as usize];
                n.level = l;
                n.low = a;
                n.high = b;
            }
            self.bucket_insert(u);
            ctx.pos[u as usize] = ctx.lists[lu].len() as u32;
            ctx.lists[lu].push(u);
            ctx.rc[a as usize] += 1;
            ctx.rc[b as usize] += 1;
            self.swap_deref(f0, l, ctx);
            self.swap_deref(f1, l, ctx);
        }
        self.order.swap_levels(l);
    }

    /// One externally driven adjacent-level swap (a testing and diagnostic
    /// building block — it pays the full O(table) context build per call,
    /// where a sifting pass amortizes it).
    pub(crate) fn swap_levels_once(&mut self, l: u32) {
        assert!(l + 1 < self.varcount, "swap level out of range");
        let mut ctx = self.build_reorder_ctx();
        self.swap_adjacent(l, &mut ctx);
        self.peak_live = self.peak_live.max(self.live_count());
        // Cache entries may name nodes freed by the swap.
        self.clear_caches();
    }

    /// Swaps the blocks at layout positions `i` and `i + 1` by sinking each
    /// variable of the upper block past the whole lower block, bottom
    /// variable first — relative order inside both blocks is preserved.
    fn block_swap(
        &mut self,
        layout: &mut [(u32, u32)],
        i: usize,
        ctx: &mut ReorderCtx,
        swaps: &mut usize,
    ) {
        let p: u32 = layout[..i].iter().map(|&(_, w)| w).sum();
        let (a, b) = (layout[i].1, layout[i + 1].1);
        for j in (0..a).rev() {
            for s in 0..b {
                self.swap_adjacent(p + j + s, ctx);
                *swaps += 1;
            }
        }
        layout.swap(i, i + 1);
    }

    /// Sifts one block (identified by `id`) through every layout position,
    /// then parks it at the best one seen. Sweeps abandon a direction once
    /// the table grows past `max_growth` times the best size so far.
    fn sift_block(
        &mut self,
        layout: &mut [(u32, u32)],
        id: u32,
        max_growth: f64,
        ctx: &mut ReorderCtx,
        swaps: &mut usize,
        peak: &mut usize,
    ) {
        let mut p = layout
            .iter()
            .position(|&(b, _)| b == id)
            .expect("block present in layout");
        let nblocks = layout.len();
        let mut best = self.live_count();
        let mut best_pos = p;
        let bound = |best: usize| (best as f64 * max_growth) as usize + 2;
        // Sweep down to the bottom.
        while p + 1 < nblocks {
            self.block_swap(layout, p, ctx, swaps);
            p += 1;
            let sz = self.live_count();
            *peak = (*peak).max(sz);
            if sz < best {
                best = sz;
                best_pos = p;
            } else if sz > bound(best) {
                break;
            }
        }
        // Sweep up to the top.
        while p > 0 {
            self.block_swap(layout, p - 1, ctx, swaps);
            p -= 1;
            let sz = self.live_count();
            *peak = (*peak).max(sz);
            if sz < best {
                best = sz;
                best_pos = p;
            } else if sz > bound(best) {
                break;
            }
        }
        // Park at the best position seen.
        while p < best_pos {
            self.block_swap(layout, p, ctx, swaps);
            p += 1;
        }
        while p > best_pos {
            self.block_swap(layout, p - 1, ctx, swaps);
            p -= 1;
        }
    }

    /// One sifting pass: every block, largest first, is moved to its locally
    /// optimal position. Blocks are the ordering groups fixed at manager
    /// construction (interleaved domains travel together); if external
    /// swaps have torn a group apart, the pass degrades to sifting single
    /// variables, which is always sound.
    pub(crate) fn sift(&mut self, max_growth: f64) -> ReorderStats {
        let mut stats = ReorderStats::default();
        if self.varcount < 2 {
            let live = self.live_count();
            stats.nodes_before = live;
            stats.nodes_after = live;
            return stats;
        }
        let mut ctx = self.build_reorder_ctx();
        stats.nodes_before = self.live_count();
        let mut peak = stats.nodes_before;
        let mut layout: Vec<(u32, u32)> = self
            .order
            .block_layout()
            .unwrap_or_else(|| (0..self.varcount).map(|l| (l, 1)).collect());
        // Initial node mass per block decides the sift order (largest
        // first, Rudell's heuristic) — measured once, before anything moves.
        let mut mass: Vec<(usize, u32)> = Vec::with_capacity(layout.len());
        let mut lvl = 0usize;
        for &(id, w) in &layout {
            let m: usize = (lvl..lvl + w as usize).map(|l| ctx.lists[l].len()).sum();
            mass.push((m, id));
            lvl += w as usize;
        }
        mass.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, id) in &mass {
            self.sift_block(
                &mut layout,
                id,
                max_growth,
                &mut ctx,
                &mut stats.swaps,
                &mut peak,
            );
        }
        self.peak_live = self.peak_live.max(peak);
        stats.nodes_after = self.live_count();
        self.reorder_runs += 1;
        if stats.swaps > 0 {
            // Entries may name nodes freed during the pass.
            self.clear_caches();
            if self.policy.adaptive && self.policy.shrink_after_reorder {
                // The pass may have collapsed the working set by an order
                // of magnitude; release adaptively grown cache memory.
                self.shrink_caches_to_live();
            }
        }
        stats
    }

    /// Fires a pending automatic sift, if armed and safe (no operation in
    /// flight). Called from public operation entry points.
    pub(crate) fn maybe_auto_reorder(&mut self) {
        if !self.auto_reorder_pending || !self.refstack.is_empty() {
            return;
        }
        self.auto_reorder_pending = false;
        let stats = self.sift(DEFAULT_MAX_GROWTH);
        // Back off: don't rearm until the table doubles past the sifted
        // size, or thrashing would eat the savings.
        if let Some(t) = &mut self.auto_reorder_threshold {
            *t = (*t).max(stats.nodes_after * 2);
        }
    }
}

/// Transient bookkeeping of one reordering pass.
pub(crate) struct ReorderCtx {
    /// Total references per node: external refcount + one per table parent.
    rc: Vec<u64>,
    /// Table nodes at each level.
    lists: Vec<Vec<u32>>,
    /// Index of each node in its level list (for O(1) removal).
    pos: Vec<u32>,
}
