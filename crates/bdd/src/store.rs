//! The node store: unique table, reference counting, garbage collection and
//! the recursive implementations of every BDD operation.
//!
//! The design follows BuDDy: nodes live in one flat array, the unique table
//! is a bucket array with intrusive hash chains (`Node::next`), external
//! references are per-node refcounts maintained by the RAII [`crate::Bdd`]
//! handles, and the kernel protects its own intermediate results on an
//! explicit `refstack` so that garbage collection can run in the middle of an
//! operation when the node table fills up.

use crate::cache::{Cache, CacheStats, NIL};
use crate::domain::DomainData;
use crate::sat::NodeMemo;
use crate::Level;
use std::collections::HashMap;

/// Index of the constant `false` node.
pub(crate) const ZERO: u32 = 0;
/// Index of the constant `true` node.
pub(crate) const ONE: u32 = 1;
/// Level assigned to the two terminal nodes; orders below every variable.
pub(crate) const TERM_LEVEL: u32 = u32::MAX;

#[derive(Clone, Copy)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) low: u32,
    pub(crate) high: u32,
    pub(crate) refcount: u32,
    pub(crate) next: u32,
}

const FREE_NODE: Node = Node {
    level: TERM_LEVEL,
    low: NIL,
    high: NIL,
    refcount: 0,
    next: NIL,
};

/// Binary apply operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Diff,
}

impl Op {
    #[inline]
    fn tag(self) -> u32 {
        match self {
            Op::And => 1,
            Op::Or => 2,
            Op::Xor => 3,
            Op::Diff => 4,
        }
    }
}

const NOT_TAG: u32 = 5;

/// Sequence-tag space of the `appex_cache`: `exist` uses `varset_id * 2`,
/// `relprod` uses `varset_id * 2 + 1`, and the fused replace+relprod kernel
/// uses `FUSED_SEQ_BASE | fused_id` — the high bit keeps the three tag
/// families disjoint so entries of different operations can never collide.
const FUSED_SEQ_BASE: u32 = 0x8000_0000;

pub(crate) struct Store {
    pub(crate) nodes: Vec<Node>,
    marks: Vec<bool>,
    buckets: Vec<u32>,
    bucket_mask: usize,
    free_head: u32,
    free_count: usize,
    pub(crate) varcount: u32,
    refstack: Vec<u32>,
    apply_cache: Cache,
    ite_cache: Cache,
    appex_cache: Cache,
    replace_cache: Cache,
    /// Registered quantification variable sets: stable ids let the
    /// exist/relprod caches persist across calls (BuDDy's varset scheme).
    varset_ids: HashMap<Vec<Level>, u32>,
    /// Registered replace permutations, likewise.
    perm_ids: HashMap<Vec<(Level, Level)>, u32>,
    /// Registered (varset id, perm id) pairs of fused replace+relprod
    /// calls, so fused results stay cached across calls too.
    fused_ids: HashMap<(u32, u32), u32>,
    /// Membership bitmap for the variable set of the current quantification.
    quant_set: Vec<bool>,
    /// Largest quantified level in the current quantification.
    quant_last: u32,
    /// Level permutation for the current replace call.
    perm: Vec<u32>,
    /// Smallest level at and below which `perm` is the identity — the fused
    /// kernel's license to fall back to the plain AND recursion.
    perm_tail: u32,
    pub(crate) gc_runs: usize,
    pub(crate) peak_live: usize,
    pub(crate) domains: Vec<DomainData>,
    pub(crate) domain_names: HashMap<String, usize>,
}

#[inline]
fn hash3(a: u32, b: u32, c: u32) -> usize {
    let mut h = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = h.wrapping_add((b as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    h = h.wrapping_add((c as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    h ^= h >> 31;
    h as usize
}

impl Store {
    pub(crate) fn new(varcount: u32, initial_capacity: usize) -> Self {
        let capacity = initial_capacity.next_power_of_two().max(1 << 12);
        let mut nodes = vec![FREE_NODE; capacity];
        nodes[ZERO as usize] = Node {
            level: TERM_LEVEL,
            low: ZERO,
            high: ZERO,
            refcount: 1,
            next: NIL,
        };
        nodes[ONE as usize] = Node {
            level: TERM_LEVEL,
            low: ONE,
            high: ONE,
            refcount: 1,
            next: NIL,
        };
        // Chain all remaining nodes into the free list.
        let mut free_head = NIL;
        for i in (2..capacity).rev() {
            nodes[i].next = free_head;
            free_head = i as u32;
        }
        Store {
            nodes,
            marks: vec![false; capacity],
            buckets: vec![NIL; capacity],
            bucket_mask: capacity - 1,
            free_head,
            free_count: capacity - 2,
            varcount,
            refstack: Vec::with_capacity(1024),
            apply_cache: Cache::new(16),
            ite_cache: Cache::new(14),
            appex_cache: Cache::new(16),
            replace_cache: Cache::new(15),
            varset_ids: HashMap::new(),
            perm_ids: HashMap::new(),
            fused_ids: HashMap::new(),
            quant_set: vec![false; varcount as usize],
            quant_last: 0,
            perm: (0..varcount).collect(),
            perm_tail: 0,
            gc_runs: 0,
            peak_live: 0,
            domains: Vec::new(),
            domain_names: HashMap::new(),
        }
    }

    // ----- basic accessors -------------------------------------------------

    #[inline]
    pub(crate) fn level(&self, f: u32) -> u32 {
        self.nodes[f as usize].level
    }

    #[inline]
    pub(crate) fn low(&self, f: u32) -> u32 {
        self.nodes[f as usize].low
    }

    #[inline]
    pub(crate) fn high(&self, f: u32) -> u32 {
        self.nodes[f as usize].high
    }

    #[inline]
    fn is_term(&self, f: u32) -> bool {
        f <= ONE
    }

    pub(crate) fn live_count(&self) -> usize {
        self.nodes.len() - 2 - self.free_count
    }

    // ----- external reference counting ------------------------------------

    pub(crate) fn inc_ref(&mut self, f: u32) {
        let rc = &mut self.nodes[f as usize].refcount;
        *rc = rc.saturating_add(1);
    }

    pub(crate) fn dec_ref(&mut self, f: u32) {
        let rc = &mut self.nodes[f as usize].refcount;
        debug_assert!(*rc > 0, "refcount underflow on node {f}");
        if *rc != u32::MAX {
            *rc -= 1;
        }
    }

    #[inline]
    fn push_ref(&mut self, f: u32) -> u32 {
        self.refstack.push(f);
        f
    }

    #[inline]
    fn pop_ref(&mut self, n: usize) {
        let len = self.refstack.len();
        self.refstack.truncate(len - n);
    }

    /// Protects `f` from garbage collection until the matching
    /// [`Store::unprotect`]. Used by multi-step constructions outside this
    /// module (domain encodings, the adder) whose intermediates are not yet
    /// externally referenced.
    #[inline]
    pub(crate) fn protect(&mut self, f: u32) {
        self.push_ref(f);
    }

    /// Releases the last `n` protections.
    #[inline]
    pub(crate) fn unprotect(&mut self, n: usize) {
        self.pop_ref(n);
    }

    // ----- unique table ----------------------------------------------------

    /// Finds or creates the node `(level, low, high)`.
    ///
    /// `low` and `high` must be protected (externally referenced, on the
    /// refstack, or reachable from such a node): this call may garbage
    /// collect.
    pub(crate) fn mk(&mut self, level: u32, low: u32, high: u32) -> u32 {
        if low == high {
            return low;
        }
        debug_assert!(level < self.varcount);
        debug_assert!(
            level < self.level(low) && level < self.level(high),
            "mk: ordering violated (level {level} vs children {}/{})",
            self.level(low),
            self.level(high)
        );
        let mut slot = hash3(level, low, high) & self.bucket_mask;
        let mut cur = self.buckets[slot];
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.level == level && n.low == low && n.high == high {
                return cur;
            }
            cur = n.next;
        }
        if self.free_head == NIL {
            self.push_ref(low);
            self.push_ref(high);
            self.reclaim();
            self.pop_ref(2);
            // Buckets may have been rebuilt / resized.
            slot = hash3(level, low, high) & self.bucket_mask;
            // The node cannot have appeared: GC only removes nodes.
        }
        let idx = self.free_head;
        self.free_head = self.nodes[idx as usize].next;
        self.free_count -= 1;
        self.nodes[idx as usize] = Node {
            level,
            low,
            high,
            refcount: 0,
            next: self.buckets[slot],
        };
        self.buckets[slot] = idx;
        idx
    }

    /// Runs a garbage collection and grows the table if it is still mostly
    /// full afterwards.
    fn reclaim(&mut self) {
        self.gc();
        if self.free_count < self.nodes.len() / 4 {
            self.grow();
        }
    }

    pub(crate) fn gc(&mut self) {
        self.peak_live = self.peak_live.max(self.live_count());
        // Mark phase: externally referenced nodes and the kernel refstack.
        for i in 2..self.nodes.len() {
            if self.nodes[i].refcount > 0 && self.nodes[i].low != NIL {
                self.mark(i as u32);
            }
        }
        let roots: Vec<u32> = self.refstack.clone();
        for r in roots {
            self.mark(r);
        }
        // Sweep phase: rebuild the unique table and the free list.
        let live_before = self.live_count();
        self.buckets.fill(NIL);
        self.free_head = NIL;
        self.free_count = 0;
        for i in (2..self.nodes.len()).rev() {
            if self.marks[i] {
                self.marks[i] = false;
                let n = self.nodes[i];
                let slot = hash3(n.level, n.low, n.high) & self.bucket_mask;
                self.nodes[i].next = self.buckets[slot];
                self.buckets[slot] = i as u32;
            } else {
                self.nodes[i] = FREE_NODE;
                self.nodes[i].next = self.free_head;
                self.free_head = i as u32;
                self.free_count += 1;
            }
        }
        let freed = live_before - self.live_count();
        if freed > 0 {
            // Generation-tagged invalidation: entries whose operands and
            // result all survived are re-tagged and stay warm; everything
            // else goes stale before its node slots can be reallocated. A
            // sweep that freed nothing leaves the caches untouched — every
            // memoized result is still valid.
            self.revalidate_caches();
        }
        self.gc_runs += 1;
    }

    /// Re-tags the operation caches after a node-freeing sweep. Freed
    /// slots are reset to `FREE_NODE` (whose `low` is `NIL`), which is the
    /// liveness test.
    fn revalidate_caches(&mut self) {
        let nodes = &self.nodes;
        let live = |x: u32| x <= ONE || nodes[x as usize].low != NIL;
        // Key layouts: apply is (node, node|NIL, op tag), ite is
        // (node, node, node), appex is (node, node|NIL, seq tag), replace
        // is (node, NIL, seq tag).
        self.apply_cache.revalidate(live, true, false);
        self.ite_cache.revalidate(live, true, true);
        self.appex_cache.revalidate(live, true, false);
        self.replace_cache.revalidate(live, false, false);
    }

    /// Drops every memoized operation result (O(1) generation bumps).
    pub(crate) fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.ite_cache.clear();
        self.appex_cache.clear();
        self.replace_cache.clear();
    }

    /// Cumulative per-cache counters: `(apply, ite, appex, replace)`.
    pub(crate) fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats, CacheStats) {
        (
            self.apply_cache.stats,
            self.ite_cache.stats,
            self.appex_cache.stats,
            self.replace_cache.stats,
        )
    }

    fn mark(&mut self, f: u32) {
        if self.is_term(f) || self.marks[f as usize] {
            return;
        }
        // Iterative DFS: BDD depth is bounded by varcount but width is not,
        // and an explicit stack avoids any risk with very tall orderings.
        let mut stack = vec![f];
        while let Some(u) = stack.pop() {
            if self.is_term(u) || self.marks[u as usize] {
                continue;
            }
            self.marks[u as usize] = true;
            stack.push(self.nodes[u as usize].low);
            stack.push(self.nodes[u as usize].high);
        }
    }

    fn grow(&mut self) {
        let old_len = self.nodes.len();
        let new_len = old_len * 2;
        // Keep the operation caches proportioned to the table: a cache much
        // smaller than the working set thrashes and destroys the
        // memoization BDD algorithms depend on.
        let target: u32 = (new_len.clamp(1 << 16, 1 << 23) as u64).ilog2();
        self.apply_cache.resize(target);
        self.appex_cache.resize(target);
        self.ite_cache.resize(target.saturating_sub(2));
        self.replace_cache.resize(target.saturating_sub(1));
        self.nodes.resize(new_len, FREE_NODE);
        self.marks.resize(new_len, false);
        for i in (old_len..new_len).rev() {
            self.nodes[i].next = self.free_head;
            self.free_head = i as u32;
            self.free_count += 1;
        }
        // Rebuild buckets at the new size: live nodes are exactly the chained
        // ones, collected from the old bucket array.
        let mut live = Vec::with_capacity(old_len);
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                live.push(cur);
                cur = self.nodes[cur as usize].next;
            }
        }
        self.buckets = vec![NIL; new_len];
        self.bucket_mask = new_len - 1;
        for idx in live {
            let n = self.nodes[idx as usize];
            let slot = hash3(n.level, n.low, n.high) & self.bucket_mask;
            self.nodes[idx as usize].next = self.buckets[slot];
            self.buckets[slot] = idx;
        }
    }

    /// Stable id for a quantification variable set; same set, same id, so
    /// exist/relprod results stay cached across calls.
    fn varset_id(&mut self, vars: &[Level]) -> u32 {
        let mut key: Vec<Level> = vars.to_vec();
        key.sort_unstable();
        key.dedup();
        let next = self.varset_ids.len() as u32;
        *self.varset_ids.entry(key).or_insert(next)
    }

    /// Stable id for a replace permutation.
    fn perm_id(&mut self, pairs: &[(Level, Level)]) -> u32 {
        let mut key: Vec<(Level, Level)> = pairs.to_vec();
        key.sort_unstable();
        let next = self.perm_ids.len() as u32;
        *self.perm_ids.entry(key).or_insert(next)
    }

    /// Stable appex-cache tag for a fused replace+relprod call.
    fn fused_seq(&mut self, varset: u32, perm: u32) -> u32 {
        let next = self.fused_ids.len() as u32;
        FUSED_SEQ_BASE | *self.fused_ids.entry((varset, perm)).or_insert(next)
    }

    // ----- variables --------------------------------------------------------

    pub(crate) fn ithvar(&mut self, level: Level) -> u32 {
        assert!(level < self.varcount, "variable level out of range");
        self.mk(level, ZERO, ONE)
    }

    pub(crate) fn nithvar(&mut self, level: Level) -> u32 {
        assert!(level < self.varcount, "variable level out of range");
        self.mk(level, ONE, ZERO)
    }

    // ----- apply family -----------------------------------------------------

    pub(crate) fn and_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        if f == ONE || f == g {
            return g;
        }
        if g == ONE {
            return f;
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.get(a, b, Op::And.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.and_rec(f0, g0);
        self.push_ref(low);
        let high = self.and_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(a, b, Op::And.tag(), res);
        res
    }

    pub(crate) fn or_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == ONE || g == ONE {
            return ONE;
        }
        if f == ZERO || f == g {
            return g;
        }
        if g == ZERO {
            return f;
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.get(a, b, Op::Or.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.or_rec(f0, g0);
        self.push_ref(low);
        let high = self.or_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(a, b, Op::Or.tag(), res);
        res
    }

    pub(crate) fn xor_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == g {
            return ZERO;
        }
        if f == ZERO {
            return g;
        }
        if g == ZERO {
            return f;
        }
        if f == ONE {
            return self.not_rec(g);
        }
        if g == ONE {
            return self.not_rec(f);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.get(a, b, Op::Xor.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.xor_rec(f0, g0);
        self.push_ref(low);
        let high = self.xor_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(a, b, Op::Xor.tag(), res);
        res
    }

    /// `f ∧ ¬g` (set difference).
    pub(crate) fn diff_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == ZERO || g == ONE || f == g {
            return ZERO;
        }
        if g == ZERO {
            return f;
        }
        if f == ONE {
            return self.not_rec(g);
        }
        if let Some(r) = self.apply_cache.get(f, g, Op::Diff.tag()) {
            return r;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let low = self.diff_rec(f0, g0);
        self.push_ref(low);
        let high = self.diff_rec(f1, g1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.apply_cache.put(f, g, Op::Diff.tag(), res);
        res
    }

    pub(crate) fn not_rec(&mut self, f: u32) -> u32 {
        if f == ZERO {
            return ONE;
        }
        if f == ONE {
            return ZERO;
        }
        if let Some(r) = self.apply_cache.get(f, NIL, NOT_TAG) {
            return r;
        }
        let (flow, fhigh, flevel) = {
            let n = &self.nodes[f as usize];
            (n.low, n.high, n.level)
        };
        let low = self.not_rec(flow);
        self.push_ref(low);
        let high = self.not_rec(fhigh);
        self.push_ref(high);
        let res = self.mk(flevel, low, high);
        self.pop_ref(2);
        self.apply_cache.put(f, NIL, NOT_TAG, res);
        res
    }

    pub(crate) fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> u32 {
        if f == ONE {
            return g;
        }
        if f == ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == ONE && h == ZERO {
            return f;
        }
        if g == ZERO && h == ONE {
            return self.not_rec(f);
        }
        if let Some(r) = self.ite_cache.get(f, g, h) {
            return r;
        }
        let m = self.level(f).min(self.level(g)).min(self.level(h));
        let cof = |s: &Store, x: u32| {
            if s.level(x) == m {
                (s.low(x), s.high(x))
            } else {
                (x, x)
            }
        };
        let (f0, f1) = cof(self, f);
        let (g0, g1) = cof(self, g);
        let (h0, h1) = cof(self, h);
        let low = self.ite_rec(f0, g0, h0);
        self.push_ref(low);
        let high = self.ite_rec(f1, g1, h1);
        self.push_ref(high);
        let res = self.mk(m, low, high);
        self.pop_ref(2);
        self.ite_cache.put(f, g, h, res);
        res
    }

    // ----- quantification ----------------------------------------------------

    fn set_quant(&mut self, vars: &[Level]) {
        self.quant_set.fill(false);
        self.quant_set.resize(self.varcount as usize, false);
        self.quant_last = 0;
        for &v in vars {
            assert!(v < self.varcount, "quantified level out of range");
            self.quant_set[v as usize] = true;
            self.quant_last = self.quant_last.max(v);
        }
    }

    /// Existentially quantifies the variables in `vars` out of `f`.
    pub(crate) fn exist(&mut self, f: u32, vars: &[Level]) -> u32 {
        if vars.is_empty() || self.is_term(f) {
            return f;
        }
        self.set_quant(vars);
        let id = self.varset_id(vars);
        self.exist_rec(f, id.wrapping_mul(2))
    }

    fn exist_rec(&mut self, f: u32, seq: u32) -> u32 {
        if self.is_term(f) || self.level(f) > self.quant_last {
            return f;
        }
        if let Some(r) = self.appex_cache.get(f, NIL, seq) {
            return r;
        }
        let (flow, fhigh, flevel) = {
            let n = &self.nodes[f as usize];
            (n.low, n.high, n.level)
        };
        let low = self.exist_rec(flow, seq);
        self.push_ref(low);
        let res = if self.quant_set[flevel as usize] {
            if low == ONE {
                self.pop_ref(1);
                self.appex_cache.put(f, NIL, seq, ONE);
                return ONE;
            }
            let high = self.exist_rec(fhigh, seq);
            self.push_ref(high);
            let r = self.or_rec(low, high);
            self.pop_ref(2);
            r
        } else {
            let high = self.exist_rec(fhigh, seq);
            self.push_ref(high);
            let r = self.mk(flevel, low, high);
            self.pop_ref(2);
            r
        };
        self.appex_cache.put(f, NIL, seq, res);
        res
    }

    /// The relational product `∃ vars. (f ∧ g)`, computed in one pass.
    pub(crate) fn relprod(&mut self, f: u32, g: u32, vars: &[Level]) -> u32 {
        if vars.is_empty() {
            return self.and_rec(f, g);
        }
        self.set_quant(vars);
        let id = self.varset_id(vars);
        self.relprod_rec(f, g, id.wrapping_mul(2).wrapping_add(1))
    }

    fn relprod_rec(&mut self, f: u32, g: u32, seq: u32) -> u32 {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        if lf > self.quant_last && lg > self.quant_last {
            return self.and_rec(f, g);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.appex_cache.get(a, b, seq) {
            return r;
        }
        let m = lf.min(lg);
        let (f0, f1) = if lf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let res = if self.quant_set[m as usize] {
            let low = self.relprod_rec(f0, g0, seq);
            if low == ONE {
                self.appex_cache.put(a, b, seq, ONE);
                return ONE;
            }
            self.push_ref(low);
            let high = self.relprod_rec(f1, g1, seq);
            self.push_ref(high);
            let r = self.or_rec(low, high);
            self.pop_ref(2);
            r
        } else {
            let low = self.relprod_rec(f0, g0, seq);
            self.push_ref(low);
            let high = self.relprod_rec(f1, g1, seq);
            self.push_ref(high);
            let r = self.mk(m, low, high);
            self.pop_ref(2);
            r
        };
        self.appex_cache.put(a, b, seq, res);
        res
    }

    // ----- replace -----------------------------------------------------------

    /// Renames variables of `f` according to `pairs` of `(from, to)` levels.
    ///
    /// The fast path applies when the induced level mapping is monotone on
    /// the support of `f`; otherwise the caller (the manager) falls back to a
    /// conjoin-and-quantify rename.
    pub(crate) fn replace_monotone(&mut self, f: u32, pairs: &[(Level, Level)]) -> u32 {
        if self.is_term(f) || pairs.is_empty() {
            return f;
        }
        self.perm = (0..self.varcount).collect();
        for &(from, to) in pairs {
            assert!(from < self.varcount && to < self.varcount);
            self.perm[from as usize] = to;
        }
        let id = self.perm_id(pairs);
        self.replace_rec(f, id)
    }

    fn replace_rec(&mut self, f: u32, seq: u32) -> u32 {
        if self.is_term(f) {
            return f;
        }
        if let Some(r) = self.replace_cache.get(f, NIL, seq) {
            return r;
        }
        let (flow, fhigh, flevel) = {
            let n = &self.nodes[f as usize];
            (n.low, n.high, n.level)
        };
        let low = self.replace_rec(flow, seq);
        self.push_ref(low);
        let high = self.replace_rec(fhigh, seq);
        self.push_ref(high);
        let res = self.mk(self.perm[flevel as usize], low, high);
        self.pop_ref(2);
        self.replace_cache.put(f, NIL, seq, res);
        res
    }

    /// The fused kernel: `∃ vars. (replace(f, pairs) ∧ g)` in a single
    /// traversal with no intermediate BDD.
    ///
    /// The rename is applied *during* the AND-∃ recursion: each node of `f`
    /// is read at its translated level `perm[level]`, which is sound
    /// because the caller guarantees `pairs` is monotone on the support of
    /// `f` (translation preserves the relative order of `f`'s nodes, so
    /// the renamed `f` is a well-formed OBDD that is never materialized).
    /// Results are memoized in the `appex_cache` under a tag derived from
    /// the (varset, permutation) pair.
    pub(crate) fn replace_relprod(
        &mut self,
        f: u32,
        g: u32,
        pairs: &[(Level, Level)],
        vars: &[Level],
    ) -> u32 {
        if pairs.is_empty() {
            return if vars.is_empty() {
                self.and_rec(f, g)
            } else {
                self.relprod(f, g, vars)
            };
        }
        self.set_quant(vars);
        self.perm = (0..self.varcount).collect();
        for &(from, to) in pairs {
            assert!(from < self.varcount && to < self.varcount);
            self.perm[from as usize] = to;
        }
        // Levels >= perm_tail are untouched by the permutation; once the
        // recursion is past both it and the last quantified level it can
        // downgrade to the plain AND and share the apply cache.
        let mut tail = self.varcount;
        while tail > 0 && self.perm[tail as usize - 1] == tail - 1 {
            tail -= 1;
        }
        self.perm_tail = tail;
        let vid = self.varset_id(vars);
        let pid = self.perm_id(pairs);
        let fseq = self.fused_seq(vid, pid);
        let eseq = vid.wrapping_mul(2);
        self.fused_rec(f, g, fseq, eseq)
    }

    fn fused_rec(&mut self, f: u32, g: u32, fseq: u32, eseq: u32) -> u32 {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        if f == ONE {
            // replace(1) = 1, so the rest is pure quantification of g.
            return if g == ONE {
                ONE
            } else {
                self.exist_rec(g, eseq)
            };
        }
        let lf = self.level(f);
        let plf = self.perm[lf as usize];
        let lg = self.level(g); // TERM_LEVEL when g == ONE
        if lf >= self.perm_tail && plf > self.quant_last && lg > self.quant_last {
            // No renamed and no quantified variables remain below: plain AND.
            return self.and_rec(f, g);
        }
        if let Some(r) = self.appex_cache.get(f, g, fseq) {
            return r;
        }
        let m = plf.min(lg);
        let (f0, f1) = if plf == m {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == m {
            (self.low(g), self.high(g))
        } else {
            (g, g)
        };
        let res = if self.quant_set[m as usize] {
            let low = self.fused_rec(f0, g0, fseq, eseq);
            if low == ONE {
                self.appex_cache.put(f, g, fseq, ONE);
                return ONE;
            }
            self.push_ref(low);
            let high = self.fused_rec(f1, g1, fseq, eseq);
            self.push_ref(high);
            let r = self.or_rec(low, high);
            self.pop_ref(2);
            r
        } else {
            let low = self.fused_rec(f0, g0, fseq, eseq);
            self.push_ref(low);
            let high = self.fused_rec(f1, g1, fseq, eseq);
            self.push_ref(high);
            let r = self.mk(m, low, high);
            self.pop_ref(2);
            r
        };
        self.appex_cache.put(f, g, fseq, res);
        res
    }

    /// Checks whether the `(from, to)` pairs are monotone on `support`:
    /// applying the mapping preserves the relative order of the support
    /// levels and does not collide with any unmapped support level.
    pub(crate) fn replace_is_monotone(support: &[Level], pairs: &[(Level, Level)]) -> bool {
        let mapped: Vec<Level> = support
            .iter()
            .map(|&s| {
                pairs
                    .iter()
                    .find(|&&(from, _)| from == s)
                    .map(|&(_, to)| to)
                    .unwrap_or(s)
            })
            .collect();
        mapped.windows(2).all(|w| w[0] < w[1])
    }

    // ----- structural queries --------------------------------------------------

    /// Returns the support of `f` as a sorted list of levels.
    pub(crate) fn support(&mut self, f: u32) -> Vec<Level> {
        let mut seen = vec![false; self.varcount as usize];
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(u) = stack.pop() {
            if self.is_term(u) || !visited.insert(u) {
                continue;
            }
            let n = &self.nodes[u as usize];
            seen[n.level as usize] = true;
            stack.push(n.low);
            stack.push(n.high);
        }
        (0..self.varcount).filter(|&l| seen[l as usize]).collect()
    }

    /// Number of distinct internal nodes in `f` (excluding terminals).
    pub(crate) fn node_count(&self, f: u32) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0usize;
        while let Some(u) = stack.pop() {
            if self.is_term(u) || !visited.insert(u) {
                continue;
            }
            count += 1;
            let n = &self.nodes[u as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Exact number of satisfying assignments restricted to the variables
    /// in `vars` (which must cover the support of `f`), saturating at
    /// `u128::MAX`.
    pub(crate) fn satcount_exact(&self, f: u32, vars: &[Level]) -> u128 {
        // prefix[l] = how many of `vars` have level < l; this counts the
        // skipped (free) variables between a node and its children.
        let mut in_set = vec![false; self.varcount as usize + 1];
        for &v in vars {
            in_set[v as usize] = true;
        }
        let mut prefix = vec![0u32; self.varcount as usize + 2];
        for l in 0..=self.varcount as usize {
            prefix[l + 1] = prefix[l] + u32::from(in_set[l]);
        }
        let eff = |x: u32| -> u32 {
            if self.is_term(x) {
                self.varcount
            } else {
                self.level(x)
            }
        };
        let pow2 = |bits: u32| -> u128 {
            if bits >= 128 {
                u128::MAX
            } else {
                1u128 << bits
            }
        };
        fn sc(
            s: &Store,
            f: u32,
            memo: &mut NodeMemo<u128>,
            prefix: &[u32],
            eff: &dyn Fn(u32) -> u32,
            pow2: &dyn Fn(u32) -> u128,
        ) -> u128 {
            if f == ZERO {
                return 0;
            }
            if f == ONE {
                return 1;
            }
            if let Some(v) = memo.get(f) {
                return v;
            }
            let n = s.nodes[f as usize];
            let free = |from: u32, to: u32| prefix[to as usize] - prefix[from as usize + 1];
            let l = sc(s, n.low, memo, prefix, eff, pow2)
                .saturating_mul(pow2(free(n.level, eff(n.low))));
            let h = sc(s, n.high, memo, prefix, eff, pow2)
                .saturating_mul(pow2(free(n.level, eff(n.high))));
            let v = l.saturating_add(h);
            memo.insert(f, v);
            v
        }
        let mut memo = NodeMemo::new();
        let base = sc(self, f, &mut memo, &prefix, &eff, &pow2);
        // Free variables above the root.
        let above = if self.is_term(f) {
            prefix[self.varcount as usize]
        } else {
            prefix[self.level(f) as usize]
        };
        base.saturating_mul(pow2(above))
    }

    /// Number of satisfying assignments over all `varcount` variables.
    pub(crate) fn satcount(&self, f: u32) -> f64 {
        let mut memo: NodeMemo<f64> = NodeMemo::new();
        let eff = |s: &Store, x: u32| -> u32 {
            if s.is_term(x) {
                s.varcount
            } else {
                s.level(x)
            }
        };
        fn sc(
            s: &Store,
            f: u32,
            memo: &mut NodeMemo<f64>,
            eff: &dyn Fn(&Store, u32) -> u32,
        ) -> f64 {
            if f == ZERO {
                return 0.0;
            }
            if f == ONE {
                return 1.0;
            }
            if let Some(v) = memo.get(f) {
                return v;
            }
            let n = s.nodes[f as usize];
            let l = sc(s, n.low, memo, eff) * 2f64.powi((eff(s, n.low) - n.level - 1) as i32);
            let h = sc(s, n.high, memo, eff) * 2f64.powi((eff(s, n.high) - n.level - 1) as i32);
            let v = l + h;
            memo.insert(f, v);
            v
        }
        sc(self, f, &mut memo, &eff) * 2f64.powi(eff(self, f) as i32)
    }
}
