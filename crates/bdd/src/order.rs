//! Variable-ordering specifications.
//!
//! The paper reports that BDD performance "depends greatly on the ordering
//! of the variables" and that `bddbddb` searches for an effective ordering
//! empirically. Orderings are written in `bddbddb`'s notation: domains
//! separated by `_` are laid out sequentially, domains separated by `x` are
//! bit-interleaved, e.g. `N_F_I_M2_V2xV1_H2_C_H1`.

use crate::BddError;

/// Outcome of one [`crate::BddManager::reorder_sift`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorderStats {
    /// Live nodes when the pass started (after an initial collection).
    pub nodes_before: usize,
    /// Live nodes when the pass finished.
    pub nodes_after: usize,
    /// Adjacent-level swaps performed.
    pub swaps: usize,
}

impl ReorderStats {
    /// Nodes eliminated by the pass (negative if the table grew, which the
    /// max-growth bound makes rare but possible).
    pub fn delta_nodes(&self) -> i64 {
        self.nodes_before as i64 - self.nodes_after as i64
    }
}

/// The level↔variable indirection that makes dynamic reordering possible.
///
/// Public API talks about *variables* — stable identities fixed at manager
/// construction (domain bit lists, quantification sets, rename pairs).
/// Nodes are labeled with *levels* — positions in the current order, so the
/// kernel's `min(level)` recursions never pay for a translation. This
/// structure is the bijection between the two, plus the grouping of
/// variables into sifting blocks (one block per ordering group, so
/// interleaved domains move as a unit and stay interleaved).
pub(crate) struct VarOrder {
    /// `var2level[v]` = current position of variable `v`.
    var2level: Vec<u32>,
    /// `level2var[l]` = variable at position `l` (inverse of `var2level`).
    level2var: Vec<u32>,
    /// Sifting block of each variable, fixed at construction.
    var_block: Vec<u32>,
}

impl VarOrder {
    /// Identity order; every variable is its own sifting block.
    pub(crate) fn new(varcount: u32) -> Self {
        VarOrder {
            var2level: (0..varcount).collect(),
            level2var: (0..varcount).collect(),
            var_block: (0..varcount).collect(),
        }
    }

    /// Assigns sifting blocks from contiguous widths over the *initial*
    /// (identity) layout: the first `widths[0]` variables form block 0, the
    /// next `widths[1]` form block 1, and so on.
    pub(crate) fn assign_blocks(&mut self, widths: &[u32]) {
        debug_assert_eq!(
            widths.iter().sum::<u32>() as usize,
            self.var_block.len(),
            "block widths must cover every variable"
        );
        let mut v = 0usize;
        for (b, &w) in widths.iter().enumerate() {
            for _ in 0..w {
                self.var_block[v] = b as u32;
                v += 1;
            }
        }
    }

    #[inline]
    pub(crate) fn level_of(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }

    #[inline]
    pub(crate) fn var_at(&self, level: u32) -> u32 {
        self.level2var[level as usize]
    }

    /// The full current order: variable at each level, outermost first.
    pub(crate) fn level_to_var(&self) -> &[u32] {
        &self.level2var
    }

    /// Records that the variables at `level` and `level + 1` traded places.
    pub(crate) fn swap_levels(&mut self, level: u32) {
        let l = level as usize;
        let (a, b) = (self.level2var[l], self.level2var[l + 1]);
        self.level2var[l] = b;
        self.level2var[l + 1] = a;
        self.var2level[a as usize] = level + 1;
        self.var2level[b as usize] = level;
    }

    /// The current block layout as `(block id, width)` runs in level order,
    /// or `None` if raw swaps have torn some block apart (each block must
    /// occupy one contiguous level range to be sifted as a unit).
    pub(crate) fn block_layout(&self) -> Option<Vec<(u32, u32)>> {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for l in 0..self.level2var.len() {
            let b = self.var_block[self.level2var[l] as usize];
            match runs.last_mut() {
                Some(&mut (id, ref mut w)) if id == b => *w += 1,
                _ => {
                    if runs.iter().any(|&(id, _)| id == b) {
                        return None; // block split across two runs
                    }
                    runs.push((b, 1));
                }
            }
        }
        Some(runs)
    }
}

/// A parsed variable-ordering specification.
///
/// # Example
///
/// ```
/// use whale_bdd::OrderSpec;
/// let spec = OrderSpec::parse("A_BxC_D").unwrap();
/// assert_eq!(spec.groups().len(), 3);
/// assert_eq!(spec.groups()[1], vec!["B".to_string(), "C".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderSpec {
    groups: Vec<Vec<String>>,
}

impl OrderSpec {
    /// Parses an ordering string such as `"N_F_I_M2_V2xV1_H2_C_H1"`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::MalformedOrderSpec`] on empty strings, empty
    /// groups (`A__B`) or empty interleave members (`AxxB`).
    pub fn parse(s: &str) -> Result<Self, BddError> {
        if s.is_empty() {
            return Err(BddError::MalformedOrderSpec(s.to_string()));
        }
        let mut groups = Vec::new();
        for group in s.split('_') {
            if group.is_empty() {
                return Err(BddError::MalformedOrderSpec(s.to_string()));
            }
            let members: Vec<String> = group.split('x').map(str::to_string).collect();
            if members.iter().any(String::is_empty) {
                return Err(BddError::MalformedOrderSpec(s.to_string()));
            }
            groups.push(members);
        }
        Ok(OrderSpec { groups })
    }

    /// Builds a spec from explicit groups (outer = sequential, inner =
    /// interleaved), bypassing the string syntax. Useful when member names
    /// contain characters the string form reserves (`_`, `x`).
    pub fn from_groups(groups: Vec<Vec<String>>) -> Self {
        OrderSpec { groups }
    }

    /// Builds a spec that lays out the given domains sequentially in
    /// declaration order (the default when no tuned ordering is known).
    pub fn sequential<S: AsRef<str>>(names: &[S]) -> Self {
        OrderSpec {
            groups: names.iter().map(|n| vec![n.as_ref().to_string()]).collect(),
        }
    }

    /// The ordering groups: outer list is sequential, inner lists are
    /// bit-interleaved.
    pub fn groups(&self) -> &[Vec<String>] {
        &self.groups
    }

    /// All domain names mentioned by the spec, in layout order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.groups.iter().flatten().map(String::as_str)
    }
}

impl std::fmt::Display for OrderSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s: Vec<String> = self.groups.iter().map(|g| g.join("x")).collect();
        write!(f, "{}", s.join("_"))
    }
}

/// Assigns levels for `groups`, where each group is a list of bit widths.
///
/// Within an interleaved group, bits are emitted most-significant first and
/// significance-aligned: at each significance position, one bit of every
/// member wide enough to have that position, in member order. Returns one
/// `Vec<level>` (LSB first) per member, in group order.
pub(crate) fn assign_levels_grouped(groups: &[Vec<u32>]) -> Vec<Vec<Vec<u32>>> {
    let mut next_level: u32 = 0;
    let mut out = Vec::with_capacity(groups.len());
    for group in groups {
        let max_bits = group.iter().copied().max().unwrap_or(0);
        let mut member_bits: Vec<Vec<u32>> = group.iter().map(|&w| vec![0; w as usize]).collect();
        // Significance positions from MSB (max_bits - 1) down to 0.
        for pos in (0..max_bits).rev() {
            for (m, &w) in group.iter().enumerate() {
                if pos < w {
                    member_bits[m][pos as usize] = next_level;
                    next_level += 1;
                }
            }
        }
        out.push(member_bits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let s = "N_F_I_M2_V2xV1_H2_C_H1";
        let spec = OrderSpec::parse(s).unwrap();
        assert_eq!(spec.to_string(), s);
        assert_eq!(spec.groups().len(), 8);
        assert_eq!(spec.groups()[4], vec!["V2".to_string(), "V1".to_string()]);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(OrderSpec::parse("").is_err());
        assert!(OrderSpec::parse("A__B").is_err());
        assert!(OrderSpec::parse("AxxB").is_err());
        assert!(OrderSpec::parse("_A").is_err());
    }

    #[test]
    fn sequential_layout() {
        // Two sequential groups of widths 2 and 3: levels 0..2 then 2..5.
        let lv = assign_levels_grouped(&[vec![2], vec![3]]);
        // LSB first: group 0 member 0 has MSB at level 0, LSB at level 1.
        assert_eq!(lv[0][0], vec![1, 0]);
        assert_eq!(lv[1][0], vec![4, 3, 2]);
    }

    #[test]
    fn interleaved_layout() {
        // One group interleaving two 2-bit members: levels
        // pos1: m0 -> 0, m1 -> 1; pos0: m0 -> 2, m1 -> 3.
        let lv = assign_levels_grouped(&[vec![2, 2]]);
        assert_eq!(lv[0][0], vec![2, 0]);
        assert_eq!(lv[0][1], vec![3, 1]);
    }

    #[test]
    fn interleaved_unequal_widths() {
        // Widths 3 and 1, significance-aligned: pos2 -> m0; pos1 -> m0;
        // pos0 -> m0 then m1.
        let lv = assign_levels_grouped(&[vec![3, 1]]);
        assert_eq!(lv[0][0], vec![2, 1, 0]);
        assert_eq!(lv[0][1], vec![3]);
    }
}
