//! Direct-mapped operation caches for the BDD kernel.
//!
//! Each cache is a fixed-size, direct-mapped table. Entries are invalidated
//! wholesale (by [`Cache::clear`]) whenever garbage collection may have
//! reclaimed nodes that entries refer to.

pub(crate) const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Entry {
    a: u32,
    b: u32,
    c: u32,
    res: u32,
}

const EMPTY: Entry = Entry {
    a: NIL,
    b: NIL,
    c: NIL,
    res: NIL,
};

/// A direct-mapped cache keyed by up to three `u32` operands.
pub(crate) struct Cache {
    entries: Vec<Entry>,
    mask: usize,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

#[inline]
fn mix(a: u32, b: u32, c: u32) -> usize {
    // Cheap multiplicative hash over the three operands.
    let mut h = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= (b as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= (c as u64).wrapping_mul(0x1656_67b1_9e37_79f9);
    h ^= h >> 29;
    h as usize
}

impl Cache {
    /// Creates a cache with `1 << log2_size` entries.
    pub(crate) fn new(log2_size: u32) -> Self {
        let size = 1usize << log2_size;
        Cache {
            entries: vec![EMPTY; size],
            mask: size - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    pub(crate) fn get(&mut self, a: u32, b: u32, c: u32) -> Option<u32> {
        let e = &self.entries[mix(a, b, c) & self.mask];
        if e.a == a && e.b == b && e.c == c {
            self.hits += 1;
            Some(e.res)
        } else {
            self.misses += 1;
            None
        }
    }

    #[inline]
    pub(crate) fn put(&mut self, a: u32, b: u32, c: u32, res: u32) {
        self.entries[mix(a, b, c) & self.mask] = Entry { a, b, c, res };
    }

    pub(crate) fn clear(&mut self) {
        self.entries.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get() {
        let mut c = Cache::new(8);
        assert_eq!(c.get(1, 2, 3), None);
        c.put(1, 2, 3, 42);
        assert_eq!(c.get(1, 2, 3), Some(42));
        assert_eq!(c.get(1, 2, 4), None);
    }

    #[test]
    fn clear_removes_entries() {
        let mut c = Cache::new(4);
        c.put(7, 8, 9, 10);
        c.clear();
        assert_eq!(c.get(7, 8, 9), None);
    }

    #[test]
    fn collision_overwrites() {
        let mut c = Cache::new(0); // single entry: everything collides
        c.put(1, 1, 1, 10);
        c.put(2, 2, 2, 20);
        assert_eq!(c.get(1, 1, 1), None);
        assert_eq!(c.get(2, 2, 2), Some(20));
    }
}
