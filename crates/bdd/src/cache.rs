//! Set-associative operation caches for the BDD kernel.
//!
//! Each cache is a fixed-size, 4-way set-associative table. Within a full
//! set the victim is chosen round-robin by default; caches built with
//! [`Cache::new_aged`] instead evict by *generation age* — every entry
//! carries an access stamp refreshed on hit, and the stalest way loses.
//! Age-based replacement only matters where capacity misses are real (the
//! apply cache); for the compulsory-miss-dominated caches the cheaper
//! round-robin is kept. Entries are *generation-tagged*: an entry is valid
//! only when its generation matches the cache's current generation, so
//! [`Cache::clear`] is an O(1) generation bump rather than a memset. After a
//! garbage collection that actually freed nodes, [`Cache::revalidate`]
//! re-tags every entry whose operands and result all survived — warm
//! memoization state is preserved across GC instead of being thrown away
//! wholesale.

pub(crate) const NIL: u32 = u32::MAX;

/// Associativity: entries per set.
const WAYS: usize = 4;

#[derive(Clone, Copy)]
struct Entry {
    a: u32,
    b: u32,
    c: u32,
    res: u32,
    gen: u32,
    /// Access stamp for age-based eviction (0 when the cache is not aged).
    stamp: u32,
}

const EMPTY: Entry = Entry {
    a: NIL,
    b: NIL,
    c: NIL,
    res: NIL,
    gen: 0,
    stamp: 0,
};

/// Hit/miss/eviction counters of one cache, cumulative over its lifetime
/// (preserved across `Cache::clear`, `Cache::revalidate` and resizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a memoized result.
    pub hits: u64,
    /// Lookups that found nothing (or only stale entries).
    pub misses: u64,
    /// Insertions that displaced a *valid* entry from a full set.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A 4-way set-associative cache keyed by up to three `u32` operands.
pub(crate) struct Cache {
    entries: Vec<Entry>,
    /// Round-robin victim pointer per set.
    rr: Vec<u8>,
    set_mask: usize,
    gen: u32,
    pub(crate) stats: CacheStats,
    /// Counter snapshot at the start of the current pressure window (see
    /// [`Cache::pressure_window`]).
    window_base: CacheStats,
    /// Window hit rate measured when the cache last grew adaptively; the
    /// next closed window compares against it to decide whether the growth
    /// paid off (see [`Cache::adapt`]).
    pre_grow_rate: Option<f64>,
    /// Set once a doubling failed to improve the window hit rate: the miss
    /// stream is compulsory (first-time keys), so further growth buys
    /// nothing and adaptive sizing stops until the next [`Cache::clear`].
    saturated: bool,
    /// When set, full-set eviction picks the entry with the oldest access
    /// stamp instead of the round-robin victim.
    aged: bool,
    /// Monotone access counter driving the stamps of an aged cache.
    tick: u32,
}

#[inline]
fn mix(a: u32, b: u32, c: u32) -> usize {
    // Cheap multiplicative hash over the three operands.
    let mut h = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= (b as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= (c as u64).wrapping_mul(0x1656_67b1_9e37_79f9);
    h ^= h >> 29;
    h as usize
}

impl Cache {
    /// Creates a cache with `1 << log2_size` entries (at least one full set).
    pub(crate) fn new(log2_size: u32) -> Self {
        let size = (1usize << log2_size).max(WAYS);
        let sets = size / WAYS;
        Cache {
            entries: vec![EMPTY; size],
            rr: vec![0; sets],
            set_mask: sets - 1,
            gen: 1, // entries start at gen 0 == invalid
            stats: CacheStats::default(),
            window_base: CacheStats::default(),
            pre_grow_rate: None,
            saturated: false,
            aged: false,
            tick: 0,
        }
    }

    /// Like [`Cache::new`], but with generation-age (least-recently-used
    /// within the set) eviction instead of round-robin.
    pub(crate) fn new_aged(log2_size: u32) -> Self {
        let mut c = Cache::new(log2_size);
        c.aged = true;
        c
    }

    /// Advances the access counter. On the (essentially unreachable) u32
    /// wraparound all stamps reset to "oldest", which momentarily degrades
    /// victim choice but never correctness.
    #[inline]
    fn next_tick(&mut self) -> u32 {
        if self.tick == u32::MAX {
            for e in &mut self.entries {
                e.stamp = 0;
            }
            self.tick = 0;
        }
        self.tick += 1;
        self.tick
    }

    /// Log2 of the entry count.
    pub(crate) fn log2_size(&self) -> u32 {
        self.entries.len().ilog2()
    }

    /// Bytes held by the entry and victim-pointer arrays.
    pub(crate) fn bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>() + self.rr.len()
    }

    /// Counter deltas accumulated since the last [`Cache::end_window`] —
    /// the *eviction pressure window* the adaptive sizing policy inspects.
    pub(crate) fn pressure_window(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits - self.window_base.hits,
            misses: self.stats.misses - self.window_base.misses,
            evictions: self.stats.evictions - self.window_base.evictions,
        }
    }

    /// Closes the current pressure window: subsequent
    /// [`Cache::pressure_window`] calls measure from this point.
    pub(crate) fn end_window(&mut self) {
        self.window_base = self.stats;
    }

    /// One adaptive-sizing decision. Returns `true` if the cache grew.
    ///
    /// Waits until the pressure window has accumulated `min_misses` misses,
    /// then: if the previous decision grew the cache and this window's hit
    /// rate did not improve by at least `min_hit_gain`, the evicted entries
    /// were evidently never re-requested — the miss stream is *compulsory*,
    /// and the cache marks itself saturated (no further growth until the
    /// next [`Cache::clear`]). Otherwise, if evictions account for at least
    /// `grow_ratio` of the window's misses, the working set does not fit
    /// and the cache doubles (up to `1 << max_log2` entries).
    ///
    /// The feedback step is what makes the policy safe on streaming
    /// workloads: eviction pressure alone cannot distinguish a too-small
    /// cache from a stream of first-time keys, but the hit-rate response to
    /// a doubling can.
    pub(crate) fn adapt(
        &mut self,
        min_misses: u64,
        grow_ratio: f64,
        min_hit_gain: f64,
        max_log2: u32,
    ) -> bool {
        let w = self.pressure_window();
        if w.misses < min_misses {
            return false;
        }
        let rate = w.hit_rate();
        if let Some(pre) = self.pre_grow_rate.take() {
            if rate < pre + min_hit_gain {
                self.saturated = true;
            }
        }
        let mut grew = false;
        if !self.saturated
            && self.log2_size() < max_log2
            && w.evictions as f64 >= grow_ratio * w.misses as f64
        {
            self.resize(self.log2_size() + 1);
            self.pre_grow_rate = Some(rate);
            grew = true;
        }
        self.end_window();
        grew
    }

    #[inline]
    pub(crate) fn get(&mut self, a: u32, b: u32, c: u32) -> Option<u32> {
        let base = (mix(a, b, c) & self.set_mask) * WAYS;
        for w in 0..WAYS {
            let e = self.entries[base + w];
            if e.gen == self.gen && e.a == a && e.b == b && e.c == c {
                self.stats.hits += 1;
                if self.aged {
                    self.entries[base + w].stamp = self.next_tick();
                }
                return Some(e.res);
            }
        }
        self.stats.misses += 1;
        None
    }

    #[inline]
    pub(crate) fn put(&mut self, a: u32, b: u32, c: u32, res: u32) {
        let set = mix(a, b, c) & self.set_mask;
        let base = set * WAYS;
        // Prefer overwriting the same key, then any stale/empty slot.
        let mut victim = None;
        for (w, e) in self.entries[base..base + WAYS].iter().enumerate() {
            if e.a == a && e.b == b && e.c == c {
                victim = Some((w, false));
                break;
            }
            if victim.is_none() && e.gen != self.gen {
                victim = Some((w, false));
            }
        }
        let (way, evicts) = match victim {
            Some(v) => v,
            None if self.aged => {
                // Full set of valid entries: age out the least recently
                // touched way.
                let mut best = 0;
                let mut best_stamp = u32::MAX;
                for (w, e) in self.entries[base..base + WAYS].iter().enumerate() {
                    if e.stamp < best_stamp {
                        best_stamp = e.stamp;
                        best = w;
                    }
                }
                (best, true)
            }
            None => {
                let w = self.rr[set] as usize % WAYS;
                self.rr[set] = self.rr[set].wrapping_add(1);
                (w, true)
            }
        };
        if evicts {
            self.stats.evictions += 1;
        }
        let stamp = if self.aged { self.next_tick() } else { 0 };
        self.entries[base + way] = Entry {
            a,
            b,
            c,
            res,
            gen: self.gen,
            stamp,
        };
    }

    /// Invalidates every entry by bumping the generation — O(1) amortized
    /// (a full memset happens only on the ~never-reached u32 wraparound).
    pub(crate) fn clear(&mut self) {
        if self.gen == u32::MAX {
            self.entries.fill(EMPTY);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Re-arms adaptive growth. Called when the workload phase genuinely
    /// changes (a reordering pass discarded all memoized state) — *not*
    /// after GC revalidation, which preserves warm entries and therefore
    /// says nothing new about the miss stream.
    pub(crate) fn reset_adapt(&mut self) {
        self.saturated = false;
        self.pre_grow_rate = None;
    }

    /// Generation-tagged GC invalidation: bumps the generation, then
    /// re-tags entries whose node-valued fields all satisfy `live`. Called
    /// only after a collection that freed nodes; surviving entries stay
    /// warm, entries naming a freed node go stale before its slot can be
    /// reused.
    ///
    /// `b_is_node`/`c_is_node` describe the key layout: the `b`/`c` slots
    /// hold node indices (checked, `NIL` allowed) or opaque tags (skipped).
    pub(crate) fn revalidate(
        &mut self,
        live: impl Fn(u32) -> bool,
        b_is_node: bool,
        c_is_node: bool,
    ) {
        let old = self.gen;
        self.clear();
        if self.gen < old {
            // Wraparound hard-cleared the table; nothing to re-tag.
            return;
        }
        let new = self.gen;
        for e in &mut self.entries {
            if e.gen != old || e.a == NIL {
                continue;
            }
            let ok = live(e.a)
                && live(e.res)
                && (!b_is_node || e.b == NIL || live(e.b))
                && (!c_is_node || e.c == NIL || live(e.c));
            if ok {
                e.gen = new;
            }
        }
    }

    /// Resizes to `1 << log2_size` entries, rehashing still-valid entries
    /// into the new table and keeping the cumulative counters.
    pub(crate) fn resize(&mut self, log2_size: u32) {
        let size = (1usize << log2_size).max(WAYS);
        if size == self.entries.len() {
            return;
        }
        let old = std::mem::replace(&mut self.entries, vec![EMPTY; size]);
        let old_gen = self.gen;
        let sets = size / WAYS;
        self.rr = vec![0; sets];
        self.set_mask = sets - 1;
        self.gen = 1;
        let stats = self.stats;
        for e in old {
            if e.gen == old_gen && e.a != NIL {
                self.put(e.a, e.b, e.c, e.res);
            }
        }
        // Rehash insertions are bookkeeping, not real evictions.
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get() {
        let mut c = Cache::new(8);
        assert_eq!(c.get(1, 2, 3), None);
        c.put(1, 2, 3, 42);
        assert_eq!(c.get(1, 2, 3), Some(42));
        assert_eq!(c.get(1, 2, 4), None);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn clear_removes_entries() {
        let mut c = Cache::new(4);
        c.put(7, 8, 9, 10);
        c.clear();
        assert_eq!(c.get(7, 8, 9), None);
    }

    #[test]
    fn four_ways_coexist_in_one_set() {
        let mut c = Cache::new(2); // exactly one set of 4 ways
        for k in 0..4u32 {
            c.put(k, k, k, 100 + k);
        }
        for k in 0..4u32 {
            assert_eq!(c.get(k, k, k), Some(100 + k), "way {k} retained");
        }
        // A fifth insertion evicts exactly one way, round-robin.
        c.put(9, 9, 9, 109);
        assert_eq!(c.stats.evictions, 1);
        let survivors = (0..4u32).filter(|&k| c.get(k, k, k).is_some()).count();
        assert_eq!(survivors, 3);
        assert_eq!(c.get(9, 9, 9), Some(109));
    }

    #[test]
    fn aged_eviction_picks_least_recently_used() {
        let mut c = Cache::new_aged(2); // exactly one set of 4 ways
        for k in 0..4u32 {
            c.put(k, k, k, 100 + k);
        }
        // Touch 0, 2 and 3; key 1 becomes the stalest way.
        for k in [0u32, 2, 3] {
            assert_eq!(c.get(k, k, k), Some(100 + k));
        }
        c.put(9, 9, 9, 109);
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.get(1, 1, 1), None, "LRU way evicted");
        for k in [0u32, 2, 3, 9] {
            assert_eq!(c.get(k, k, k), Some(100 + k), "recent ways retained");
        }
    }

    #[test]
    fn aged_hit_refreshes_recency() {
        let mut c = Cache::new_aged(2);
        for k in 0..4u32 {
            c.put(k, k, k, 100 + k);
        }
        // Key 0 was inserted first; a fresh hit must still protect it, so
        // the next eviction falls on key 1 (the new oldest).
        assert_eq!(c.get(0, 0, 0), Some(100));
        c.put(9, 9, 9, 109);
        assert_eq!(c.get(0, 0, 0), Some(100));
        assert_eq!(c.get(1, 1, 1), None);
    }

    #[test]
    fn aged_put_prefers_stale_slots_over_eviction() {
        let mut c = Cache::new_aged(2);
        for k in 0..4u32 {
            c.put(k, k, k, 100 + k);
        }
        c.clear();
        // All ways stale after clear: a new put reuses one, no eviction.
        c.put(5, 5, 5, 105);
        assert_eq!(c.stats.evictions, 0);
        assert_eq!(c.get(5, 5, 5), Some(105));
    }

    #[test]
    fn revalidate_keeps_live_entries() {
        let mut c = Cache::new(4);
        c.put(2, 3, 1, 4); // all "nodes" live
        c.put(5, NIL, 1, 6); // b is NIL: allowed
        c.put(7, 8, 1, 9); // 8 will die
        c.revalidate(|x| x != 8, true, false);
        assert_eq!(c.get(2, 3, 1), Some(4));
        assert_eq!(c.get(5, NIL, 1), Some(6));
        assert_eq!(c.get(7, 8, 1), None);
    }

    #[test]
    fn revalidate_checks_result_liveness() {
        let mut c = Cache::new(4);
        c.put(2, 3, 1, 4);
        c.revalidate(|x| x != 4, true, false);
        assert_eq!(c.get(2, 3, 1), None);
    }

    #[test]
    fn resize_preserves_entries_and_counters() {
        let mut c = Cache::new(4);
        c.put(1, 2, 3, 10);
        c.put(4, 5, 6, 11);
        let _ = c.get(1, 2, 3);
        let stats_before = c.stats;
        c.resize(8);
        assert_eq!(c.stats, stats_before, "counters survive resize");
        assert_eq!(c.get(1, 2, 3), Some(10));
        assert_eq!(c.get(4, 5, 6), Some(11));
    }

    /// Drives one pressure window of `n` distinct-key misses; every put
    /// into the tiny cache past the first few evicts a valid entry.
    fn stream_misses(c: &mut Cache, start: u32, n: u32) {
        for k in start..start + n {
            assert_eq!(c.get(k, k, k), None);
            c.put(k, k, k, k);
        }
    }

    #[test]
    fn adapt_waits_for_a_full_window() {
        let mut c = Cache::new(2);
        stream_misses(&mut c, 0, 63);
        assert!(!c.adapt(64, 0.5, 0.01, 20), "window not closed yet");
        assert_eq!(c.log2_size(), 2);
    }

    #[test]
    fn adapt_grows_under_eviction_pressure() {
        let mut c = Cache::new(2);
        stream_misses(&mut c, 0, 64);
        assert!(c.adapt(64, 0.5, 0.01, 20), "eviction-dominated window");
        assert_eq!(c.log2_size(), 3, "one doubling per decision");
        // The decision closed the window: an immediate re-check is a no-op.
        assert!(!c.adapt(64, 0.5, 0.01, 20));
    }

    #[test]
    fn adapt_respects_the_size_cap() {
        let mut c = Cache::new(4);
        stream_misses(&mut c, 0, 64);
        assert!(!c.adapt(64, 0.5, 0.01, 4), "already at max_log2");
        assert_eq!(c.log2_size(), 4);
    }

    #[test]
    fn adapt_ignores_low_eviction_windows() {
        let mut c = Cache::new(10); // big enough that nothing evicts
        stream_misses(&mut c, 0, 64);
        assert!(!c.adapt(64, 0.5, 0.01, 20));
        assert_eq!(c.log2_size(), 10);
    }

    #[test]
    fn adapt_saturates_when_growth_does_not_pay() {
        let mut c = Cache::new(2);
        stream_misses(&mut c, 0, 64);
        assert!(c.adapt(64, 0.5, 0.01, 20), "first window grows");
        // The next window is again all first-time keys: the doubling bought
        // no hits, so the cache declares the stream compulsory...
        stream_misses(&mut c, 1000, 64);
        assert!(!c.adapt(64, 0.5, 0.01, 20), "no hit gain → saturated");
        // ...and stays saturated under arbitrarily heavy later pressure.
        stream_misses(&mut c, 2000, 64);
        assert!(!c.adapt(64, 0.5, 0.01, 20));
        assert_eq!(c.log2_size(), 3);
        // A full clear announces a new workload phase and re-arms growth.
        c.clear();
        c.reset_adapt();
        stream_misses(&mut c, 3000, 64);
        assert!(c.adapt(64, 0.5, 0.01, 20));
        assert_eq!(c.log2_size(), 4);
    }

    #[test]
    fn adapt_keeps_growing_while_hit_rate_improves() {
        let mut c = Cache::new(2);
        stream_misses(&mut c, 0, 64);
        assert!(c.adapt(64, 0.5, 0.01, 20));
        // This window has re-request locality (every key is looked up
        // again right after insertion, before pressure can evict it): the
        // hit rate responds to the doubling, so growth stays armed.
        for k in 0..64u32 {
            assert_eq!(c.get(k, k, k), None);
            c.put(k, k, k, k);
            assert_eq!(c.get(k, k, k), Some(k));
        }
        assert!(
            c.adapt(64, 0.5, 0.01, 20),
            "improved hit rate keeps growing"
        );
        assert_eq!(c.log2_size(), 4);
    }

    #[test]
    fn tag_slots_are_not_liveness_checked() {
        let mut c = Cache::new(4);
        // c = 99 is an opaque tag (e.g. a varset/permutation id), not a node.
        c.put(2, 3, 99, 4);
        c.revalidate(|x| x != 99, true, false);
        assert_eq!(c.get(2, 3, 99), Some(4));
    }
}
