//! Dynamic variable reordering: adjacent-level swaps and sifting passes
//! must change only the *shape* of the node graph, never the functions the
//! live handles denote.
//!
//! Property tests run on the `whale-testkit` harness (64 seeded cases per
//! property, so well past the 3-seed bar; failing cases replay with
//! `TESTKIT_SEED=<n>`), each pitting a randomly reordered manager against
//! a brute-force truth table or a tuple-set oracle captured before the
//! reorder.

use whale_testkit::prop::{pair_of, ranged_u32, ranged_u64, vec_of};
use whale_testkit::{check, Gen, Rng};

use whale_bdd::{Bdd, BddManager, DomainSpec, OrderSpec};

const NVARS: u32 = 6;
const CASES: u32 = 64;

/// A random boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return Expr::Var(rng.gen_range(0..NVARS));
    }
    let a = || Box::new(Expr::Var(0));
    let mut node = match rng.gen_range(0..4u32) {
        0 => Expr::Not(a()),
        1 => Expr::And(a(), a()),
        2 => Expr::Or(a(), a()),
        _ => Expr::Xor(a(), a()),
    };
    match &mut node {
        Expr::Not(x) => **x = gen_expr(rng, depth - 1),
        Expr::And(x, y) | Expr::Or(x, y) | Expr::Xor(x, y) => {
            **x = gen_expr(rng, depth - 1);
            **y = gen_expr(rng, depth - 1);
        }
        Expr::Var(_) => unreachable!(),
    }
    node
}

fn arb_expr() -> Gen<Expr> {
    Gen::new(|rng| gen_expr(rng, 5))
}

fn eval(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => (bits >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, bits),
        Expr::And(a, b) => eval(a, bits) && eval(b, bits),
        Expr::Or(a, b) => eval(a, bits) || eval(b, bits),
        Expr::Xor(a, b) => eval(a, bits) ^ eval(b, bits),
    }
}

fn build(m: &BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.ithvar(*v),
        Expr::Not(a) => build(m, a).not(),
        Expr::And(a, b) => build(m, a).and(&build(m, b)),
        Expr::Or(a, b) => build(m, a).or(&build(m, b)),
        Expr::Xor(a, b) => build(m, a).xor(&build(m, b)),
    }
}

/// Evaluates the BDD pointwise through variable-number minterms — this is
/// order-independent, so it reads back the function under any reorder.
fn bdd_truth_table(m: &BddManager, f: &Bdd) -> Vec<bool> {
    (0..(1u32 << NVARS))
        .map(|bits| {
            let mut minterm = m.one();
            for v in 0..NVARS {
                let lit = if (bits >> v) & 1 == 1 {
                    m.ithvar(v)
                } else {
                    m.nithvar(v)
                };
                minterm = minterm.and(&lit);
            }
            !f.and(&minterm).is_zero()
        })
        .collect()
}

fn assert_order_consistent(m: &BddManager) {
    let order = m.var_order();
    assert_eq!(order.len() as u32, m.varcount());
    let mut seen = vec![false; order.len()];
    for (lvl, &v) in order.iter().enumerate() {
        assert!(!std::mem::replace(&mut seen[v as usize], true));
        assert_eq!(m.level_of_var(v), lvl as u32);
    }
}

#[test]
fn random_swap_sequence_preserves_semantics() {
    let gen = pair_of(arb_expr(), vec_of(ranged_u32(0, NVARS - 1), 1, 24));
    check("swap_sequence_semantics", CASES, &gen, |(e, swaps)| {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, e);
        let want_tt: Vec<bool> = (0..(1u32 << NVARS)).map(|bits| eval(e, bits)).collect();
        let want_sc = f.satcount();
        for &l in swaps {
            m.swap_adjacent_levels(l);
        }
        assert_order_consistent(&m);
        if f.satcount() != want_sc {
            return Err(format!("satcount changed: {} -> {}", want_sc, f.satcount()));
        }
        if bdd_truth_table(&m, &f) != want_tt {
            return Err("truth table changed after swaps".into());
        }
        Ok(())
    });
}

#[test]
fn sift_preserves_semantics() {
    check("sift_semantics", CASES, &arb_expr(), |e| {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, e);
        let want_tt = bdd_truth_table(&m, &f);
        let want_sc = f.satcount();
        let stats = m.reorder_sift();
        assert_order_consistent(&m);
        if stats.nodes_after > stats.nodes_before {
            return Err(format!(
                "sift grew the table: {} -> {}",
                stats.nodes_before, stats.nodes_after
            ));
        }
        if f.satcount() != want_sc {
            return Err(format!("satcount changed: {} -> {}", want_sc, f.satcount()));
        }
        if bdd_truth_table(&m, &f) != want_tt {
            return Err("truth table changed after sift".into());
        }
        Ok(())
    });
}

#[test]
fn swaps_and_sift_preserve_relation_tuples() {
    // Domain-level oracle: a relation's tuple set must survive any mix of
    // raw swaps and sifting (domains are multi-bit, so this exercises the
    // level translation in `tuples` too). A(64) + B(64) is 12 variables,
    // so swap levels range over [0, 11).
    let gen = pair_of(
        pair_of(ranged_u64(0, 59), ranged_u64(0, 3)),
        vec_of(ranged_u32(0, 11), 0, 16),
    );
    check("reorder_relation_tuples", CASES, &gen, |case| {
        let ((lo, c), swaps) = case.clone();
        let m = BddManager::with_domains(
            &[DomainSpec::new("A", 64), DomainSpec::new("B", 64)],
            &OrderSpec::parse("A_B").unwrap(),
        )
        .unwrap();
        let (a, b) = (m.domain("A").unwrap(), m.domain("B").unwrap());
        let f = m
            .domain_range(a, lo, lo + 4)
            .and(&m.domain_add_const(a, b, c));
        let mut want = f.tuples(&[a, b]);
        want.sort();
        for l in swaps {
            m.swap_adjacent_levels(l);
        }
        m.reorder_sift();
        assert_order_consistent(&m);
        let mut got = f.tuples(&[a, b]);
        got.sort();
        if got != want {
            return Err(format!(
                "tuple set changed: {} tuples -> {} tuples",
                want.len(),
                got.len()
            ));
        }
        Ok(())
    });
}

/// The deliberately bad ordering: `f = ∧ (x_i ↔ x_{n+i})` with all the
/// left-hand variables above all the right-hand ones is exponentially
/// large; pairing the variables makes it linear. Sifting must find a
/// dramatically smaller order from the bad start.
fn pairing_function(m: &BddManager, n: u32) -> Bdd {
    let mut f = m.one();
    for i in 0..n {
        let eq = m.ithvar(i).xor(&m.ithvar(n + i)).not();
        f = f.and(&eq);
    }
    f
}

#[test]
fn sift_reduces_nodes_from_bad_ordering() {
    let n = 8;
    let m = BddManager::with_vars(2 * n);
    let f = pairing_function(&m, n);
    m.gc();
    let before = f.node_count();
    let stats = m.reorder_sift();
    let after = f.node_count();
    assert!(stats.swaps > 0, "sifting performed no swaps");
    assert!(
        stats.nodes_after < stats.nodes_before,
        "sift did not shrink the table: {} -> {}",
        stats.nodes_before,
        stats.nodes_after
    );
    // The split order costs Ω(2^n) nodes, the paired order Θ(n). Sifting
    // reliably gets within a small factor of the good order.
    assert!(
        after * 8 < before,
        "expected a dramatic reduction, got {before} -> {after}"
    );
    assert_order_consistent(&m);
    assert_eq!(f.satcount() as u64, 1u64 << n);
}

#[test]
fn sift_keeps_interleaved_groups_together() {
    // Three ordering groups over four 8-bit domains: A, BxC, D. Sifting
    // may permute the groups but must keep each one contiguous and leave
    // the interleaving of B and C untouched.
    let m = BddManager::with_domains(
        &[
            DomainSpec::new("A", 256),
            DomainSpec::new("B", 256),
            DomainSpec::new("C", 256),
            DomainSpec::new("D", 256),
        ],
        &OrderSpec::parse("A_BxC_D").unwrap(),
    )
    .unwrap();
    let (a, b) = (m.domain("A").unwrap(), m.domain("B").unwrap());
    let (c, d) = (m.domain("C").unwrap(), m.domain("D").unwrap());
    let f = m
        .domain_add_const(a, d, 1)
        .and(&m.domain_add_const(b, c, 2));
    let want = f.tuples(&[a, b, c, d]).len();
    m.reorder_sift();
    // Variable numbers record the initial layout: A sat at levels 0..8,
    // the BxC interleave at 8..24, D at 24..32.
    let order = m.var_order();
    let block_of = |v: u32| match v {
        0..=7 => 0u32,
        8..=23 => 1,
        _ => 2,
    };
    let mut runs: Vec<u32> = Vec::new();
    for &v in &order {
        if runs.last() != Some(&block_of(v)) {
            runs.push(block_of(v));
        }
    }
    assert_eq!(runs.len(), 3, "groups fragmented: {order:?}");
    // Inside the interleaved group, relative variable order is untouched.
    let inner: Vec<u32> = order
        .iter()
        .copied()
        .filter(|&v| block_of(v) == 1)
        .collect();
    assert_eq!(inner, (8..24).collect::<Vec<u32>>());
    assert_eq!(f.tuples(&[a, b, c, d]).len(), want);
}

#[test]
fn auto_reorder_triggers_and_preserves_functions() {
    let n = 8;
    let m = BddManager::with_vars(2 * n);
    m.set_auto_reorder(Some(256));
    let f = pairing_function(&m, n);
    // The trigger arms at a garbage collection (allocation pressure) and
    // fires at the next operation entry. Churn distinct throwaway minterms
    // until the table fills and a collection runs.
    let mut i: u64 = 2;
    while m.stats().reorder_runs == 0 && i < 1 << 16 {
        let mut cube = m.one();
        for v in 0..(2 * n) {
            let lit = if (i >> v) & 1 == 1 {
                m.ithvar(v)
            } else {
                m.nithvar(v)
            };
            cube = cube.and(&lit);
        }
        i += 1;
    }
    assert!(
        m.stats().reorder_runs > 0,
        "auto-reorder never fired (peak {} live nodes)",
        m.stats().peak_live_nodes
    );
    let g = f.and(&m.ithvar(0));
    assert_eq!(f.satcount() as u64, 1 << n);
    assert_eq!(g.satcount() as u64, 1 << (n - 1));
    assert_order_consistent(&m);
}

#[test]
fn sift_on_trivial_managers_is_a_no_op() {
    let m = BddManager::with_vars(1);
    let f = m.ithvar(0);
    let stats = m.reorder_sift();
    assert_eq!(stats.swaps, 0);
    assert_eq!(f.satcount() as u64, 1);

    let m = BddManager::with_vars(4);
    let stats = m.reorder_sift(); // empty table
    assert_eq!(stats.nodes_after, 0);
}

#[test]
fn reorder_then_io_roundtrip() {
    // A file written under a reordered manager must decode identically in
    // a fresh identity-order manager (and back into the reordered one).
    let mk = || {
        BddManager::with_domains(
            &[DomainSpec::new("A", 256), DomainSpec::new("B", 256)],
            &OrderSpec::parse("A_B").unwrap(),
        )
        .unwrap()
    };
    let m1 = mk();
    let (a1, b1) = (m1.domain("A").unwrap(), m1.domain("B").unwrap());
    let f = m1
        .domain_add_const(a1, b1, 3)
        .and(&m1.domain_range(a1, 10, 99));
    let want = {
        let mut t = f.tuples(&[a1, b1]);
        t.sort();
        t
    };
    for l in [0, 5, 10, 14, 7] {
        m1.swap_adjacent_levels(l);
    }
    m1.reorder_sift();
    assert_ne!(
        m1.var_order(),
        (0..16).collect::<Vec<u32>>(),
        "expected a non-identity order for the cross-order check"
    );
    let mut buf = Vec::new();
    whale_bdd::io::write_bdd(&f, &mut buf).unwrap();
    let m2 = mk();
    let g = whale_bdd::io::read_bdd(&m2, buf.as_slice()).unwrap();
    let (a2, b2) = (m2.domain("A").unwrap(), m2.domain("B").unwrap());
    let mut got = g.tuples(&[a2, b2]);
    got.sort();
    assert_eq!(got, want, "roundtrip across different orders mis-decoded");
    // And back into the reordered manager: must be the very same node.
    let h = whale_bdd::io::read_bdd(&m1, buf.as_slice()).unwrap();
    assert_eq!(h, f);
}
