//! Integration tests for the pressure-adaptive op-cache policy and the
//! client operation cache: adaptive sizing and post-reorder shrink must be
//! invisible to results, client memo entries must track node liveness
//! exactly (a hit may never name a freed node), and the cache footprint
//! must actually fall after a reordering pass collapses the table.

use whale_testkit::Rng;

use whale_bdd::{Bdd, BddManager, BddManagerOptions};

/// `f = ⋁ᵢ (aᵢ ∧ bᵢ)` with every `aᵢ` ordered before every `bᵢ`: the
/// classic exponential ordering, guaranteed to give sifting real work.
fn interleaving_victim(mgr: &BddManager, pairs: u32) -> Bdd {
    let mut f = mgr.zero();
    for i in 0..pairs {
        f = f.or(&mgr.ithvar(i).and(&mgr.ithvar(pairs + i)));
    }
    f
}

#[test]
fn client_memo_roundtrip() {
    let mgr = BddManager::with_vars(8);
    let a = mgr.ithvar(0).and(&mgr.ithvar(1));
    let b = mgr.ithvar(2).or(&mgr.ithvar(3));
    let r = mgr.ithvar(4).xor(&mgr.ithvar(5));
    assert!(mgr.memo_get(&a, Some(&b), 7).is_none());
    mgr.memo_put(&a, Some(&b), 7, &r);
    let hit = mgr.memo_get(&a, Some(&b), 7).expect("warm entry");
    assert_eq!(hit, r);
    // The unary key shape (b = None) is a distinct key.
    assert!(mgr.memo_get(&a, None, 7).is_none());
    mgr.memo_put(&a, None, 7, &b);
    assert_eq!(mgr.memo_get(&a, None, 7), Some(b.clone()));
    // And so is the tag.
    assert!(mgr.memo_get(&a, Some(&b), 8).is_none());
}

#[test]
fn client_memo_entry_dies_with_its_result() {
    let mgr = BddManager::with_vars(8);
    let a = mgr.ithvar(0);
    let b = mgr.ithvar(1);
    // A result structurally unrelated to the keys, so dropping the handle
    // really does free its nodes.
    let r = mgr.ithvar(4).xor(&mgr.ithvar(5));
    mgr.memo_put(&a, Some(&b), 1, &r);
    assert_eq!(mgr.memo_get(&a, Some(&b), 1), Some(r.clone()));
    drop(r);
    mgr.gc();
    assert!(
        mgr.memo_get(&a, Some(&b), 1).is_none(),
        "a hit may never resurrect a freed result"
    );
}

#[test]
fn client_memo_entry_survives_gc_while_result_lives() {
    let mgr = BddManager::with_vars(8);
    let a = mgr.ithvar(0);
    let b = mgr.ithvar(1);
    let r = mgr.ithvar(4).xor(&mgr.ithvar(5));
    mgr.memo_put(&a, Some(&b), 1, &r);
    // Unrelated garbage to give the collection something to free.
    for i in 0..8u32 {
        let _ = mgr.ithvar(i % 8).and(&mgr.ithvar((i + 3) % 8));
    }
    mgr.gc();
    assert_eq!(
        mgr.memo_get(&a, Some(&b), 1),
        Some(r.clone()),
        "revalidation must keep entries whose nodes all survived"
    );
}

#[test]
fn memo_after_reorder_is_gone_or_still_correct() {
    let mgr = BddManager::with_vars(16);
    let a = interleaving_victim(&mgr, 8);
    let b = mgr.ithvar(3);
    let r = a.and(&b);
    mgr.memo_put(&a, Some(&b), 1, &r);
    let count_before = r.satcount();
    let stats = mgr.reorder_sift();
    assert!(stats.swaps > 0, "sifting had real work by construction");
    // Reordering rewrites nodes in place: handles stay valid, caches are
    // cleared. A lookup may miss, but must never return a wrong result.
    if let Some(hit) = mgr.memo_get(&a, Some(&b), 1) {
        assert_eq!(hit, r);
    }
    assert_eq!(r.satcount(), count_before);
}

#[test]
fn cache_footprint_shrinks_after_reorder() {
    let mgr = BddManager::with_vars_and_options(
        40,
        &BddManagerOptions {
            initial_capacity: 1 << 12,
            ..BddManagerOptions::default()
        },
    );
    // 20 (aᵢ ∧ bᵢ) pairs under the worst order: ~3·2^20 nodes, forcing
    // several table doublings, each of which grows the op caches.
    let f = interleaving_victim(&mgr, 20);
    let grown = mgr.stats();
    let count_before = f.satcount();
    let stats = mgr.reorder_sift();
    assert!(stats.swaps > 0);
    assert!(stats.nodes_after < stats.nodes_before);
    let shrunk = mgr.stats();
    assert!(
        shrunk.cache_bytes < grown.cache_bytes,
        "post-reorder shrink must release cache memory: {} -> {}",
        grown.cache_bytes,
        shrunk.cache_bytes
    );
    assert_eq!(f.satcount(), count_before, "reorder preserves semantics");
}

/// Property test: a random operation mix with GC churn and a mid-sequence
/// reordering pass produces identical satcounts under the adaptive policy
/// (tuned to decide eagerly, so growth genuinely triggers) and the legacy
/// table-proportional policy.
#[test]
fn adaptive_policy_is_semantically_invisible() {
    for seed in [1u64, 2, 3] {
        let adaptive = BddManagerOptions {
            adaptive_caches: true,
            cache_adapt_window: 64,
            cache_grow_eviction_ratio: 0.05,
            ..BddManagerOptions::default()
        };
        let legacy = BddManagerOptions {
            adaptive_caches: false,
            ..BddManagerOptions::default()
        };
        let counts: Vec<Vec<u64>> = [adaptive, legacy]
            .iter()
            .map(|opts| {
                let mgr = BddManager::with_vars_and_options(24, opts);
                let mut rng = Rng::seed_from_u64(seed);
                let mut pool: Vec<Bdd> = (0..24).map(|i| mgr.ithvar(i)).collect();
                let mut counts = Vec::new();
                for step in 0..400 {
                    let i = rng.gen_range(0..pool.len() as u64) as usize;
                    let j = rng.gen_range(0..pool.len() as u64) as usize;
                    let r = match rng.gen_range(0..4u64) {
                        0 => pool[i].and(&pool[j]),
                        1 => pool[i].or(&pool[j]),
                        2 => pool[i].xor(&pool[j]),
                        _ => pool[i].not(),
                    };
                    counts.push(r.satcount() as u64);
                    let k = rng.gen_range(0..pool.len() as u64) as usize;
                    pool[k] = r;
                    if step % 100 == 99 {
                        mgr.gc();
                    }
                    if step == 250 {
                        mgr.reorder_sift();
                    }
                }
                counts
            })
            .collect();
        assert_eq!(counts[0], counts[1], "policies diverged (seed {seed})");
    }
}
