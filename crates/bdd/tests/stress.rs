//! Stress and edge-case tests for the kernel: GC under operation
//! pressure, degenerate domains, and quantification extremes.

use whale_bdd::{BddManager, DomainSpec, OrderSpec};

#[test]
fn gc_during_large_relprod() {
    // Small initial table forces collections inside the operation.
    let mgr = BddManager::with_domains(
        &[
            DomainSpec::new("A", 1 << 14),
            DomainSpec::new("B", 1 << 14),
            DomainSpec::new("C", 1 << 14),
        ],
        &OrderSpec::parse("AxBxC").unwrap(),
    )
    .unwrap();
    let a = mgr.domain("A").unwrap();
    let b = mgr.domain("B").unwrap();
    let c = mgr.domain("C").unwrap();
    // R1(a,b): b = a + k for several k; R2(b,c): c = b + j.
    let mut r1 = mgr.zero();
    let mut r2 = mgr.zero();
    for k in 0u64..96 {
        r1 = r1.or(&mgr.domain_add_const(a, b, k * 37 + 1));
        r2 = r2.or(&mgr.domain_add_const(b, c, k * 53 + 1));
    }
    r1 = r1
        .or(&mgr.domain_add_const(a, b, 17))
        .or(&mgr.domain_add_const(a, b, 303));
    r2 = r2
        .or(&mgr.domain_add_const(b, c, 17))
        .or(&mgr.domain_add_const(b, c, 303));
    let joined = r1.relprod_domains(&r2, &[b]);
    // Spot-check: (x, x+k+j) pairs must be present.
    let probe = mgr
        .domain_const(a, 100)
        .and(&mgr.domain_const(c, 100 + 17 + 303));
    assert!(!joined.and(&probe).is_zero());
    let bad = mgr.domain_const(a, 100).and(&mgr.domain_const(c, 100 + 5));
    assert!(joined.and(&bad).is_zero());
    assert!(mgr.stats().gc_runs >= 1, "the table was pressured");
}

#[test]
fn domain_of_size_one_and_two() {
    let mgr = BddManager::with_domains(
        &[DomainSpec::new("S1", 1), DomainSpec::new("S2", 2)],
        &OrderSpec::parse("S1_S2").unwrap(),
    )
    .unwrap();
    let s1 = mgr.domain("S1").unwrap();
    let s2 = mgr.domain("S2").unwrap();
    assert_eq!(mgr.domain_const(s1, 0).satcount_domains(&[s1]) as u64, 1);
    assert_eq!(mgr.domain_range(s2, 0, 1).satcount_domains(&[s2]) as u64, 2);
    assert_eq!(mgr.domain_eq(s1, s1), mgr.one());
}

#[test]
fn exist_all_variables_yields_constant() {
    let mgr = BddManager::with_vars(12);
    let mut f = mgr.one();
    for i in 0..12 {
        if i % 3 == 0 {
            f = f.and(&mgr.ithvar(i));
        }
    }
    let all: Vec<u32> = (0..12).collect();
    assert_eq!(f.exist(&all), mgr.one());
    assert_eq!(mgr.zero().exist(&all), mgr.zero());
}

#[test]
fn replace_fallback_under_gc_pressure() {
    let mgr = BddManager::with_domains(
        &[
            DomainSpec::new("P", 1 << 12),
            DomainSpec::new("Q", 1 << 12),
            DomainSpec::new("R", 1 << 12),
        ],
        // Q before P: renaming P -> Q reverses relative order, forcing the
        // conjoin-and-quantify fallback.
        &OrderSpec::parse("Q_P_R").unwrap(),
    )
    .unwrap();
    let p = mgr.domain("P").unwrap();
    let q = mgr.domain("Q").unwrap();
    let f = mgr.domain_range(p, 17, 3000);
    let g = f.replace(&[(p, q)]);
    assert_eq!(g, mgr.domain_range(q, 17, 3000));
}

#[test]
fn deep_chain_of_handles_survives_collection() {
    let mgr = BddManager::with_vars(16);
    let mut keep = Vec::new();
    for round in 0..50u32 {
        let mut f = mgr.one();
        for i in 0..16 {
            let lit = if (round >> (i % 8)) & 1 == 1 {
                mgr.ithvar(i)
            } else {
                mgr.nithvar(i)
            };
            f = f.and(&lit);
        }
        keep.push(f);
    }
    mgr.gc();
    // Every retained minterm still satisfiable and distinct.
    for (i, f) in keep.iter().enumerate() {
        assert_eq!(f.satcount() as u64, 1, "minterm {i}");
    }
    let mut union = mgr.zero();
    for f in &keep {
        union = union.or(f);
    }
    // Rounds with identical low-8-bit patterns collapse.
    let distinct: std::collections::HashSet<u32> = (0..50u32).map(|r| r & 0xff).collect();
    assert_eq!(union.satcount() as u64, distinct.len() as u64);
}

#[test]
fn adder_chain_composes() {
    // (x + a) + b == x + (a + b) via relational composition.
    let mgr = BddManager::with_domains(
        &[
            DomainSpec::new("X", 1 << 10),
            DomainSpec::new("Y", 1 << 10),
            DomainSpec::new("Z", 1 << 10),
        ],
        &OrderSpec::parse("XxYxZ").unwrap(),
    )
    .unwrap();
    let x = mgr.domain("X").unwrap();
    let y = mgr.domain("Y").unwrap();
    let z = mgr.domain("Z").unwrap();
    let f = mgr.domain_add_const(x, y, 37);
    let g = mgr.domain_add_const(y, z, 401);
    let composed = f.relprod_domains(&g, &[y]);
    let direct = mgr.domain_add_const(x, z, 438);
    assert_eq!(composed, direct);
}

#[test]
fn tuples_of_zero_and_one() {
    let mgr = BddManager::with_domains(&[DomainSpec::new("D", 4)], &OrderSpec::parse("D").unwrap())
        .unwrap();
    let d = mgr.domain("D").unwrap();
    assert!(mgr.zero().tuples(&[d]).is_empty());
    assert_eq!(mgr.one().tuples(&[d]).len(), 4);
}
