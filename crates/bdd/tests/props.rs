//! Property-based tests: the kernel is checked against a brute-force
//! truth-table oracle on random boolean expressions, and the finite-domain
//! layer against direct set arithmetic.

use proptest::prelude::*;
use whale_bdd::{Bdd, BddManager, DomainSpec, OrderSpec};

const NVARS: u32 = 6;

/// A random boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Diff(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => (bits >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, bits),
        Expr::And(a, b) => eval(a, bits) && eval(b, bits),
        Expr::Or(a, b) => eval(a, bits) || eval(b, bits),
        Expr::Xor(a, b) => eval(a, bits) ^ eval(b, bits),
        Expr::Diff(a, b) => eval(a, bits) && !eval(b, bits),
    }
}

fn build(m: &BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.ithvar(*v),
        Expr::Not(a) => build(m, a).not(),
        Expr::And(a, b) => build(m, a).and(&build(m, b)),
        Expr::Or(a, b) => build(m, a).or(&build(m, b)),
        Expr::Xor(a, b) => build(m, a).xor(&build(m, b)),
        Expr::Diff(a, b) => build(m, a).diff(&build(m, b)),
    }
}

fn truth_table(e: &Expr) -> Vec<bool> {
    (0..(1u32 << NVARS)).map(|bits| eval(e, bits)).collect()
}

fn bdd_truth_table(m: &BddManager, f: &Bdd) -> Vec<bool> {
    // Evaluate the BDD by intersecting with each minterm.
    (0..(1u32 << NVARS))
        .map(|bits| {
            let mut minterm = m.one();
            for v in 0..NVARS {
                let lit = if (bits >> v) & 1 == 1 {
                    m.ithvar(v)
                } else {
                    m.nithvar(v)
                };
                minterm = minterm.and(&lit);
            }
            !f.and(&minterm).is_zero()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, &e);
        prop_assert_eq!(bdd_truth_table(&m, &f), truth_table(&e));
    }

    #[test]
    fn satcount_matches_truth_table(e in arb_expr()) {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, &e);
        let expected = truth_table(&e).iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(f.satcount() as u64, expected);
    }

    #[test]
    fn exist_matches_oracle(e in arb_expr(), var in 0..NVARS) {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, &e);
        let g = f.exist(&[var]);
        let tt = truth_table(&e);
        let expected: Vec<bool> = (0..(1u32 << NVARS)).map(|bits| {
            tt[(bits & !(1 << var)) as usize] || tt[(bits | (1 << var)) as usize]
        }).collect();
        prop_assert_eq!(bdd_truth_table(&m, &g), expected);
    }

    #[test]
    fn relprod_is_and_exist(a in arb_expr(), b in arb_expr(), var in 0..NVARS) {
        let m = BddManager::with_vars(NVARS);
        let fa = build(&m, &a);
        let fb = build(&m, &b);
        prop_assert_eq!(
            fa.relprod(&fb, &[var]),
            fa.and(&fb).exist(&[var])
        );
    }

    #[test]
    fn double_negation(e in arb_expr()) {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, &e);
        prop_assert_eq!(f.not().not(), f);
    }

    #[test]
    fn canonical_equal_functions_equal_nodes(a in arb_expr(), b in arb_expr()) {
        let m = BddManager::with_vars(NVARS);
        let fa = build(&m, &a);
        let fb = build(&m, &b);
        let same_fn = truth_table(&a) == truth_table(&b);
        prop_assert_eq!(fa == fb, same_fn);
    }

    #[test]
    fn gc_is_transparent(a in arb_expr(), b in arb_expr()) {
        let m = BddManager::with_vars(NVARS);
        let fa = build(&m, &a);
        let before = bdd_truth_table(&m, &fa);
        // Generate garbage, collect, and re-check.
        { let _g = build(&m, &b); }
        m.gc();
        prop_assert_eq!(bdd_truth_table(&m, &fa), before);
        // Rebuilding b after GC must still work and be canonical.
        let fb1 = build(&m, &b);
        let fb2 = build(&m, &b);
        prop_assert_eq!(fb1, fb2);
    }

    #[test]
    fn replace_shift_matches_oracle(e in arb_expr()) {
        // Shift all variables up by NVARS within a 2*NVARS manager: always
        // monotone.
        let m = BddManager::with_vars(2 * NVARS);
        let f = build(&m, &e);
        let pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let g = f.try_replace_levels(&pairs).unwrap();
        // g over shifted vars must have the same satcount.
        prop_assert_eq!(g.satcount() as u64, f.satcount() as u64);
        // And shifting back is the identity.
        let back: Vec<(u32, u32)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        prop_assert_eq!(g.try_replace_levels(&back).unwrap(), f);
    }

    #[test]
    fn domain_range_count(lo in 0u64..500, len in 0u64..500) {
        let m = BddManager::with_domains(
            &[DomainSpec::new("D", 1000)],
            &OrderSpec::parse("D").unwrap(),
        ).unwrap();
        let d = m.domain("D").unwrap();
        let hi = (lo + len).min(999);
        let r = m.domain_range(d, lo, hi);
        prop_assert_eq!(r.satcount_domains(&[d]) as u64, hi - lo + 1);
    }

    #[test]
    fn domain_adder_matches_arithmetic(c in 0u64..200, size in 2u64..300) {
        let m = BddManager::with_domains(
            &[DomainSpec::new("X", 1024), DomainSpec::new("Y", 1024)],
            &OrderSpec::parse("XxY").unwrap(),
        ).unwrap();
        let x = m.domain("X").unwrap();
        let y = m.domain("Y").unwrap();
        let rel = m.domain_add_const(x, y, c)
            .and(&m.domain_range(x, 0, size - 1));
        let mut pairs = Vec::new();
        rel.for_each_tuple(&[x, y], |t| pairs.push((t[0], t[1])));
        pairs.sort_unstable();
        let expected: Vec<(u64, u64)> =
            (0..size).filter(|v| v + c < 1024).map(|v| (v, v + c)).collect();
        prop_assert_eq!(pairs, expected);
    }
}
