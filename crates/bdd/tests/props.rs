//! Property-based tests: the kernel is checked against a brute-force
//! truth-table oracle on random boolean expressions, and the finite-domain
//! layer against direct set arithmetic.
//!
//! Runs on the in-tree `whale-testkit` harness: 64 cases per property,
//! failing seeds are printed and replayable with `TESTKIT_SEED=<n>`.

use whale_testkit::prop::{pair_of, ranged_u32, ranged_u64};
use whale_testkit::{check, Gen, Rng};

use whale_bdd::{Bdd, BddManager, DomainSpec, OrderSpec};

const NVARS: u32 = 6;
const CASES: u32 = 64;

/// A random boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Diff(Box<Expr>, Box<Expr>),
}

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return Expr::Var(rng.gen_range(0..NVARS));
    }
    let a = || Box::new(Expr::Var(0));
    let mut node = match rng.gen_range(0..5u32) {
        0 => Expr::Not(a()),
        1 => Expr::And(a(), a()),
        2 => Expr::Or(a(), a()),
        3 => Expr::Xor(a(), a()),
        _ => Expr::Diff(a(), a()),
    };
    match &mut node {
        Expr::Not(x) => **x = gen_expr(rng, depth - 1),
        Expr::And(x, y) | Expr::Or(x, y) | Expr::Xor(x, y) | Expr::Diff(x, y) => {
            **x = gen_expr(rng, depth - 1);
            **y = gen_expr(rng, depth - 1);
        }
        Expr::Var(_) => unreachable!(),
    }
    node
}

/// Shrink an expression to its immediate subexpressions: greedy descent
/// finds a minimal failing subtree.
fn subexprs(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Var(v) if *v > 0 => vec![Expr::Var(0)],
        Expr::Var(_) => vec![],
        Expr::Not(x) => vec![(**x).clone()],
        Expr::And(x, y) | Expr::Or(x, y) | Expr::Xor(x, y) | Expr::Diff(x, y) => {
            vec![(**x).clone(), (**y).clone()]
        }
    }
}

fn arb_expr() -> Gen<Expr> {
    Gen::new(|rng| gen_expr(rng, 5)).with_shrink(subexprs)
}

fn arb_expr_pair() -> Gen<(Expr, Expr)> {
    pair_of(arb_expr(), arb_expr())
}

fn eval(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => (bits >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, bits),
        Expr::And(a, b) => eval(a, bits) && eval(b, bits),
        Expr::Or(a, b) => eval(a, bits) || eval(b, bits),
        Expr::Xor(a, b) => eval(a, bits) ^ eval(b, bits),
        Expr::Diff(a, b) => eval(a, bits) && !eval(b, bits),
    }
}

fn build(m: &BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.ithvar(*v),
        Expr::Not(a) => build(m, a).not(),
        Expr::And(a, b) => build(m, a).and(&build(m, b)),
        Expr::Or(a, b) => build(m, a).or(&build(m, b)),
        Expr::Xor(a, b) => build(m, a).xor(&build(m, b)),
        Expr::Diff(a, b) => build(m, a).diff(&build(m, b)),
    }
}

fn truth_table(e: &Expr) -> Vec<bool> {
    (0..(1u32 << NVARS)).map(|bits| eval(e, bits)).collect()
}

fn bdd_truth_table(m: &BddManager, f: &Bdd) -> Vec<bool> {
    // Evaluate the BDD by intersecting with each minterm.
    (0..(1u32 << NVARS))
        .map(|bits| {
            let mut minterm = m.one();
            for v in 0..NVARS {
                let lit = if (bits >> v) & 1 == 1 {
                    m.ithvar(v)
                } else {
                    m.nithvar(v)
                };
                minterm = minterm.and(&lit);
            }
            !f.and(&minterm).is_zero()
        })
        .collect()
}

fn eq_or<T: PartialEq + std::fmt::Debug>(got: T, want: T, what: &str) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: got {got:?}, want {want:?}"))
    }
}

#[test]
fn bdd_matches_truth_table() {
    check("bdd_matches_truth_table", CASES, &arb_expr(), |e| {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, e);
        eq_or(bdd_truth_table(&m, &f), truth_table(e), "truth table")
    });
}

#[test]
fn satcount_matches_truth_table() {
    check("satcount_matches_truth_table", CASES, &arb_expr(), |e| {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, e);
        let expected = truth_table(e).iter().filter(|&&b| b).count() as u64;
        eq_or(f.satcount() as u64, expected, "satcount")
    });
}

#[test]
fn exist_matches_oracle() {
    let gen = pair_of(arb_expr(), ranged_u32(0, NVARS));
    check("exist_matches_oracle", CASES, &gen, |(e, var)| {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, e);
        let g = f.exist(&[*var]);
        let tt = truth_table(e);
        let expected: Vec<bool> = (0..(1u32 << NVARS))
            .map(|bits| tt[(bits & !(1 << var)) as usize] || tt[(bits | (1 << var)) as usize])
            .collect();
        eq_or(bdd_truth_table(&m, &g), expected, "exist")
    });
}

#[test]
fn relprod_is_and_exist() {
    let gen = pair_of(arb_expr_pair(), ranged_u32(0, NVARS));
    check("relprod_is_and_exist", CASES, &gen, |((a, b), var)| {
        let m = BddManager::with_vars(NVARS);
        let fa = build(&m, a);
        let fb = build(&m, b);
        if fa.relprod(&fb, &[*var]) == fa.and(&fb).exist(&[*var]) {
            Ok(())
        } else {
            Err("relprod != and;exist".into())
        }
    });
}

#[test]
fn double_negation() {
    check("double_negation", CASES, &arb_expr(), |e| {
        let m = BddManager::with_vars(NVARS);
        let f = build(&m, e);
        if f.not().not() == f {
            Ok(())
        } else {
            Err("not(not(f)) != f".into())
        }
    });
}

#[test]
fn canonical_equal_functions_equal_nodes() {
    check(
        "canonical_equal_functions_equal_nodes",
        CASES,
        &arb_expr_pair(),
        |(a, b)| {
            let m = BddManager::with_vars(NVARS);
            let fa = build(&m, a);
            let fb = build(&m, b);
            let same_fn = truth_table(a) == truth_table(b);
            eq_or(fa == fb, same_fn, "canonicity")
        },
    );
}

#[test]
fn gc_is_transparent() {
    check("gc_is_transparent", CASES, &arb_expr_pair(), |(a, b)| {
        let m = BddManager::with_vars(NVARS);
        let fa = build(&m, a);
        let before = bdd_truth_table(&m, &fa);
        // Generate garbage, collect, and re-check.
        {
            let _g = build(&m, b);
        }
        m.gc();
        eq_or(bdd_truth_table(&m, &fa), before, "post-GC truth table")?;
        // Rebuilding b after GC must still work and be canonical.
        let fb1 = build(&m, b);
        let fb2 = build(&m, b);
        eq_or(fb1 == fb2, true, "post-GC canonicity")
    });
}

#[test]
fn replace_shift_matches_oracle() {
    check("replace_shift_matches_oracle", CASES, &arb_expr(), |e| {
        // Shift all variables up by NVARS within a 2*NVARS manager: always
        // monotone.
        let m = BddManager::with_vars(2 * NVARS);
        let f = build(&m, e);
        let pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let g = f.try_replace_levels(&pairs).unwrap();
        // g over shifted vars must have the same satcount.
        eq_or(g.satcount() as u64, f.satcount() as u64, "shift satcount")?;
        // And shifting back is the identity.
        let back: Vec<(u32, u32)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        eq_or(
            g.try_replace_levels(&back).unwrap() == f,
            true,
            "shift round-trip",
        )
    });
}

#[test]
fn fused_replace_relprod_matches_composed() {
    let gen = pair_of(arb_expr_pair(), ranged_u32(0, 2 * NVARS));
    check(
        "fused_replace_relprod_matches_composed",
        CASES,
        &gen,
        |((a, b), var)| {
            // f lives on vars 0..NVARS and is renamed up by NVARS (always
            // monotone, so the fused kernel must engage); g spans the full
            // 2*NVARS space via two copies joined at shifted levels.
            let m = BddManager::with_vars(2 * NVARS);
            let f = build(&m, a);
            let pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
            let g = build(&m, b).and(
                &build(&m, a)
                    .try_replace_levels(&pairs)
                    .unwrap()
                    .or(&build(&m, b)),
            );
            let vars = [*var];
            let fused = f
                .fused_replace_relprod_levels(&g, &pairs, &vars)
                .expect("monotone shift must take the fused kernel");
            let composed = f.try_replace_levels(&pairs).unwrap().relprod(&g, &vars);
            eq_or(fused == composed, true, "fused == replace;relprod")?;
            eq_or(
                fused.satcount() as u64,
                composed.satcount() as u64,
                "fused satcount",
            )
        },
    );
}

#[test]
fn cache_survives_gc_churn() {
    check(
        "cache_survives_gc_churn",
        CASES,
        &arb_expr_pair(),
        |(a, b)| {
            // Compute results, then churn garbage through repeated build/drop
            // and forced GCs: the generation-tagged caches must never serve a
            // stale entry whose nodes were freed and reallocated.
            let m = BddManager::with_vars(NVARS);
            let fa = build(&m, a);
            let before_and = fa.and(&build(&m, b));
            let before_tt = bdd_truth_table(&m, &before_and);
            drop(before_and);
            for _ in 0..3 {
                {
                    let g1 = build(&m, b).xor(&build(&m, a));
                    let _g2 = g1.not().or(&fa);
                }
                m.gc();
            }
            let after_and = fa.and(&build(&m, b));
            eq_or(bdd_truth_table(&m, &after_and), before_tt, "post-churn AND")?;
            // Canonicity across the churn: recomputing yields the same node.
            eq_or(
                fa.and(&build(&m, b)) == after_and,
                true,
                "post-churn canonicity",
            )
        },
    );
}

#[test]
fn domain_range_count() {
    let gen = pair_of(ranged_u64(0, 500), ranged_u64(0, 500));
    check("domain_range_count", CASES, &gen, |&(lo, len)| {
        let m = BddManager::with_domains(
            &[DomainSpec::new("D", 1000)],
            &OrderSpec::parse("D").unwrap(),
        )
        .unwrap();
        let d = m.domain("D").unwrap();
        let hi = (lo + len).min(999);
        let r = m.domain_range(d, lo, hi);
        eq_or(r.satcount_domains(&[d]) as u64, hi - lo + 1, "range count")
    });
}

#[test]
fn domain_adder_matches_arithmetic() {
    let gen = pair_of(ranged_u64(0, 200), ranged_u64(2, 300));
    check(
        "domain_adder_matches_arithmetic",
        CASES,
        &gen,
        |&(c, size)| {
            let m = BddManager::with_domains(
                &[DomainSpec::new("X", 1024), DomainSpec::new("Y", 1024)],
                &OrderSpec::parse("XxY").unwrap(),
            )
            .unwrap();
            let x = m.domain("X").unwrap();
            let y = m.domain("Y").unwrap();
            let rel = m
                .domain_add_const(x, y, c)
                .and(&m.domain_range(x, 0, size - 1));
            let mut pairs = Vec::new();
            rel.for_each_tuple(&[x, y], |t| pairs.push((t[0], t[1])));
            pairs.sort_unstable();
            let expected: Vec<(u64, u64)> = (0..size)
                .filter(|v| v + c < 1024)
                .map(|v| (v, v + c))
                .collect();
            eq_or(pairs, expected, "adder tuples")
        },
    );
}
