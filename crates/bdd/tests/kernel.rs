//! Unit tests for the raw BDD kernel: apply family, quantification,
//! relational product, replace, counting and enumeration.

use whale_bdd::{BddManager, DomainSpec, OrderSpec};

fn mgr4() -> BddManager {
    BddManager::with_vars(4)
}

#[test]
fn constants() {
    let m = mgr4();
    assert!(m.zero().is_zero());
    assert!(m.one().is_one());
    assert_ne!(m.zero(), m.one());
    assert_eq!(m.zero().not(), m.one());
    assert_eq!(m.one().not(), m.zero());
}

#[test]
fn literal_counts() {
    let m = mgr4();
    let x = m.ithvar(0);
    assert_eq!(x.satcount() as u64, 8); // half of 2^4
    assert_eq!(m.nithvar(0).satcount() as u64, 8);
    assert_eq!(x.node_count(), 1);
}

#[test]
fn and_or_absorption() {
    let m = mgr4();
    let x = m.ithvar(0);
    let y = m.ithvar(1);
    let f = x.and(&y);
    assert_eq!(f.or(&x), x); // x∧y ∨ x = x
    assert_eq!(f.and(&x), f);
    assert_eq!(x.and(&x.not()), m.zero());
    assert_eq!(x.or(&x.not()), m.one());
}

#[test]
fn de_morgan() {
    let m = mgr4();
    let x = m.ithvar(1);
    let y = m.ithvar(3);
    assert_eq!(x.and(&y).not(), x.not().or(&y.not()));
    assert_eq!(x.or(&y).not(), x.not().and(&y.not()));
}

#[test]
fn xor_and_diff() {
    let m = mgr4();
    let x = m.ithvar(0);
    let y = m.ithvar(2);
    let xor = x.xor(&y);
    assert_eq!(xor, x.diff(&y).or(&y.diff(&x)));
    assert_eq!(x.xor(&x), m.zero());
    assert_eq!(x.diff(&m.zero()), x);
    assert_eq!(x.diff(&m.one()), m.zero());
}

#[test]
fn ite_matches_definition() {
    let m = mgr4();
    let f = m.ithvar(0);
    let g = m.ithvar(1);
    let h = m.ithvar(2);
    let ite = f.ite(&g, &h);
    let manual = f.and(&g).or(&f.not().and(&h));
    assert_eq!(ite, manual);
}

#[test]
fn exist_removes_variable() {
    let m = mgr4();
    let x = m.ithvar(0);
    let y = m.ithvar(1);
    let f = x.and(&y);
    let g = f.exist(&[0]);
    assert_eq!(g, y);
    assert_eq!(f.exist(&[0, 1]), m.one());
    // Quantifying a variable not in the support is a no-op.
    assert_eq!(f.exist(&[3]), f);
}

#[test]
fn relprod_equals_and_then_exist() {
    let m = mgr4();
    let x = m.ithvar(0);
    let y = m.ithvar(1);
    let z = m.ithvar(2);
    let f = x.or(&y);
    let g = y.or(&z);
    assert_eq!(f.relprod(&g, &[1]), f.and(&g).exist(&[1]));
    assert_eq!(f.relprod(&g, &[0, 1, 2]), f.and(&g).exist(&[0, 1, 2]));
    assert_eq!(f.relprod(&g, &[]), f.and(&g));
}

#[test]
fn support_is_sorted_and_exact() {
    let m = mgr4();
    let f = m.ithvar(3).and(&m.ithvar(0)).or(&m.ithvar(2));
    assert_eq!(f.support(), vec![0, 2, 3]);
    assert_eq!(m.one().support(), Vec::<u32>::new());
}

#[test]
fn replace_monotone_shift() {
    let m = mgr4();
    let x0 = m.ithvar(0);
    let x1 = m.ithvar(1);
    let f = x0.and(&x1); // vars {0,1}
    let g = f.try_replace_levels(&[(0, 2), (1, 3)]).unwrap();
    assert_eq!(g, m.ithvar(2).and(&m.ithvar(3)));
}

#[test]
fn replace_non_monotone_falls_back() {
    let m = mgr4();
    // f over {0,1}; rename 0->3 and 1->2 reverses relative order.
    let f = m.ithvar(0).and(&m.ithvar(1).not());
    let g = f.try_replace_levels(&[(0, 3), (1, 2)]).unwrap();
    assert_eq!(g, m.ithvar(3).and(&m.ithvar(2).not()));
}

#[test]
fn replace_rejects_overlapping_nonmonotone_target() {
    let m = mgr4();
    // Swap 0 and 1: non-monotone and target in support.
    let f = m.ithvar(0).and(&m.ithvar(1).not());
    assert!(f.try_replace_levels(&[(0, 1), (1, 0)]).is_err());
}

#[test]
fn replace_identity_and_dead_pairs() {
    let m = mgr4();
    let f = m.ithvar(1);
    assert_eq!(f.try_replace_levels(&[]).unwrap(), f);
    assert_eq!(f.try_replace_levels(&[(2, 3)]).unwrap(), f);
    assert_eq!(f.try_replace_levels(&[(1, 1)]).unwrap(), f);
}

#[test]
fn satcount_full_space() {
    let m = mgr4();
    assert_eq!(m.one().satcount() as u64, 16);
    assert_eq!(m.zero().satcount() as u64, 0);
    let f = m.ithvar(0).or(&m.ithvar(1));
    assert_eq!(f.satcount() as u64, 12);
}

#[test]
fn gc_preserves_live_nodes() {
    let m = mgr4();
    let f = m.ithvar(0).and(&m.ithvar(1)).or(&m.ithvar(2));
    let count_before = f.satcount() as u64;
    // Create garbage.
    for i in 0..200 {
        let _temp = m.ithvar(i % 4).xor(&m.ithvar((i + 1) % 4));
    }
    m.gc();
    assert_eq!(f.satcount() as u64, count_before);
    // f still usable in new operations after GC.
    assert_eq!(f.and(&m.one()), f);
}

#[test]
fn table_growth_under_pressure() {
    // Force many distinct live nodes so the table must grow.
    let m = BddManager::with_vars(24);
    let mut fs = Vec::new();
    let mut acc = m.zero();
    for i in 0..24u32 {
        acc = acc.xor(&m.ithvar(i));
        fs.push(acc.clone());
    }
    // Parity over k vars has k internal nodes... times many partials: all live.
    let stats = m.manager_stats_sanity();
    assert!(stats.live_nodes > 0);
    for (i, f) in fs.iter().enumerate() {
        assert_eq!(f.satcount() as u64, 1 << 23, "parity over {} vars", i + 1);
    }
}

trait StatsExt {
    fn manager_stats_sanity(&self) -> whale_bdd::BddStats;
}
impl StatsExt for BddManager {
    fn manager_stats_sanity(&self) -> whale_bdd::BddStats {
        let s = self.stats();
        assert!(s.allocated_nodes >= s.live_nodes);
        assert!(s.peak_live_nodes >= s.live_nodes);
        s
    }
}

#[test]
fn domain_basics() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("A", 10), DomainSpec::new("B", 10)],
        &OrderSpec::parse("AxB").unwrap(),
    )
    .unwrap();
    let a = m.domain("A").unwrap();
    let b = m.domain("B").unwrap();
    assert_eq!(m.domain_size(a), 10);
    assert_eq!(m.domain_levels(a).len(), 4);
    let c3 = m.domain_const(a, 3);
    assert_eq!(c3.satcount_domains(&[a]) as u64, 1);
    let all_pairs = m.one();
    assert_eq!(all_pairs.satcount_domains(&[a, b]) as u64, 256); // 2^8 bit patterns
    let eq = m.domain_eq(a, b);
    assert_eq!(eq.satcount_domains(&[a, b]) as u64, 16); // all 16 bit-equal pairs
}

#[test]
fn domain_range_counts() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("A", 1000)],
        &OrderSpec::parse("A").unwrap(),
    )
    .unwrap();
    let a = m.domain("A").unwrap();
    for (lo, hi) in [(0u64, 0u64), (0, 999), (5, 5), (17, 432), (998, 999)] {
        let r = m.domain_range(a, lo, hi);
        assert_eq!(r.satcount_domains(&[a]) as u64, hi - lo + 1, "[{lo},{hi}]");
    }
    assert!(m.domain_range(a, 7, 3).is_zero());
}

#[test]
fn domain_range_is_o_bits_sized() {
    // The range BDD must stay tiny even for a huge domain (Section 4.1).
    let m = BddManager::with_domains(
        &[DomainSpec::new("C", 1 << 40)],
        &OrderSpec::parse("C").unwrap(),
    )
    .unwrap();
    let c = m.domain("C").unwrap();
    let r = m.domain_range(c, 123_456_789, 987_654_321_000);
    assert!(r.node_count() <= 2 * 40, "range BDD is O(bits)");
    assert_eq!(
        r.satcount_domains(&[c]) as u64,
        987_654_321_000 - 123_456_789 + 1
    );
}

#[test]
fn adder_relation() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("X", 64), DomainSpec::new("Y", 64)],
        &OrderSpec::parse("XxY").unwrap(),
    )
    .unwrap();
    let x = m.domain("X").unwrap();
    let y = m.domain("Y").unwrap();
    let add5 = m.domain_add_const(x, y, 5);
    // Pairs (v, v+5) for v in 0..59 (no wrap-around past 63).
    assert_eq!(add5.satcount_domains(&[x, y]) as u64, 59);
    let mut seen = Vec::new();
    add5.and(&m.domain_range(x, 10, 12))
        .for_each_tuple(&[x, y], |t| seen.push((t[0], t[1])));
    seen.sort_unstable();
    assert_eq!(seen, vec![(10, 15), (11, 16), (12, 17)]);
}

#[test]
fn adder_zero_offset_is_equality() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("X", 128), DomainSpec::new("Y", 128)],
        &OrderSpec::parse("XxY").unwrap(),
    )
    .unwrap();
    let x = m.domain("X").unwrap();
    let y = m.domain("Y").unwrap();
    assert_eq!(m.domain_add_const(x, y, 0), m.domain_eq(x, y));
}

#[test]
fn adder_is_o_bits_sized() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("X", 1 << 30), DomainSpec::new("Y", 1 << 30)],
        &OrderSpec::parse("XxY").unwrap(),
    )
    .unwrap();
    let x = m.domain("X").unwrap();
    let y = m.domain("Y").unwrap();
    let f = m.domain_add_const(x, y, 0x1234_5678);
    assert!(
        f.node_count() <= 6 * 30,
        "adder BDD must be O(bits), got {} nodes",
        f.node_count()
    );
}

#[test]
fn domain_rename_roundtrip() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("V0", 100), DomainSpec::new("V1", 100)],
        &OrderSpec::parse("V0xV1").unwrap(),
    )
    .unwrap();
    let v0 = m.domain("V0").unwrap();
    let v1 = m.domain("V1").unwrap();
    let f = m.domain_range(v0, 20, 40);
    let g = f.replace(&[(v0, v1)]);
    assert_eq!(g, m.domain_range(v1, 20, 40));
    assert_eq!(g.replace(&[(v1, v0)]), f);
}

#[test]
fn tuples_enumeration() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("A", 4), DomainSpec::new("B", 4)],
        &OrderSpec::parse("A_B").unwrap(),
    )
    .unwrap();
    let a = m.domain("A").unwrap();
    let b = m.domain("B").unwrap();
    let f = m
        .domain_const(a, 1)
        .and(&m.domain_const(b, 2))
        .or(&m.domain_const(a, 3).and(&m.domain_const(b, 0)));
    let mut ts = f.tuples(&[a, b]);
    ts.sort();
    assert_eq!(ts, vec![vec![1, 2], vec![3, 0]]);
}

#[test]
fn with_domains_validation() {
    use whale_bdd::BddError;
    let specs = [DomainSpec::new("A", 4), DomainSpec::new("B", 4)];
    let err = BddManager::with_domains(&specs, &OrderSpec::parse("A").unwrap());
    assert!(matches!(err, Err(BddError::DomainMissingFromOrder(_))));
    let err = BddManager::with_domains(&specs, &OrderSpec::parse("A_B_C").unwrap());
    assert!(matches!(err, Err(BddError::UnknownDomainInOrder(_))));
    let err = BddManager::with_domains(&specs, &OrderSpec::parse("A_B_A").unwrap());
    assert!(matches!(err, Err(BddError::DuplicateDomain(_))));
    let err = BddManager::with_domains(&[DomainSpec::new("A", 0)], &OrderSpec::parse("A").unwrap());
    assert!(matches!(err, Err(BddError::EmptyDomain(_))));
}

#[test]
fn cross_manager_ops_panic() {
    let m1 = mgr4();
    let m2 = mgr4();
    let a = m1.ithvar(0);
    let b = m2.ithvar(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.and(&b)));
    assert!(result.is_err());
}

#[test]
fn domain_sizes_that_are_not_powers_of_two() {
    let m = BddManager::with_domains(&[DomainSpec::new("D", 5)], &OrderSpec::parse("D").unwrap())
        .unwrap();
    let d = m.domain("D").unwrap();
    // All 5 constants exist and are disjoint.
    let mut union = m.zero();
    for v in 0..5 {
        let c = m.domain_const(d, v);
        assert!(union.and(&c).is_zero());
        union = union.or(&c);
    }
    assert_eq!(union.satcount_domains(&[d]) as u64, 5);
    assert_eq!(union, m.domain_range(d, 0, 4));
}

#[test]
fn exact_satcount_matches_f64_small() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("A", 1000), DomainSpec::new("B", 1000)],
        &OrderSpec::parse("AxB").unwrap(),
    )
    .unwrap();
    let a = m.domain("A").unwrap();
    let b = m.domain("B").unwrap();
    let f = m.domain_range(a, 10, 600).and(&m.domain_add_const(a, b, 7));
    assert_eq!(
        f.satcount_domains_exact(&[a, b]),
        f.satcount_domains(&[a, b]) as u128
    );
    assert_eq!(f.satcount_domains_exact(&[a, b]), 591);
}

#[test]
fn exact_satcount_beyond_f64_precision() {
    // 2^62-sized domains: the f64 count rounds, the exact count does not.
    let m = BddManager::with_domains(
        &[DomainSpec::new("X", 1 << 62)],
        &OrderSpec::parse("X").unwrap(),
    )
    .unwrap();
    let x = m.domain("X").unwrap();
    let hi = (1u64 << 60) + 12345;
    let f = m.domain_range(x, 3, hi);
    assert_eq!(f.satcount_domains_exact(&[x]), (hi - 3 + 1) as u128);
}

#[test]
fn exact_satcount_constants() {
    let m = BddManager::with_domains(
        &[DomainSpec::new("D", 256)],
        &OrderSpec::parse("D").unwrap(),
    )
    .unwrap();
    let d = m.domain("D").unwrap();
    assert_eq!(m.zero().satcount_domains_exact(&[d]), 0);
    assert_eq!(m.one().satcount_domains_exact(&[d]), 256);
    assert_eq!(m.domain_const(d, 17).satcount_domains_exact(&[d]), 1);
}

#[test]
fn forall_is_dual_of_exist() {
    let m = mgr4();
    let f = m.ithvar(0).or(&m.ithvar(1));
    // ∀x0. (x0 ∨ x1) = x1
    assert_eq!(f.forall(&[0]), m.ithvar(1));
    // ∀ of a conjunction with a free var eliminates satisfying assignments.
    let g = m.ithvar(0).and(&m.ithvar(1));
    assert_eq!(g.forall(&[0]), m.zero());
    assert_eq!(m.one().forall(&[0, 1, 2, 3]), m.one());
}

#[test]
fn restrict_cofactors() {
    let m = mgr4();
    let f = m.ithvar(0).ite(&m.ithvar(1), &m.ithvar(2));
    assert_eq!(f.restrict(&[(0, true)]), m.ithvar(1));
    assert_eq!(f.restrict(&[(0, false)]), m.ithvar(2));
    assert_eq!(f.restrict(&[(0, true), (1, true)]), m.one());
    assert_eq!(f.restrict(&[]), f);
}

#[test]
fn io_roundtrip_with_root_level_siblings() {
    // A function whose root shares its level with another node of the same
    // level reachable in the DAG — regression for root identification by
    // position instead of id.
    use whale_bdd::io::{read_bdd, transfer, write_bdd};
    let m = BddManager::with_vars(6);
    // f = x0 ? (x1 ∧ x2) : (x1 ∨ x3): nodes at level 1 appear twice below
    // different branches; serialize a SUBfunction whose root level (1) has
    // sibling nodes at the same level in the source table.
    let g1 = m.ithvar(1).and(&m.ithvar(2));
    let g2 = m.ithvar(1).or(&m.ithvar(3));
    let f = m.ithvar(0).ite(&g1, &g2);
    for func in [&g1, &g2, &f] {
        let mut buf = Vec::new();
        write_bdd(func, &mut buf).unwrap();
        assert_eq!(&read_bdd(&m, buf.as_slice()).unwrap(), func);
        let m2 = BddManager::with_vars(6);
        let map: Vec<u32> = (0..6).collect();
        let t = transfer(func, &m2, &map).unwrap();
        assert_eq!(t.satcount() as u64, func.satcount() as u64);
    }
}
