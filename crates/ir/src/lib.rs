//! Java-like program IR, class-hierarchy analysis, a textual frontend, a
//! synthetic benchmark generator and Datalog fact extraction.
//!
//! This crate is the substitute for the Java bytecode + Joeq infrastructure
//! used by Whaley & Lam (PLDI 2004): it produces exactly the input
//! relations their analyses consume (see [`Facts`]).
//!
//! # Example
//!
//! ```
//! use whale_ir::{parse_program, Facts};
//!
//! let program = parse_program(r#"
//! class A extends Object {
//!   entry static method main() {
//!     var a: A;
//!     a = new A;
//!   }
//! }
//! "#).unwrap();
//! let facts = Facts::extract(&program);
//! assert_eq!(facts.vp0.len(), 1);
//! ```

mod builder;
mod facts;
mod hierarchy;
mod model;
mod parse;
pub mod ssa;
pub mod synth;
mod taintspec;

pub use builder::ProgramBuilder;
pub use facts::{DomainSizes, Facts};
pub use hierarchy::Hierarchy;
pub use model::{
    CallTarget, Class, ClassId, Field, FieldId, HeapId, InvokeId, Method, MethodId, MethodKind,
    NameId, Program, Stmt, Var, VarId,
};
pub use parse::{parse_program, IrParseError};
pub use taintspec::{ResolvedTaintSpec, TaintSpec, TaintSpecError};
