//! Programmatic construction of [`Program`]s.

use crate::model::*;
use std::collections::HashMap;

/// Incremental builder for a [`Program`].
///
/// The builder creates the root `java.lang.Object` class and the special
/// global variable up front; `java.lang.String` and `java.lang.Thread` are
/// created on demand by [`ProgramBuilder::string_class`] /
/// [`ProgramBuilder::thread_class`].
///
/// # Example
///
/// ```
/// use whale_ir::{MethodKind, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let object = b.object_class();
/// let a = b.class("A", Some(object));
/// let main = b.method(a, "main", MethodKind::Static, &[], None);
/// let x = b.local(main, "x", a);
/// b.stmt_new(main, x, a);
/// b.entry(main);
/// let program = b.finish();
/// assert_eq!(program.statement_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    name_ix: HashMap<String, NameId>,
    /// Open `synchronized` regions per method: `(start body index,
    /// monitor)`, innermost last.
    sync_open: HashMap<MethodId, Vec<(usize, VarId)>>,
}

impl ProgramBuilder {
    /// Creates a builder with `java.lang.Object` and the global variable.
    pub fn new() -> Self {
        let mut b = ProgramBuilder {
            program: Program::default(),
            name_ix: HashMap::new(),
            sync_open: HashMap::new(),
        };
        let object = b.class_raw("java.lang.Object", None);
        b.program.object_class = object;
        b.program.vars.push(Var {
            name: "<global>".into(),
            ty: object,
            method: None,
        });
        b
    }

    /// The root class `java.lang.Object`.
    pub fn object_class(&self) -> ClassId {
        self.program.object_class
    }

    /// The special global variable through which statics are accessed.
    pub fn global_var(&self) -> VarId {
        VarId(0)
    }

    /// Gets or creates `java.lang.String`.
    pub fn string_class(&mut self) -> ClassId {
        if let Some(c) = self.program.string_class {
            return c;
        }
        let obj = self.object_class();
        let c = self.class("java.lang.String", Some(obj));
        self.program.string_class = Some(c);
        c
    }

    /// Gets or creates `java.lang.Thread`.
    pub fn thread_class(&mut self) -> ClassId {
        if let Some(c) = self.program.thread_class {
            return c;
        }
        let obj = self.object_class();
        let c = self.class("java.lang.Thread", Some(obj));
        self.program.thread_class = Some(c);
        c
    }

    fn class_raw(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        let id = ClassId(self.program.classes.len() as u32);
        self.program.classes.push(Class {
            name: name.to_string(),
            superclass,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
        });
        id
    }

    /// Declares a class. `superclass == None` is reserved for the root.
    pub fn class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        debug_assert!(
            superclass.is_some() || self.program.classes.is_empty(),
            "only java.lang.Object has no superclass"
        );
        self.class_raw(name, superclass)
    }

    /// Adds an interface to a class's supertype set.
    pub fn implements(&mut self, class: ClassId, interface: ClassId) {
        self.program.classes[class.index()]
            .interfaces
            .push(interface);
    }

    /// Re-points a class's superclass (used by frontends that discover the
    /// hierarchy after declaring all classes).
    ///
    /// # Panics
    ///
    /// Panics on an attempt to change the root class's superclass.
    pub fn set_superclass(&mut self, class: ClassId, superclass: ClassId) {
        assert_ne!(
            class, self.program.object_class,
            "the root has no superclass"
        );
        self.program.classes[class.index()].superclass = Some(superclass);
    }

    /// Declares a field.
    pub fn field(&mut self, owner: ClassId, name: &str, ty: ClassId) -> FieldId {
        let id = FieldId(self.program.fields.len() as u32);
        self.program.fields.push(Field {
            name: name.to_string(),
            owner,
            ty,
        });
        self.program.classes[owner.index()].fields.push(id);
        id
    }

    /// Interns a simple method name.
    pub fn name(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_ix.get(name) {
            return id;
        }
        let id = NameId(self.program.names.len() as u32);
        self.program.names.push(name.to_string());
        self.name_ix.insert(name.to_string(), id);
        id
    }

    /// Declares a method. `params` are `(name, type)` pairs *excluding*
    /// `this`; a `this` formal of the owner's type is prepended for
    /// virtual methods. A return variable is created when `ret_ty` is set.
    pub fn method(
        &mut self,
        owner: ClassId,
        name: &str,
        kind: MethodKind,
        params: &[(&str, ClassId)],
        ret_ty: Option<ClassId>,
    ) -> MethodId {
        let name_id = self.name(name);
        let id = MethodId(self.program.methods.len() as u32);
        self.program.methods.push(Method {
            name: name_id,
            owner,
            kind,
            formals: Vec::new(),
            ret_ty,
            ret_var: None,
            exc_var: None,
            body: Vec::new(),
            guards: Vec::new(),
        });
        self.program.classes[owner.index()].methods.push(id);
        if kind == MethodKind::Virtual {
            let this = self.local(id, "this", owner);
            self.program.methods[id.index()].formals.push(this);
        }
        for (pname, pty) in params {
            let p = self.local(id, pname, *pty);
            self.program.methods[id.index()].formals.push(p);
        }
        if let Some(rt) = ret_ty {
            let rv = self.local(id, "<ret>", rt);
            self.program.methods[id.index()].ret_var = Some(rv);
        }
        // Every method carries an exception variable: exceptions thrown by
        // callees propagate through intermediate frames whether or not they
        // ever throw or catch themselves (the paper's V domain includes
        // thrown exceptions).
        let obj = self.object_class();
        let ev = self.local(id, "<exc>", obj);
        self.program.methods[id.index()].exc_var = Some(ev);
        id
    }

    /// Declares a local variable in a method.
    pub fn local(&mut self, method: MethodId, name: &str, ty: ClassId) -> VarId {
        let id = VarId(self.program.vars.len() as u32);
        self.program.vars.push(Var {
            name: name.to_string(),
            ty,
            method: Some(method),
        });
        id
    }

    /// Marks a method as an analysis entry point.
    pub fn entry(&mut self, method: MethodId) {
        self.program.entries.push(method);
    }

    /// `dst = new class;` — returns the allocation-site id.
    pub fn stmt_new(&mut self, method: MethodId, dst: VarId, class: ClassId) -> HeapId {
        let site = HeapId(self.program.heap_sites);
        self.program.heap_sites += 1;
        self.program.methods[method.index()]
            .body
            .push(Stmt::New { dst, class, site });
        site
    }

    /// `dst = src;`
    pub fn stmt_assign(&mut self, method: MethodId, dst: VarId, src: VarId) {
        self.program.methods[method.index()]
            .body
            .push(Stmt::Assign { dst, src });
    }

    /// `dst = base.field;`
    pub fn stmt_load(&mut self, method: MethodId, dst: VarId, base: VarId, field: FieldId) {
        self.program.methods[method.index()]
            .body
            .push(Stmt::Load { dst, base, field });
    }

    /// `base.field = src;`
    pub fn stmt_store(&mut self, method: MethodId, base: VarId, field: FieldId, src: VarId) {
        self.program.methods[method.index()]
            .body
            .push(Stmt::Store { base, field, src });
    }

    /// A virtual call `dst = receiver.name(args...)`. `actuals[0]` must be
    /// the receiver. Returns the invocation-site id.
    pub fn stmt_call_virtual(
        &mut self,
        method: MethodId,
        name: &str,
        actuals: &[VarId],
        dst: Option<VarId>,
    ) -> InvokeId {
        assert!(
            !actuals.is_empty(),
            "virtual calls need a receiver as actual 0"
        );
        let name_id = self.name(name);
        let site = InvokeId(self.program.invoke_sites);
        self.program.invoke_sites += 1;
        self.program.methods[method.index()]
            .body
            .push(Stmt::Invoke {
                site,
                target: CallTarget::Virtual(name_id),
                actuals: actuals.to_vec(),
                dst,
            });
        site
    }

    /// A statically bound call `dst = target(args...)`. Returns the
    /// invocation-site id.
    pub fn stmt_call_static(
        &mut self,
        method: MethodId,
        target: MethodId,
        actuals: &[VarId],
        dst: Option<VarId>,
    ) -> InvokeId {
        let site = InvokeId(self.program.invoke_sites);
        self.program.invoke_sites += 1;
        self.program.methods[method.index()]
            .body
            .push(Stmt::Invoke {
                site,
                target: CallTarget::Static(target),
                actuals: actuals.to_vec(),
                dst,
            });
        site
    }

    /// `return src;` — also wires `src` into the method's return variable.
    pub fn stmt_return(&mut self, method: MethodId, src: VarId) {
        let m = &self.program.methods[method.index()];
        let ret = m
            .ret_var
            .expect("return statement in a method without a return type");
        self.program.methods[method.index()]
            .body
            .push(Stmt::Return { src });
        // A return is an assignment into the return variable.
        self.program.methods[method.index()]
            .body
            .push(Stmt::Assign { dst: ret, src });
    }

    /// The method's exception variable (typed `java.lang.Object`, standing
    /// in for `java.lang.Throwable`).
    pub fn exc_var(&mut self, method: MethodId) -> VarId {
        self.program.methods[method.index()]
            .exc_var
            .expect("every method has an exception variable")
    }

    /// `throw src;` — also wires `src` into the method's exception
    /// variable (the paper's "thrown exceptions" V-domain entries).
    pub fn stmt_throw(&mut self, method: MethodId, src: VarId) {
        let exc = self.exc_var(method);
        self.program.methods[method.index()]
            .body
            .push(Stmt::Throw { src });
        self.program.methods[method.index()]
            .body
            .push(Stmt::Assign { dst: exc, src });
    }

    /// `catch (dst)` — binds the exceptions escaping this method's callees
    /// (and its own throws) to `dst`. Exception objects of the same type
    /// are merged, per the paper's methodology.
    pub fn stmt_catch(&mut self, method: MethodId, dst: VarId) {
        let exc = self.exc_var(method);
        self.program.methods[method.index()]
            .body
            .push(Stmt::Assign { dst, src: exc });
    }

    /// A synchronization on `var`.
    pub fn stmt_sync(&mut self, method: MethodId, var: VarId) {
        self.program.methods[method.index()]
            .body
            .push(Stmt::Sync { var });
    }

    /// Opens a lexical `synchronized (var) { ... }` region: emits the
    /// [`Stmt::Sync`] monitor operation and records every statement
    /// emitted until the matching [`ProgramBuilder::end_sync`] as guarded
    /// by `var`. Regions nest.
    pub fn begin_sync(&mut self, method: MethodId, var: VarId) {
        self.stmt_sync(method, var);
        let start = self.program.methods[method.index()].body.len();
        self.sync_open.entry(method).or_default().push((start, var));
    }

    /// Closes the innermost open `synchronized` region of `method`.
    ///
    /// # Panics
    ///
    /// Panics if the method has no open region.
    pub fn end_sync(&mut self, method: MethodId) {
        let (start, var) = self
            .sync_open
            .get_mut(&method)
            .and_then(Vec::pop)
            .expect("end_sync without a matching begin_sync");
        let end = self.program.methods[method.index()].body.len();
        self.program.methods[method.index()]
            .guards
            .push((start, end, var));
    }

    /// `receiver.start()` — thread start, modeled per the paper's footnote
    /// as an invocation of the receiver's `run()` method.
    pub fn stmt_thread_start(&mut self, method: MethodId, receiver: VarId) -> InvokeId {
        self.stmt_call_virtual(method, "run", &[receiver], None)
    }

    /// Read access to the program built so far.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if a `synchronized` region opened with
    /// [`ProgramBuilder::begin_sync`] was never closed.
    pub fn finish(self) -> Program {
        assert!(
            self.sync_open.values().all(Vec::is_empty),
            "begin_sync without a matching end_sync"
        );
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_program() {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let f = b.field(a, "f", obj);
        let m = b.method(a, "m", MethodKind::Virtual, &[("p", obj)], Some(obj));
        let x = b.local(m, "x", a);
        b.stmt_new(m, x, a);
        let this = b.program().methods[m.index()].formals[0];
        b.stmt_store(m, x, f, this);
        b.stmt_return(m, x);
        let p = b.finish();
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.methods[m.index()].formals.len(), 2); // this + p
        assert_eq!(p.heap_sites, 1);
        assert!(p.methods[m.index()].ret_var.is_some());
        // return emits Return + the ret-var assignment
        assert_eq!(p.methods[m.index()].body.len(), 4);
    }

    #[test]
    fn interns_names() {
        let mut b = ProgramBuilder::new();
        let n1 = b.name("run");
        let n2 = b.name("run");
        assert_eq!(n1, n2);
    }

    #[test]
    fn sync_regions_record_guarded_ranges() {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let f = b.field(a, "f", obj);
        let m = b.method(a, "m", MethodKind::Static, &[], None);
        let x = b.local(m, "x", a);
        let y = b.local(m, "y", obj);
        b.stmt_new(m, x, a); // index 0
        b.begin_sync(m, x); // Sync at index 1
        b.stmt_new(m, y, obj); // index 2, guarded
        b.begin_sync(m, y); // Sync at index 3, guarded
        b.stmt_store(m, x, f, y); // index 4, guarded twice
        b.end_sync(m);
        b.end_sync(m);
        b.stmt_new(m, y, obj); // index 5, unguarded
        let p = b.finish();
        let meth = &p.methods[m.index()];
        assert_eq!(meth.guards, vec![(4, 5, y), (2, 5, x)]);
        assert!(matches!(meth.body[1], Stmt::Sync { var } if var == x));
        assert!(matches!(meth.body[3], Stmt::Sync { var } if var == y));
    }

    #[test]
    #[should_panic(expected = "begin_sync without a matching end_sync")]
    fn unclosed_sync_region_panics() {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let m = b.method(a, "m", MethodKind::Static, &[], None);
        let x = b.local(m, "x", a);
        b.begin_sync(m, x);
        let _ = b.finish();
    }

    #[test]
    fn well_known_classes() {
        let mut b = ProgramBuilder::new();
        let s1 = b.string_class();
        let s2 = b.string_class();
        assert_eq!(s1, s2);
        let t = b.thread_class();
        assert_ne!(s1, t);
        let p = b.finish();
        assert_eq!(p.string_class, Some(s1));
        assert_eq!(p.thread_class, Some(t));
    }
}
