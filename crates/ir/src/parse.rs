//! A small textual frontend for writing analysis subjects by hand.
//!
//! The language is a Java-like skeleton carrying exactly what the pointer
//! analyses observe:
//!
//! ```text
//! class A extends Object {
//!   field f: Object;
//!
//!   method get(): Object {
//!     var r: Object;
//!     r = this.f;
//!     return r;
//!   }
//!
//!   entry static method main() {
//!     var a: A;
//!     var o: Object;
//!     a = new A;
//!     o = new Object;
//!     a.f = o;             // store
//!     o = a.get();         // virtual call
//!     o = A::helper(o);    // static call
//!     sync o;
//!     sync o { a.f = o; }  // lexical synchronized region
//!     start t;             // thread start (t: Thread subtype)
//!   }
//!
//!   static method helper(p: Object): Object {
//!     return p;
//!   }
//! }
//! ```
//!
//! `Object`, `String` and `Thread` are predeclared. Any static method named
//! `main`, or a method with the `entry` modifier, becomes an analysis entry
//! point.

use crate::builder::ProgramBuilder;
use crate::model::*;
use std::collections::HashMap;
use std::fmt;

/// Errors from the textual frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for IrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IrParseError {}

/// Parses a program in the textual IR language.
///
/// # Errors
///
/// [`IrParseError`] with a line number on any syntax or resolution error.
pub fn parse_program(src: &str) -> Result<Program, IrParseError> {
    let toks = lex(src)?;
    let cst = Cst::parse(&toks)?;
    cst.build()
}

// ---------------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    ColonColon,
    Semi,
    Comma,
    Eq,
    Dot,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, IrParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(IrParseError {
                        line,
                        message: "stray `/` (only `//` comments supported)".into(),
                    });
                }
            }
            '{' => {
                chars.next();
                out.push((Tok::LBrace, line));
            }
            '}' => {
                chars.next();
                out.push((Tok::RBrace, line));
            }
            '(' => {
                chars.next();
                out.push((Tok::LParen, line));
            }
            ')' => {
                chars.next();
                out.push((Tok::RParen, line));
            }
            ';' => {
                chars.next();
                out.push((Tok::Semi, line));
            }
            ',' => {
                chars.next();
                out.push((Tok::Comma, line));
            }
            '=' => {
                chars.next();
                out.push((Tok::Eq, line));
            }
            '.' => {
                chars.next();
                out.push((Tok::Dot, line));
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&':') {
                    chars.next();
                    out.push((Tok::ColonColon, line));
                } else {
                    out.push((Tok::Colon, line));
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '$' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '$' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(IrParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CST
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct CClass {
    name: String,
    extends: Option<String>,
    implements: Vec<String>,
    fields: Vec<(String, String)>,
    methods: Vec<CMethod>,
    line: usize,
}

#[derive(Debug)]
struct CMethod {
    name: String,
    is_static: bool,
    is_entry: bool,
    params: Vec<(String, String)>,
    ret: Option<String>,
    body: Vec<(CStmt, usize)>,
    line: usize,
}

#[derive(Debug)]
enum CStmt {
    VarDecl(String, String),
    New(String, String),
    Assign(String, String),
    Cast(String, String, String), // dst, type, src
    Throw(String),
    Catch(String),
    Load(String, String, String),
    Store(String, String, String),
    CallVirtual {
        dst: Option<String>,
        recv: String,
        name: String,
        args: Vec<String>,
    },
    CallStatic {
        dst: Option<String>,
        class: String,
        name: String,
        args: Vec<String>,
    },
    Return(String),
    Sync(String),
    SyncBlock(String, Vec<(CStmt, usize)>),
    Start(String),
}

struct Cst {
    classes: Vec<CClass>,
}

struct P<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
}

impl<'a> P<'a> {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.1)
            .unwrap_or(0)
    }

    fn err(&self, m: impl Into<String>) -> IrParseError {
        IrParseError {
            line: self.line(),
            message: m.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), IrParseError> {
        let line = self.line();
        match self.next() {
            Some(x) if x == t => Ok(()),
            other => Err(IrParseError {
                line,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, IrParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(IrParseError {
                line,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

impl Cst {
    fn parse(toks: &[(Tok, usize)]) -> Result<Cst, IrParseError> {
        let mut p = P { toks, pos: 0 };
        let mut classes = Vec::new();
        while p.peek().is_some() {
            classes.push(Self::class(&mut p)?);
        }
        Ok(Cst { classes })
    }

    fn class(p: &mut P) -> Result<CClass, IrParseError> {
        let line = p.line();
        if !p.kw("class") {
            return Err(p.err("expected `class`"));
        }
        let name = p.ident("class name")?;
        let extends = if p.kw("extends") {
            Some(p.ident("superclass name")?)
        } else {
            None
        };
        let mut implements = Vec::new();
        if p.kw("implements") {
            loop {
                implements.push(p.ident("interface name")?);
                if p.peek() == Some(&Tok::Comma) {
                    p.next();
                } else {
                    break;
                }
            }
        }
        p.expect(Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            if p.peek() == Some(&Tok::RBrace) {
                p.next();
                break;
            }
            if p.kw("field") {
                let fname = p.ident("field name")?;
                p.expect(Tok::Colon, "`:`")?;
                let fty = p.ident("field type")?;
                p.expect(Tok::Semi, "`;`")?;
                fields.push((fname, fty));
            } else {
                methods.push(Self::method(p)?);
            }
        }
        Ok(CClass {
            name,
            extends,
            implements,
            fields,
            methods,
            line,
        })
    }

    fn method(p: &mut P) -> Result<CMethod, IrParseError> {
        let line = p.line();
        let mut is_entry = false;
        let mut is_static = false;
        loop {
            if p.kw("entry") {
                is_entry = true;
            } else if p.kw("static") {
                is_static = true;
            } else {
                break;
            }
        }
        if !p.kw("method") {
            return Err(p.err("expected `method`, `field`, `static` or `entry`"));
        }
        let name = p.ident("method name")?;
        p.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if p.peek() != Some(&Tok::RParen) {
            loop {
                let pn = p.ident("parameter name")?;
                p.expect(Tok::Colon, "`:`")?;
                let pt = p.ident("parameter type")?;
                params.push((pn, pt));
                if p.peek() == Some(&Tok::Comma) {
                    p.next();
                } else {
                    break;
                }
            }
        }
        p.expect(Tok::RParen, "`)`")?;
        let ret = if p.peek() == Some(&Tok::Colon) {
            p.next();
            Some(p.ident("return type")?)
        } else {
            None
        };
        p.expect(Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        while p.peek() != Some(&Tok::RBrace) {
            let sline = p.line();
            body.push((Self::stmt(p)?, sline));
        }
        p.next(); // consume `}`
        let is_entry = is_entry || (is_static && name == "main");
        Ok(CMethod {
            name,
            is_static,
            is_entry,
            params,
            ret,
            body,
            line,
        })
    }

    fn call_args(p: &mut P) -> Result<Vec<String>, IrParseError> {
        p.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if p.peek() != Some(&Tok::RParen) {
            loop {
                args.push(p.ident("argument")?);
                if p.peek() == Some(&Tok::Comma) {
                    p.next();
                } else {
                    break;
                }
            }
        }
        p.expect(Tok::RParen, "`)`")?;
        Ok(args)
    }

    fn stmt(p: &mut P) -> Result<CStmt, IrParseError> {
        if p.kw("var") {
            let n = p.ident("variable name")?;
            p.expect(Tok::Colon, "`:`")?;
            let t = p.ident("type")?;
            p.expect(Tok::Semi, "`;`")?;
            return Ok(CStmt::VarDecl(n, t));
        }
        if p.kw("return") {
            let v = p.ident("variable")?;
            p.expect(Tok::Semi, "`;`")?;
            return Ok(CStmt::Return(v));
        }
        if p.kw("sync") {
            let v = p.ident("variable")?;
            if p.peek() == Some(&Tok::LBrace) {
                // `sync v { ... }` — a lexical synchronized region.
                p.next();
                let mut inner = Vec::new();
                while p.peek() != Some(&Tok::RBrace) {
                    if p.peek().is_none() {
                        return Err(p.err("unclosed `sync` block"));
                    }
                    let sline = p.line();
                    inner.push((Self::stmt(p)?, sline));
                }
                p.next(); // consume `}`
                return Ok(CStmt::SyncBlock(v, inner));
            }
            p.expect(Tok::Semi, "`;`")?;
            return Ok(CStmt::Sync(v));
        }
        if p.kw("start") {
            let v = p.ident("variable")?;
            p.expect(Tok::Semi, "`;`")?;
            return Ok(CStmt::Start(v));
        }
        if p.kw("throw") {
            let v = p.ident("variable")?;
            p.expect(Tok::Semi, "`;`")?;
            return Ok(CStmt::Throw(v));
        }
        if p.kw("catch") {
            let v = p.ident("variable")?;
            p.expect(Tok::Semi, "`;`")?;
            return Ok(CStmt::Catch(v));
        }
        // x = ... | x.f = y | x.m(...) | X::m(...)
        let first = p.ident("statement")?;
        match p.peek() {
            Some(Tok::Dot) => {
                p.next();
                let member = p.ident("member name")?;
                match p.peek() {
                    Some(Tok::Eq) => {
                        // store: x.f = y;
                        p.next();
                        let src = p.ident("source variable")?;
                        p.expect(Tok::Semi, "`;`")?;
                        Ok(CStmt::Store(first, member, src))
                    }
                    Some(Tok::LParen) => {
                        // call without destination: x.m(args);
                        let args = Self::call_args(p)?;
                        p.expect(Tok::Semi, "`;`")?;
                        Ok(CStmt::CallVirtual {
                            dst: None,
                            recv: first,
                            name: member,
                            args,
                        })
                    }
                    _ => Err(p.err("expected `=` or `(` after member access")),
                }
            }
            Some(Tok::ColonColon) => {
                p.next();
                let name = p.ident("method name")?;
                let args = Self::call_args(p)?;
                p.expect(Tok::Semi, "`;`")?;
                Ok(CStmt::CallStatic {
                    dst: None,
                    class: first,
                    name,
                    args,
                })
            }
            Some(Tok::Eq) => {
                p.next();
                if p.kw("new") {
                    let cls = p.ident("class name")?;
                    p.expect(Tok::Semi, "`;`")?;
                    return Ok(CStmt::New(first, cls));
                }
                if p.peek() == Some(&Tok::LParen) {
                    // Cast: x = (T) y;
                    p.next();
                    let ty = p.ident("cast type")?;
                    p.expect(Tok::RParen, "`)`")?;
                    let src = p.ident("source variable")?;
                    p.expect(Tok::Semi, "`;`")?;
                    return Ok(CStmt::Cast(first, ty, src));
                }
                let second = p.ident("expression")?;
                match p.peek() {
                    Some(Tok::Semi) => {
                        p.next();
                        Ok(CStmt::Assign(first, second))
                    }
                    Some(Tok::Dot) => {
                        p.next();
                        let member = p.ident("member name")?;
                        if p.peek() == Some(&Tok::LParen) {
                            let args = Self::call_args(p)?;
                            p.expect(Tok::Semi, "`;`")?;
                            Ok(CStmt::CallVirtual {
                                dst: Some(first),
                                recv: second,
                                name: member,
                                args,
                            })
                        } else {
                            p.expect(Tok::Semi, "`;`")?;
                            Ok(CStmt::Load(first, second, member))
                        }
                    }
                    Some(Tok::ColonColon) => {
                        p.next();
                        let name = p.ident("method name")?;
                        let args = Self::call_args(p)?;
                        p.expect(Tok::Semi, "`;`")?;
                        Ok(CStmt::CallStatic {
                            dst: Some(first),
                            class: second,
                            name,
                            args,
                        })
                    }
                    _ => Err(p.err("expected `;`, `.` or `::` in assignment")),
                }
            }
            t => Err(p.err(format!("unexpected token {t:?} in statement"))),
        }
    }

    // -----------------------------------------------------------------------
    // Building
    // -----------------------------------------------------------------------

    fn build(&self) -> Result<Program, IrParseError> {
        let mut b = ProgramBuilder::new();
        let mut class_ids: HashMap<String, ClassId> = HashMap::new();
        class_ids.insert("Object".into(), b.object_class());
        class_ids.insert("java.lang.Object".into(), b.object_class());
        let s = b.string_class();
        class_ids.insert("String".into(), s);
        let t = b.thread_class();
        class_ids.insert("Thread".into(), t);

        // Pass 1: declare classes (superclass patched afterwards).
        for c in &self.classes {
            if class_ids.contains_key(&c.name) {
                return Err(IrParseError {
                    line: c.line,
                    message: format!("duplicate class `{}`", c.name),
                });
            }
            let id = b.class(&c.name, Some(b.object_class()));
            class_ids.insert(c.name.clone(), id);
        }
        for c in &self.classes {
            let id = class_ids[&c.name];
            if let Some(sup) = &c.extends {
                let sup_id = lookup(&class_ids, sup, c.line)?;
                b.set_superclass(id, sup_id);
            }
            for itf in &c.implements {
                let itf_id = lookup(&class_ids, itf, c.line)?;
                b.implements(id, itf_id);
            }
        }

        // Pass 2: fields and method signatures.
        let mut field_ids: HashMap<(ClassId, String), FieldId> = HashMap::new();
        let mut method_ids: HashMap<(ClassId, String), MethodId> = HashMap::new();
        for c in &self.classes {
            let cid = class_ids[&c.name];
            for (fname, fty) in &c.fields {
                let ty = lookup(&class_ids, fty, c.line)?;
                let fid = b.field(cid, fname, ty);
                field_ids.insert((cid, fname.clone()), fid);
            }
            for m in &c.methods {
                let params: Vec<(&str, ClassId)> = m
                    .params
                    .iter()
                    .map(|(n, t)| Ok((n.as_str(), lookup(&class_ids, t, m.line)?)))
                    .collect::<Result<_, IrParseError>>()?;
                let ret = match &m.ret {
                    Some(r) => Some(lookup(&class_ids, r, m.line)?),
                    None => None,
                };
                let kind = if m.is_static {
                    MethodKind::Static
                } else {
                    MethodKind::Virtual
                };
                let mid = b.method(cid, &m.name, kind, &params, ret);
                method_ids.insert((cid, m.name.clone()), mid);
                if m.is_entry {
                    b.entry(mid);
                }
            }
        }

        // Pass 3: bodies.
        for c in &self.classes {
            let cid = class_ids[&c.name];
            for m in &c.methods {
                let mid = method_ids[&(cid, m.name.clone())];
                let mut vars: HashMap<String, VarId> = HashMap::new();
                {
                    let meth = &b.program().methods[mid.index()];
                    let formals = meth.formals.clone();
                    let kind = meth.kind;
                    if kind == MethodKind::Virtual {
                        vars.insert("this".into(), formals[0]);
                        for (i, (pn, _)) in m.params.iter().enumerate() {
                            vars.insert(pn.clone(), formals[i + 1]);
                        }
                    } else {
                        for (i, (pn, _)) in m.params.iter().enumerate() {
                            vars.insert(pn.clone(), formals[i]);
                        }
                    }
                }
                emit_stmts(
                    &mut b,
                    mid,
                    &m.body,
                    &mut vars,
                    &class_ids,
                    &field_ids,
                    &method_ids,
                )?;
            }
        }
        Ok(b.finish())
    }
}

fn lookup(
    class_ids: &HashMap<String, ClassId>,
    name: &str,
    line: usize,
) -> Result<ClassId, IrParseError> {
    class_ids.get(name).copied().ok_or_else(|| IrParseError {
        line,
        message: format!("unknown class `{name}`"),
    })
}

/// Field resolution walks the superclass chain.
fn resolve_field(
    b: &ProgramBuilder,
    field_ids: &HashMap<(ClassId, String), FieldId>,
    mut class: ClassId,
    name: &str,
    line: usize,
) -> Result<FieldId, IrParseError> {
    loop {
        if let Some(&f) = field_ids.get(&(class, name.to_string())) {
            return Ok(f);
        }
        match b.program().classes[class.index()].superclass {
            Some(sup) => class = sup,
            None => {
                return Err(IrParseError {
                    line,
                    message: format!("unknown field `{name}`"),
                })
            }
        }
    }
}

fn var_of(vars: &HashMap<String, VarId>, name: &str, line: usize) -> Result<VarId, IrParseError> {
    vars.get(name).copied().ok_or_else(|| IrParseError {
        line,
        message: format!("undeclared variable `{name}`"),
    })
}

/// Emits one statement list into `mid`, recursing for `sync v { ... }`
/// blocks so their extents are recorded as guarded regions.
fn emit_stmts(
    b: &mut ProgramBuilder,
    mid: MethodId,
    body: &[(CStmt, usize)],
    vars: &mut HashMap<String, VarId>,
    class_ids: &HashMap<String, ClassId>,
    field_ids: &HashMap<(ClassId, String), FieldId>,
    method_ids: &HashMap<(ClassId, String), MethodId>,
) -> Result<(), IrParseError> {
    for (stmt, line) in body {
        let line = *line;
        match stmt {
            CStmt::VarDecl(n, t) => {
                let ty = lookup(class_ids, t, line)?;
                let v = b.local(mid, n, ty);
                vars.insert(n.clone(), v);
            }
            CStmt::New(d, cls) => {
                let dst = var_of(vars, d, line)?;
                let ty = lookup(class_ids, cls, line)?;
                b.stmt_new(mid, dst, ty);
            }
            CStmt::Assign(d, s) => {
                let dst = var_of(vars, d, line)?;
                let src = var_of(vars, s, line)?;
                b.stmt_assign(mid, dst, src);
            }
            CStmt::Cast(d, ty, s) => {
                // A cast is an assignment whose precision comes
                // from the destination's declared type (the
                // Algorithm 2 filter does the narrowing).
                lookup(class_ids, ty, line)?;
                let dst = var_of(vars, d, line)?;
                let src = var_of(vars, s, line)?;
                b.stmt_assign(mid, dst, src);
            }
            CStmt::Throw(v) => {
                let src = var_of(vars, v, line)?;
                b.stmt_throw(mid, src);
            }
            CStmt::Catch(v) => {
                let dst = var_of(vars, v, line)?;
                b.stmt_catch(mid, dst);
            }
            CStmt::Load(d, base, fname) => {
                let dst = var_of(vars, d, line)?;
                let base_v = var_of(vars, base, line)?;
                let base_ty = b.program().vars[base_v.index()].ty;
                let f = resolve_field(b, field_ids, base_ty, fname, line)?;
                b.stmt_load(mid, dst, base_v, f);
            }
            CStmt::Store(base, fname, s) => {
                let base_v = var_of(vars, base, line)?;
                let src = var_of(vars, s, line)?;
                let base_ty = b.program().vars[base_v.index()].ty;
                let f = resolve_field(b, field_ids, base_ty, fname, line)?;
                b.stmt_store(mid, base_v, f, src);
            }
            CStmt::CallVirtual {
                dst,
                recv,
                name,
                args,
            } => {
                let recv_v = var_of(vars, recv, line)?;
                let mut actuals = vec![recv_v];
                for a in args {
                    actuals.push(var_of(vars, a, line)?);
                }
                let dst_v = match dst {
                    Some(d) => Some(var_of(vars, d, line)?),
                    None => None,
                };
                b.stmt_call_virtual(mid, name, &actuals, dst_v);
            }
            CStmt::CallStatic {
                dst,
                class,
                name,
                args,
            } => {
                let target_cls = lookup(class_ids, class, line)?;
                let &target =
                    method_ids
                        .get(&(target_cls, name.clone()))
                        .ok_or_else(|| IrParseError {
                            line,
                            message: format!("unknown method `{class}::{name}`"),
                        })?;
                let mut actuals = Vec::new();
                for a in args {
                    actuals.push(var_of(vars, a, line)?);
                }
                let dst_v = match dst {
                    Some(d) => Some(var_of(vars, d, line)?),
                    None => None,
                };
                b.stmt_call_static(mid, target, &actuals, dst_v);
            }
            CStmt::Return(v) => {
                let src = var_of(vars, v, line)?;
                b.stmt_return(mid, src);
            }
            CStmt::Sync(v) => {
                let var = var_of(vars, v, line)?;
                b.stmt_sync(mid, var);
            }
            CStmt::SyncBlock(v, inner) => {
                let var = var_of(vars, v, line)?;
                b.begin_sync(mid, var);
                emit_stmts(b, mid, inner, vars, class_ids, field_ids, method_ids)?;
                b.end_sync(mid);
            }
            CStmt::Start(v) => {
                let var = var_of(vars, v, line)?;
                b.stmt_thread_start(mid, var);
            }
        }
    }
    Ok(())
}
