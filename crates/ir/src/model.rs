//! The Java-like program model.
//!
//! This IR stands in for the Java bytecode + Joeq infrastructure of the
//! paper. It captures exactly what the analyses consume: a class hierarchy
//! with fields and (virtual/static) methods, and per-method statement lists
//! of allocations, copies, field loads/stores, invocations, returns and
//! synchronizations. Everything is named by dense integer ids so fact
//! extraction is a direct dump.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a zero-based index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap(), self.0)
            }
        }
    };
}

id_type!(
    /// A class (and type) identifier — the paper's `T` domain.
    ClassId
);
id_type!(
    /// A method identifier — the paper's `M` domain.
    MethodId
);
id_type!(
    /// A field identifier — the paper's `F` domain.
    FieldId
);
id_type!(
    /// A variable identifier — the paper's `V` domain.
    VarId
);
id_type!(
    /// An allocation-site identifier — the paper's `H` domain.
    HeapId
);
id_type!(
    /// An invocation-site identifier — the paper's `I` domain.
    InvokeId
);
id_type!(
    /// A simple method-name identifier — the paper's `N` domain.
    NameId
);

/// A class declaration.
#[derive(Debug, Clone)]
pub struct Class {
    /// Fully qualified name.
    pub name: String,
    /// Single superclass (`None` only for the root `java.lang.Object`).
    pub superclass: Option<ClassId>,
    /// Implemented interfaces (treated as additional supertypes).
    pub interfaces: Vec<ClassId>,
    /// Declared fields.
    pub fields: Vec<FieldId>,
    /// Declared methods.
    pub methods: Vec<MethodId>,
}

/// A field declaration.
#[derive(Debug, Clone)]
pub struct Field {
    /// Simple name.
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// Declared type.
    pub ty: ClassId,
}

/// Method dispatch kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Dispatched through the receiver's class (instance methods).
    Virtual,
    /// Statically bound (static methods, constructors).
    Static,
}

/// A method declaration with its body.
#[derive(Debug, Clone)]
pub struct Method {
    /// Simple name (the `N` domain entry used for dispatch).
    pub name: NameId,
    /// Declaring class.
    pub owner: ClassId,
    /// Dispatch kind.
    pub kind: MethodKind,
    /// Formal parameters; for virtual methods, formal 0 is `this`.
    pub formals: Vec<VarId>,
    /// Declared return type, if any.
    pub ret_ty: Option<ClassId>,
    /// The variable holding the return value, if the method returns one.
    pub ret_var: Option<VarId>,
    /// The variable holding escaping exceptions, created lazily by the
    /// first `throw`/`catch` in the method.
    pub exc_var: Option<VarId>,
    /// Statement list (flow-insensitive, per the paper's treatment).
    pub body: Vec<Stmt>,
    /// Lexical `synchronized (var) { ... }` regions as half-open
    /// `(start, end, monitor)` ranges over `body` indices. The opening
    /// [`Stmt::Sync`] sits at `start - 1`; statements in `start..end`
    /// execute with the monitor held.
    pub guards: Vec<(usize, usize, VarId)>,
}

/// A variable (local, formal, or the static-global).
#[derive(Debug, Clone)]
pub struct Var {
    /// Diagnostic name.
    pub name: String,
    /// Declared type.
    pub ty: ClassId,
    /// Containing method; `None` for the special global variable through
    /// which static fields are accessed.
    pub method: Option<MethodId>,
}

/// Target of an invocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// Statically bound call.
    Static(MethodId),
    /// Virtual dispatch by simple name through `actuals[0]`.
    Virtual(NameId),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `dst = new C;` — allocation site `site`.
    New {
        /// Destination variable.
        dst: VarId,
        /// Allocated class.
        class: ClassId,
        /// The allocation-site id.
        site: HeapId,
    },
    /// `dst = src;`
    Assign {
        /// Destination.
        dst: VarId,
        /// Source.
        src: VarId,
    },
    /// `dst = base.field;`
    Load {
        /// Destination.
        dst: VarId,
        /// Base object.
        base: VarId,
        /// Loaded field.
        field: FieldId,
    },
    /// `base.field = src;`
    Store {
        /// Base object.
        base: VarId,
        /// Stored field.
        field: FieldId,
        /// Source.
        src: VarId,
    },
    /// `dst = target(actuals...);`
    Invoke {
        /// The invocation-site id.
        site: InvokeId,
        /// Call target (static or virtual-by-name).
        target: CallTarget,
        /// Actual arguments; for virtual calls, actual 0 is the receiver.
        actuals: Vec<VarId>,
        /// Destination of the return value, if used.
        dst: Option<VarId>,
    },
    /// `return src;`
    Return {
        /// Returned variable.
        src: VarId,
    },
    /// `synchronized (var) { ... }` — a synchronization operation.
    Sync {
        /// Monitor variable.
        var: VarId,
    },
    /// `throw src;` — the thrown value flows into the method's exception
    /// variable (and from there to every caller's, via the call graph).
    Throw {
        /// Thrown variable.
        src: VarId,
    },
}

/// A whole program: the unit the analyses consume.
///
/// Construct one with [`crate::ProgramBuilder`], the textual frontend
/// ([`crate::parse_program`]) or the synthetic generator
/// ([`crate::synth::generate`]).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All classes; `ClassId` indexes here.
    pub classes: Vec<Class>,
    /// All fields.
    pub fields: Vec<Field>,
    /// All methods.
    pub methods: Vec<Method>,
    /// All variables. `VarId(0)` is the special global variable.
    pub vars: Vec<Var>,
    /// Simple method names (dispatch keys).
    pub names: Vec<String>,
    /// Allocation-site count (`HeapId`s are dense).
    pub heap_sites: u32,
    /// Invocation-site count (`InvokeId`s are dense).
    pub invoke_sites: u32,
    /// Entry methods (`main`, class initializers, thread `run` methods).
    pub entries: Vec<MethodId>,
    /// The id of `java.lang.Object`.
    pub object_class: ClassId,
    /// The id of `java.lang.String`, if declared.
    pub string_class: Option<ClassId>,
    /// The id of `java.lang.Thread`, if declared.
    pub thread_class: Option<ClassId>,
}

impl Program {
    /// The class of a method.
    pub fn method_owner(&self, m: MethodId) -> ClassId {
        self.methods[m.index()].owner
    }

    /// Method containing a variable, or `None` for the global.
    pub fn var_method(&self, v: VarId) -> Option<MethodId> {
        self.vars[v.index()].method
    }

    /// Human-readable method name `Class.method`.
    pub fn method_display(&self, m: MethodId) -> String {
        let meth = &self.methods[m.index()];
        format!(
            "{}.{}",
            self.classes[meth.owner.index()].name,
            self.names[meth.name.index()]
        )
    }

    /// Total statement count (the closest analogue of the paper's
    /// "bytecodes" column).
    pub fn statement_count(&self) -> usize {
        self.methods.iter().map(|m| m.body.len()).sum()
    }

    /// Iterates over `(method, statement)` pairs.
    pub fn statements(&self) -> impl Iterator<Item = (MethodId, &Stmt)> {
        self.methods
            .iter()
            .enumerate()
            .flat_map(|(i, m)| m.body.iter().map(move |s| (MethodId(i as u32), s)))
    }
}
