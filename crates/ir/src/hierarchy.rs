//! Class-hierarchy analysis: subtyping, assignability and virtual dispatch.

use crate::model::*;
use std::collections::{HashMap, HashSet};

/// Precomputed hierarchy queries over one [`Program`].
#[derive(Debug)]
pub struct Hierarchy {
    /// `supertypes[c]` = all supertypes of `c`, including `c` itself.
    supertypes: Vec<HashSet<ClassId>>,
    /// Virtual dispatch: `(class, name) -> implementation`.
    dispatch: HashMap<(ClassId, NameId), MethodId>,
}

impl Hierarchy {
    /// Builds hierarchy tables for a program.
    pub fn new(program: &Program) -> Self {
        let n = program.classes.len();
        // Supertype closure, classes are topologically ordered by
        // construction (superclasses are declared first), but we do not rely
        // on that: fixpoint over the (acyclic) supertype edges.
        let mut supertypes: Vec<HashSet<ClassId>> = vec![HashSet::new(); n];
        let mut order: Vec<usize> = (0..n).collect();
        // Process classes after their superclasses via repeated passes
        // (depth is small; a fixpoint is simplest and safe).
        let mut changed = true;
        while changed {
            changed = false;
            for &c in &order {
                let mut set: HashSet<ClassId> = HashSet::new();
                set.insert(ClassId(c as u32));
                if let Some(sup) = program.classes[c].superclass {
                    set.insert(sup);
                    set.extend(supertypes[sup.index()].iter().copied());
                }
                for &itf in &program.classes[c].interfaces {
                    set.insert(itf);
                    set.extend(supertypes[itf.index()].iter().copied());
                }
                if set.len() != supertypes[c].len() {
                    supertypes[c] = set;
                    changed = true;
                }
            }
        }
        order.clear();

        // Virtual dispatch: for each class and each virtual method name,
        // the nearest implementation walking up the superclass chain.
        let mut dispatch = HashMap::new();
        for c in 0..n {
            let mut cur = Some(ClassId(c as u32));
            let mut seen: HashSet<NameId> = HashSet::new();
            while let Some(k) = cur {
                for &m in &program.classes[k.index()].methods {
                    let meth = &program.methods[m.index()];
                    if meth.kind == MethodKind::Virtual && seen.insert(meth.name) {
                        dispatch.insert((ClassId(c as u32), meth.name), m);
                    }
                }
                cur = program.classes[k.index()].superclass;
            }
        }
        Hierarchy {
            supertypes,
            dispatch,
        }
    }

    /// Whether `sub` is a subtype of `sup` (reflexive).
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        self.supertypes[sub.index()].contains(&sup)
    }

    /// Whether a value of type `src` is assignable to a location of type
    /// `dst` (the paper's `aT(dst, src)`).
    pub fn assignable(&self, dst: ClassId, src: ClassId) -> bool {
        self.is_subtype(src, dst)
    }

    /// All `(supertype, subtype)` pairs — the paper's `aT` relation.
    /// Sorted: fact extraction order must not depend on hash iteration,
    /// or identical seeds produce different fact streams across processes.
    pub fn assignable_pairs(&self) -> Vec<(ClassId, ClassId)> {
        let mut out = Vec::new();
        for (sub, sups) in self.supertypes.iter().enumerate() {
            for &sup in sups {
                out.push((sup, ClassId(sub as u32)));
            }
        }
        out.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        out
    }

    /// Resolves a virtual dispatch of `name` on runtime class `class`.
    pub fn resolve(&self, class: ClassId, name: NameId) -> Option<MethodId> {
        self.dispatch.get(&(class, name)).copied()
    }

    /// All `(class, name, target)` dispatch triples — the paper's `cha`.
    /// Sorted for the same reason as [`Hierarchy::assignable_pairs`].
    pub fn cha_triples(&self) -> Vec<(ClassId, NameId, MethodId)> {
        let mut out: Vec<(ClassId, NameId, MethodId)> = self
            .dispatch
            .iter()
            .map(|(&(c, n), &m)| (c, n, m))
            .collect();
        out.sort_unstable_by_key(|&(c, n, m)| (c.0, n.0, m.0));
        out
    }

    /// All supertypes of `c`, including `c`.
    pub fn supertypes(&self, c: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.supertypes[c.index()].iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn diamondish() -> (Program, ClassId, ClassId, ClassId, ClassId) {
        // Object <- A <- B ; interface I ; B implements I
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let bb = b.class("B", Some(a));
        let i = b.class("I", Some(obj));
        b.implements(bb, i);
        (b.finish(), obj, a, bb, i)
    }

    #[test]
    fn subtyping_reflexive_and_transitive() {
        let (p, obj, a, b, i) = diamondish();
        let h = Hierarchy::new(&p);
        assert!(h.is_subtype(a, a));
        assert!(h.is_subtype(b, a));
        assert!(h.is_subtype(b, obj));
        assert!(h.is_subtype(b, i));
        assert!(!h.is_subtype(a, b));
        assert!(!h.is_subtype(a, i));
    }

    #[test]
    fn assignability_matches_subtyping() {
        let (p, obj, a, b, _) = diamondish();
        let h = Hierarchy::new(&p);
        assert!(h.assignable(obj, b));
        assert!(h.assignable(a, b));
        assert!(!h.assignable(b, a));
        let pairs = h.assignable_pairs();
        assert!(pairs.contains(&(a, b)));
        assert!(pairs.contains(&(a, a)));
        assert!(!pairs.contains(&(b, a)));
    }

    #[test]
    fn dispatch_walks_superclasses_and_overrides() {
        let mut bld = ProgramBuilder::new();
        let obj = bld.object_class();
        let a = bld.class("A", Some(obj));
        let b = bld.class("B", Some(a));
        let c = bld.class("C", Some(b));
        let m_a = bld.method(a, "m", MethodKind::Virtual, &[], None);
        let m_b = bld.method(b, "m", MethodKind::Virtual, &[], None);
        let p = bld.finish();
        let h = Hierarchy::new(&p);
        let name = p.methods[m_a.index()].name;
        assert_eq!(h.resolve(a, name), Some(m_a));
        assert_eq!(h.resolve(b, name), Some(m_b)); // override
        assert_eq!(h.resolve(c, name), Some(m_b)); // inherited override
        assert_eq!(h.resolve(obj, name), None);
    }

    #[test]
    fn static_methods_do_not_dispatch() {
        let mut bld = ProgramBuilder::new();
        let obj = bld.object_class();
        let a = bld.class("A", Some(obj));
        let sm = bld.method(a, "sm", MethodKind::Static, &[], None);
        let p = bld.finish();
        let h = Hierarchy::new(&p);
        let name = p.methods[sm.index()].name;
        assert_eq!(h.resolve(a, name), None);
    }
}
