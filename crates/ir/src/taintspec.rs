//! Declarative taint-flow specifications.
//!
//! A spec names the *sources* (methods whose return value is tainted, or
//! fields whose loads are tainted), the *sinks* (methods whose given
//! argument position must never receive tainted data) and the
//! *sanitizers* (methods through which flow is cut). The core taint
//! engine compiles a resolved spec into Datalog rules over the
//! context-sensitive points-to relations; this module only parses the
//! text format and resolves names against [`Facts`] name maps.
//!
//! # Format
//!
//! One directive per line, `#` starts a comment:
//!
//! ```text
//! # secret keys must not come from immutable Strings
//! source method  java.lang.String.intern
//! source field   secret
//! sink method    crypto.PBEKeySpec.init 1
//! sanitizer method crypto.Scrubber.clean
//! ```
//!
//! Method names are the fully qualified `Class.method` display names of
//! the method name map; field names match the field name map. Sink lines
//! carry the checked argument position (0-based over the actual list,
//! so `1` is the first argument after the receiver of a virtual call).

use crate::facts::Facts;
use std::fmt;

/// A parsed (unresolved) taint spec: names, as written.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSpec {
    /// Methods whose return value is a taint source.
    pub source_methods: Vec<String>,
    /// Fields whose loaded values are taint sources.
    pub source_fields: Vec<String>,
    /// `(method, argument position)` pairs that must stay clean.
    pub sink_methods: Vec<(String, u64)>,
    /// Methods that cut flow: taint neither enters nor leaves them
    /// through calls.
    pub sanitizer_methods: Vec<String>,
}

/// The same spec with every name resolved to its `u64` domain id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolvedTaintSpec {
    /// Source method ids (`M`).
    pub source_methods: Vec<u64>,
    /// Source field ids (`F`).
    pub source_fields: Vec<u64>,
    /// `(method id, argument position)` sink pairs.
    pub sink_methods: Vec<(u64, u64)>,
    /// Sanitizer method ids (`M`).
    pub sanitizer_methods: Vec<u64>,
}

/// Errors from parsing or resolving a taint spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintSpecError {
    /// A line did not match any directive.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A spec name is absent from the program's name maps.
    Unresolved {
        /// `"method"` or `"field"`.
        kind: &'static str,
        /// The name as written in the spec.
        name: String,
    },
    /// The spec has no sources or no sinks, so no finding is possible.
    Empty,
}

impl fmt::Display for TaintSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaintSpecError::Parse { line, message } => {
                write!(f, "taint spec error at line {line}: {message}")
            }
            TaintSpecError::Unresolved { kind, name } => {
                write!(f, "taint spec names unknown {kind} `{name}`")
            }
            TaintSpecError::Empty => {
                write!(f, "taint spec needs at least one source and one sink")
            }
        }
    }
}

impl std::error::Error for TaintSpecError {}

impl TaintSpec {
    /// Parses the line-oriented spec format.
    ///
    /// # Errors
    ///
    /// [`TaintSpecError::Parse`] with the offending line on any
    /// malformed directive; [`TaintSpecError::Empty`] if the parsed spec
    /// has no source or no sink.
    pub fn parse(src: &str) -> Result<TaintSpec, TaintSpecError> {
        let mut spec = TaintSpec::default();
        for (ix, raw) in src.lines().enumerate() {
            let line = ix + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let mut words = text.split_whitespace();
            let directive = words.next().unwrap_or("");
            let kind = words.next().unwrap_or("");
            let err = |message: String| TaintSpecError::Parse { line, message };
            match (directive, kind) {
                ("source", "method") | ("source", "field") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err(format!("`source {kind}` needs a name")))?;
                    if words.next().is_some() {
                        return Err(err(format!("trailing tokens after `source {kind}`")));
                    }
                    if kind == "method" {
                        spec.source_methods.push(name.to_string());
                    } else {
                        spec.source_fields.push(name.to_string());
                    }
                }
                ("sink", "method") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("`sink method` needs a name".into()))?;
                    let arg = words
                        .next()
                        .ok_or_else(|| err("`sink method` needs an argument position".into()))?;
                    let arg: u64 = arg
                        .parse()
                        .map_err(|_| err(format!("bad argument position `{arg}`")))?;
                    if words.next().is_some() {
                        return Err(err("trailing tokens after `sink method`".into()));
                    }
                    spec.sink_methods.push((name.to_string(), arg));
                }
                ("sanitizer", "method") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("`sanitizer method` needs a name".into()))?;
                    if words.next().is_some() {
                        return Err(err("trailing tokens after `sanitizer method`".into()));
                    }
                    spec.sanitizer_methods.push(name.to_string());
                }
                _ => {
                    return Err(err(format!(
                        "expected `source method|field`, `sink method` or \
                         `sanitizer method`, got `{text}`"
                    )));
                }
            }
        }
        if (spec.source_methods.is_empty() && spec.source_fields.is_empty())
            || spec.sink_methods.is_empty()
        {
            return Err(TaintSpecError::Empty);
        }
        Ok(spec)
    }

    /// Resolves every name against the program's name maps.
    ///
    /// # Errors
    ///
    /// [`TaintSpecError::Unresolved`] naming the first method or field
    /// absent from [`Facts::method_names`] / [`Facts::field_names`].
    pub fn resolve(&self, facts: &Facts) -> Result<ResolvedTaintSpec, TaintSpecError> {
        let method = |name: &str| -> Result<u64, TaintSpecError> {
            facts
                .method_names
                .iter()
                .position(|n| n == name)
                .map(|i| i as u64)
                .ok_or_else(|| TaintSpecError::Unresolved {
                    kind: "method",
                    name: name.to_string(),
                })
        };
        let field = |name: &str| -> Result<u64, TaintSpecError> {
            facts
                .field_names
                .iter()
                .position(|n| n == name)
                .map(|i| i as u64)
                .ok_or_else(|| TaintSpecError::Unresolved {
                    kind: "field",
                    name: name.to_string(),
                })
        };
        Ok(ResolvedTaintSpec {
            source_methods: self
                .source_methods
                .iter()
                .map(|n| method(n))
                .collect::<Result<_, _>>()?,
            source_fields: self
                .source_fields
                .iter()
                .map(|n| field(n))
                .collect::<Result<_, _>>()?,
            sink_methods: self
                .sink_methods
                .iter()
                .map(|(n, a)| method(n).map(|m| (m, *a)))
                .collect::<Result<_, _>>()?,
            sanitizer_methods: self
                .sanitizer_methods
                .iter()
                .map(|n| method(n))
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::model::MethodKind;

    #[test]
    fn parses_all_directive_kinds() {
        let spec = TaintSpec::parse(
            "# comment line\n\
             source method A.src   # returns secrets\n\
             source field secret\n\
             sink method B.snk 1\n\
             sanitizer method C.clean\n\
             \n",
        )
        .unwrap();
        assert_eq!(spec.source_methods, vec!["A.src"]);
        assert_eq!(spec.source_fields, vec!["secret"]);
        assert_eq!(spec.sink_methods, vec![("B.snk".to_string(), 1)]);
        assert_eq!(spec.sanitizer_methods, vec!["C.clean"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (src, want_line) in [
            ("source method", 1),
            ("sink method B.snk\nsource method A.src", 1),
            ("source method A.src\nsink method B.snk nope", 2),
            ("taint everything", 1),
            ("source method A.src extra", 1),
        ] {
            match TaintSpec::parse(src) {
                Err(TaintSpecError::Parse { line, .. }) => assert_eq!(line, want_line, "{src}"),
                other => panic!("expected parse error for {src:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_sourceless_or_sinkless_specs() {
        assert_eq!(
            TaintSpec::parse("source method A.src"),
            Err(TaintSpecError::Empty)
        );
        assert_eq!(
            TaintSpec::parse("sink method B.snk 0"),
            Err(TaintSpecError::Empty)
        );
        assert_eq!(
            TaintSpec::parse("# only comments\n"),
            Err(TaintSpecError::Empty)
        );
    }

    #[test]
    fn resolves_against_name_maps() {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let fld = b.field(a, "secret", obj);
        let src = b.method(a, "src", MethodKind::Static, &[], Some(obj));
        let snk = b.method(a, "snk", MethodKind::Static, &[("p", obj)], None);
        let facts = crate::facts::Facts::extract(&b.finish());

        let spec =
            TaintSpec::parse("source method A.src\nsource field secret\nsink method A.snk 0\n")
                .unwrap();
        let resolved = spec.resolve(&facts).unwrap();
        assert_eq!(resolved.source_methods, vec![src.0 as u64]);
        assert_eq!(resolved.source_fields, vec![fld.0 as u64]);
        assert_eq!(resolved.sink_methods, vec![(snk.0 as u64, 0)]);
        assert!(resolved.sanitizer_methods.is_empty());

        let bad = TaintSpec::parse("source method A.gone\nsink method A.snk 0\n").unwrap();
        assert_eq!(
            bad.resolve(&facts),
            Err(TaintSpecError::Unresolved {
                kind: "method",
                name: "A.gone".to_string()
            })
        );
    }
}
