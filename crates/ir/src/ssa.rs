//! Flow-sensitive factoring of local variables.
//!
//! The paper notes that "local variables and their assignments are factored
//! away using a flow-sensitive analysis" before the (otherwise
//! flow-insensitive) points-to analysis runs. This pass reproduces that
//! preprocessing: within each straight-line method body it renames every
//! definition of a local to a fresh version and propagates copies, so
//!
//! ```text
//! x = new A;  a = x;      // x reused for something else below
//! x = new B;  b = x;
//! ```
//!
//! no longer conflates `a` and `b` the way a flow-insensitive reading of
//! `x` would. Formal parameters and return variables keep their identity
//! (they are the method's interface and are bound by `actual`/`formal`/
//! `Mret`); everything else is versioned per definition, and plain copies
//! disappear entirely.
//!
//! Because the IR's method bodies are straight-line, the renaming is exact
//! (no join points), matching the strongest reading of the paper's claim.

use crate::builder::ProgramBuilder;
use crate::model::*;
use std::collections::HashMap;

/// Factors local variables flow-sensitively, returning the transformed
/// program. Entry points, class structure and allocation/invocation site
/// numbering are preserved in order (ids are re-assigned densely).
pub fn factor_locals(program: &Program) -> Program {
    let mut b = ProgramBuilder::new();

    // Rebuild classes (Object/String/Thread are recreated by the builder).
    let mut class_map: HashMap<ClassId, ClassId> = HashMap::new();
    class_map.insert(program.object_class, b.object_class());
    if let Some(s) = program.string_class {
        class_map.insert(s, b.string_class());
    }
    if let Some(t) = program.thread_class {
        class_map.insert(t, b.thread_class());
    }
    for (i, class) in program.classes.iter().enumerate() {
        let id = ClassId(i as u32);
        if class_map.contains_key(&id) {
            continue;
        }
        // Superclasses may be declared later under exotic frontends; create
        // with a placeholder parent and patch afterwards.
        let new_id = b.class(&class.name, Some(b.object_class()));
        class_map.insert(id, new_id);
    }
    for (i, class) in program.classes.iter().enumerate() {
        let id = class_map[&ClassId(i as u32)];
        if let Some(sup) = class.superclass {
            if id != b.object_class() {
                b.set_superclass(id, class_map[&sup]);
            }
        }
        for &itf in &class.interfaces {
            b.implements(id, class_map[&itf]);
        }
    }

    // Fields.
    let mut field_map: HashMap<FieldId, FieldId> = HashMap::new();
    for (i, field) in program.fields.iter().enumerate() {
        let new_id = b.field(class_map[&field.owner], &field.name, class_map[&field.ty]);
        field_map.insert(FieldId(i as u32), new_id);
    }

    // Method signatures first (bodies may call forward).
    let mut method_map: HashMap<MethodId, MethodId> = HashMap::new();
    for (i, m) in program.methods.iter().enumerate() {
        let params: Vec<(String, ClassId)> = m
            .formals
            .iter()
            .skip(if m.kind == MethodKind::Virtual { 1 } else { 0 })
            .map(|&v| {
                (
                    program.vars[v.index()].name.clone(),
                    class_map[&program.vars[v.index()].ty],
                )
            })
            .collect();
        let params_ref: Vec<(&str, ClassId)> =
            params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let new_id = b.method(
            class_map[&m.owner],
            &program.names[m.name.index()],
            m.kind,
            &params_ref,
            m.ret_ty.map(|t| class_map[&t]),
        );
        method_map.insert(MethodId(i as u32), new_id);
    }

    // Bodies, with per-definition versioning.
    for (i, m) in program.methods.iter().enumerate() {
        let old_id = MethodId(i as u32);
        let new_id = method_map[&old_id];
        // env: old var -> current new var version.
        let mut env: HashMap<VarId, VarId> = HashMap::new();
        {
            let new_formals = b.program().methods[new_id.index()].formals.clone();
            for (old_f, new_f) in m.formals.iter().zip(new_formals) {
                env.insert(*old_f, new_f);
            }
        }
        let ret_old = m.ret_var;
        // The exception variable is interface state like the return
        // variable: reads (catch) and writes (throw) go through one
        // identity, seeded up front.
        if let Some(e) = m.exc_var {
            let new_e = b.exc_var(new_id);
            env.insert(e, new_e);
        }
        let mut version = 0usize;
        let mut fresh = |b: &mut ProgramBuilder, env: &mut HashMap<VarId, VarId>, old: VarId| {
            let var = &program.vars[old.index()];
            let v = b.local(
                new_id,
                &format!("{}.{version}", var.name),
                class_map[&var.ty],
            );
            version += 1;
            env.insert(old, v);
            v
        };
        let resolve =
            |b: &mut ProgramBuilder, env: &mut HashMap<VarId, VarId>, old: VarId| -> VarId {
                if let Some(&v) = env.get(&old) {
                    return v;
                }
                // First use before any definition (possible for globals or
                // never-assigned locals): materialize one version.
                if program.vars[old.index()].method.is_none() {
                    // The global variable keeps its identity.
                    let g = b.global_var();
                    env.insert(old, g);
                    return g;
                }
                let var = &program.vars[old.index()];
                let v = b.local(new_id, &var.name, class_map[&var.ty]);
                env.insert(old, v);
                v
            };
        for stmt in &m.body {
            match stmt {
                Stmt::New { dst, class, .. } => {
                    let d = fresh(&mut b, &mut env, *dst);
                    b.stmt_new(new_id, d, class_map[class]);
                }
                Stmt::Assign { dst, src } => {
                    // The builder emits `Assign{ret, src}` after Return and
                    // `Assign{exc, src}` after Throw; keep those (they are
                    // the method's interface), propagate every other copy.
                    if Some(*dst) == ret_old {
                        let s = resolve(&mut b, &mut env, *src);
                        let new_ret = b.program().methods[new_id.index()]
                            .ret_var
                            .expect("return variable preserved");
                        b.stmt_assign(new_id, new_ret, s);
                    } else if Some(*dst) == m.exc_var {
                        let s = resolve(&mut b, &mut env, *src);
                        let new_exc = b.exc_var(new_id);
                        b.stmt_assign(new_id, new_exc, s);
                    } else {
                        let s = resolve(&mut b, &mut env, *src);
                        env.insert(*dst, s);
                    }
                }
                Stmt::Load { dst, base, field } => {
                    let base_v = resolve(&mut b, &mut env, *base);
                    let d = fresh(&mut b, &mut env, *dst);
                    b.stmt_load(new_id, d, base_v, field_map[field]);
                }
                Stmt::Store { base, field, src } => {
                    let base_v = resolve(&mut b, &mut env, *base);
                    let s = resolve(&mut b, &mut env, *src);
                    b.stmt_store(new_id, base_v, field_map[field], s);
                }
                Stmt::Invoke {
                    target,
                    actuals,
                    dst,
                    ..
                } => {
                    let new_actuals: Vec<VarId> = actuals
                        .iter()
                        .map(|&a| resolve(&mut b, &mut env, a))
                        .collect();
                    let new_dst = dst.map(|d| fresh(&mut b, &mut env, d));
                    match target {
                        CallTarget::Static(t) => {
                            b.stmt_call_static(new_id, method_map[t], &new_actuals, new_dst);
                        }
                        CallTarget::Virtual(n) => {
                            b.stmt_call_virtual(
                                new_id,
                                &program.names[n.index()],
                                &new_actuals,
                                new_dst,
                            );
                        }
                    }
                }
                Stmt::Return { src } => {
                    // Re-emitted via the ret-var Assign that follows; the
                    // marker itself carries no dataflow, but keep it for
                    // statement-count fidelity (resolve for side effects).
                    let _ = resolve(&mut b, &mut env, *src);
                }
                Stmt::Throw { src } => {
                    // As with Return: the accompanying exc-var Assign
                    // (handled below) carries the dataflow.
                    let _ = resolve(&mut b, &mut env, *src);
                }
                Stmt::Sync { var } => {
                    let v = resolve(&mut b, &mut env, *var);
                    b.stmt_sync(new_id, v);
                }
            }
        }
    }

    for &e in &program.entries {
        b.entry(method_map[&e]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn copies_disappear() {
        let p = parse_program(
            r#"
class A extends Object {
  entry static method main() {
    var x: Object;
    var y: Object;
    x = new Object;
    y = x;
  }
}
"#,
        )
        .unwrap();
        let f = factor_locals(&p);
        // One allocation, zero assigns (the copy was propagated).
        let facts = crate::facts::Facts::extract(&f);
        assert_eq!(facts.vp0.len(), 1);
        assert_eq!(facts.assign.len(), 0);
    }

    #[test]
    fn reused_temp_is_split() {
        let p = parse_program(
            r#"
class A extends Object { }
class B extends Object { }
class Holder extends Object {
  field fa: Object;
  field fb: Object;
}
class Main extends Object {
  entry static method main() {
    var t: Object;
    var h: Holder;
    h = new Holder;
    t = new A;
    h.fa = t;
    t = new B;
    h.fb = t;
  }
}
"#,
        )
        .unwrap();
        let factored = factor_locals(&p);
        let facts = crate::facts::Facts::extract(&factored);
        // The two stores must use different source variables.
        assert_eq!(facts.store.len(), 2);
        assert_ne!(
            facts.store[0][2], facts.store[1][2],
            "reuse of `t` split into versions"
        );
    }

    #[test]
    fn interfaces_and_hierarchy_preserved() {
        let p = parse_program(
            r#"
class I extends Object { }
class A extends Object implements I {
  entry static method main() { var a: A; a = new A; }
}
"#,
        )
        .unwrap();
        let f = factor_locals(&p);
        let facts_before = crate::facts::Facts::extract(&p);
        let facts_after = crate::facts::Facts::extract(&f);
        let mut at_b = facts_before.at.clone();
        let mut at_a = facts_after.at.clone();
        at_b.sort();
        at_a.sort();
        assert_eq!(at_b, at_a, "assignability unchanged");
    }

    #[test]
    fn calls_and_returns_rewire() {
        let p = parse_program(
            r#"
class A extends Object {
  entry static method main() {
    var x: Object;
    var y: Object;
    x = new Object;
    y = A::id(x);
  }
  static method id(p: Object): Object {
    return p;
  }
}
"#,
        )
        .unwrap();
        let f = factor_locals(&p);
        let facts = crate::facts::Facts::extract(&f);
        assert_eq!(facts.actual.len(), 1);
        assert_eq!(facts.iret.len(), 1);
        assert_eq!(facts.mret.len(), 1);
        // `return p` keeps exactly one assign (into the ret var).
        assert_eq!(facts.assign.len(), 1);
    }

    #[test]
    fn synthetic_program_roundtrip() {
        let p = crate::synth::generate(&crate::synth::SynthConfig::tiny("f", 3));
        let f = factor_locals(&p);
        let before = crate::facts::Facts::extract(&p);
        let after = crate::facts::Facts::extract(&f);
        // Same allocation and call structure.
        assert_eq!(before.vp0.len(), after.vp0.len());
        assert_eq!(before.mi.len(), after.mi.len());
        assert_eq!(before.entries.len(), after.entries.len());
        // Strictly fewer (or equal) copies, possibly more variables.
        assert!(after.assign.len() <= before.assign.len());
    }
}
