//! Synthetic benchmark generator.
//!
//! The paper evaluates on 21 popular Sourceforge applications (Figure 3).
//! Those 2003 jars cannot be shipped here, so this module generates
//! programs that reproduce the *structural* quantities driving the
//! analyses: class/method counts, variable and allocation-site counts,
//! call-graph shape (fan-in per layer, virtual-dispatch fan-out, recursive
//! components), thread structure, and — critically — the number of reduced
//! call paths (contexts), which grows as `fan_in ^ (layers-1)` and is what
//! makes cloning-based context sensitivity hard.
//!
//! Generation is fully deterministic from the seed.

use crate::builder::ProgramBuilder;
use crate::model::*;
use whale_testkit::Rng;

/// Parameters of a synthetic program.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Benchmark name (matching a Figure 3 row for the calibrated set).
    pub name: String,
    /// RNG seed; same config + seed = same program.
    pub seed: u64,
    /// Call-graph layers below `main`.
    pub layers: usize,
    /// Methods per layer.
    pub width: usize,
    /// Call-graph in-degree of each method (the per-layer context
    /// multiplier).
    pub fan_in: usize,
    /// Base application classes (each with a family of subclasses).
    pub classes: usize,
    /// Subclasses per family: the CHA fan-out of virtual calls.
    pub dispatch_fanout: usize,
    /// Percent of call edges that are virtual (rest are static).
    pub virtual_pct: u32,
    /// Percent of methods with an intra-layer cycle edge (SCCs).
    pub recursion_pct: u32,
    /// Allocation statements per method.
    pub allocs_per_method: usize,
    /// Store+load pairs per method.
    pub field_ops_per_method: usize,
    /// Thread classes started from `main` (0 = single-threaded).
    pub threads: usize,
    /// Percent of allocations a thread publishes through the static global
    /// (these escape).
    pub shared_pct: u32,
    /// Parallel invocation sites per call edge. Parallel edges multiply
    /// reduced-call-path counts (each site is its own context) without
    /// adding new dataflow — this is how `pmd`'s machine-generated parser
    /// reaches 10^23 paths in the paper while its points-to relations stay
    /// ordinary.
    pub parallel_sites: usize,
    /// Known data races to inject (0 = none). Each race adds a victim
    /// object written by both clones of a dedicated worker thread without
    /// locks, plus a lock-guarded *twin* of the same shape that a sound
    /// lock-set analysis must keep silent. Injection uses its own RNG, so
    /// `races == 0` leaves the base program stream bit-identical.
    pub races: usize,
    /// Known taint chains to inject (0 = none). Each chain adds a source
    /// method returning a fresh secret, a pass-through hop, a sink, and a
    /// *sanitized twin* of the same shape routed through a cleaner method
    /// that a spec-driven taint analysis must keep silent (see
    /// [`injected_taint_spec`]). Injection uses its own RNG, so
    /// `taint == 0` leaves the base program stream bit-identical.
    pub taint: usize,
}

impl SynthConfig {
    /// A small default config for tests.
    pub fn tiny(name: &str, seed: u64) -> SynthConfig {
        SynthConfig {
            name: name.into(),
            seed,
            layers: 4,
            width: 8,
            fan_in: 2,
            classes: 6,
            dispatch_fanout: 2,
            virtual_pct: 50,
            recursion_pct: 10,
            allocs_per_method: 2,
            field_ops_per_method: 2,
            threads: 1,
            shared_pct: 50,
            parallel_sites: 1,
            races: 0,
            taint: 0,
        }
    }

    /// Scales the per-layer width (program size) by `num/den`, leaving the
    /// context structure (layers, fan-in) intact.
    pub fn scaled(&self, num: usize, den: usize) -> SynthConfig {
        let mut c = self.clone();
        c.width = ((c.width * num) / den).max(2);
        c.classes = ((c.classes * num) / den).max(2);
        c
    }

    /// Rough expected number of reduced call paths reaching the deepest
    /// layer: `(fan_in * parallel_sites) ^ (layers - 1)`, saturating.
    pub fn expected_paths(&self) -> f64 {
        ((self.fan_in * self.parallel_sites.max(1)) as f64)
            .powi(self.layers.saturating_sub(1) as i32)
    }
}

/// Generates a program from a config.
pub fn generate(config: &SynthConfig) -> Program {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let string = b.string_class();
    let thread = b.thread_class();

    // Global static fields (accessed through the global variable).
    let global = b.global_var();
    let g_shared = b.field(object, "g_shared", object);
    let g_cache = b.field(object, "g_cache", object);

    // Library: a couple of String producers and utility statics, shared by
    // everything (this is what blows up context counts for pmd-like
    // programs in the paper).
    let s_value_of = b.method(
        string,
        "valueOf",
        MethodKind::Static,
        &[("o", object)],
        Some(string),
    );
    {
        let m = s_value_of;
        let v = b.local(m, "s", string);
        b.stmt_new(m, v, string);
        b.stmt_return(m, v);
    }
    let util = b.class("lib.Util", Some(object));
    let u_identity = b.method(
        util,
        "identity",
        MethodKind::Static,
        &[("o", object)],
        Some(object),
    );
    {
        let m = u_identity;
        let p = b.program().methods[m.index()].formals[0];
        b.stmt_return(m, p);
    }
    let u_box = b.method(
        util,
        "boxit",
        MethodKind::Static,
        &[("o", object)],
        Some(object),
    );
    {
        let m = u_box;
        let p = b.program().methods[m.index()].formals[0];
        let v = b.local(m, "box", object);
        b.stmt_new(m, v, object);
        let f = g_cache;
        b.stmt_store(m, v, f, p);
        b.stmt_return(m, v);
    }

    // Class families: a base class plus `dispatch_fanout - 1` subclasses.
    // Every family member carries two object fields.
    let nfam = config.classes.max(1);
    let mut families: Vec<Vec<ClassId>> = Vec::with_capacity(nfam);
    let mut class_fields: Vec<Vec<FieldId>> = Vec::new();
    for fam in 0..nfam {
        let base = b.class(&format!("app.C{fam}"), Some(object));
        let mut members = vec![base];
        for s in 1..config.dispatch_fanout.max(1) {
            let sub = b.class(&format!("app.C{fam}S{s}"), Some(base));
            members.push(sub);
        }
        for &c in &members {
            // One precisely typed field (loads through it are pruned by
            // the type filter) and one Object-typed catch-all.
            let f0 = b.field(c, "fx", base);
            let f1 = b.field(c, "fy", object);
            class_fields.push(vec![f0, f1]);
        }
        families.push(members);
    }
    let all_classes: Vec<ClassId> = families.iter().flatten().copied().collect();
    let all_fields: Vec<FieldId> = class_fields.into_iter().flatten().collect();

    // Method slots: layer x width. A virtual slot gets an implementation in
    // every member of its family (same dispatch name); a static slot gets
    // one static method.
    #[derive(Clone)]
    struct Slot {
        virtual_: bool,
        family: usize,
        /// Declared parameter type (a family base, or Object).
        param_ty: ClassId,
        /// One method per family member (virtual) or a single method.
        impls: Vec<MethodId>,
    }
    let mut layers: Vec<Vec<Slot>> = Vec::with_capacity(config.layers);
    for k in 0..config.layers {
        let mut layer = Vec::with_capacity(config.width);
        for j in 0..config.width {
            let family = (k * config.width + j) % nfam;
            let virtual_ = rng.gen_range(0..100) < config.virtual_pct;
            let name = format!("m{k}_{j}");
            // Parameters carry real types most of the time, as Java code
            // does; this is what lets the Algorithm 2 type filter prune
            // the imprecision a CHA call graph introduces.
            let param_ty = if rng.gen_range(0..100) < 70 {
                families[rng.gen_range(0..nfam)][0]
            } else {
                object
            };
            let impls = if virtual_ {
                families[family]
                    .iter()
                    .map(|&c| {
                        b.method(
                            c,
                            &name,
                            MethodKind::Virtual,
                            &[("p", param_ty)],
                            Some(object),
                        )
                    })
                    .collect()
            } else {
                let c = families[family][0];
                vec![b.method(
                    c,
                    &name,
                    MethodKind::Static,
                    &[("p", param_ty)],
                    Some(object),
                )]
            };
            layer.push(Slot {
                virtual_,
                family,
                param_ty,
                impls,
            });
        }
        layers.push(layer);
    }

    // Per-method body generation state: emit allocations and field traffic,
    // then the assigned call edges, then a return.
    let emit_body_prefix = |b: &mut ProgramBuilder, m: MethodId, rng: &mut Rng| -> Vec<VarId> {
        let mut locals = Vec::new();
        let p = b.program().methods[m.index()].formals.last().copied();
        if let Some(p) = p {
            locals.push(p);
        }
        for a in 0..config.allocs_per_method {
            let cls = all_classes[rng.gen_range(0..all_classes.len())];
            let v = b.local(m, &format!("o{a}"), cls);
            b.stmt_new(m, v, cls);
            locals.push(v);
        }
        for fo in 0..config.field_ops_per_method {
            if locals.len() < 2 {
                break;
            }
            let base = locals[rng.gen_range(0..locals.len())];
            let src = locals[rng.gen_range(0..locals.len())];
            let field = all_fields[rng.gen_range(0..all_fields.len())];
            b.stmt_store(m, base, field, src);
            let base2 = locals[rng.gen_range(0..locals.len())];
            let dst = b.local(m, &format!("l{fo}"), object);
            b.stmt_load(m, dst, base2, field);
            locals.push(dst);
        }
        // A slice of methods exchange objects through static state, the
        // way real applications share queues and registries across
        // threads; when several threads reach such a method, the traffic
        // makes objects escape.
        if rng.gen_range(0..100) < 8 {
            let src = locals[rng.gen_range(0..locals.len())];
            b.stmt_store(m, global, g_shared, src);
        }
        if rng.gen_range(0..100) < 8 {
            let dst = b.local(m, "gshared", object);
            b.stmt_load(m, dst, global, g_shared);
            locals.push(dst);
        }
        locals
    };

    // Call edges: each implementation in layer k+1 receives `fan_in`
    // callers from layer k. We materialize edges as (caller method,
    // callee slot, callee member index).
    let mut edges: Vec<(MethodId, usize, usize, usize)> = Vec::new(); // (caller, layer+1, slot, member)
    for k in 1..config.layers {
        let prev: Vec<MethodId> = layers[k - 1]
            .iter()
            .flat_map(|s| s.impls.iter().copied())
            .collect();
        for (j, slot) in layers[k].iter().enumerate() {
            for (mem, _) in slot.impls.iter().enumerate() {
                for _ in 0..config.fan_in {
                    let caller = prev[rng.gen_range(0..prev.len())];
                    for _ in 0..config.parallel_sites.max(1) {
                        edges.push((caller, k, j, mem));
                    }
                }
            }
        }
    }
    // Intra-layer recursion: cycle pairs within a layer.
    let mut cycle_edges: Vec<(MethodId, MethodId, usize, usize, usize)> = Vec::new();
    for (k, layer) in layers.iter().enumerate() {
        for (j, slot) in layer.iter().enumerate() {
            if rng.gen_range(0..100) < config.recursion_pct && layer.len() > 1 {
                let j2 = (j + 1 + rng.gen_range(0..layer.len() - 1)) % layer.len();
                let target_slot = &layer[j2];
                let mem = rng.gen_range(0..target_slot.impls.len());
                // a -> b and b -> a: a genuine SCC after collapsing.
                cycle_edges.push((slot.impls[0], target_slot.impls[mem], k, j2, mem));
                cycle_edges.push((target_slot.impls[mem], slot.impls[0], k, j, 0));
            }
        }
    }

    // Group edges by caller so each body is emitted once.
    use std::collections::HashMap;
    let mut calls_of: HashMap<MethodId, Vec<(usize, usize, usize)>> = HashMap::new();
    for &(caller, k, j, mem) in &edges {
        calls_of.entry(caller).or_default().push((k, j, mem));
    }
    for &(caller, _, k, j, mem) in &cycle_edges {
        calls_of.entry(caller).or_default().push((k, j, mem));
    }

    let all_impls: Vec<MethodId> = layers
        .iter()
        .flat_map(|l| l.iter().flat_map(|s| s.impls.iter().copied()))
        .collect();
    for &m in &all_impls {
        let mut rng_body = Rng::seed_from_u64(config.seed ^ (0x9e37 + m.0 as u64));
        let locals = emit_body_prefix(&mut b, m, &mut rng_body);
        let callee_list = calls_of.get(&m).cloned().unwrap_or_default();
        let mut ret_src = *locals.last().expect("at least the parameter");
        for (ci, (k, j, mem)) in callee_list.iter().enumerate() {
            let slot = &layers[*k][*j];
            // Most call sites construct an argument of the type the callee
            // expects (as real code does); the rest forward an arbitrary
            // local, which the type filter prunes at the formal.
            let arg = if rng_body.gen_range(0..100) < 70 && slot.param_ty != object {
                let av = b.local(m, &format!("arg{ci}"), slot.param_ty);
                b.stmt_new(m, av, slot.param_ty);
                av
            } else {
                locals[rng_body.gen_range(0..locals.len())]
            };
            let dst = b.local(m, &format!("r{ci}"), object);
            if slot.virtual_ {
                // Allocate the exact receiver class so the discovered call
                // graph resolves to the intended member.
                let recv_cls = families[slot.family][*mem];
                let recv = b.local(m, &format!("recv{ci}"), recv_cls);
                b.stmt_new(m, recv, recv_cls);
                let name = {
                    let callee = slot.impls[*mem];
                    let p = b.program();
                    p.names[p.methods[callee.index()].name.index()].clone()
                };
                b.stmt_call_virtual(m, &name, &[recv, arg], Some(dst));
            } else {
                b.stmt_call_static(m, slot.impls[0], &[arg], Some(dst));
            }
            ret_src = dst;
        }
        // Occasional library calls (context-count amplifiers; kept sparse
        // so the shared methods do not turn CHA-based analysis results
        // into a dense all-to-all mix).
        if rng_body.gen_range(0..100) < 12 {
            let dst = b.local(m, "lib0", object);
            let arg = locals[rng_body.gen_range(0..locals.len())];
            let target = if rng_body.gen_bool(0.5) {
                u_identity
            } else {
                u_box
            };
            b.stmt_call_static(m, target, &[arg], Some(dst));
        }
        if rng_body.gen_range(0..100) < 4 {
            let dst = b.local(m, "str0", string);
            let arg = locals[rng_body.gen_range(0..locals.len())];
            b.stmt_call_static(m, s_value_of, &[arg], Some(dst));
        }
        b.stmt_return(m, ret_src);
    }

    // Threads: Worker classes whose run() calls into layer 0 and allocates
    // objects, publishing `shared_pct`% through the static global.
    let mut workers = Vec::new();
    for t in 0..config.threads {
        let worker = b.class(&format!("app.Worker{t}"), Some(thread));
        let run = b.method(worker, "run", MethodKind::Virtual, &[], None);
        let mut locals = Vec::new();
        for a in 0..config.allocs_per_method.max(2) {
            let cls = all_classes[rng.gen_range(0..all_classes.len())];
            let v = b.local(run, &format!("w{a}"), cls);
            b.stmt_new(run, v, cls);
            if rng.gen_range(0..100) < config.shared_pct {
                // Published through the static global AND read back by
                // every other thread below: these objects escape.
                b.stmt_store(run, global, g_shared, v);
            }
            b.stmt_sync(run, v);
            locals.push(v);
        }
        // Consume work published by other threads (this is what makes
        // shared objects *accessed* by another thread, the paper's strong
        // escape criterion) and synchronize on it.
        let got = b.local(run, "got", object);
        b.stmt_load(run, got, global, g_shared);
        b.stmt_sync(run, got);
        // Reach part of the call graph.
        if !layers.is_empty() && !layers[0].is_empty() {
            let j = rng.gen_range(0..layers[0].len());
            let slot = layers[0][j].clone();
            let arg = locals[0];
            let dst = b.local(run, "r", object);
            if slot.virtual_ {
                let recv_cls = families[slot.family][0];
                let recv = b.local(run, "recv", recv_cls);
                b.stmt_new(run, recv, recv_cls);
                let name = {
                    let p = b.program();
                    p.names[p.methods[slot.impls[0].index()].name.index()].clone()
                };
                b.stmt_call_virtual(run, &name, &[recv, arg], Some(dst));
            } else {
                b.stmt_call_static(run, slot.impls[0], &[arg], Some(dst));
            }
        }
        workers.push((worker, run));
    }

    // main: seeds layer 0 (each slot called once) and starts the threads.
    let main_cls = b.class("app.Main", Some(object));
    let main = b.method(main_cls, "main", MethodKind::Static, &[], None);
    b.entry(main);
    let seed_obj = b.local(main, "seed", object);
    b.stmt_new(main, seed_obj, object);
    // Publish one object so even single-threaded programs have the global.
    b.stmt_store(main, global, g_shared, seed_obj);
    b.stmt_sync(main, seed_obj);
    if config.threads > 0 {
        // The spawner also polls shared state.
        let polled = b.local(main, "polled", object);
        b.stmt_load(main, polled, global, g_shared);
        b.stmt_sync(main, polled);
    }
    if let Some(layer0) = layers.first() {
        for (j, slot) in layer0.iter().enumerate() {
            let dst = b.local(main, &format!("m{j}"), object);
            if slot.virtual_ {
                for (mem, &callee) in slot.impls.iter().enumerate() {
                    let recv_cls = families[slot.family][mem];
                    let recv = b.local(main, &format!("recv{j}_{mem}"), recv_cls);
                    b.stmt_new(main, recv, recv_cls);
                    let name = {
                        let p = b.program();
                        p.names[p.methods[callee.index()].name.index()].clone()
                    };
                    b.stmt_call_virtual(main, &name, &[recv, seed_obj], Some(dst));
                }
            } else {
                b.stmt_call_static(main, slot.impls[0], &[seed_obj], Some(dst));
            }
        }
    }
    for (worker, run) in &workers {
        let w = b.local(main, "w", *worker);
        b.stmt_new(main, w, *worker);
        b.stmt_thread_start(main, w);
        b.entry(*run);
    }

    // Known-race injection. Each race adds an unguarded victim (both
    // clones of `race.RaceWorker{i}` write `vic.rdata` with no lock — a
    // definite write/write race) and a guarded twin (`race.TwinWorker{i}`
    // writes `twin.gdata` under a `main`-allocated singleton lock — a
    // sound lock-set analysis must stay silent). The injector draws from
    // its own RNG so the base stream above is bit-identical for any
    // `races` value.
    let mut rrng = Rng::seed_from_u64(config.seed ^ 0x7ace_5eed);
    for i in 0..config.races {
        let vic_cls = b.class(&format!("race.Vic{i}"), Some(object));
        let rdata = b.field(vic_cls, "rdata", object);
        let rworker = b.class(&format!("race.RaceWorker{i}"), Some(thread));
        let rshared = b.field(rworker, "shared", vic_cls);
        let rrun = b.method(rworker, "run", MethodKind::Virtual, &[], None);
        {
            let this = b.program().methods[rrun.index()].formals[0];
            let s = b.local(rrun, "s", vic_cls);
            b.stmt_load(rrun, s, this, rshared);
            for pad in 0..rrng.gen_range(0..2) {
                let v = b.local(rrun, &format!("pad{pad}"), object);
                b.stmt_new(rrun, v, object);
            }
            let o = b.local(rrun, "o", object);
            b.stmt_new(rrun, o, object);
            b.stmt_store(rrun, s, rdata, o);
        }
        let vic = b.local(main, &format!("vic{i}"), vic_cls);
        b.stmt_new(main, vic, vic_cls);
        let rw = b.local(main, &format!("rw{i}"), rworker);
        b.stmt_new(main, rw, rworker);
        b.stmt_store(main, rw, rshared, vic);
        b.stmt_thread_start(main, rw);
        b.entry(rrun);

        let twin_cls = b.class(&format!("race.Twin{i}"), Some(object));
        let gdata = b.field(twin_cls, "gdata", object);
        let tworker = b.class(&format!("race.TwinWorker{i}"), Some(thread));
        let tshared = b.field(tworker, "shared", twin_cls);
        let tlock = b.field(tworker, "lock", object);
        let trun = b.method(tworker, "run", MethodKind::Virtual, &[], None);
        {
            let this = b.program().methods[trun.index()].formals[0];
            let s = b.local(trun, "s", twin_cls);
            b.stmt_load(trun, s, this, tshared);
            let l = b.local(trun, "l", object);
            b.stmt_load(trun, l, this, tlock);
            let o = b.local(trun, "o", object);
            b.stmt_new(trun, o, object);
            b.begin_sync(trun, l);
            b.stmt_store(trun, s, gdata, o);
            b.end_sync(trun);
        }
        let twin = b.local(main, &format!("twin{i}"), twin_cls);
        b.stmt_new(main, twin, twin_cls);
        let lk = b.local(main, &format!("g_lock{i}"), object);
        b.stmt_new(main, lk, object);
        let tw = b.local(main, &format!("tw{i}"), tworker);
        b.stmt_new(main, tw, tworker);
        b.stmt_store(main, tw, tshared, twin);
        b.stmt_store(main, tw, tlock, lk);
        b.stmt_thread_start(main, tw);
        b.entry(trun);
    }

    // Known-taint injection. Each chain adds `taint.Api{i}.source` (returns
    // a fresh secret), `taint.Hop{i}.pass` (identity), `taint.Sink{i}.consume`
    // and `taint.San{i}.clean` (also identity — only the spec entry cuts the
    // flow), plus two drivers called from `main`: `taint.Drive{i}.bad`
    // routes source → hops → sink (a definite finding) and
    // `taint.Drive{i}.good` routes source → clean → sink (its sanitized
    // twin, which the spec of [`injected_taint_spec`] must silence). The
    // injector draws from its own RNG so the base stream above is
    // bit-identical for any `taint` value.
    let mut trng = Rng::seed_from_u64(config.seed ^ 0x7a11_75ed);
    for i in 0..config.taint {
        let api = b.class(&format!("taint.Api{i}"), Some(object));
        let source = b.method(api, "source", MethodKind::Static, &[], Some(object));
        {
            let v = b.local(source, "secret", object);
            b.stmt_new(source, v, object);
            b.stmt_return(source, v);
        }
        let hop = b.class(&format!("taint.Hop{i}"), Some(object));
        let pass = b.method(
            hop,
            "pass",
            MethodKind::Static,
            &[("p", object)],
            Some(object),
        );
        {
            let p = b.program().methods[pass.index()].formals[0];
            b.stmt_return(pass, p);
        }
        let san = b.class(&format!("taint.San{i}"), Some(object));
        let clean = b.method(
            san,
            "clean",
            MethodKind::Static,
            &[("p", object)],
            Some(object),
        );
        {
            let p = b.program().methods[clean.index()].formals[0];
            b.stmt_return(clean, p);
        }
        let sink_cls = b.class(&format!("taint.Sink{i}"), Some(object));
        let consume = b.method(
            sink_cls,
            "consume",
            MethodKind::Static,
            &[("p", object)],
            None,
        );
        {
            let d = b.local(consume, "d", object);
            b.stmt_new(consume, d, object);
        }
        let drive = b.class(&format!("taint.Drive{i}"), Some(object));
        let bad = b.method(drive, "bad", MethodKind::Static, &[], None);
        {
            let s = b.local(bad, "s", object);
            b.stmt_call_static(bad, source, &[], Some(s));
            let mut cur = s;
            for hopn in 0..1 + trng.gen_range(0..2) {
                let t = b.local(bad, &format!("t{hopn}"), object);
                b.stmt_call_static(bad, pass, &[cur], Some(t));
                cur = t;
            }
            b.stmt_call_static(bad, consume, &[cur], None);
        }
        let good = b.method(drive, "good", MethodKind::Static, &[], None);
        {
            let s = b.local(good, "s", object);
            b.stmt_call_static(good, source, &[], Some(s));
            let u = b.local(good, "u", object);
            b.stmt_call_static(good, clean, &[s], Some(u));
            b.stmt_call_static(good, consume, &[u], None);
        }
        b.stmt_call_static(main, bad, &[], None);
        b.stmt_call_static(main, good, &[], None);
    }
    b.finish()
}

/// The taint spec matching the chains injected by [`SynthConfig::taint`]:
/// every `taint.Api{i}.source` is a source, every `taint.Sink{i}.consume`
/// a sink at argument 0, every `taint.San{i}.clean` a sanitizer. With
/// this spec the analysis must flag exactly the `taint` injected
/// `Drive{i}.bad` chains and stay silent on their `good` twins.
pub fn injected_taint_spec(config: &SynthConfig) -> String {
    let mut s = String::from("# spec for the synth-injected taint chains\n");
    for i in 0..config.taint {
        s.push_str(&format!("source method taint.Api{i}.source\n"));
        s.push_str(&format!("sink method taint.Sink{i}.consume 0\n"));
        s.push_str(&format!("sanitizer method taint.San{i}.clean\n"));
    }
    s
}

/// The 21 calibrated benchmark configs mirroring Figure 3 of the paper.
///
/// `layers`/`fan_in` are tuned so the reduced-call-path counts land near
/// the paper's (10^4 … 10^23); `width` tracks relative method counts at a
/// documented fraction of the original scale.
pub fn benchmarks() -> Vec<SynthConfig> {
    // (name, layers, width, fan_in, classes, threads, paper_paths)
    // Layer/fan pairs calibrated against measured reduced-path counts
    // (cycle edges and the main seeding add roughly one extra decade, so
    // layer counts sit slightly below pure `fan^layers` arithmetic).
    let rows: [(&str, usize, usize, usize, usize, usize); 21] = [
        ("freetts", 10, 60, 3, 50, 0),
        ("nfcchat", 13, 60, 3, 60, 2),
        ("jetty", 11, 75, 3, 65, 3),
        ("openwfe", 13, 75, 3, 70, 0),
        ("joone", 13, 90, 3, 80, 2),
        ("jboss", 14, 90, 4, 75, 3),
        ("jbossdep", 14, 105, 4, 90, 2),
        ("sshdaemon", 16, 105, 4, 100, 4),
        ("pmd", 25, 105, 3, 85, 0),
        ("azureus", 15, 135, 4, 105, 4),
        ("freenet", 13, 165, 3, 140, 4),
        ("sshterm", 18, 195, 4, 170, 3),
        ("jgraph", 17, 285, 4, 220, 2),
        ("umldot", 22, 315, 4, 250, 2),
        ("jbidwatch", 21, 375, 4, 300, 3),
        ("columba", 20, 465, 4, 420, 4),
        ("gantt", 20, 465, 4, 380, 3),
        ("jxplorer", 14, 495, 4, 400, 4),
        ("jedit", 11, 510, 4, 370, 3),
        ("megamek", 22, 420, 4, 260, 3),
        ("gruntspud", 14, 570, 4, 470, 4),
    ];
    rows.iter()
        .enumerate()
        .map(
            |(i, &(name, layers, width, fan_in, classes, threads))| SynthConfig {
                name: name.into(),
                seed: 0x5eed_0000 + i as u64,
                layers,
                width,
                fan_in,
                classes,
                dispatch_fanout: 3,
                // pmd's machine-generated parser methods are statically bound,
                // which is also why CHA stays reasonable on it in the paper.
                virtual_pct: if name == "pmd" { 20 } else { 55 },
                recursion_pct: 12,
                allocs_per_method: 2,
                field_ops_per_method: 2,
                threads,
                shared_pct: 50,
                // pmd models the paper's machine-generated parser: modest
                // dataflow fan-in but three parallel sites per edge, blowing
                // the reduced-path count up to ~10^23.
                parallel_sites: if name == "pmd" { 3 } else { 1 },
                races: 0,
                taint: 0,
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::Facts;

    #[test]
    fn deterministic() {
        let c = SynthConfig::tiny("t", 42);
        let p1 = generate(&c);
        let p2 = generate(&c);
        assert_eq!(p1.methods.len(), p2.methods.len());
        assert_eq!(p1.vars.len(), p2.vars.len());
        assert_eq!(p1.statement_count(), p2.statement_count());
        let f1 = Facts::extract(&p1);
        let f2 = Facts::extract(&p2);
        assert_eq!(f1.vp0, f2.vp0);
        assert_eq!(f1.mi, f2.mi);
    }

    /// FNV-1a over every fact relation in extraction order: a content
    /// fingerprint of the generated workload stream.
    fn facts_fingerprint(f: &Facts) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(f.sizes.v);
        mix(f.sizes.h);
        mix(f.sizes.m);
        mix(f.sizes.i);
        mix(f.vp0.len() as u64);
        for t in &f.vp0 {
            t.iter().for_each(|&x| mix(x));
        }
        mix(f.mi.len() as u64);
        for t in &f.mi {
            t.iter().for_each(|&x| mix(x));
        }
        mix(f.actual.len() as u64);
        for t in &f.actual {
            t.iter().for_each(|&x| mix(x));
        }
        mix(f.cha.len() as u64);
        for t in &f.cha {
            t.iter().for_each(|&x| mix(x));
        }
        h
    }

    /// Pins the exact generated-workload stream for a fixed seed. The
    /// generator is part of the benchmark methodology: if this hash moves,
    /// every results/ baseline and BENCH trajectory silently measures a
    /// different program. Update the constant only with a deliberate
    /// generator change, and regenerate the baselines in the same commit.
    #[test]
    fn golden_hash_pins_workload_stream() {
        let p = generate(&SynthConfig::tiny("golden", 0x5eed));
        let f = Facts::extract(&p);
        assert_eq!(
            facts_fingerprint(&f),
            0xCE83_D61D_5C0C_D5ED,
            "generated workload stream changed for a fixed seed"
        );
    }

    #[test]
    fn taint_knob_injects_resolvable_chains() {
        let mut c = SynthConfig::tiny("taintinj", 3);
        c.taint = 2;
        let p = generate(&c);
        let f = Facts::extract(&p);
        for i in 0..c.taint {
            for name in [
                format!("taint.Api{i}.source"),
                format!("taint.Sink{i}.consume"),
                format!("taint.San{i}.clean"),
                format!("taint.Drive{i}.bad"),
                format!("taint.Drive{i}.good"),
            ] {
                assert!(f.method_names.contains(&name), "missing {name}");
            }
        }
        // The companion spec parses and resolves against the program.
        let spec = crate::TaintSpec::parse(&injected_taint_spec(&c)).unwrap();
        let resolved = spec.resolve(&f).unwrap();
        assert_eq!(resolved.source_methods.len(), 2);
        assert_eq!(resolved.sink_methods.len(), 2);
        assert_eq!(resolved.sanitizer_methods.len(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        let p1 = generate(&SynthConfig::tiny("t", 1));
        let p2 = generate(&SynthConfig::tiny("t", 2));
        let f1 = Facts::extract(&p1);
        let f2 = Facts::extract(&p2);
        assert_ne!(f1.mi, f2.mi);
    }

    #[test]
    fn generated_program_is_well_formed() {
        let p = generate(&SynthConfig::tiny("t", 7));
        let f = Facts::extract(&p);
        assert!(!f.vp0.is_empty());
        assert!(!f.mi.is_empty());
        assert!(!f.entries.is_empty());
        assert!(!f.thread_allocs.is_empty(), "one thread worker allocated");
        // Every variable id in every relation is within the domain.
        for t in &f.vp0 {
            assert!(t[0] < f.sizes.v && t[1] < f.sizes.h);
        }
        for t in &f.actual {
            assert!(t[0] < f.sizes.i && t[1] < f.sizes.z && t[2] < f.sizes.v);
        }
        for t in &f.cha {
            assert!(t[0] < f.sizes.t && t[1] < f.sizes.n && t[2] < f.sizes.m);
        }
    }

    #[test]
    fn scaling_reduces_size() {
        let c = benchmarks()[0].clone();
        let small = c.scaled(1, 4);
        let p_small = generate(&small);
        let p_full = generate(&c);
        assert!(p_small.methods.len() < p_full.methods.len() / 2);
    }

    #[test]
    fn benchmark_set_has_21_rows() {
        let bs = benchmarks();
        assert_eq!(bs.len(), 21);
        assert_eq!(bs[0].name, "freetts");
        assert_eq!(bs[8].name, "pmd");
        // pmd must be the context-count monster.
        let pmd_paths = bs[8].expected_paths();
        assert!(pmd_paths > 1e20);
        // Single-threaded rows per Figure 5.
        for single in ["freetts", "openwfe", "pmd"] {
            assert_eq!(
                bs.iter().find(|b| b.name == single).unwrap().threads,
                0,
                "{single} is single-threaded"
            );
        }
    }
}
