//! Fact extraction: from the IR to the relations of the paper.
//!
//! This is the substitute for the paper's Joeq-based bytecode fact
//! extractor. It dumps a [`Program`] into exactly the input relations the
//! Datalog analyses consume (`vP0`, `store`, `load`, `assign`, `vT`, `hT`,
//! `aT`, `cha`, `actual`, `formal`, `IE0`, `mI`, `Mret`, `Iret`, `mV`,
//! `mH`, `syncs`), plus domain sizes and element-name maps.

use crate::hierarchy::Hierarchy;
use crate::model::*;

/// Sizes of the Datalog domains extracted from a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainSizes {
    /// Variables (`V`).
    pub v: u64,
    /// Heap objects / allocation sites (`H`).
    pub h: u64,
    /// Fields (`F`).
    pub f: u64,
    /// Types (`T`).
    pub t: u64,
    /// Invocation sites (`I`).
    pub i: u64,
    /// Methods (`M`).
    pub m: u64,
    /// Method names (`N`), including the null name for non-virtual sites.
    pub n: u64,
    /// Parameter positions (`Z`).
    pub z: u64,
    /// Statements (`S`): one id per statement, in [`Program::statements`]
    /// order.
    pub s: u64,
}

/// The extracted relations of one program.
///
/// Tuples use `u64` ids matching the corresponding [`DomainSizes`] domains.
#[derive(Debug, Clone, Default)]
pub struct Facts {
    /// `vP0(v, h)` — allocation statements.
    pub vp0: Vec<[u64; 2]>,
    /// `assign(dest, source)` — copies (including returns into ret-vars).
    pub assign: Vec<[u64; 2]>,
    /// `store(base, field, source)`.
    pub store: Vec<[u64; 3]>,
    /// `load(base, field, dest)`.
    pub load: Vec<[u64; 3]>,
    /// `storeAt(stmt, base, field, source)` — stores with their statement
    /// identity, for access-pair reporting (race detection).
    pub store_at: Vec<[u64; 4]>,
    /// `loadAt(stmt, base, field, dest)` — loads with their statement
    /// identity.
    pub load_at: Vec<[u64; 4]>,
    /// `guarded(method, stmt, lockVar)` — statement `stmt` of `method`
    /// executes inside a lexical `synchronized (lockVar)` region.
    pub guarded: Vec<[u64; 3]>,
    /// `sm(stmt, method)` — containing method of every statement.
    pub sm: Vec<[u64; 2]>,
    /// `vT(variable, type)` — declared variable types.
    pub vt: Vec<[u64; 2]>,
    /// `hT(heap, type)` — allocated types.
    pub ht: Vec<[u64; 2]>,
    /// `aT(supertype, subtype)` — assignability.
    pub at: Vec<[u64; 2]>,
    /// `cha(type, name, target)` — virtual dispatch table.
    pub cha: Vec<[u64; 3]>,
    /// `actual(invoke, param, var)`.
    pub actual: Vec<[u64; 3]>,
    /// `formal(method, param, var)`.
    pub formal: Vec<[u64; 3]>,
    /// `IE0(invoke, target)` — statically bound invocation edges.
    pub ie0: Vec<[u64; 2]>,
    /// `mI(method, invoke, name)` — invocation sites with dispatch name
    /// (the null name for statically bound sites).
    pub mi: Vec<[u64; 3]>,
    /// `Mret(method, var)` — return variables.
    pub mret: Vec<[u64; 2]>,
    /// `Mthr(method, var)` — exception variables (thrown values escape
    /// into these; callers absorb them through the call graph).
    pub mthr: Vec<[u64; 2]>,
    /// `Iret(invoke, var)` — call-site return destinations.
    pub iret: Vec<[u64; 2]>,
    /// `mCls(method, type)` — declaring class of each method.
    pub mcls: Vec<[u64; 2]>,
    /// `mV(method, var)` — local variables per method.
    pub mv: Vec<[u64; 2]>,
    /// `mH(method, heap)` — allocation sites per method.
    pub mh: Vec<[u64; 2]>,
    /// `syncs(var)` — synchronization operations.
    pub syncs: Vec<[u64; 1]>,
    /// Entry methods.
    pub entries: Vec<u64>,
    /// Allocation sites whose class is a `java.lang.Thread` subtype.
    pub thread_allocs: Vec<u64>,
    /// The type id of `java.lang.String`, if present.
    pub string_type: Option<u64>,
    /// The type id of `java.lang.Thread`, if present.
    pub thread_type: Option<u64>,
    /// The null method name used for non-virtual sites in `mI`.
    pub null_name: u64,
    /// Domain sizes.
    pub sizes: DomainSizes,
    /// Name maps (ordinal -> display name) per domain.
    pub var_names: Vec<String>,
    /// Heap-site display names (`Class@site`).
    pub heap_names: Vec<String>,
    /// Field names.
    pub field_names: Vec<String>,
    /// Type names.
    pub type_names: Vec<String>,
    /// Method display names.
    pub method_names: Vec<String>,
    /// Simple (dispatch) names, null name last.
    pub simple_names: Vec<String>,
    /// Statement display names (`Class.method#index`).
    pub stmt_names: Vec<String>,
}

impl Facts {
    /// Extracts all relations from a program.
    pub fn extract(program: &Program) -> Facts {
        let hierarchy = Hierarchy::new(program);
        Self::extract_with(program, &hierarchy)
    }

    /// Extracts all relations, reusing a prebuilt [`Hierarchy`].
    pub fn extract_with(program: &Program, hierarchy: &Hierarchy) -> Facts {
        let mut f = Facts::default();
        let mut max_params = 1u64;

        // Declared types and per-method variable lists.
        for (vi, var) in program.vars.iter().enumerate() {
            f.vt.push([vi as u64, var.ty.0 as u64]);
            if let Some(m) = var.method {
                f.mv.push([m.0 as u64, vi as u64]);
            }
        }

        // Assignability and dispatch.
        for (sup, sub) in hierarchy.assignable_pairs() {
            f.at.push([sup.0 as u64, sub.0 as u64]);
        }
        for (t, n, m) in hierarchy.cha_triples() {
            f.cha.push([t.0 as u64, n.0 as u64, m.0 as u64]);
        }

        // Method-level relations.
        for (mi_, meth) in program.methods.iter().enumerate() {
            let m = mi_ as u64;
            f.mcls.push([m, meth.owner.0 as u64]);
            for (z, &v) in meth.formals.iter().enumerate() {
                f.formal.push([m, z as u64, v.0 as u64]);
            }
            max_params = max_params.max(meth.formals.len() as u64);
            if let Some(rv) = meth.ret_var {
                f.mret.push([m, rv.0 as u64]);
            }
            if let Some(ev) = meth.exc_var {
                f.mthr.push([m, ev.0 as u64]);
            }
        }

        // Statements. Statement ids are global and dense, assigned in
        // `Program::statements` order, so `method_stmt_base[m] + body
        // index` is the id of a statement inside method `m`.
        let null_name = program.names.len() as u64;
        let mut method_stmt_base = Vec::with_capacity(program.methods.len());
        let mut next_stmt = 0u64;
        for meth in &program.methods {
            method_stmt_base.push(next_stmt);
            next_stmt += meth.body.len() as u64;
        }
        for (s, (m, stmt)) in program.statements().enumerate() {
            let s = s as u64;
            let m = m.0 as u64;
            f.sm.push([s, m]);
            match stmt {
                Stmt::New { dst, class, site } => {
                    f.vp0.push([dst.0 as u64, site.0 as u64]);
                    f.ht.push([site.0 as u64, class.0 as u64]);
                    f.mh.push([m, site.0 as u64]);
                    if let Some(thread) = program.thread_class {
                        if hierarchy.is_subtype(*class, thread) {
                            f.thread_allocs.push(site.0 as u64);
                        }
                    }
                }
                Stmt::Assign { dst, src } => f.assign.push([dst.0 as u64, src.0 as u64]),
                Stmt::Load { dst, base, field } => {
                    f.load.push([base.0 as u64, field.0 as u64, dst.0 as u64]);
                    f.load_at
                        .push([s, base.0 as u64, field.0 as u64, dst.0 as u64]);
                }
                Stmt::Store { base, field, src } => {
                    f.store.push([base.0 as u64, field.0 as u64, src.0 as u64]);
                    f.store_at
                        .push([s, base.0 as u64, field.0 as u64, src.0 as u64]);
                }
                Stmt::Invoke {
                    site,
                    target,
                    actuals,
                    dst,
                } => {
                    let i = site.0 as u64;
                    for (z, &v) in actuals.iter().enumerate() {
                        f.actual.push([i, z as u64, v.0 as u64]);
                    }
                    max_params = max_params.max(actuals.len() as u64);
                    if let Some(d) = dst {
                        f.iret.push([i, d.0 as u64]);
                    }
                    match target {
                        CallTarget::Static(t) => {
                            f.ie0.push([i, t.0 as u64]);
                            f.mi.push([m, i, null_name]);
                        }
                        CallTarget::Virtual(n) => {
                            f.mi.push([m, i, n.0 as u64]);
                        }
                    }
                }
                Stmt::Return { .. } | Stmt::Throw { .. } => {
                    // The builder already emitted the ret-var / exc-var
                    // assignment.
                }
                Stmt::Sync { var } => f.syncs.push([var.0 as u64]),
            }
        }

        // Lexical synchronized regions: every statement in a region is
        // guarded by the region's monitor variable (nested regions
        // contribute one tuple per enclosing monitor).
        for (mi_, meth) in program.methods.iter().enumerate() {
            let base = method_stmt_base[mi_];
            for &(start, end, lock) in &meth.guards {
                for ix in start..end {
                    f.guarded
                        .push([mi_ as u64, base + ix as u64, lock.0 as u64]);
                }
            }
        }

        f.entries = program.entries.iter().map(|m| m.0 as u64).collect();
        f.string_type = program.string_class.map(|c| c.0 as u64);
        f.thread_type = program.thread_class.map(|c| c.0 as u64);
        f.null_name = null_name;
        f.sizes = DomainSizes {
            v: program.vars.len().max(1) as u64,
            h: (program.heap_sites.max(1)) as u64,
            f: program.fields.len().max(1) as u64,
            t: program.classes.len().max(1) as u64,
            i: (program.invoke_sites.max(1)) as u64,
            m: program.methods.len().max(1) as u64,
            n: null_name + 1,
            z: max_params,
            s: (program.statement_count().max(1)) as u64,
        };

        // Name maps.
        f.var_names = program
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| match v.method {
                Some(m) => format!("{}::{}#{i}", program.method_display(m), v.name),
                None => v.name.clone(),
            })
            .collect();
        f.heap_names = vec![String::new(); program.heap_sites as usize];
        for (m, stmt) in program.statements() {
            if let Stmt::New { class, site, .. } = stmt {
                f.heap_names[site.index()] = format!(
                    "{}@{}:{}",
                    program.classes[class.index()].name,
                    program.method_display(m),
                    site.0
                );
            }
        }
        f.field_names = program.fields.iter().map(|x| x.name.clone()).collect();
        f.type_names = program.classes.iter().map(|c| c.name.clone()).collect();
        f.method_names = (0..program.methods.len())
            .map(|i| program.method_display(MethodId(i as u32)))
            .collect();
        f.simple_names = program
            .names
            .iter()
            .cloned()
            .chain(std::iter::once("<none>".to_string()))
            .collect();
        f.stmt_names = program
            .methods
            .iter()
            .enumerate()
            .flat_map(|(i, meth)| {
                let disp = program.method_display(MethodId(i as u32));
                (0..meth.body.len()).map(move |ix| format!("{disp}#{ix}"))
            })
            .collect();
        if f.stmt_names.is_empty() {
            f.stmt_names.push("<none>".to_string());
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let fld = b.field(a, "f", obj);
        let callee = b.method(a, "id", MethodKind::Virtual, &[("p", obj)], Some(obj));
        let p = b.program().methods[callee.index()].formals[1];
        b.stmt_return(callee, p);
        let main = b.method(a, "main", MethodKind::Static, &[], None);
        let x = b.local(main, "x", a);
        let y = b.local(main, "y", obj);
        let z = b.local(main, "z", obj);
        b.stmt_new(main, x, a);
        b.stmt_new(main, y, obj);
        b.stmt_store(main, x, fld, y);
        b.stmt_call_virtual(main, "id", &[x, y], Some(z));
        b.stmt_sync(main, x);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn extracts_core_relations() {
        let p = sample();
        let f = Facts::extract(&p);
        assert_eq!(f.vp0.len(), 2);
        assert_eq!(f.store.len(), 1);
        assert_eq!(f.actual.len(), 2); // receiver + one arg
        assert_eq!(f.iret.len(), 1);
        assert_eq!(f.mret.len(), 1);
        assert_eq!(f.syncs.len(), 1);
        assert_eq!(f.entries.len(), 1);
        // The virtual site carries its dispatch name, not the null name.
        assert!(f.mi.iter().all(|t| t[2] != f.null_name));
        assert_eq!(f.sizes.z, 2);
        assert!(f.sizes.n >= 2);
    }

    #[test]
    fn static_calls_bind_in_ie0_with_null_name() {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let callee = b.method(a, "sm", MethodKind::Static, &[], None);
        let main = b.method(a, "main", MethodKind::Static, &[], None);
        b.stmt_call_static(main, callee, &[], None);
        let p = b.finish();
        let f = Facts::extract(&p);
        assert_eq!(f.ie0, vec![[0, callee.0 as u64]]);
        assert_eq!(f.mi.len(), 1);
        assert_eq!(f.mi[0][2], f.null_name);
    }

    #[test]
    fn thread_allocs_detected() {
        let mut b = ProgramBuilder::new();
        let thread = b.thread_class();
        let obj = b.object_class();
        let worker = b.class("Worker", Some(thread));
        let main_cls = b.class("Main", Some(obj));
        let main = b.method(main_cls, "main", MethodKind::Static, &[], None);
        let w = b.local(main, "w", worker);
        let o = b.local(main, "o", obj);
        b.stmt_new(main, w, worker);
        b.stmt_new(main, o, obj);
        b.stmt_thread_start(main, w);
        let p = b.finish();
        let f = Facts::extract(&p);
        assert_eq!(f.thread_allocs.len(), 1);
        // thread start is a virtual call of "run"
        assert_eq!(f.mi.len(), 1);
        assert_eq!(&p.names[f.mi[0][2] as usize], "run");
    }

    #[test]
    fn return_becomes_assign_to_ret_var() {
        let p = sample();
        let f = Facts::extract(&p);
        // callee: return p => assign(ret, p)
        assert_eq!(f.assign.len(), 1);
        let ret_var = f.mret[0][1];
        assert_eq!(f.assign[0][0], ret_var);
    }

    #[test]
    fn name_maps_cover_domains() {
        let p = sample();
        let f = Facts::extract(&p);
        assert_eq!(f.var_names.len() as u64, f.sizes.v);
        assert_eq!(f.heap_names.len() as u64, f.sizes.h);
        assert_eq!(f.type_names.len() as u64, f.sizes.t);
        assert_eq!(f.method_names.len() as u64, f.sizes.m);
        assert_eq!(f.simple_names.len() as u64, f.sizes.n);
        assert_eq!(f.stmt_names.len() as u64, f.sizes.s);
        assert!(f.heap_names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn accesses_carry_statement_identities() {
        let p = sample();
        let f = Facts::extract(&p);
        // Statement ids are dense over Program::statements order: the
        // callee's body (Return + Assign) occupies ids 0..2, so main's
        // store (body index 2) is global statement 4.
        assert_eq!(f.store_at.len(), 1);
        let [s, base, fld, src] = f.store_at[0];
        assert_eq!(s, 4);
        assert_eq!([base, fld, src], f.store[0]);
        assert_eq!(f.load_at.len(), 0);
        assert_eq!(f.stmt_names[4], "A.main#2");
    }

    #[test]
    fn sync_regions_become_guarded_tuples() {
        let mut b = ProgramBuilder::new();
        let obj = b.object_class();
        let a = b.class("A", Some(obj));
        let fld = b.field(a, "f", obj);
        let main = b.method(a, "main", MethodKind::Static, &[], None);
        let x = b.local(main, "x", a);
        let y = b.local(main, "y", obj);
        b.stmt_new(main, x, a); // stmt 0
        b.stmt_new(main, y, obj); // stmt 1
        b.begin_sync(main, x); // stmt 2 (Sync)
        b.stmt_store(main, x, fld, y); // stmt 3, guarded by x
        b.stmt_load(main, y, x, fld); // stmt 4, guarded by x
        b.end_sync(main);
        b.stmt_store(main, x, fld, y); // stmt 5, unguarded
        b.entry(main);
        let p = b.finish();
        let f = Facts::extract(&p);
        let m = main.0 as u64;
        let xv = x.0 as u64;
        assert_eq!(f.guarded, vec![[m, 3, xv], [m, 4, xv]]);
        assert_eq!(f.store_at.len(), 2);
        assert_eq!(f.store_at[0][0], 3);
        assert_eq!(f.store_at[1][0], 5);
        assert_eq!(f.load_at, vec![[4, xv, fld.0 as u64, y.0 as u64]]);
    }
}
