//! Tests for the textual IR frontend.

use whale_ir::{parse_program, CallTarget, Facts, MethodKind, Stmt};

const SAMPLE: &str = r#"
// A tiny program exercising every statement form.
class A extends Object {
  field f: Object;

  method get(): Object {
    var r: Object;
    r = this.f;
    return r;
  }

  method set(v: Object) {
    this.f = v;
  }

  entry static method main() {
    var a: A;
    var o: Object;
    var r: Object;
    a = new A;
    o = new Object;
    a.set(o);
    r = a.get();
    r = A::helper(r);
    sync r;
  }

  static method helper(p: Object): Object {
    return p;
  }
}

class Worker extends Thread {
  method run() {
    var x: Object;
    x = new Object;
  }
}

class Spawner extends Object {
  entry static method spawn() {
    var w: Worker;
    w = new Worker;
    start w;
  }
}
"#;

#[test]
fn parses_and_extracts() {
    let p = parse_program(SAMPLE).unwrap();
    assert_eq!(
        p.classes.len(),
        6,
        "Object, String, Thread + A, Worker, Spawner"
    );
    let f = Facts::extract(&p);
    assert_eq!(f.entries.len(), 2); // main + spawn
    assert_eq!(f.vp0.len(), 4); // a, o (main), x (run), w (spawn)
    assert_eq!(f.syncs.len(), 1);
    assert_eq!(f.thread_allocs.len(), 1);
}

#[test]
fn this_is_formal_zero() {
    let p = parse_program(SAMPLE).unwrap();
    let get = p
        .methods
        .iter()
        .position(|m| p.names[m.name.index()] == "get")
        .unwrap();
    let m = &p.methods[get];
    assert_eq!(m.kind, MethodKind::Virtual);
    assert_eq!(p.vars[m.formals[0].index()].name, "this");
    assert!(m.ret_var.is_some());
}

#[test]
fn virtual_and_static_calls_distinguished() {
    let p = parse_program(SAMPLE).unwrap();
    let mut virtuals = 0;
    let mut statics = 0;
    for (_, s) in p.statements() {
        if let Stmt::Invoke { target, .. } = s {
            match target {
                CallTarget::Virtual(_) => virtuals += 1,
                CallTarget::Static(_) => statics += 1,
            }
        }
    }
    assert_eq!(virtuals, 3); // set, get, start-as-run
    assert_eq!(statics, 1); // helper
}

#[test]
fn main_is_implicit_entry() {
    let p =
        parse_program("class A extends Object { static method main() { var x: A; x = new A; } }")
            .unwrap();
    assert_eq!(p.entries.len(), 1);
}

#[test]
fn field_resolution_walks_superclass() {
    let src = r#"
class Base extends Object { field f: Object; }
class Derived extends Base {
  entry static method main() {
    var d: Derived;
    var o: Object;
    d = new Derived;
    o = d.f;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let f = Facts::extract(&p);
    assert_eq!(f.load.len(), 1);
}

#[test]
fn forward_references_allowed() {
    let src = r#"
class First extends Second {
  entry static method main() {
    var s: Second;
    s = new First;
    First::go(s);
  }
  static method go(p: Second) {
    Second::helper(p);
  }
}
class Second extends Object {
  static method helper(p: Second) {
  }
}
"#;
    let p = parse_program(src).unwrap();
    let f = Facts::extract(&p);
    assert_eq!(f.ie0.len(), 2);
}

#[test]
fn error_reports_line() {
    let err = parse_program("class A extends Object {\n  method broken( {\n}").unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn undeclared_variable_rejected() {
    let err = parse_program("class A extends Object { static method main() { x = new A; } }")
        .unwrap_err();
    assert!(err.message.contains("undeclared variable"));
}

#[test]
fn unknown_class_rejected() {
    let err = parse_program("class A extends Nope { }").unwrap_err();
    assert!(err.message.contains("unknown class"));
}

#[test]
fn unknown_field_rejected() {
    let err = parse_program(
        "class A extends Object { static method main() { var a: A; a = new A; a.nofield = a; } }",
    )
    .unwrap_err();
    assert!(err.message.contains("unknown field"));
}

#[test]
fn interfaces_parse() {
    let src = r#"
class I extends Object { }
class J extends Object { }
class A extends Object implements I, J {
  entry static method main() { var a: A; a = new A; }
}
"#;
    let p = parse_program(src).unwrap();
    let f = Facts::extract(&p);
    let a_ix = p.classes.iter().position(|c| c.name == "A").unwrap() as u64;
    let i_ix = p.classes.iter().position(|c| c.name == "I").unwrap() as u64;
    let j_ix = p.classes.iter().position(|c| c.name == "J").unwrap() as u64;
    assert!(f.at.contains(&[i_ix, a_ix]));
    assert!(f.at.contains(&[j_ix, a_ix]));
}

#[test]
fn sync_blocks_produce_guarded_facts() {
    let src = r#"
class A extends Object {
  field f: Object;
  entry static method main() {
    var a: A;
    var o: Object;
    a = new A;
    o = new Object;
    sync a {
      a.f = o;
      o = a.f;
    }
    a.f = o;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let f = Facts::extract(&p);
    // One Sync stmt, two guarded statements (the store + load inside the
    // block), and the trailing store is unguarded.
    assert_eq!(f.syncs.len(), 1);
    assert_eq!(f.guarded.len(), 2);
    let guarded: Vec<u64> = f.guarded.iter().map(|t| t[1]).collect();
    assert!(f.store_at.iter().any(|t| guarded.contains(&t[0])));
    assert!(f.store_at.iter().any(|t| !guarded.contains(&t[0])));
    assert!(f.load_at.iter().all(|t| guarded.contains(&t[0])));
}

#[test]
fn unclosed_sync_block_rejected() {
    let err = parse_program(
        "class A extends Object { static method main() { var a: A; a = new A; sync a { a = a;",
    )
    .unwrap_err();
    assert!(err.message.contains("unclosed `sync` block"), "{err}");
}
