//! Determinism of the parallel solver across full analyses: for several
//! synthetic workload seeds, solving with 1, 2 and 4 workers must yield
//! identical relation tuple sets (compared as content hashes) and
//! identical taint witness paths — including with dynamic variable
//! reordering enabled, which sifts the main and worker managers into
//! different orders mid-solve.
//!
//! This holds by construction — per-round rule contributions are merged
//! with OR (commutative), BDDs are canonical, and the scheduler preserves
//! the sequential engine's round structure — and these tests pin it.

use whale::ir::synth::{self, SynthConfig};
use whale::prelude::*;

/// FNV-1a over every relation's sorted tuples.
fn result_hash(engine: &Engine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    let names: Vec<String> = engine
        .program()
        .relations()
        .iter()
        .map(|r| r.name.clone())
        .collect();
    for name in names {
        let mut tuples = engine.relation_tuples(&name).unwrap();
        tuples.sort();
        eat(tuples.len() as u64);
        for t in tuples {
            for v in t {
                eat(v);
            }
        }
    }
    h
}

fn opts(jobs: usize, reorder: bool) -> Option<EngineOptions> {
    Some(EngineOptions {
        jobs,
        reorder,
        ..default_options(CS_ORDER)
    })
}

#[test]
fn cs_solve_is_deterministic_across_worker_counts() {
    for seed in [0x5eed, 0xbeef, 0x0dd] {
        let config = SynthConfig::tiny("det", seed);
        let program = synth::generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        let mut hashes = Vec::new();
        for jobs in [1usize, 2, 4] {
            let a = context_sensitive(&facts, &cg, &numbering, opts(jobs, false)).unwrap();
            hashes.push((jobs, result_hash(&a.engine)));
        }
        assert!(
            hashes.iter().all(|&(_, h)| h == hashes[0].1),
            "seed {seed:#x}: divergent results {hashes:?}"
        );
    }
}

#[test]
fn cs_solve_is_deterministic_with_reordering_workers() {
    let config = SynthConfig::tiny("det-reorder", 0x5eed);
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    let seq = context_sensitive(&facts, &cg, &numbering, opts(1, true)).unwrap();
    let par = context_sensitive(&facts, &cg, &numbering, opts(4, true)).unwrap();
    assert_eq!(result_hash(&seq.engine), result_hash(&par.engine));
}

#[test]
fn taint_witness_paths_are_identical_across_worker_counts() {
    for seed in [0x5eed, 0xbeef, 0x0dd] {
        let mut config = SynthConfig::tiny("det-taint", seed);
        config.taint = 2;
        let program = synth::generate(&config);
        let facts = Facts::extract(&program);
        let cg = CallGraph::from_cha(&facts).unwrap();
        let numbering = number_contexts(&cg);
        let spec = TaintSpec::parse(&synth::injected_taint_spec(&config)).unwrap();
        let render = |jobs: usize, reorder: bool| {
            let r = taint_analysis(&facts, &cg, &numbering, &spec, opts(jobs, reorder)).unwrap();
            let mut lines: Vec<String> = r
                .findings
                .iter()
                .map(|f| {
                    let steps: Vec<String> = f
                        .witness
                        .iter()
                        .map(|s| format!("{:?}:{}@{}", s.kind, s.var_name, s.context))
                        .collect();
                    format!(
                        "{}/{}/{}/{}: {}",
                        f.sink_method,
                        f.in_method,
                        f.invoke,
                        f.context,
                        steps.join(" -> ")
                    )
                })
                .collect();
            lines.sort();
            lines
        };
        let want = render(1, false);
        assert!(!want.is_empty(), "seed {seed:#x}: no findings to compare");
        for jobs in [2usize, 4] {
            assert_eq!(render(jobs, false), want, "seed {seed:#x} jobs={jobs}");
        }
        assert_eq!(render(4, true), want, "seed {seed:#x} reordering workers");
    }
}
