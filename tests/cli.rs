//! End-to-end test of the `whale` command-line driver.

use std::process::Command;

const DEMO: &str = r#"
class A extends Object { }
class B extends Object { }
class Id extends Object {
  static method id(p: Object): Object { return p; }
}
class Main extends Object {
  entry static method main() {
    var a: A;
    var b: B;
    var ra: Object;
    var rb: Object;
    a = new A;
    b = new B;
    ra = Id::id(a);
    rb = Id::id(b);
  }
}
"#;

fn whale() -> Command {
    Command::new(env!("CARGO_BIN_EXE_whale"))
}

fn demo_file(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("whale_cli_{tag}_{}.whale", std::process::id()));
    std::fs::write(&path, DEMO).unwrap();
    path
}

#[test]
fn number_reports_clone_counts() {
    let path = demo_file("number");
    let out = whale().arg("number").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max 2 per method"), "{stdout}");
    assert!(stdout.contains("Id.id"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_cs_prints_contextful_tuples() {
    let path = demo_file("cs");
    let out = whale()
        .args(["analyze"])
        .arg(&path)
        .args(["--cs", "--print", "vPC"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The polyvariance is visible in the printed relation: context 1 sees
    // the A object, context 2 the B object.
    assert!(
        stdout.contains("(1, Id.id::p#1, A@Main.main:0)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("(2, Id.id::p#1, B@Main.main:1)"),
        "{stdout}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_factor_runs() {
    let path = demo_file("factor");
    let out = whale()
        .args(["analyze"])
        .arg(&path)
        .args(["--factor", "--otf"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("vP:"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_taint_prints_witness_paths() {
    let program = r#"
class Api extends Object {
  static method secret(): Object {
    var s: Object;
    s = new Object;
    return s;
  }
}
class Db extends Object {
  static method exec(q: Object) { }
}
class Main extends Object {
  entry static method main() {
    var x: Object;
    x = Api::secret();
    Db::exec(x);
  }
}
"#;
    let pid = std::process::id();
    let prog_path = std::env::temp_dir().join(format!("whale_cli_taint_{pid}.whale"));
    let spec_path = std::env::temp_dir().join(format!("whale_cli_taint_{pid}.spec"));
    std::fs::write(&prog_path, program).unwrap();
    std::fs::write(
        &spec_path,
        "source method Api.secret\nsink method Db.exec 0\n",
    )
    .unwrap();
    let out = whale()
        .args(["analyze"])
        .arg(&prog_path)
        .arg("--taint")
        .arg(&spec_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 tainted flow(s) reach a sink"),
        "{stdout}"
    );
    assert!(stdout.contains("Db.exec in Main.main"), "{stdout}");
    assert!(stdout.contains("source  Api.secret::"), "{stdout}");
    assert!(stdout.contains("return  Main.main::x"), "{stdout}");
    std::fs::remove_file(&prog_path).ok();
    std::fs::remove_file(&spec_path).ok();
}

#[test]
fn bad_input_reports_error() {
    let out = whale()
        .args(["analyze", "/definitely/not/here.whale"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("whale:"));
}
